#!/usr/bin/env python
"""Regenerate every paper table/figure and write the reports to results/.

Usage: python scripts/run_all_experiments.py [--jobs N] [scale] [experiment ...]

``scale`` is ci / default / paper (default: default).  With no experiment
names, runs everything including the two ablations.  ``--jobs N`` shards
every sweep grid over N worker processes (0 = one per CPU); results are
identical for any N.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ModuleNotFoundError:  # running from a checkout without PYTHONPATH
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro._util import atomic_write_text
from repro.dags.datasets import small_rand_set
from repro.experiments.ablation import comm_policy_ablation, tiebreak_ablation
from repro.experiments.config import get_scale
from repro.experiments.figures import EXPERIMENTS, RAND_PLATFORM
from repro.experiments.report import render_table
from repro.experiments.sweep import default_alphas


def run_ablations(scale, jobs: int = 1) -> str:
    graphs = small_rand_set(min(scale.small_n_graphs, 10), scale.small_size)
    rows = comm_policy_ablation(graphs, RAND_PLATFORM,
                                default_alphas(scale.n_alphas), jobs=jobs)
    parts = [render_table(
        ["alpha", "late:success", "eager:success", "late:norm", "eager:norm"],
        [[round(r.alpha, 3), r.late_success, r.eager_success,
          None if r.late_mean_norm is None else round(r.late_mean_norm, 3),
          None if r.eager_mean_norm is None else round(r.eager_mean_norm, 3)]
         for r in rows],
        title="MemHEFT transfer-placement ablation (late = paper policy)")]
    tb = tiebreak_ablation(graphs[:6], RAND_PLATFORM, n_seeds=5, jobs=jobs)
    parts.append(render_table(
        ["graph", "deterministic", "seeded mean", "min", "max"],
        [[r.graph_name, r.deterministic, round(r.seeded_mean, 1),
          r.seeded_min, r.seeded_max] for r in tb],
        title="MemHEFT rank tie-break spread"))
    return "\n\n".join(parts)


def main() -> int:
    import argparse
    parser = argparse.ArgumentParser(
        description=__doc__.split("\n\n")[0],
        epilog="scales: ci, default, paper | experiments: "
               + ", ".join(sorted(EXPERIMENTS)) + ", ablations")
    parser.add_argument("scale", nargs="?", default="default",
                        help="experiment scale preset (default: default)")
    parser.add_argument("experiments", nargs="*",
                        help="experiment names (default: everything)")
    parser.add_argument("-j", "--jobs", type=int, default=1,
                        help="shard every sweep grid over N worker "
                             "processes (0 = one per CPU)")
    parser.add_argument("--hosts", default=None, metavar="H1:P1,H2:P2",
                        help="shard every sweep grid over running "
                             "'memsched serve' hosts instead of local "
                             "processes (identical results)")
    args = parser.parse_args()
    jobs = args.jobs
    wanted = args.experiments or list(EXPERIMENTS) + ["ablations"]
    scale = get_scale(args.scale)
    out_dir = Path(__file__).resolve().parent.parent / "results" / scale.name
    out_dir.mkdir(parents=True, exist_ok=True)

    if args.hosts:
        from contextlib import ExitStack

        from repro.experiments.remote import RemoteExecutor, remote_hosts
        try:
            executor = RemoteExecutor(
                [h for h in args.hosts.split(",") if h.strip()])
        except ValueError as exc:
            raise SystemExit(f"error: invalid --hosts: {exc}") from None
        stack = ExitStack()
        stack.enter_context(remote_hosts(executor))
    else:
        executor = stack = None

    try:
        for name in wanted:
            t0 = time.perf_counter()
            if name == "ablations":
                text = run_ablations(scale, jobs=jobs)
            else:
                text = str(EXPERIMENTS[name](scale, jobs=jobs))
            dt = time.perf_counter() - t0
            path = out_dir / f"{name}.txt"
            atomic_write_text(path, text
                              + f"\n\n[generated at scale={scale.name} "
                                f"in {dt:.1f}s]\n")
            print(f"[{dt:7.1f}s] {name} -> {path}")
    finally:
        if stack is not None:
            stack.close()
    if executor is not None:
        from repro.experiments.remote import format_host_stats
        for line in format_host_stats(executor.stats()):
            print(line)
    return 0


if __name__ == "__main__":
    sys.exit(main())
