#!/usr/bin/env python
"""CI speedup gate: assert the parallel paths actually beat serial.

Reads the ``BENCH_*.json`` reports the benchmarks emit and enforces the
targets that a single-core dev container can never demonstrate (the
ROADMAP's long-open "needs a multi-core runner" item):

* ``BENCH_scaling.json`` — the ``--jobs N`` sweep must be at least
  ``--min-speedup`` times faster than serial, with identical cells.
* ``BENCH_service.json`` — the ``/batch`` workers path must beat the
  serial batch by the same factor, with identical results.
* ``BENCH_distributed.json`` (optional) — the multi-host sweep must at
  least beat ``--min-distributed`` (HTTP + wire encoding overhead makes
  this gate softer) and be cell-identical.
* ``BENCH_kernel.json`` — every vectorized EST kernel backend must beat
  the seed incremental kernel on every frontier config (a single-thread
  gate, so it holds on one-core runners too): numpy by ``--min-kernel``,
  the compiled backend by ``--min-compiled``, and on the headline config
  compiled must beat numpy by ``--min-compiled-vs-numpy`` — all with
  bit-identical breakdowns, and the batch/end-to-end sections must all
  be marked identical.  Reports produced without a C toolchain carry no
  compiled rows; those gates are then skipped with a notice.
* ``BENCH_faults.json`` — checkpoint journaling must cost at most
  ``--max-checkpoint-overhead`` percent on a fault-free sweep, fault
  plans must be bit-reproducible, and every chaos goodput run must have
  stayed byte-identical to the serial reference.
* ``BENCH_obs.json`` — full observability (metrics + tracing) must cost
  at most ``--max-obs-overhead`` percent on the serial sweep with
  identical results, traces must be structurally deterministic, and the
  live ``/metrics`` scrape must be valid exposition accounting for
  every request.
* ``BENCH_online.json`` — the immediate-greedy online policy must keep
  p99 per-arrival decision latency under ``--max-online-p99-ms`` and
  makespan regret against the clairvoyant union schedule under
  ``--max-online-regret`` percent, with byte-identical journals across
  replays and the zero-release offline identity intact.

Exit status 0 only when every present report passes; failures list every
violated gate.  Usage::

    python scripts/check_speedup.py --scaling BENCH_scaling.json \
        --service BENCH_service.json --distributed BENCH_distributed.json \
        --kernel BENCH_kernel.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


#: One gate per report kind: which section of the JSON to read, which
#: identity flag must hold, how to label the OK/failure lines, and how to
#: describe the parallel configuration from the report's fields.
GATES = {
    "scaling": {
        "section": "sweep",
        "identical_key": "identical_cells",
        "label": "scaling  sweep   ",
        "identity_problem": "parallel sweep cells differ from serial",
        "config": lambda rep, sec: (f"jobs={sec['jobs']} on "
                                    f"{rep.get('cpu_count')} CPUs"),
        "hint": " — run bench_scaling.py with --jobs N",
    },
    "service": {
        "section": "batch",
        "identical_key": "identical_results",
        "label": "service  /batch  ",
        "identity_problem": "workers batch differs from serial batch",
        "config": lambda rep, sec: (f"workers={sec['workers']} on "
                                    f"{rep.get('cpu_count')} CPUs"),
        "hint": "",
    },
    "distributed": {
        "section": "sweep",
        "identical_key": "identical_cells",
        "label": "distributed sweep",
        "identity_problem": "distributed cells differ from serial",
        "config": lambda rep, sec: (f"{rep.get('n_hosts')} hosts x "
                                    f"{rep.get('workers_per_host')} "
                                    f"workers"),
        "hint": "",
    },
}


def check_report(kind: str, path: str, min_speedup: float) -> list[str]:
    """Apply one gate; returns the violated-gate messages (empty = pass,
    with the OK line printed — only when *every* check of the gate held)."""
    gate = GATES[kind]
    report = json.loads(Path(path).read_text())
    section = report.get(gate["section"])
    if section is None:
        return [f"{path}: no {gate['section']!r} section{gate['hint']}"]
    problems = []
    if not section.get(gate["identical_key"]):
        problems.append(f"{path}: {gate['identity_problem']}")
    config = gate["config"](report, section)
    if section["speedup"] < min_speedup:
        problems.append(
            f"{path}: {gate['label'].strip()} speedup "
            f"{section['speedup']:.2f}x < required {min_speedup:g}x "
            f"({config})")
    if not problems:
        print(f"{gate['label']}: {section['speedup']:.2f}x >= "
              f"{min_speedup:g}x with {config} OK")
    return problems


def check_faults_report(path: str, max_overhead_pct: float) -> list[str]:
    """Gate ``BENCH_faults.json``: checkpoint journaling must cost at most
    ``max_overhead_pct`` percent on a fault-free sweep with identical
    results; fault plans must be bit-reproducible (stable digest, repeating
    event sequence, repeating live injections); and every goodput chaos run
    must have produced results identical to serial."""
    report = json.loads(Path(path).read_text())
    problems = []

    ck = report.get("checkpoint")
    if ck is None:
        problems.append(f"{path}: no 'checkpoint' section — run "
                        "bench_faults.py")
    else:
        if not ck.get("identical_results"):
            problems.append(f"{path}: checkpointed sweep differs from "
                            "plain run")
        if ck["overhead_pct"] > max_overhead_pct:
            problems.append(
                f"{path}: checkpoint overhead {ck['overhead_pct']:+.2f}% "
                f"> allowed {max_overhead_pct:g}%")

    rep = report.get("reproducibility")
    if rep is None:
        problems.append(f"{path}: no 'reproducibility' section")
    else:
        for flag in ("digest_stable", "events_repeat", "injections_repeat",
                     "identical_results"):
            if not rep.get(flag):
                problems.append(f"{path}: reproducibility.{flag} is false "
                                "— fault plans are not bit-reproducible")

    goodput = report.get("goodput")
    if goodput is not None:
        for row in goodput.get("plans", ()):
            if not row.get("identical_results"):
                problems.append(
                    f"{path}: goodput[{row.get('plan')}] diverged from "
                    "the serial reference under injected faults")

    if not problems:
        overhead = ck["overhead_pct"]
        n_plans = len((goodput or {}).get("plans", ()))
        print(f"faults   ckpt+chaos: overhead {overhead:+.2f}% <= "
              f"{max_overhead_pct:g}%, plans reproducible, "
              f"{n_plans} chaos plans identical to serial OK")
    return problems


def check_obs_report(path: str, max_overhead_pct: float) -> list[str]:
    """Gate ``BENCH_obs.json``: instrumentation overhead on the serial
    sweep must stay under ``max_overhead_pct`` percent with identical
    results; two traced runs must repeat the same span structure; and
    the live scrape must be valid exposition covering every request."""
    report = json.loads(Path(path).read_text())
    problems = []

    overhead = report.get("overhead")
    if overhead is None:
        problems.append(f"{path}: no 'overhead' section — run "
                        "bench_obs.py")
    else:
        if not overhead.get("identical_results"):
            problems.append(f"{path}: observed sweep differs from "
                            "plain run")
        if overhead["overhead_pct"] > max_overhead_pct:
            problems.append(
                f"{path}: observability overhead "
                f"{overhead['overhead_pct']:+.2f}% > allowed "
                f"{max_overhead_pct:g}%")

    determinism = report.get("determinism")
    if determinism is None:
        problems.append(f"{path}: no 'determinism' section")
    else:
        for flag in ("structure_repeats", "identical_results"):
            if not determinism.get(flag):
                problems.append(f"{path}: determinism.{flag} is false "
                                "— traces are not structurally "
                                "deterministic")

    scrape = report.get("scrape")
    if scrape is None:
        problems.append(f"{path}: no 'scrape' section")
    else:
        for flag in ("valid_exposition", "requests_accounted"):
            if not scrape.get(flag):
                problems.append(f"{path}: scrape.{flag} is false — "
                                "/metrics exposition is broken")

    if not problems:
        print(f"obs      overhead: {overhead['overhead_pct']:+.2f}% <= "
              f"{max_overhead_pct:g}%, traces deterministic, scrape "
              f"valid ({scrape['n_samples']} samples) OK")
    return problems


def check_kernel_report(path: str, min_numpy: float, min_compiled: float,
                        min_ratio: float) -> list[str]:
    """Gate ``BENCH_kernel.json``: every ``vs_seed`` row (one per
    frontier config per vectorized backend) must clear its backend's
    floor (numpy >= ``min_numpy``, compiled >= ``min_compiled``) with
    bit-identical breakdowns; where both backends ran the same config,
    the best compiled-over-numpy ratio (``kernel_ms`` at the shared seed
    baseline) must reach ``min_ratio``; and every other compared section
    must be flagged identical.  Schema-1 reports (rows without a
    ``backend`` field) are treated as numpy rows."""
    report = json.loads(Path(path).read_text())
    rows = report.get("vs_seed")
    if not rows:
        return [f"{path}: no 'vs_seed' section — run bench_kernel.py"]
    problems = []
    floors = {"numpy": min_numpy, "compiled": min_compiled}
    by_config: dict = {}
    for row in rows:
        backend = row.get("backend", "numpy")
        by_config.setdefault(row.get("config"), {})[backend] = row
        if not row.get("identical"):
            problems.append(f"{path}: vs_seed[{row.get('config')}/"
                            f"{backend}] breakdowns differ between kernels")
        floor = floors.get(backend, min_numpy)
        if row["speedup"] < floor:
            problems.append(
                f"{path}: kernel vs_seed[{row['config']}/{backend}] "
                f"speedup {row['speedup']:.2f}x < required {floor:g}x "
                f"(batch={row.get('batch_size')}, n={row.get('n')})")
    ratios = [(config, per["numpy"]["kernel_ms"] / per["compiled"]["kernel_ms"])
              for config, per in by_config.items()
              if "numpy" in per and "compiled" in per
              and per["compiled"].get("kernel_ms")]
    has_compiled = any(row.get("backend") == "compiled" for row in rows)
    if ratios:
        best_config, best_ratio = max(ratios, key=lambda cr: cr[1])
        if best_ratio < min_ratio:
            problems.append(
                f"{path}: compiled kernel only {best_ratio:.2f}x over "
                f"numpy at best ({best_config}) < required {min_ratio:g}x")
    elif not has_compiled:
        print("kernel   compiled: no compiled rows (no C toolchain on "
              "the bench machine) — compiled gates skipped")
    for section in ("batch", "end_to_end", "invalidation"):
        for row in report.get(section, ()):
            if not row.get("identical"):
                problems.append(f"{path}: {section} row {row} not marked "
                                "identical")
    if not problems:
        worst = min(row["speedup"] for row in rows)
        summary = (f"kernel   vs_seed : worst {worst:.2f}x across "
                   f"{len(rows)} rows (numpy >= {min_numpy:g}x")
        if has_compiled:
            summary += (f", compiled >= {min_compiled:g}x, best "
                        f"compiled/numpy {max(r for _, r in ratios):.2f}x "
                        f">= {min_ratio:g}x")
        print(summary + ", single-thread) OK")
    return problems


def check_online_report(path: str, max_p99_ms: float,
                        max_regret_pct: float) -> list[str]:
    """Gate ``BENCH_online.json``: the immediate-greedy policy must keep
    per-arrival p99 decision latency under ``max_p99_ms`` and makespan
    regret against the clairvoyant union schedule under
    ``max_regret_pct`` percent; two replays of the stream must have
    produced byte-identical decision journals; and the zero-release
    identity against the offline heuristic must hold."""
    report = json.loads(Path(path).read_text())
    problems = []

    rows = report.get("policies") or []
    immediate = next((r for r in rows if r.get("policy") == "immediate"),
                     None)
    if immediate is None:
        problems.append(f"{path}: no immediate-policy row — run "
                        "bench_online.py")
    else:
        if immediate["p99_ms"] > max_p99_ms:
            problems.append(
                f"{path}: immediate p99 decision latency "
                f"{immediate['p99_ms']:g}ms > allowed {max_p99_ms:g}ms "
                f"(n={immediate.get('n_arrivals')} arrivals)")
        if immediate["regret_pct"] > max_regret_pct:
            problems.append(
                f"{path}: immediate makespan regret "
                f"{immediate['regret_pct']:+.2f}% > allowed "
                f"{max_regret_pct:g}%")

    determinism = report.get("determinism")
    if determinism is None:
        problems.append(f"{path}: no 'determinism' section")
    elif not determinism.get("identical_journal"):
        problems.append(f"{path}: two replays produced different "
                        "decision journals — online scheduling is not "
                        "deterministic")

    identity = report.get("identity")
    if identity is None:
        problems.append(f"{path}: no 'identity' section")
    elif not identity.get("offline_identical"):
        problems.append(f"{path}: zero-release online placements differ "
                        "from the offline heuristic")

    if not problems:
        print(f"online   immediate: p99 {immediate['p99_ms']:g}ms <= "
              f"{max_p99_ms:g}ms, regret {immediate['regret_pct']:+.2f}% "
              f"<= {max_regret_pct:g}%, journals identical, "
              f"offline identity holds OK")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.split("\n\n")[0])
    parser.add_argument("--scaling", metavar="PATH",
                        help="BENCH_scaling.json to gate")
    parser.add_argument("--service", metavar="PATH",
                        help="BENCH_service.json to gate")
    parser.add_argument("--distributed", metavar="PATH",
                        help="BENCH_distributed.json to gate")
    parser.add_argument("--kernel", metavar="PATH",
                        help="BENCH_kernel.json to gate")
    parser.add_argument("--faults", metavar="PATH",
                        help="BENCH_faults.json to gate")
    parser.add_argument("--obs", metavar="PATH",
                        help="BENCH_obs.json to gate")
    parser.add_argument("--online", metavar="PATH",
                        help="BENCH_online.json to gate")
    parser.add_argument("--min-speedup", type=float, default=1.5,
                        help="required parallel-vs-serial factor for the "
                             "in-process paths (default: 1.5)")
    parser.add_argument("--min-distributed", type=float, default=1.2,
                        help="required factor for the multi-host sweep "
                             "(softer: pays HTTP + wire overhead)")
    parser.add_argument("--min-kernel", type=float, default=3.0,
                        help="required numpy-vs-seed kernel factor "
                             "(bench target is 5x; CI gates the noise-"
                             "tolerant 3x)")
    parser.add_argument("--min-compiled", type=float, default=8.0,
                        help="required compiled-vs-seed kernel factor "
                             "(bench target is 10x; CI gates the noise-"
                             "tolerant 8x; skipped when the report has "
                             "no compiled rows)")
    parser.add_argument("--min-compiled-vs-numpy", type=float, default=1.5,
                        help="required best-config compiled-over-numpy "
                             "kernel_ms ratio (skipped without compiled "
                             "rows)")
    parser.add_argument("--max-checkpoint-overhead", type=float,
                        default=5.0,
                        help="allowed checkpoint-journal overhead in "
                             "percent on a fault-free sweep (default: 5)")
    parser.add_argument("--max-obs-overhead", type=float, default=3.0,
                        help="allowed full-observability overhead in "
                             "percent on the serial sweep (default: 3)")
    parser.add_argument("--max-online-p99-ms", type=float, default=50.0,
                        help="allowed immediate-policy p99 per-arrival "
                             "decision latency in ms (default: 50)")
    parser.add_argument("--max-online-regret", type=float, default=25.0,
                        help="allowed immediate-policy makespan regret "
                             "in percent against the clairvoyant union "
                             "schedule (default: 25)")
    args = parser.parse_args(argv)
    if not (args.scaling or args.service or args.distributed
            or args.kernel or args.faults or args.obs or args.online):
        parser.error("nothing to check: pass --scaling/--service/"
                     "--distributed/--kernel/--faults/--obs/--online")

    problems: list[str] = []
    if args.scaling:
        problems += check_report("scaling", args.scaling, args.min_speedup)
    if args.service:
        problems += check_report("service", args.service, args.min_speedup)
    if args.distributed:
        problems += check_report("distributed", args.distributed,
                                 args.min_distributed)
    if args.kernel:
        problems += check_kernel_report(args.kernel, args.min_kernel,
                                        args.min_compiled,
                                        args.min_compiled_vs_numpy)
    if args.faults:
        problems += check_faults_report(args.faults,
                                        args.max_checkpoint_overhead)
    if args.obs:
        problems += check_obs_report(args.obs, args.max_obs_overhead)
    if args.online:
        problems += check_online_report(args.online, args.max_online_p99_ms,
                                        args.max_online_regret)
    for p in problems:
        print(f"SPEEDUP GATE FAILED: {p}", file=sys.stderr)
    if not problems:
        print("all speedup gates passed")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
