#!/usr/bin/env python
"""CI schema drift check: every committed ``BENCH_*.json`` report must
carry the ``schema_version`` that ``benchmarks/README.md`` documents.

The README declares one heading per report kind::

    ## `BENCH_scaling.json` schema (`schema_version: 2`)

and every report emits a top-level ``schema_version``.  A bench that
bumps its schema without updating the documentation (or vice versa)
fails here, before a downstream consumer discovers the drift.  Reports
present in the README but absent on disk are fine (not every CI leg
regenerates every report); reports on disk but missing from the README
are not.  Usage::

    python scripts/check_bench_schemas.py [BENCH_a.json BENCH_b.json ...]

With no arguments, checks every ``BENCH_*.json`` in the repository root.
"""

from __future__ import annotations

import json
import re
import sys
from pathlib import Path

_REPO = Path(__file__).resolve().parent.parent
_README = _REPO / "benchmarks" / "README.md"
_HEADING = re.compile(
    r"^##\s+`(BENCH_\w+\.json)`\s+schema\s+\(`schema_version:\s*(\d+)`\)",
    re.MULTILINE)


def documented_versions(readme: Path = _README) -> dict[str, int]:
    """``{report filename: declared schema_version}`` parsed from the
    README's schema headings."""
    return {name: int(version)
            for name, version in _HEADING.findall(readme.read_text())}


def check(paths: list[Path], documented: dict[str, int]) -> list[str]:
    problems = []
    for path in paths:
        try:
            report = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            problems.append(f"{path.name}: unreadable report: {exc}")
            continue
        actual = report.get("schema_version")
        expected = documented.get(path.name)
        if expected is None:
            problems.append(
                f"{path.name}: not documented in benchmarks/README.md "
                f"(add a '## `{path.name}` schema (`schema_version: "
                f"{actual}`)' section)")
        elif actual != expected:
            problems.append(
                f"{path.name}: schema_version {actual!r} != {expected} "
                f"documented in benchmarks/README.md")
        else:
            print(f"{path.name}: schema_version {actual} matches README")
    return problems


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    paths = ([Path(a) for a in args] if args
             else sorted(_REPO.glob("BENCH_*.json")))
    if not paths:
        print("no BENCH_*.json reports to check")
        return 0
    documented = documented_versions()
    if not documented:
        print("error: no schema headings found in benchmarks/README.md",
              file=sys.stderr)
        return 1
    problems = check(paths, documented)
    for p in problems:
        print(f"BENCH SCHEMA DRIFT: {p}", file=sys.stderr)
    if not problems:
        print("all bench report schemas match benchmarks/README.md")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
