"""Shared fixtures and hypothesis configuration."""

from __future__ import annotations

import hypothesis
import pytest

from repro import Platform
from repro.dags import dex, random_dag

# Keep property tests fast and deterministic in CI while staying meaningful.
hypothesis.settings.register_profile(
    "repro",
    max_examples=30,
    deadline=None,
    derandomize=True,
)
hypothesis.settings.load_profile("repro")


@pytest.fixture
def dex_graph():
    """The paper's 4-task worked example (Figure 2)."""
    return dex()


@pytest.fixture
def one_one_platform():
    """One blue + one red processor, unbounded memories (Figures 3-4 setup)."""
    return Platform(n_blue=1, n_red=1)


@pytest.fixture
def bounded_platform():
    """The M=5 configuration under which schedule s1 is optimal."""
    return Platform(n_blue=1, n_red=1, mem_blue=5, mem_red=5)


@pytest.fixture(params=[0, 1, 2])
def small_random_graph(request):
    """A few seeded 20-task DAGGEN graphs (SmallRandSet family)."""
    return random_dag(size=20, width=0.3, density=0.5, jumps=5, rng=request.param)
