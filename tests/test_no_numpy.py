"""numpy is an *optional* dependency: with it missing the package must
import, every heuristic must run on the scalar kernel, and numpy-only
features must fail with pointed errors.  Run in a subprocess whose meta_path
blocks numpy, so the test is faithful to a real numpy-less interpreter."""

import json
import os
import subprocess
import sys

import pytest

_SCRIPT = r"""
import sys


class _Block:
    def find_module(self, name, path=None):  # pragma: no cover - py<3.12
        return None

    def find_spec(self, name, path=None, target=None):
        if name == "numpy" or name.startswith("numpy."):
            raise ModuleNotFoundError("No module named 'numpy' (blocked)")
        return None


sys.meta_path.insert(0, _Block())
for mod in list(sys.modules):
    if mod == "numpy" or mod.startswith("numpy."):
        del sys.modules[mod]

import json
import repro
from repro import Platform
from repro.core.graph import TaskGraph
from repro.scheduling.kernel import available_backends, resolve_backend
from repro.scheduling.heft import heft
from repro.scheduling.memheft import memheft
from repro.scheduling.memminmin import memminmin
from repro.scheduling.sufferage import memsufferage

out = {}
out["has_numpy"] = __import__("repro._util", fromlist=["x"]).HAS_NUMPY
out["backends"] = list(available_backends())
out["auto"] = resolve_backend(None).name

g = TaskGraph("fallback")
g.add_task("a", w_blue=2.0, w_red=3.0)
g.add_task("b", w_blue=1.0, w_red=1.0)
g.add_task("c", w_blue=3.0, w_red=2.0)
g.add_dependency("a", "b", size=1.0, comm=2.0)
g.add_dependency("a", "c", size=2.0, comm=1.0)
platform = Platform(2, 1, 50.0, 50.0)

makespans = {}
for name, fn in (("heft", heft), ("memheft", memheft),
                 ("memminmin", memminmin), ("memsufferage", memsufferage)):
    schedule = fn(g, platform)
    repro.validate_schedule(g, platform, schedule)
    makespans[name] = schedule.makespan
out["makespans"] = makespans

try:
    resolve_backend("numpy")
    out["numpy_backend_error"] = None
except ModuleNotFoundError as exc:
    out["numpy_backend_error"] = str(exc)

try:
    from repro.core.bounds import split_work_lower_bound
    split_work_lower_bound(g, Platform(1, 1))
    out["lp_bound_error"] = None
except ImportError as exc:
    out["lp_bound_error"] = str(exc)

# lower_bound itself degrades gracefully: LP term skipped, still valid.
out["lower_bound"] = repro.lower_bound(g, Platform(1, 1))

print(json.dumps(out))
"""


@pytest.fixture(scope="module")
def no_numpy_result():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__), "..", "src")
    env.pop("MEMSCHED_KERNEL", None)
    proc = subprocess.run([sys.executable, "-c", _SCRIPT],
                          capture_output=True, text=True, env=env,
                          timeout=120)
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


def test_package_imports_without_numpy(no_numpy_result):
    assert no_numpy_result["has_numpy"] is False


def test_only_scalar_backend_available(no_numpy_result):
    assert no_numpy_result["backends"] == ["scalar"]
    assert no_numpy_result["auto"] == "scalar"


def test_heuristics_run_on_scalar_fallback(no_numpy_result):
    ms = no_numpy_result["makespans"]
    assert set(ms) == {"heft", "memheft", "memminmin", "memsufferage"}
    assert all(v > 0 for v in ms.values())


def test_scalar_fallback_matches_numpy_interpreter(no_numpy_result):
    """The numpy-less subprocess must produce the *same* makespans as this
    interpreter (which has numpy): the fallback is bit-identical, not just
    functional."""
    from repro import Platform
    from repro.core.graph import TaskGraph
    from repro.scheduling.heft import heft
    from repro.scheduling.memheft import memheft
    from repro.scheduling.memminmin import memminmin
    from repro.scheduling.sufferage import memsufferage

    g = TaskGraph("fallback")
    g.add_task("a", w_blue=2.0, w_red=3.0)
    g.add_task("b", w_blue=1.0, w_red=1.0)
    g.add_task("c", w_blue=3.0, w_red=2.0)
    g.add_dependency("a", "b", size=1.0, comm=2.0)
    g.add_dependency("a", "c", size=2.0, comm=1.0)
    platform = Platform(2, 1, 50.0, 50.0)
    here = {"heft": heft(g, platform).makespan,
            "memheft": memheft(g, platform).makespan,
            "memminmin": memminmin(g, platform).makespan,
            "memsufferage": memsufferage(g, platform).makespan}
    assert no_numpy_result["makespans"] == here


def test_numpy_backend_raises_helpfully(no_numpy_result):
    msg = no_numpy_result["numpy_backend_error"]
    assert msg is not None
    assert "numpy" in msg.lower()


def test_lp_bound_raises_importerror(no_numpy_result):
    msg = no_numpy_result["lp_bound_error"]
    assert msg is not None
    assert "numpy" in msg


def test_lower_bound_degrades_to_valid_bound(no_numpy_result):
    """Without the LP term ``lower_bound`` still returns a positive bound
    never exceeding the full (LP-included) bound this interpreter computes."""
    from repro import Platform, lower_bound
    from repro.core.graph import TaskGraph

    g = TaskGraph("fallback")
    g.add_task("a", w_blue=2.0, w_red=3.0)
    g.add_task("b", w_blue=1.0, w_red=1.0)
    g.add_task("c", w_blue=3.0, w_red=2.0)
    g.add_dependency("a", "b", size=1.0, comm=2.0)
    g.add_dependency("a", "c", size=2.0, comm=1.0)
    full = lower_bound(g, Platform(1, 1))
    degraded = no_numpy_result["lower_bound"]
    assert 0 < degraded <= full + 1e-9
