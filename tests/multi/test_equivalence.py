"""The k = 2 special case must reproduce the dual-memory implementation
decision-for-decision (same memories, same start times, same makespan)."""

import pytest

from repro import Memory, Platform, memheft, memminmin
from repro.dags import dex, random_dag
from repro.multi import (
    MultiPlatform,
    MultiTaskGraph,
    multi_memheft,
    multi_memminmin,
    multi_upward_ranks,
    validate_multi_schedule,
)
from repro.scheduling import upward_ranks
from repro.scheduling.state import InfeasibleScheduleError
from repro.multi import MultiInfeasibleError

CLS_OF = {Memory.BLUE: 0, Memory.RED: 1}


def lift(platform: Platform) -> MultiPlatform:
    return MultiPlatform([platform.n_blue, platform.n_red],
                         [platform.mem_blue, platform.mem_red])


@pytest.mark.parametrize("seed", range(4))
@pytest.mark.parametrize("pair", [
    (memheft, multi_memheft),
    (memminmin, multi_memminmin),
])
def test_unbounded_decisions_identical(seed, pair):
    dual_fn, multi_fn = pair
    g = random_dag(size=20, rng=seed)
    plat = Platform(2, 1)
    dual = dual_fn(g, plat)
    multi = multi_fn(MultiTaskGraph.from_dual(g), lift(plat))
    assert multi.makespan == pytest.approx(dual.makespan)
    for t in g.tasks():
        dp, mp = dual.placement(t), multi.placement(t)
        assert CLS_OF[dp.memory] == mp.cls
        assert mp.start == pytest.approx(dp.start)
        assert mp.proc == dp.proc


@pytest.mark.parametrize("bound", [5, 4])
def test_bounded_dex_identical(bound):
    g = dex()
    plat = Platform(1, 1, bound, bound)
    dual = memheft(g, plat)
    multi = multi_memheft(MultiTaskGraph.from_dual(g), lift(plat))
    assert multi.makespan == pytest.approx(dual.makespan)
    peaks = validate_multi_schedule(MultiTaskGraph.from_dual(g), lift(plat),
                                    multi)
    assert peaks[0] == pytest.approx(dual.meta["peak_blue"])
    assert peaks[1] == pytest.approx(dual.meta["peak_red"])


def test_infeasibility_agrees():
    g = dex()
    plat = Platform(1, 1, 3, 3)
    with pytest.raises(InfeasibleScheduleError):
        memheft(g, plat)
    with pytest.raises(MultiInfeasibleError):
        multi_memheft(MultiTaskGraph.from_dual(g), lift(plat))


def test_ranks_reduce_to_paper_formula_at_k2():
    g = dex()
    dual_ranks = upward_ranks(g)
    multi_ranks = multi_upward_ranks(MultiTaskGraph.from_dual(g))
    for t in g.tasks():
        assert multi_ranks[t] == pytest.approx(dual_ranks[t])


@pytest.mark.parametrize("seed", range(3))
def test_bounded_sweep_identical(seed):
    g = random_dag(size=15, rng=seed)
    mg = MultiTaskGraph.from_dual(g)
    from repro.scheduling.heft import heft
    base = heft(g, Platform(1, 1))
    ref = max(base.meta["peak_blue"], base.meta["peak_red"])
    for alpha in (0.5, 0.75, 1.0):
        plat = Platform(1, 1).with_uniform_bound(alpha * ref)
        try:
            dual = memminmin(g, plat)
        except InfeasibleScheduleError:
            with pytest.raises(MultiInfeasibleError):
                multi_memminmin(mg, lift(plat))
            continue
        multi = multi_memminmin(mg, lift(plat))
        assert multi.makespan == pytest.approx(dual.makespan)
