"""Genuinely multi-memory behaviour (k >= 3): CPU + two accelerators."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro._util import as_rng
from repro.multi import (
    MultiInfeasibleError,
    MultiPlatform,
    MultiTaskGraph,
    multi_memheft,
    multi_memminmin,
    validate_multi_schedule,
)


def tri_chain(n=6, *, size=2.0, comm=1.0):
    """Chain where class 2 (say a GPU) is fastest: times (9, 3, 1)."""
    g = MultiTaskGraph(3, name="tri-chain")
    for k in range(n):
        g.add_task(k, (9, 3, 1))
    for k in range(n - 1):
        g.add_dependency(k, k + 1, size=size, comm=comm)
    return g


def random_tri_graph(n, seed):
    gen = as_rng(seed)
    g = MultiTaskGraph(3, name=f"tri{n}")
    for k in range(n):
        g.add_task(k, tuple(float(gen.integers(1, 20)) for _ in range(3)))
    for i in range(n):
        for j in range(i + 1, n):
            if gen.random() < 0.35:
                g.add_dependency(i, j, size=float(gen.integers(1, 8)),
                                 comm=float(gen.integers(1, 5)))
    return g


class TestTriMemoryBasics:
    def test_chain_lands_on_fastest_class(self):
        g = tri_chain()
        plat = MultiPlatform([1, 1, 1])
        s = multi_memheft(g, plat)
        assert all(p.cls == 2 for p in s.placements())
        assert s.makespan == 6  # six tasks at speed 1, no transfers

    def test_capacity_on_fast_class_forces_spill(self):
        g = tri_chain()
        # Class 2 cannot even hold one 4-unit working set (in+out files).
        plat = MultiPlatform([1, 1, 1], [math.inf, math.inf, 3])
        s = multi_memheft(g, plat)
        validate_multi_schedule(g, plat, s)
        assert any(p.cls != 2 for p in s.placements())

    def test_all_classes_infeasible_raises(self):
        g = tri_chain()
        plat = MultiPlatform([1, 1, 1], [3, 3, 3])
        with pytest.raises(MultiInfeasibleError):
            multi_memheft(g, plat)
        with pytest.raises(MultiInfeasibleError):
            multi_memminmin(g, plat)

    def test_empty_class_never_used(self):
        g = tri_chain()
        plat = MultiPlatform([1, 1, 0])
        s = multi_memminmin(g, plat)
        validate_multi_schedule(g, plat, s)
        assert all(p.cls != 2 for p in s.placements())

    def test_peaks_meta_matches_validator(self):
        g = random_tri_graph(12, seed=3)
        plat = MultiPlatform([2, 1, 1])
        s = multi_memheft(g, plat)
        peaks = validate_multi_schedule(g, plat, s)
        assert peaks == pytest.approx(s.meta["peaks"])


@pytest.mark.parametrize("algo", [multi_memheft, multi_memminmin])
@pytest.mark.parametrize("seed", range(3))
def test_random_tri_graphs_schedule_validly(algo, seed):
    g = random_tri_graph(15, seed)
    plat = MultiPlatform([2, 1, 1])
    s = algo(g, plat)
    validate_multi_schedule(g, plat, s)
    assert len(s) == g.n_tasks


@given(st.integers(min_value=1, max_value=12),
       st.integers(min_value=0, max_value=10**6),
       st.floats(min_value=0.3, max_value=1.0))
def test_bounded_tri_schedules_respect_capacity(n, seed, alpha):
    g = random_tri_graph(n, seed)
    plat = MultiPlatform([1, 1, 1])
    base = multi_memheft(g, plat)
    ref = max(base.meta["peaks"]) or 1.0
    bounded = plat.with_uniform_capacity(alpha * ref)
    try:
        s = multi_memheft(g, bounded)
    except MultiInfeasibleError:
        return
    peaks = validate_multi_schedule(g, bounded, s)
    assert all(p <= alpha * ref + 1e-6 for p in peaks)
