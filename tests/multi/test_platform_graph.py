"""k-memory platform and graph models."""

import math

import pytest

from repro.dags import dex
from repro.multi import MultiPlatform, MultiTaskGraph


class TestMultiPlatform:
    def test_indexing_three_classes(self):
        p = MultiPlatform([2, 1, 3])
        assert p.n_classes == 3
        assert p.total_procs == 6
        assert list(p.procs(0)) == [0, 1]
        assert list(p.procs(1)) == [2]
        assert list(p.procs(2)) == [3, 4, 5]
        assert [p.class_of(k) for k in range(6)] == [0, 0, 1, 2, 2, 2]

    def test_default_capacities_unbounded(self):
        p = MultiPlatform([1, 1, 1])
        assert not p.is_memory_bounded
        assert all(math.isinf(c) for c in p.capacities)

    def test_with_capacities(self):
        p = MultiPlatform([1, 1], [5, 7])
        assert p.capacity(0) == 5 and p.capacity(1) == 7
        assert p.with_uniform_capacity(3).capacities == (3, 3)
        assert not p.unbounded().is_memory_bounded

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiPlatform([])
        with pytest.raises(ValueError):
            MultiPlatform([0, 0])
        with pytest.raises(ValueError):
            MultiPlatform([1], [5, 6])
        with pytest.raises(ValueError):
            MultiPlatform([1], [-1])
        with pytest.raises(ValueError):
            MultiPlatform([1]).class_of(5)

    def test_empty_class_allowed(self):
        p = MultiPlatform([0, 2])
        assert list(p.procs(0)) == []


class TestMultiTaskGraph:
    def test_times_per_class(self):
        g = MultiTaskGraph(3)
        g.add_task("a", (6, 3, 1))
        assert g.w("a", 0) == 6 and g.w("a", 2) == 1
        assert g.w_min("a") == 1
        assert g.w_mean("a") == pytest.approx(10 / 3)

    def test_wrong_arity_rejected(self):
        g = MultiTaskGraph(2)
        with pytest.raises(ValueError, match="expected 2 times"):
            g.add_task("a", (1, 2, 3))

    def test_edges_and_mem_req(self):
        g = MultiTaskGraph(2)
        g.add_task("a", (1, 1))
        g.add_task("b", (1, 1))
        g.add_dependency("a", "b", size=4, comm=2)
        assert g.mem_req("a") == 4
        assert g.mem_req("b") == 4
        assert g.comm("a", "b") == 2

    def test_cycle_detected(self):
        g = MultiTaskGraph(2)
        for n in "ab":
            g.add_task(n, (1, 1))
        g.add_dependency("a", "b")
        g.add_dependency("b", "a")
        with pytest.raises(ValueError, match="cycle"):
            g.validate()

    def test_from_dual_lifts_dex(self):
        g = MultiTaskGraph.from_dual(dex())
        assert g.n_classes == 2
        assert g.n_tasks == 4
        assert g.w("T1", 0) == 3 and g.w("T1", 1) == 1
        assert g.size("T1", "T3") == 2
