"""Scale stress (marked slow): the heuristics must handle paper-scale
inputs in pure Python within sane wall-clock budgets."""

import time

import pytest

from repro import Platform, memheft, validate_schedule
from repro.dags import lu_dag, random_dag


@pytest.mark.slow
def test_memheft_handles_500_task_graph():
    g = random_dag(size=500, rng=2014,
                   w_range=(1, 100), c_range=(1, 100), f_range=(1, 100))
    plat = Platform(1, 1)
    t0 = time.perf_counter()
    s = memheft(g, plat)
    elapsed = time.perf_counter() - t0
    assert len(s) == 500
    assert elapsed < 60, f"memheft took {elapsed:.1f}s on 500 tasks"
    validate_schedule(g, plat, s)


@pytest.mark.slow
def test_memheft_handles_13x13_lu():
    g = lu_dag(13)  # 2107 tasks, the paper's Figure 14 instance
    plat = Platform(12, 3)
    t0 = time.perf_counter()
    s = memheft(g, plat)
    elapsed = time.perf_counter() - t0
    assert len(s) == g.n_tasks
    assert elapsed < 120, f"memheft took {elapsed:.1f}s on LU 13x13"
    validate_schedule(g, plat, s)
