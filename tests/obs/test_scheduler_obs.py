"""Scheduler instrumentation: observed runs commit bit-identical
schedules, populate the run/phase/selector metrics, trace with
deterministic structure, and record kernel batch accounting."""

import pytest

from repro import Platform, memheft, memminmin, memsufferage, obs
from repro.dags import dex, random_dag
from repro.obs.report import load_trace
from repro.scheduling.instrument import PHASE_SAMPLE
from repro.scheduling.kernel import flush_batch_stats, resolve_backend
from repro.scheduling.state import InfeasibleScheduleError, SchedulerState

ALGOS = {"memheft": memheft, "memminmin": memminmin,
         "memsufferage": memsufferage}


def _schedule_key(schedule):
    return (sorted(schedule.placements(),
                   key=lambda p: (p.task, p.start)),
            schedule.meta)


class TestParity:
    @pytest.mark.parametrize("name", sorted(ALGOS))
    def test_observed_schedule_bit_identical(self, name):
        graph = random_dag(size=30, rng=1)
        platform = Platform(2, 2)
        plain = ALGOS[name](graph, platform)
        with obs.observing():
            observed = ALGOS[name](graph, platform)
        assert _schedule_key(plain) == _schedule_key(observed)

    def test_traced_schedule_bit_identical(self, tmp_path):
        graph = dex()
        platform = Platform(1, 1)
        plain = memheft(graph, platform)
        with obs.observing(tmp_path / "t.jsonl",
                           trace_ident=("test", "parity")):
            traced = memheft(graph, platform)
        assert _schedule_key(plain) == _schedule_key(traced)

    def test_infeasible_raises_identically(self):
        graph = random_dag(size=20, rng=0)
        tight = Platform(1, 1, 1e-9, 1e-9)
        with pytest.raises(InfeasibleScheduleError):
            memheft(graph, tight)
        with obs.observing():
            with pytest.raises(InfeasibleScheduleError):
                memheft(graph, tight)


class TestRunMetrics:
    def test_run_counters_and_phases(self):
        graph = random_dag(size=40, rng=2)
        assert graph.n_tasks > PHASE_SAMPLE   # sampling engages
        with obs.observing() as state:
            memheft(graph, Platform(2, 2))
        snap = state.registry.snapshot()
        alg = (("algorithm", "memheft"),)
        assert snap[("memsched_schedule_runs_total", alg)] == 1
        assert snap[("memsched_commits_total", alg)] == graph.n_tasks
        assert snap[("memsched_schedules_finalized_total", alg)] == 1
        select_s = snap[("memsched_phase_seconds_total",
                         (("algorithm", "memheft"), ("phase", "select")))]
        commit_s = snap[("memsched_phase_seconds_total",
                         (("algorithm", "memheft"), ("phase", "commit")))]
        rank_s = snap[("memsched_phase_seconds_total",
                       (("algorithm", "memheft"), ("phase", "rank")))]
        assert select_s > 0 and commit_s > 0 and rank_s > 0
        hist = snap[("memsched_schedule_tasks", alg)]
        assert hist["count"] == 1

    def test_selector_eval_counters(self):
        graph = random_dag(size=30, rng=3)
        with obs.observing() as state:
            memminmin(graph, Platform(2, 2))
        evals = {labels: value for (name, labels), value
                 in state.registry.snapshot().items()
                 if name == "memsched_selector_evals_total"}
        assert evals, "selector stats should fold into the registry"
        assert all(value >= 0 for value in evals.values())

    def test_metrics_accumulate_across_runs(self):
        graph = dex()
        with obs.observing() as state:
            memheft(graph, Platform(1, 1))
            memheft(graph, Platform(1, 1))
        snap = state.registry.snapshot()
        alg = (("algorithm", "memheft"),)
        assert snap[("memsched_schedule_runs_total", alg)] == 2
        assert snap[("memsched_commits_total", alg)] == 2 * graph.n_tasks


class TestTraceStructure:
    @staticmethod
    def _structure(path):
        return [{key: value for key, value in row.items()
                 if key not in ("t0", "dur")}
                for row in load_trace(path)]

    def test_two_runs_same_structure(self, tmp_path):
        graph = random_dag(size=25, rng=4)
        structures = []
        for run in ("a", "b"):
            path = tmp_path / f"{run}.jsonl"
            with obs.observing(path, trace_ident=("test", "structure")):
                memheft(graph, Platform(2, 2))
            structures.append(self._structure(path))
        assert structures[0] == structures[1]

    def test_phase_spans_present(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with obs.observing(path, trace_ident=("test", "phases")):
            memheft(dex(), Platform(1, 1))
        names = [row["name"] for row in load_trace(path)]
        for expected in ("memheft", "rank", "select", "commit"):
            assert expected in names
        # scalar per-task evaluation never ran a kernel batch, so no
        # est span — its presence is a pure function of the workload
        assert "est" not in names

    def test_span_parents_resolve(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with obs.observing(path, trace_ident=("test", "parents")):
            memsufferage(dex(), Platform(1, 1))
        events = load_trace(path)
        ids = {row["span"] for row in events}
        for row in events:
            parent = row.get("parent")
            assert parent is None or parent in ids


class TestKernelBatches:
    def test_scalar_batch_entry_records(self):
        graph = dex()
        kernel = resolve_backend("scalar")
        with obs.observing() as st:
            state = SchedulerState(graph, Platform(1, 1))
            ready = list(graph.roots())
            kernel.evaluate_class_batch(state, ready, state.memories[0])
            seconds, n_batches = flush_batch_stats(st)
        assert n_batches == 1
        assert seconds >= 0
        snap = st.registry.snapshot()
        labels = (("backend", "scalar"), ("route", "scalar"))
        assert snap[("memsched_kernel_batches_total", labels)] == 1
        hist = snap[("memsched_kernel_batch_size", labels)]
        assert hist["count"] == 1 and hist["sum"] == len(ready)

    def test_flush_idempotent_when_empty(self):
        with obs.observing() as st:
            assert flush_batch_stats(st) == (0.0, 0)
