"""Span tracing: deterministic ids, per-thread nesting, buffered JSONL
output, and torn-tail tolerance."""

import json
import threading

import pytest

from repro import obs
from repro.obs.report import load_trace
from repro.obs.tracing import Tracer, det_id, trace_id_for


class TestDeterministicIds:
    def test_det_id_pure_function(self):
        assert det_id("a", 1) == det_id("a", 1)
        assert det_id("a", 1) != det_id("a", 2)
        assert len(det_id("x")) == 16
        int(det_id("x"), 16)   # hex

    def test_trace_id_independent_of_path(self, tmp_path):
        a = Tracer(tmp_path / "a.jsonl", trace_id=trace_id_for("run", 1))
        b = Tracer(tmp_path / "b.jsonl", trace_id=trace_id_for("run", 1))
        try:
            assert a.trace_id == b.trace_id
        finally:
            a.close()
            b.close()

    def test_child_id_sibling_counter(self, tmp_path):
        tracer = Tracer(tmp_path / "t.jsonl")
        try:
            first = tracer.child_id(None, "phase")
            second = tracer.child_id(None, "phase")
            assert first != second
            # a natural key bypasses the counter entirely
            keyed = tracer.child_id(None, "cell", key=7)
            assert keyed == det_id(tracer.trace_id, None, "cell", 7)
        finally:
            tracer.close()

    def test_same_structure_same_ids_across_tracers(self, tmp_path):
        rows = []
        for run in ("a", "b"):
            path = tmp_path / f"{run}.jsonl"
            tracer = Tracer(path, trace_id=trace_id_for("det"))
            with tracer.span("outer", {"k": 1}):
                with tracer.span("inner"):
                    pass
            tracer.close()
            rows.append([{key: value for key, value in row.items()
                          if key not in ("t0", "dur")}
                         for row in load_trace(path)])
        assert rows[0] == rows[1]


class TestNesting:
    def test_current_tracks_innermost(self, tmp_path):
        tracer = Tracer(tmp_path / "t.jsonl")
        assert tracer.current() is None
        with tracer.span("outer") as outer:
            assert tracer.current() == outer.span_id
            with tracer.span("inner") as inner:
                assert tracer.current() == inner.span_id
                assert inner.parent_id == outer.span_id
            assert tracer.current() == outer.span_id
        assert tracer.current() is None
        tracer.close()

    def test_explicit_parent_crosses_threads(self, tmp_path):
        tracer = Tracer(tmp_path / "t.jsonl")
        seen = {}

        def worker(parent_id):
            # a fresh thread has no stack; the parent is wired explicitly
            assert tracer.current() is None
            with tracer.span("remote", parent=parent_id) as span:
                seen["parent"] = span.parent_id

        with tracer.span("root") as root:
            thread = threading.Thread(target=worker,
                                      args=(root.span_id,))
            thread.start()
            thread.join()
        tracer.close()
        assert seen["parent"] == root.span_id

    def test_error_recorded_and_reraised(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(path)
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        tracer.close()
        [row] = load_trace(path)
        assert row["attrs"]["error"] == "RuntimeError"


class TestBufferedOutput:
    def test_rows_land_on_close(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(path)
        with tracer.span("only"):
            pass
        # serialisation is deferred: nothing on disk until flush/close
        assert path.read_text() == ""
        tracer.close()
        [row] = load_trace(path)
        assert row["name"] == "only"
        assert row["dur"] >= 0 and row["t0"] >= 0

    def test_flush_drains_without_closing(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(path)
        with tracer.span("a"):
            pass
        tracer.flush()
        assert len(load_trace(path)) == 1
        with tracer.span("b"):
            pass
        tracer.close()
        assert len(load_trace(path)) == 2

    def test_write_batch_bounds_buffering(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(path)
        for i in range(Tracer.WRITE_BATCH):
            tracer.emit("e", span_id=tracer.child_id(None, "e", key=i))
        # the 512th emit crossed the batch threshold and wrote
        assert len(load_trace(path)) == Tracer.WRITE_BATCH
        tracer.close()

    def test_emit_after_close_is_dropped(self, tmp_path):
        tracer = Tracer(tmp_path / "t.jsonl")
        tracer.close()
        tracer.emit("late", span_id="feedbeeffeedbeef")
        tracer.close()   # idempotent
        assert load_trace(tmp_path / "t.jsonl") == []

    def test_torn_tail_tolerated(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(path)
        for i in range(3):
            tracer.emit("e", span_id=tracer.child_id(None, "e", key=i))
        tracer.close()
        # simulate a kill mid-write: truncate the last line
        torn = path.read_text()[:-9]
        path.write_text(torn)
        assert len(load_trace(path)) == 2

    def test_rows_sorted_keys_stable_json(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(path)
        tracer.emit("e", span_id="00000000000000ab", parent_id="cd",
                    t0=1.5, dur=0.25, attrs={"b": 2, "a": 1})
        tracer.close()
        line = path.read_text().strip()
        assert line == json.dumps(json.loads(line), sort_keys=True)
