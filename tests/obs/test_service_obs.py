"""Live service observability: a traced two-host distributed sweep
reconstructs every cell end-to-end, ``/metrics`` accounts every
request, and ``/healthz`` advertises the observability state."""

import pytest

from repro import Platform, obs
from repro.dags import small_rand_set
from repro.experiments import normalized_sweep, remote_hosts
from repro.obs.report import cell_indices, load_trace, summarize
from repro.service import ServiceApp, ServiceClient, ThreadedServer
from repro.service.app import PROTOCOL_VERSION


@pytest.fixture()
def two_hosts():
    with ThreadedServer(ServiceApp(workers=1)) as a, \
            ThreadedServer(ServiceApp(workers=1)) as b:
        yield [f"{a.host}:{a.port}", f"{b.host}:{b.port}"]


def _sweep(graphs):
    return normalized_sweep(graphs, Platform(1, 1), alphas=(0.5, 0.75, 1.0))


class TestTracedDistributedSweep:
    @pytest.fixture(scope="class")
    def graphs(self):
        return small_rand_set(n_graphs=3, size=14)

    def test_trace_reconstructs_every_cell(self, graphs, two_hosts,
                                           tmp_path):
        serial_trace = tmp_path / "serial.jsonl"
        dist_trace = tmp_path / "dist.jsonl"
        with obs.observing(serial_trace, trace_ident=("test", "sweep")):
            serial = _sweep(graphs)
        with obs.observing(dist_trace, trace_ident=("test", "sweep")):
            with remote_hosts(two_hosts):
                dist = _sweep(graphs)
        assert serial.cells == dist.cells

        serial_events = load_trace(serial_trace)
        dist_events = load_trace(dist_trace)
        covered = cell_indices(dist_events)
        assert covered   # the sweep really went through cell spans
        # end-to-end reconstruction: the distributed trace covers exactly
        # the cells the serial trace does, and no span is orphaned
        assert covered == cell_indices(serial_events)
        assert summarize(dist_events)["orphans"] == []

    def test_cells_parented_under_remote_requests(self, graphs,
                                                  two_hosts, tmp_path):
        path = tmp_path / "dist.jsonl"
        with obs.observing(path, trace_ident=("test", "parents")):
            with remote_hosts(two_hosts):
                _sweep(graphs)
        events = load_trace(path)
        requests = {row["span"] for row in events
                    if row["name"] == "remote_request"}
        cells = [row for row in events if row["name"] == "cell"]
        assert requests and cells
        assert all(row["parent"] in requests for row in cells)
        # coordinator-side re-emitted cell spans carry the worker timing
        assert all(row["dur"] >= 0 for row in cells)


def _parse_samples(text):
    """Minimal Prometheus text-format parse: {sample line -> value}."""
    samples = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name_part, value = line.rsplit(" ", 1)
        bare = name_part.split("{", 1)[0]
        assert bare and bare.replace("_", "").isalnum(), line
        samples[name_part] = float(value)
    return samples


class TestScrape:
    def test_metrics_accounts_every_request(self):
        n_requests = 5
        with obs.observing():
            with ThreadedServer(ServiceApp(workers=1)) as srv:
                client = ServiceClient(srv.host, srv.port)
                try:
                    for _ in range(n_requests):
                        client.healthz()
                    text = client.metrics()
                finally:
                    client.close()
        samples = _parse_samples(text)
        assert samples[
            'memsched_http_requests_total'
            '{endpoint="/healthz",status="200"}'] == n_requests
        # the synthesized operational counter sees them too (+1 for the
        # /metrics scrape itself)
        assert samples["memsched_requests_total"] == n_requests + 1

    def test_scrape_works_without_observability(self):
        # /metrics always answers: synthesized operational counters even
        # with the process-wide registry off
        with ThreadedServer(ServiceApp(workers=1)) as srv:
            client = ServiceClient(srv.host, srv.port)
            try:
                client.healthz()
                text = client.metrics()
            finally:
                client.close()
        samples = _parse_samples(text)
        assert samples["memsched_requests_total"] >= 1
        # the process-wide per-endpoint series needs obs; absent here
        assert not any(key.startswith("memsched_http_requests_total")
                       for key in samples)


class TestHealthz:
    def test_reports_observability_state(self):
        with ThreadedServer(ServiceApp(workers=1)) as srv:
            client = ServiceClient(srv.host, srv.port)
            try:
                off = client.healthz()
                with obs.observing():
                    on = client.healthz()
            finally:
                client.close()
        assert off["protocol"] == PROTOCOL_VERSION
        assert off["metrics_summary"]["observability"] is False
        assert on["metrics_summary"]["observability"] is True

    def test_metrics_summary_counts_requests(self):
        with ThreadedServer(ServiceApp(workers=1)) as srv:
            client = ServiceClient(srv.host, srv.port)
            try:
                client.healthz()
                health = client.healthz()
            finally:
                client.close()
        summary = health["metrics_summary"]
        assert summary["requests"] >= 2
        assert summary["cells_executed"] == 0
        assert summary["uptime_s"] >= 0
