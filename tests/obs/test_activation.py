"""Process-wide activation: environment gating, the ``observing``
scope, and the zero-overhead disabled path."""

import pytest

from repro import obs


@pytest.fixture()
def clean_obs_state(monkeypatch):
    """Save and restore the module-level activation state so these
    tests can poke env loading without leaking into the suite."""
    monkeypatch.delenv(obs.ENV_VAR, raising=False)
    saved = (obs._ACTIVE, obs._ENV_LOADED)
    yield
    obs._ACTIVE, obs._ENV_LOADED = saved


class TestActivation:
    def test_disabled_by_default(self, clean_obs_state):
        obs._ACTIVE, obs._ENV_LOADED = None, False
        assert obs.active() is None
        assert obs.trace_context() is None

    def test_env_enables_once_per_process(self, clean_obs_state,
                                          monkeypatch):
        monkeypatch.setenv(obs.ENV_VAR, "1")
        obs._ACTIVE, obs._ENV_LOADED = None, False
        state = obs.active()
        assert state is not None
        assert state.tracer is None
        # the env is read once: later changes don't re-arm
        monkeypatch.setenv(obs.ENV_VAR, "0")
        assert obs.active() is state

    @pytest.mark.parametrize("value", ["0", "false", "no", "off", ""])
    def test_falsey_env_values(self, clean_obs_state, monkeypatch, value):
        monkeypatch.setenv(obs.ENV_VAR, value)
        obs._ACTIVE, obs._ENV_LOADED = None, False
        assert obs.active() is None

    def test_enable_disable_roundtrip(self, clean_obs_state):
        state = obs.enable()
        assert obs.active() is state
        obs.disable()
        assert obs.active() is None

    def test_observing_scopes_and_restores(self, clean_obs_state):
        obs._ACTIVE, obs._ENV_LOADED = None, False
        with obs.observing() as state:
            assert obs.active() is state
            assert state.tracer is None
        assert obs._ACTIVE is None

    def test_observing_reuses_active_registry(self, clean_obs_state):
        outer = obs.enable()
        outer.registry.counter("carried_total").inc()
        with obs.observing() as inner:
            assert inner.registry is outer.registry
            inner.registry.counter("carried_total").inc()
        assert obs.active() is outer
        snap = outer.registry.snapshot()
        assert snap[("carried_total", ())] == 2

    def test_observing_attaches_deterministic_tracer(self, tmp_path,
                                                     clean_obs_state):
        path = tmp_path / "t.jsonl"
        with obs.observing(path, trace_ident=("cli", "run")) as state:
            assert state.tracer is not None
            assert state.tracer.trace_id == \
                obs.trace_id_for("cli", "run")
            assert obs.trace_context() == (state.tracer.trace_id, None)
        # exiting closed the tracer
        assert state.tracer._fh is None

    def test_state_has_handle_scratch(self, clean_obs_state):
        with obs.observing() as state:
            assert state.handles == {}


class TestDisabledPath:
    def test_span_is_null_singleton_when_off(self, clean_obs_state):
        obs._ACTIVE, obs._ENV_LOADED = None, True
        assert obs.span("anything") is obs.NULL_SPAN
        assert obs.span("other", k=1) is obs.NULL_SPAN
        with obs.span("nested") as inside:
            assert inside is None

    def test_span_without_tracer_is_null(self, clean_obs_state):
        with obs.observing():   # registry only, no tracer
            assert obs.span("x") is obs.NULL_SPAN
            assert obs.trace_context() is None
