"""Structured JSON logging: level thresholds, env resolution, stderr
row shape, and stdout purity (byte-identity contracts cover stdout)."""

import json

import pytest

from repro.obs import log


@pytest.fixture(autouse=True)
def restore_level():
    """Each test starts unresolved and leaves no threshold behind."""
    log.set_level(None)
    yield
    log.set_level(None)


def _last_row(capsys):
    captured = capsys.readouterr()
    assert captured.out == ""          # never stdout
    lines = [ln for ln in captured.err.splitlines() if ln]
    return json.loads(lines[-1]) if lines else None


class TestLevels:
    def test_set_level_returns_previous_name(self):
        assert log.set_level("warning") is None   # was unresolved
        assert log.set_level("debug") == "warning"
        assert log.set_level(None) == "debug"

    def test_unknown_level_rejected(self):
        with pytest.raises(KeyError):
            log.set_level("verbose")

    def test_threshold_filters(self, capsys):
        log.set_level("warning")
        log.info("quiet")
        assert _last_row(capsys) is None
        log.warning("loud")
        assert _last_row(capsys)["event"] == "loud"

    def test_default_is_info(self, capsys, monkeypatch):
        monkeypatch.delenv(log.ENV_VAR, raising=False)
        log.debug("hidden")
        assert _last_row(capsys) is None
        log.info("shown")
        assert _last_row(capsys)["event"] == "shown"

    def test_env_resolved_once(self, capsys, monkeypatch):
        monkeypatch.setenv(log.ENV_VAR, "error")
        log.warning("swallowed")
        assert _last_row(capsys) is None
        # the threshold is now resolved; changing the env does nothing
        monkeypatch.setenv(log.ENV_VAR, "debug")
        log.warning("still swallowed")
        assert _last_row(capsys) is None
        # set_level(None) re-arms env resolution
        log.set_level(None)
        log.warning("now shown")
        assert _last_row(capsys)["event"] == "now shown"

    def test_garbage_env_falls_back_to_info(self, capsys, monkeypatch):
        monkeypatch.setenv(log.ENV_VAR, "shouting")
        log.info("shown")
        assert _last_row(capsys)["event"] == "shown"


class TestRowShape:
    def test_row_fields_and_sorted_keys(self, capsys):
        log.set_level("info")
        log.info("cell_done", host="a:1", i=3)
        captured = capsys.readouterr()
        line = captured.err.strip().splitlines()[-1]
        row = json.loads(line)
        assert row["level"] == "info"
        assert row["event"] == "cell_done"
        assert row["host"] == "a:1" and row["i"] == 3
        assert isinstance(row["ts"], float)
        assert line == json.dumps(row, sort_keys=True)

    def test_non_json_values_stringified(self, capsys):
        log.set_level("info")
        log.error("failed", exc=ValueError("boom"))
        row = _last_row(capsys)
        assert row["exc"] == "boom"

    def test_level_helpers_tag_rows(self, capsys):
        log.set_level("debug")
        for helper, name in ((log.debug, "debug"), (log.info, "info"),
                             (log.warning, "warning"), (log.error, "error")):
            helper("evt")
            assert _last_row(capsys)["level"] == name
