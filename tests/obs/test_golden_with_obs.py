"""The golden-schedule pin must hold with ``MEMSCHED_OBS=1`` *and* a
span tracer attached: instrumentation reads the run, never steers it."""

import json
import math
from pathlib import Path

import pytest

from repro import Platform, memheft, memminmin, memsufferage, obs
from repro.dags import dex, random_dag
from repro.scheduling.state import InfeasibleScheduleError

GOLDEN = json.loads(
    (Path(__file__).parent.parent / "data"
     / "golden_schedules.json").read_text())

ALGOS = {"memheft": memheft, "memminmin": memminmin,
         "memsufferage": memsufferage}

GRAPHS = {
    "dex": dex,
    **{f"daggen30-s{seed}": (lambda s=seed: random_dag(size=30, rng=s))
       for seed in range(3)},
}


def _graph_for(case_name: str):
    base = case_name.rsplit("-", 1)[0]
    return GRAPHS[base]()


def _platform_for(case) -> Platform:
    n_blue, n_red, mem_blue, mem_red = case["platform"]
    return Platform(n_blue, n_red,
                    math.inf if mem_blue is None else mem_blue,
                    math.inf if mem_red is None else mem_red)


@pytest.mark.parametrize("case", GOLDEN["cases"],
                         ids=[f"{c['name']}-{c['algo']}"
                              for c in GOLDEN["cases"]])
def test_golden_schedules_bit_identical_under_observation(case, tmp_path,
                                                          monkeypatch):
    monkeypatch.setenv(obs.ENV_VAR, "1")
    graph = _graph_for(case["name"])
    platform = _platform_for(case)
    algo = ALGOS[case["algo"]]
    with obs.observing(tmp_path / "trace.jsonl",
                       trace_ident=("test", "golden")):
        if case["infeasible"]:
            with pytest.raises(InfeasibleScheduleError):
                algo(graph, platform)
            return
        schedule = algo(graph, platform)
    assert schedule.makespan == case["makespan"]
    for task_key, (proc, memory, start, finish) in \
            case["placements"].items():
        task = int(task_key) if task_key.isdigit() else task_key
        p = schedule.placement(task)
        assert (p.proc, p.memory.value, p.start, p.finish) == \
            (proc, memory, start, finish)
    assert schedule.meta["peak_blue"] == case["peaks"][0]
    assert schedule.meta["peak_red"] == case["peaks"][1]
