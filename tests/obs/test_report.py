"""Trace analysis: loader robustness, summary accounting, cell
coverage, and the ``memsched obs report`` rendering."""

from repro.obs.report import (
    cell_indices,
    format_report,
    load_trace,
    summarize,
)


def _row(span, name, **extra):
    return dict({"trace": "t" * 16, "span": span, "name": name}, **extra)


class TestLoadTrace:
    def test_skips_malformed_and_blank_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            '{"trace": "t", "span": "a", "name": "ok"}\n'
            "\n"
            "{not json at all\n"
            '["a", "list", "row"]\n'
            '{"span": "missing-name"}\n'
            '{"trace": "t", "span": "b", "name": "also-ok"}')
        events = load_trace(path)
        assert [row["name"] for row in events] == ["ok", "also-ok"]

    def test_empty_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("")
        assert load_trace(path) == []


class TestSummarize:
    def test_counts_roots_and_orphans(self):
        events = [
            _row("a", "sweep", t0=0.0, dur=2.0),
            _row("b", "cell", parent="a", t0=0.1, dur=0.5),
            _row("c", "cell", parent="a", t0=0.7, dur=1.0),
            _row("d", "cell", parent="missing", t0=1.8, dur=0.1),
        ]
        summary = summarize(events)
        assert summary["n_events"] == 4
        assert summary["n_traces"] == 1
        assert summary["n_roots"] == 1
        assert summary["orphans"] == ["d"]
        cell = summary["by_name"]["cell"]
        assert cell["count"] == 3
        assert cell["total_dur"] == 1.6
        assert cell["max_dur"] == 1.0

    def test_durationless_rows_tolerated(self):
        summary = summarize([_row("a", "open")])
        assert summary["by_name"]["open"] == {
            "count": 1, "total_dur": 0.0, "max_dur": 0.0}

    def test_empty(self):
        summary = summarize([])
        assert summary == {"n_events": 0, "n_traces": 0, "n_roots": 0,
                           "orphans": [], "by_name": {}}


class TestCellIndices:
    def test_collects_cell_span_indices(self):
        events = [
            _row("a", "sweep"),
            _row("b", "cell", attrs={"i": 0}),
            _row("c", "cell", attrs={"i": 2}),
            _row("d", "cell"),            # no attrs -> ignored
            _row("e", "select", attrs={"i": 9}),   # wrong name
        ]
        assert cell_indices(events) == {0, 2}

    def test_empty(self):
        assert cell_indices([]) == set()


class TestFormatReport:
    def test_renders_header_and_table(self):
        events = [
            _row("a", "sweep", t0=0.0, dur=2.0),
            _row("b", "cell", parent="a", t0=0.1, dur=0.5),
        ]
        text = format_report(summarize(events))
        assert "trace: 2 spans, 1 trace id(s), 1 root(s), 0 orphan(s)" \
            in text
        assert "cell" in text and "sweep" in text
        assert "orphan spans" not in text

    def test_orphans_listed(self):
        events = [_row("z", "cell", parent="gone", dur=0.1)]
        text = format_report(summarize(events))
        assert "orphan spans (parent never closed): z" in text
