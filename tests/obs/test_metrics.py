"""Registry semantics: get-or-create identity, kind conflicts,
histogram bucket edges and pre-aggregated merge, Prometheus exposition.
"""

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestRegistry:
    def test_counter_get_or_create_identity(self):
        registry = MetricsRegistry()
        a = registry.counter("requests_total", endpoint="/healthz")
        b = registry.counter("requests_total", endpoint="/healthz")
        assert a is b

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", a="1", b="2")
        b = registry.counter("x_total", b="2", a="1")
        assert a is b

    def test_distinct_labels_distinct_series(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", endpoint="/a")
        b = registry.counter("x_total", endpoint="/b")
        assert a is not b
        a.inc(3)
        assert b.value == 0

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x", anything="else")

    def test_counter_gauge_updates(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        gauge = registry.gauge("g")
        gauge.set(5)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 4

    def test_snapshot_shapes(self):
        registry = MetricsRegistry()
        registry.counter("c", k="v").inc(2)
        registry.histogram("h").observe(0.01)
        snap = registry.snapshot()
        assert snap[("c", (("k", "v"),))] == 2
        hist = snap[("h", ())]
        assert hist["count"] == 1 and hist["sum"] == 0.01
        assert len(hist["buckets"]) == len(DEFAULT_BUCKETS) + 1


class TestHistogram:
    def test_le_bound_is_inclusive(self):
        hist = Histogram(bounds=(1.0, 2.0))
        hist.observe(1.0)         # exactly on the bound -> le="1" bucket
        assert hist.counts == [1, 0, 0]
        hist.observe(1.0000001)
        assert hist.counts == [1, 1, 0]

    def test_inf_bucket_catches_overflow(self):
        hist = Histogram(bounds=(1.0,))
        hist.observe(100.0)
        assert hist.counts == [0, 1]
        assert hist.count == 1
        assert hist.sum == 100.0

    def test_bounds_must_strictly_increase(self):
        with pytest.raises(ValueError, match="strictly"):
            Histogram(bounds=(1.0, 1.0))
        with pytest.raises(ValueError, match="strictly"):
            Histogram(bounds=(2.0, 1.0))

    def test_merge_folds_preaggregated_counts(self):
        hist = Histogram(bounds=(1.0, 2.0))
        hist.observe(0.5)
        hist.merge([1, 2, 3], 10.0, 6)
        assert hist.counts == [2, 2, 3]
        assert hist.count == 7
        assert hist.sum == 10.5

    def test_merge_length_mismatch_raises(self):
        hist = Histogram(bounds=(1.0, 2.0))
        with pytest.raises(ValueError, match="bucket counts"):
            hist.merge([1, 2], 1.0, 3)   # needs 3 (bounds + +Inf)

    def test_size_buckets_default_available(self):
        registry = MetricsRegistry()
        hist = registry.histogram("sizes", buckets=SIZE_BUCKETS)
        hist.observe(48)
        i = list(SIZE_BUCKETS).index(48.0)
        assert hist.counts[i] == 1


class TestExposition:
    def test_render_golden(self):
        registry = MetricsRegistry()
        registry.counter("req_total", "Requests served.",
                         endpoint="/healthz").inc(3)
        registry.gauge("depth").set(2)
        registry.histogram("lat", buckets=(0.1, 1.0)).observe(0.5)
        assert registry.render() == (
            "# TYPE depth gauge\n"
            "depth 2\n"
            "# TYPE lat histogram\n"
            'lat_bucket{le="0.1"} 0\n'
            'lat_bucket{le="1"} 1\n'
            'lat_bucket{le="+Inf"} 1\n'
            "lat_sum 0.5\n"
            "lat_count 1\n"
            "# HELP req_total Requests served.\n"
            "# TYPE req_total counter\n"
            'req_total{endpoint="/healthz"} 3\n'
        )

    def test_render_escapes_label_values(self):
        registry = MetricsRegistry()
        registry.counter("c", path='say "hi"\nback\\slash').inc()
        text = registry.render()
        assert r'path="say \"hi\"\nback\\slash"' in text

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render() == ""

    def test_standalone_metrics_have_kinds(self):
        assert Counter.kind == "counter"
        assert Gauge.kind == "gauge"
        assert Histogram.kind == "histogram"
