"""CRC-framed journal lines and ``--cache-dir`` recovery: torn writes,
bit flips, duplicated ops, zero-byte files, legacy checksum-less
journals — a journal must never poison a restart, only shrink it."""

import json

from repro.io.json_io import journal_decode, journal_encode
from repro.service.app import ScheduleCache


class TestJournalFraming:
    def test_round_trip(self):
        row = {"op": "put", "digest": "d1", "body": "{\"x\": 1}"}
        line = journal_encode(row)
        assert journal_decode(line) == row

    def test_crc_rejects_bit_flip(self):
        line = journal_encode({"op": "put", "digest": "d1", "body": "abc"})
        flipped = line.replace("abc", "abd")
        assert journal_decode(flipped) is None

    def test_torn_line_rejected(self):
        line = journal_encode({"op": "cell", "k": "x", "r": [1, 2, 3]})
        assert journal_decode(line[: len(line) // 2]) is None

    def test_legacy_bare_rows_accepted(self):
        legacy = json.dumps({"op": "touch", "digest": "d9"})
        assert journal_decode(legacy) == {"op": "touch", "digest": "d9"}

    def test_non_dict_rejected(self):
        assert journal_decode("[1, 2, 3]") is None
        assert journal_decode("42") is None
        assert journal_decode("") is None
        assert journal_decode('{"crc": 1}') is None

    def test_wrong_crc_rejected(self):
        row = {"op": "done", "call": "c", "n": 3}
        bad = json.dumps({"crc": 12345, "row": row})
        assert journal_decode(bad) is None

    def test_float_bodies_round_trip_exactly(self):
        row = {"op": "cell", "k": "k", "r": [0.1, 1e-17, 2.0 ** 53]}
        assert journal_decode(journal_encode(row)) == row


def _put_some(cache_dir, items):
    cache = ScheduleCache(8, cache_dir=str(cache_dir))
    for digest, body in items:
        cache.put(digest, body)
    cache.close()


class TestCacheDirRecovery:
    def test_new_journal_is_crc_framed_and_replays(self, tmp_path):
        _put_some(tmp_path, [("d1", b"one"), ("d2", b"two")])
        journal = tmp_path / "cache.jsonl"
        for line in journal.read_text().splitlines():
            assert "crc" in json.loads(line)
        cache = ScheduleCache(8, cache_dir=str(tmp_path))
        assert cache.get("d1") == b"one"
        assert cache.get("d2") == b"two"
        cache.close()

    def test_mid_line_truncation_drops_only_that_entry(self, tmp_path):
        _put_some(tmp_path, [("d1", b"one"), ("d2", b"two")])
        journal = tmp_path / "cache.jsonl"
        lines = journal.read_text().splitlines(keepends=True)
        journal.write_text(lines[0] + lines[1][: len(lines[1]) // 2])
        cache = ScheduleCache(8, cache_dir=str(tmp_path))
        assert cache.get("d1") == b"one"
        assert cache.get("d2") is None       # torn entry simply re-misses
        cache.close()

    def test_duplicated_put_and_touch_lines(self, tmp_path):
        _put_some(tmp_path, [("d1", b"one")])
        journal = tmp_path / "cache.jsonl"
        line = journal.read_text()
        touch = journal_encode({"op": "touch", "digest": "d1"}) + "\n"
        ghost_touch = journal_encode({"op": "touch", "digest": "nope"}) + "\n"
        journal.write_text(line + line + touch + ghost_touch + line)
        cache = ScheduleCache(8, cache_dir=str(tmp_path))
        assert len(cache) == 1
        assert cache.get("d1") == b"one"
        assert cache.get("nope") is None
        cache.close()

    def test_zero_byte_journal(self, tmp_path):
        (tmp_path / "cache.jsonl").touch()
        cache = ScheduleCache(8, cache_dir=str(tmp_path))
        assert len(cache) == 0
        cache.put("d1", b"one")
        cache.close()
        cache = ScheduleCache(8, cache_dir=str(tmp_path))
        assert cache.get("d1") == b"one"
        cache.close()

    def test_legacy_checksumless_journal_still_replays(self, tmp_path):
        journal = tmp_path / "cache.jsonl"
        journal.write_text(
            json.dumps({"op": "put", "digest": "old", "body": "legacy"})
            + "\n"
            + json.dumps({"op": "touch", "digest": "old"}) + "\n")
        cache = ScheduleCache(8, cache_dir=str(tmp_path))
        assert cache.get("old") == b"legacy"
        cache.close()
        # ... and the compacted rewrite upgrades it to CRC framing
        cache = ScheduleCache(8, cache_dir=str(tmp_path))
        cache.close()
        first = (tmp_path / "cache.jsonl").read_text().splitlines()[0]
        assert "crc" in json.loads(first)

    def test_compaction_preserves_entries(self, tmp_path):
        cache = ScheduleCache(2, cache_dir=str(tmp_path))
        for k in range(40):          # evictions + touches grow the journal
            cache.put(f"d{k}", f"body{k}".encode())
            cache.get(f"d{k}")
        cache.close()
        cache = ScheduleCache(2, cache_dir=str(tmp_path))
        assert cache.get("d39") == b"body39"
        assert cache.get("d38") == b"body38"
        assert cache.get("d0") is None        # evicted long ago
        cache.close()
