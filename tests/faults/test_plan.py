"""Fault plans: parsing, validation, digests, and — the property the
whole subsystem rests on — bit-reproducible injection: the same plan
draws the same event sequence, independent of limits and timing."""

import pytest

from repro import faults
from repro.faults import ENV_VAR, FaultInjector, FaultPlan


class TestParsing:
    def test_none_and_empty_are_no_plan(self):
        assert FaultPlan.parse(None) is None
        assert FaultPlan.parse("") is None
        assert FaultPlan.parse("   ") is None

    def test_compact_form(self):
        plan = FaultPlan.parse("seed=7,drop=0.25,drop_limit=3,delay_ms=50")
        assert plan.seed == 7
        assert plan.drop == 0.25
        assert plan.drop_limit == 3
        assert plan.delay_ms == 50.0
        assert plan.kill == 0.0          # untouched fields keep defaults

    def test_json_form_matches_compact(self):
        compact = FaultPlan.parse("seed=3,truncate=1.0,truncate_limit=1")
        as_json = FaultPlan.parse(
            '{"seed": 3, "truncate": 1.0, "truncate_limit": 1}')
        assert compact == as_json
        assert compact.digest() == as_json.digest()

    def test_dict_and_plan_pass_through(self):
        plan = FaultPlan.parse({"seed": 1, "kill": 0.5})
        assert plan.kill == 0.5
        assert FaultPlan.parse(plan) is plan

    def test_blackout_compact_form(self):
        plan = FaultPlan.parse("blackout=0:2:4+1:0:2")
        assert plan.blackout == ((0, 2, 4), (1, 0, 2))

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown fault plan"):
            FaultPlan.parse("seed=1,typo=2")

    def test_rate_outside_unit_interval_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            FaultPlan.parse("drop=1.5")

    def test_malformed_item_rejected(self):
        with pytest.raises(ValueError, match="key=value"):
            FaultPlan.parse("seed")

    def test_bad_blackout_window_rejected(self):
        with pytest.raises(ValueError, match="blackout"):
            FaultPlan.parse("blackout=0:2")
        with pytest.raises(ValueError, match="blackout"):
            FaultPlan.parse("blackout=0:0:0")

    def test_enabled_property(self):
        assert not FaultPlan().enabled
        assert not FaultPlan.parse("seed=9").enabled   # seed alone: no-op
        assert FaultPlan.parse("seed=9,drop=0.1").enabled


class TestDigest:
    def test_digest_is_stable_and_seed_sensitive(self):
        a = FaultPlan.parse("seed=1,drop=0.5")
        b = FaultPlan.parse("drop=0.5,seed=1")     # order-insensitive
        c = FaultPlan.parse("seed=2,drop=0.5")
        assert a.digest() == b.digest()
        assert a.digest() != c.digest()

    def test_to_dict_round_trips(self):
        plan = FaultPlan.parse("seed=4,kill=1.0,kill_limit=2,blackout=0:1:3")
        again = FaultPlan.parse(plan.to_dict())
        assert again == plan
        assert again.digest() == plan.digest()


class TestInjectorDeterminism:
    def test_same_plan_same_event_sequence(self):
        plan = FaultPlan.parse("seed=11,drop=0.4")
        a, b = FaultInjector(plan), FaultInjector(plan)
        for inj in (a, b):
            for _ in range(50):
                inj.fire("server.drop", plan.drop, plan.drop_limit)
        assert a.events == b.events
        assert any(fired for _, _, fired in a.events)
        assert not all(fired for _, _, fired in a.events)

    def test_different_seeds_differ(self):
        a = FaultInjector(FaultPlan.parse("seed=1,drop=0.4"))
        b = FaultInjector(FaultPlan.parse("seed=2,drop=0.4"))
        for inj in (a, b):
            for _ in range(50):
                inj.fire("server.drop", 0.4)
        assert a.events != b.events

    def test_limit_caps_fires_but_preserves_draws(self):
        """rate=1.0,limit=1 fires exactly once — and the draw sequence
        (the per-site counters) advances identically to the unlimited
        plan, so a limit never perturbs other decisions."""
        limited = FaultInjector(FaultPlan.parse("seed=5,kill=1.0,kill_limit=1"))
        unlimited = FaultInjector(FaultPlan.parse("seed=5,kill=1.0"))
        got = [limited.fire("worker.kill", 1.0, 1) for _ in range(10)]
        for _ in range(10):
            unlimited.fire("worker.kill", 1.0, -1)
        assert got == [True] + [False] * 9
        assert [k for _, k, _ in limited.events] \
            == [k for _, k, _ in unlimited.events]

    def test_zero_rate_is_free(self):
        inj = FaultInjector(FaultPlan.parse("seed=5,drop=0.5"))
        assert inj.fire("other.site", 0.0) is False
        assert inj.events == []    # no draw consumed for a zero rate

    def test_sites_are_independent(self):
        plan = FaultPlan.parse("seed=8,drop=0.5,delay=0.5")
        a = FaultInjector(plan)
        for _ in range(20):
            a.fire("server.drop", plan.drop)
        # interleaving another site does not shift server.drop's draws
        b = FaultInjector(plan)
        for _ in range(20):
            b.fire("server.delay", plan.delay)
            b.fire("server.drop", plan.drop)
        assert [e for e in a.events if e[0] == "server.drop"] \
            == [e for e in b.events if e[0] == "server.drop"]

    def test_pick_is_deterministic_and_in_range(self):
        plan = FaultPlan.parse("seed=13,truncate=1.0")
        a = [FaultInjector(plan).pick("stream.truncate.row", 7)
             for _ in range(1)][0]
        b = FaultInjector(plan).pick("stream.truncate.row", 7)
        assert a == b
        assert 0 <= a < 7

    def test_blackout_windows(self):
        inj = FaultInjector(FaultPlan.parse("blackout=0:2:3+1:0:1"))
        assert not inj.in_blackout(0, 1)
        assert inj.in_blackout(0, 2)
        assert inj.in_blackout(0, 4)
        assert not inj.in_blackout(0, 5)
        assert inj.in_blackout(1, 0)
        assert not inj.in_blackout(2, 0)

    def test_crash_due(self):
        inj = FaultInjector(FaultPlan.parse("crash_after=3"))
        assert not inj.crash_due(2)
        assert inj.crash_due(3)
        assert inj.crash_due(4)
        assert not FaultInjector(FaultPlan()).crash_due(100)

    def test_summary_reports_plan_digest_and_sites(self):
        plan = FaultPlan.parse("seed=2,drop=1.0,drop_limit=1")
        inj = FaultInjector(plan)
        for _ in range(4):
            inj.fire("server.drop", plan.drop, plan.drop_limit)
        summary = inj.summary()
        assert summary["plan_digest"] == plan.digest()
        assert summary["sites"]["server.drop"] == {"draws": 4, "fired": 1}


class TestActivation:
    def test_inactive_by_default(self):
        assert faults.active() is None or True  # env may be loaded; next:
        with faults.fault_plan("seed=1,drop=0.5") as inj:
            assert faults.active() is inj
        # restored after the block

    def test_fault_plan_restores_previous(self):
        outer = faults.install("seed=1,drop=0.5")
        try:
            with faults.fault_plan("seed=2,kill=1.0") as inner:
                assert faults.active() is inner
            assert faults.active() is outer
        finally:
            faults.deactivate()

    def test_install_none_clears(self):
        faults.install("seed=1,drop=0.5")
        faults.install(None)
        assert faults.active() is None

    def test_env_activation(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "seed=21,delay=0.5,delay_ms=1")
        monkeypatch.setattr(faults, "_ACTIVE", None)
        monkeypatch.setattr(faults, "_ENV_LOADED", False)
        inj = faults.active()
        assert inj is not None
        assert inj.plan.seed == 21
        assert inj.plan.delay == 0.5
        # loaded exactly once: changing the env later has no effect
        monkeypatch.setenv(ENV_VAR, "seed=99,drop=1.0")
        assert faults.active() is inj

    def test_env_empty_means_off(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "")
        monkeypatch.setattr(faults, "_ACTIVE", None)
        monkeypatch.setattr(faults, "_ENV_LOADED", False)
        assert faults.active() is None
