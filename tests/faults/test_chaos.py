"""Seeded chaos against live in-process services: injected stream
truncation, worker-process kills, host blackouts, connection drops,
delays, deadlines, and saturation back-pressure — in every scenario the
sweep either completes byte-identical to the serial engine or fails with
a structured, typed error.

All tests share one in-process fault injector (client, server, and
coordinator live in this process), which is exactly the deterministic
single-sequence behaviour the plan digest promises.  Worker-kill tests
MUST use ``ServiceApp(workers=2)``: with ``workers <= 1`` the injected
kill is a host kill (``os._exit``) and would take pytest with it.
"""

import time

import pytest

from repro import faults
from repro.experiments.engine import map_cells, remote_worker
from repro.experiments.remote import RemoteExecutor
from repro.io.json_io import canonical_json, from_cell_wire, to_cell_wire
from repro.service import ServiceApp, ServiceClient, ThreadedServer
from repro.service.client import ServiceClientError


@remote_worker("faults.chaos_double")
def _double(payload, cache, cell):
    return payload * cell


@remote_worker("faults.chaos_slow")
def _slow(payload, cache, cell):
    time.sleep(payload)
    return cell


def _wires(payload, cells):
    return to_cell_wire(payload), [to_cell_wire(c) for c in cells]


def _executor(addrs, **kw):
    kw.setdefault("retry_budget", 2)
    kw.setdefault("backoff_base", 0.01)
    kw.setdefault("backoff_cap", 0.05)
    return RemoteExecutor(addrs, **kw)


class TestStreamTruncation:
    def test_sweep_survives_injected_truncation(self):
        cells = list(range(20))
        serial = map_cells(_double, 3, cells)
        with ThreadedServer(ServiceApp(workers=1)) as a, \
                ThreadedServer(ServiceApp(workers=1)) as b:
            ex = _executor([f"{a.host}:{a.port}", f"{b.host}:{b.port}"])
            with faults.fault_plan("seed=5,truncate=1.0,truncate_limit=1"):
                dist = ex.map_cells(_double, 3, cells)
        assert dist == serial
        assert canonical_json(to_cell_wire(dist)) \
            == canonical_json(to_cell_wire(serial))


class TestWorkerKill:
    def test_pool_restart_supervises_injected_kill(self):
        app = ServiceApp(workers=2)
        cells = list(range(12))
        pw, cw = _wires(4, cells)
        with ThreadedServer(app) as srv:
            client = ServiceClient(srv.host, srv.port, timeout=60)
            with faults.fault_plan("seed=1,kill=1.0,kill_limit=1"):
                rows = client.run_cells("faults.chaos_double", pw, cw)
            client.close()
        assert app.n_pool_restarts >= 1
        assert [from_cell_wire(r["r"]) for r in rows] \
            == [4 * c for c in cells]

    def test_kill_budget_exhaustion_aborts_stream(self):
        app = ServiceApp(workers=2, pool_restarts=1)
        pw, cw = _wires(1, list(range(8)))
        with ThreadedServer(app) as srv:
            client = ServiceClient(srv.host, srv.port, timeout=60)
            with faults.fault_plan("seed=1,kill=1.0"):   # every attempt
                with pytest.raises(ServiceClientError) as err:
                    client.run_cells("faults.chaos_double", pw, cw)
            client.close()
        # the stream dies without a sentinel: a typed transport error,
        # never silently-missing cells
        assert err.value.err_type in ("truncated", "transport")


class TestBlackout:
    def test_blackout_within_budget_recovers(self):
        cells = list(range(10))
        serial = map_cells(_double, 2, cells)
        with ThreadedServer(ServiceApp(workers=1)) as srv:
            ex = _executor([f"{srv.host}:{srv.port}"], retry_budget=2)
            with faults.fault_plan("seed=3,blackout=0:0:2"):
                dist = ex.map_cells(_double, 2, cells)
            stats = ex.stats()
        assert dist == serial
        host = stats["hosts"][f"{srv.host}:{srv.port}"]
        assert host["alive"]
        assert stats["retries"] >= 1

    def test_blackout_beyond_budget_fails_over(self):
        cells = list(range(10))
        serial = map_cells(_double, 2, cells)
        with ThreadedServer(ServiceApp(workers=1)) as a, \
                ThreadedServer(ServiceApp(workers=1)) as b:
            addr_a = f"{a.host}:{a.port}"
            ex = _executor([addr_a, f"{b.host}:{b.port}"], retry_budget=0)
            with faults.fault_plan("seed=3,blackout=0:0:9"):
                dist = ex.map_cells(_double, 2, cells)
            stats = ex.stats()
        assert dist == serial
        assert not stats["hosts"][addr_a]["alive"]


class TestConnectionFaults:
    def test_server_drop_then_recovery(self):
        with ThreadedServer(ServiceApp(workers=1)) as srv:
            client = ServiceClient(srv.host, srv.port, timeout=5)
            with faults.fault_plan("seed=2,drop=1.0,drop_limit=1"):
                with pytest.raises(ServiceClientError) as err:
                    client.healthz()
                assert err.value.err_type in ("transport", "timeout")
                assert client.healthz()["status"] == "ok"
            client.close()

    def test_client_drop_then_recovery(self):
        with ThreadedServer(ServiceApp(workers=1)) as srv:
            client = ServiceClient(srv.host, srv.port, timeout=5)
            plan = "seed=2,client_drop=1.0,client_drop_limit=1"
            with faults.fault_plan(plan):
                with pytest.raises(ServiceClientError, match="injected"):
                    client.healthz()
                assert client.healthz()["status"] == "ok"
            client.close()

    def test_server_delay_injection(self):
        with ThreadedServer(ServiceApp(workers=1)) as srv:
            client = ServiceClient(srv.host, srv.port, timeout=5)
            plan = "seed=2,delay=1.0,delay_ms=80,delay_limit=1"
            with faults.fault_plan(plan):
                t0 = time.monotonic()
                client.healthz()
                assert time.monotonic() - t0 >= 0.08
            client.close()

    def test_healthz_reports_fault_summary(self):
        with ThreadedServer(ServiceApp(workers=1)) as srv:
            client = ServiceClient(srv.host, srv.port, timeout=5)
            with faults.fault_plan("seed=6,delay=1.0,delay_ms=1") as inj:
                health = client.healthz()
                assert health["faults"]["plan_digest"] \
                    == inj.plan.digest()
            client.close()


class TestDeadlines:
    def test_expired_deadline_is_shed_with_408(self):
        with ThreadedServer(ServiceApp(workers=1)) as srv:
            client = ServiceClient(srv.host, srv.port, timeout=5,
                                   deadline=1e-4)
            with pytest.raises(ServiceClientError) as err:
                client.healthz()
            client.close()
        assert err.value.status == 408
        assert err.value.err_type == "deadline_exceeded"

    def test_cells_stream_deadline_client_side(self):
        pw, cw = _wires(0.1, list(range(8)))
        with ThreadedServer(ServiceApp(workers=1)) as srv:
            client = ServiceClient(srv.host, srv.port, timeout=30,
                                   deadline=0.25)
            with pytest.raises(ServiceClientError) as err:
                client.run_cells("faults.chaos_slow", pw, cw)
            client.close()
        assert err.value.err_type == "deadline"
        assert "deadline" in str(err.value)


class TestSaturation:
    def test_retry_after_surfaces_on_503(self):
        app = ServiceApp(workers=1)
        with ThreadedServer(app, max_connections=1) as srv:
            holder = ServiceClient(srv.host, srv.port, timeout=5)
            assert holder.healthz()["status"] == "ok"   # keep-alive held
            second = ServiceClient(srv.host, srv.port, timeout=5)
            with pytest.raises(ServiceClientError) as err:
                second.healthz()
            holder.close()
            second.close()
        assert err.value.status == 503
        assert err.value.retry_after == 1.0


class TestTriFaultInvariant:
    def test_blackout_truncation_and_kill_byte_identical(self):
        """The acceptance invariant: one distributed sweep absorbing a
        host blackout window, one stream truncation, and one injected
        worker-process kill still produces byte-identical results."""
        cells = list(range(24))
        serial = map_cells(_double, 3, cells)
        plan = ("seed=9,blackout=0:0:1,"
                "truncate=1.0,truncate_limit=1,kill=1.0,kill_limit=1")
        with ThreadedServer(ServiceApp(workers=2)) as a, \
                ThreadedServer(ServiceApp(workers=2)) as b:
            ex = _executor([f"{a.host}:{a.port}", f"{b.host}:{b.port}"])
            with faults.fault_plan(plan) as inj:
                dist = ex.map_cells(_double, 3, cells)
                summary = inj.summary()
            stats = ex.stats()
        assert dist == serial
        assert canonical_json(to_cell_wire(dist)) \
            == canonical_json(to_cell_wire(serial))
        # each fault demonstrably happened
        assert summary["sites"]["stream.truncate"]["fired"] == 1
        assert summary["sites"]["worker.kill"]["fired"] == 1
        assert summary["sites"]["remote.blackout"]["fired"] == 1
        assert stats["retries"] >= 1
