"""Sweep checkpoint/resume: content-addressed cell journaling, the
explicit-resume guard, corruption tolerance, and the crash/resume
invariant — a killed coordinator resumes to byte-identical output,
re-executing only what was unfinished."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import faults
from repro.experiments import CellCheckpoint, CheckpointError, checkpointing
from repro.experiments.checkpoint import call_key, cell_key, payload_digest
from repro.experiments.engine import map_cells, remote_worker
from repro.io.json_io import canonical_json, to_cell_wire

ROOT = Path(__file__).resolve().parent.parent.parent


@remote_worker("faults.ckpt_double")
def _double(payload, cache, cell):
    return payload * cell


@remote_worker("faults.ckpt_count")
def _count_calls(payload, cache, cell):
    # A process-wide counter (works for jobs=1) to observe re-execution.
    _CALLS.append(cell)
    return payload + cell


_CALLS: list = []


class TestCellCheckpoint:
    def test_record_and_replay(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        with CellCheckpoint(path) as ck:
            ck.record("k1", {"v": 1})
            ck.record("k2", {"v": 2})
            ck.mark_done("call", 2)
        again = CellCheckpoint(path, resume=True)
        assert again.get("k1") == {"v": 1}
        assert again.get("k2") == {"v": 2}
        assert again.is_done("call")
        assert again.n_replayed == 2
        again.close()

    def test_rerecording_known_key_is_noop(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        with CellCheckpoint(path) as ck:
            ck.record("k", {"v": 1})
            ck.record("k", {"v": 999})
            assert ck.get("k") == {"v": 1}
            assert ck.n_recorded == 1

    def test_nonempty_without_resume_refused(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        with CellCheckpoint(path) as ck:
            ck.record("k", 1)
        with pytest.raises(CheckpointError, match="resume"):
            CellCheckpoint(path)

    def test_zero_byte_file_is_a_fresh_journal(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        path.touch()
        with CellCheckpoint(path) as ck:     # no resume needed
            ck.record("k", 1)
        assert CellCheckpoint(path, resume=True).get("k") == 1

    def test_torn_tail_line_skipped(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        with CellCheckpoint(path) as ck:
            ck.record("k1", 1)
            ck.record("k2", 2)
        text = path.read_text()
        lines = text.splitlines(keepends=True)
        path.write_text(lines[0] + lines[1][: len(lines[1]) // 2])
        again = CellCheckpoint(path, resume=True)
        assert again.get("k1") == 1
        assert again.get("k2") is None       # torn record: re-executes
        again.close()

    def test_duplicated_records_replay_once(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        with CellCheckpoint(path) as ck:
            ck.record("k1", 5)
        line = path.read_text()
        path.write_text(line + line + line)  # crash-duplicated appends
        again = CellCheckpoint(path, resume=True)
        assert again.get("k1") == 5
        assert len(again.results) == 1
        again.close()

    def test_corrupt_fault_produces_torn_lines_that_replay_skips(
            self, tmp_path):
        path = tmp_path / "ck.jsonl"
        with faults.fault_plan("seed=3,corrupt=1.0,corrupt_limit=1"):
            with CellCheckpoint(path) as ck:
                ck.record("k1", 1)           # torn by the injector
                ck.record("k2", 2)           # intact (limit exhausted)
        again = CellCheckpoint(path, resume=True)
        assert again.get("k1") is None
        assert again.get("k2") == 2
        again.close()


class TestMapCellsCheckpointed:
    def test_results_identical_and_second_run_replays(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        cells = list(range(10))
        plain = map_cells(_double, 3, cells)
        first = map_cells(_double, 3, cells, checkpoint=path)
        assert first == plain
        ck = CellCheckpoint(path, resume=True)
        assert len(ck.results) == 10
        pdig = payload_digest(to_cell_wire(3))
        keys = [cell_key("faults.ckpt_double", pdig, to_cell_wire(c))
                for c in cells]
        assert ck.is_done(call_key("faults.ckpt_double", pdig, keys))
        ck.close()
        again = map_cells(_double, 3, cells, checkpoint=path)
        assert again == plain

    def test_second_run_executes_nothing(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        cells = [10, 20, 30]
        _CALLS.clear()
        map_cells(_count_calls, 1, cells, checkpoint=path)
        assert sorted(_CALLS) == cells
        _CALLS.clear()
        out = map_cells(_count_calls, 1, cells, checkpoint=path)
        assert _CALLS == []                  # pure replay
        assert out == [11, 21, 31]

    def test_partial_journal_executes_only_missing(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        cells = [1, 2, 3, 4]
        _CALLS.clear()
        map_cells(_count_calls, 100, cells, checkpoint=path)
        # Drop the records for cells 3 and 4 (tail lines), keep 1 and 2.
        lines = path.read_text().splitlines(keepends=True)
        path.write_text("".join(lines[:2]))
        _CALLS.clear()
        out = map_cells(_count_calls, 100, cells, checkpoint=path)
        assert sorted(_CALLS) == [3, 4]      # only the unfinished cells
        assert out == [101, 102, 103, 104]

    def test_resume_after_last_cell_before_sentinel(self, tmp_path):
        """Crash after every cell was journaled but before the done
        sentinel: resume re-executes nothing and completes the call."""
        path = tmp_path / "ck.jsonl"
        cells = [5, 6, 7]
        _CALLS.clear()
        map_cells(_count_calls, 0, cells, checkpoint=path)
        lines = path.read_text().splitlines(keepends=True)
        assert '"done"' in lines[-1]
        path.write_text("".join(lines[:-1]))   # strip the sentinel only
        _CALLS.clear()
        out = map_cells(_count_calls, 0, cells, checkpoint=path)
        assert _CALLS == []
        assert out == [5, 6, 7]
        ck = CellCheckpoint(path, resume=True)
        assert len(ck.done_calls) == 1         # sentinel re-written
        ck.close()

    def test_duplicate_cells_execute_once(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        _CALLS.clear()
        out = map_cells(_count_calls, 1, [4, 4, 4, 9], checkpoint=path)
        assert out == [5, 5, 5, 10]
        assert sorted(_CALLS) == [4, 9]
        ck = CellCheckpoint(path, resume=True)
        assert len(ck.results) == 2            # content-addressed
        ck.close()

    def test_jobs_pool_checkpoint_matches_serial(self, tmp_path):
        serial = map_cells(_double, 7, list(range(12)))
        pooled = map_cells(_double, 7, list(range(12)), jobs=2,
                           checkpoint=tmp_path / "ck.jsonl")
        assert pooled == serial

    def test_checkpointing_context_manager(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        with checkpointing(path) as ck:
            out = map_cells(_double, 2, [1, 2, 3])   # ambient journal
            assert out == [2, 4, 6]
            assert ck.stats()["recorded"] == 3
        # outside the block map_cells no longer journals
        map_cells(_double, 2, [99])
        ck2 = CellCheckpoint(path, resume=True)
        assert len(ck2.results) == 3
        ck2.close()

    def test_checkpointing_existing_requires_resume(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        with checkpointing(path):
            map_cells(_double, 2, [1])
        with pytest.raises(CheckpointError, match="resume"):
            with checkpointing(path):
                pass
        with checkpointing(path, resume=True) as ck:
            assert ck.stats()["replayed"] == 1


_CRASH_CHILD = """
import sys
sys.path.insert(0, {src!r})
from repro import faults
from repro.experiments.engine import map_cells, remote_worker

@remote_worker("faults.ckpt_double")
def _double(payload, cache, cell):
    return payload * cell

faults.install("crash_after={crash_after}")
map_cells(_double, 3, list(range(10)), checkpoint={path!r})
print("UNREACHABLE")
"""


class TestCoordinatorCrashResume:
    def test_crash_midsweep_then_resume_byte_identical(self, tmp_path):
        """The acceptance invariant: kill -9 the coordinator mid-sweep,
        --resume re-executes only unfinished cells, and the output is
        byte-identical to an uninterrupted run."""
        path = tmp_path / "ck.jsonl"
        script = _CRASH_CHILD.format(src=str(ROOT / "src"),
                                     crash_after=4, path=str(path))
        proc = subprocess.run([sys.executable, "-c", script],
                              capture_output=True, text=True,
                              cwd=str(tmp_path), timeout=60)
        assert proc.returncode == 137        # the injected hard exit
        assert "UNREACHABLE" not in proc.stdout

        survived = CellCheckpoint(path, resume=True)
        assert len(survived.results) == 4    # exactly the flushed cells
        survived.close()

        _CALLS.clear()
        resumed = map_cells(_double, 3, list(range(10)), checkpoint=path)
        uninterrupted = map_cells(_double, 3, list(range(10)))
        assert resumed == uninterrupted
        assert canonical_json(to_cell_wire(resumed)) \
            == canonical_json(to_cell_wire(uninterrupted))

    def test_resumed_run_skips_completed_cells(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        script = _CRASH_CHILD.format(src=str(ROOT / "src"),
                                     crash_after=6, path=str(path))
        proc = subprocess.run([sys.executable, "-c", script],
                              capture_output=True, text=True,
                              cwd=str(tmp_path), timeout=60)
        assert proc.returncode == 137
        ck = CellCheckpoint(path, resume=True)
        n_before = len(ck.results)
        ck.close()
        assert n_before == 6
        with checkpointing(path, resume=True) as ck:
            map_cells(_double, 3, list(range(10)))
            assert ck.stats()["replayed"] == 6
            assert ck.stats()["recorded"] == 10 - 6


class TestCliFlags:
    def test_resume_without_checkpoint_is_an_error(self, capsys):
        from repro.cli import main
        with pytest.raises(SystemExit, match="--resume requires"):
            main(["experiment", "fig11", "--resume"])

    def test_experiment_checkpoint_resume_round_trip(self, tmp_path,
                                                     capsys):
        from repro.cli import main
        ck = tmp_path / "ck.jsonl"
        assert main(["experiment", "fig11", "--scale", "ci",
                     "--checkpoint", str(ck)]) == 0
        first = capsys.readouterr()
        assert "recorded" in first.err
        assert ck.exists() and ck.stat().st_size > 0
        assert main(["experiment", "fig11", "--scale", "ci",
                     "--checkpoint", str(ck), "--resume"]) == 0
        second = capsys.readouterr()
        assert second.out == first.out       # byte-identical stdout
        assert "0 recorded" in second.err    # pure replay

    def test_experiment_existing_checkpoint_without_resume_errors(
            self, tmp_path, capsys):
        from repro.cli import main
        ck = tmp_path / "ck.jsonl"
        assert main(["experiment", "fig11", "--scale", "ci",
                     "--checkpoint", str(ck)]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit, match="resume"):
            main(["experiment", "fig11", "--scale", "ci",
                  "--checkpoint", str(ck)])
