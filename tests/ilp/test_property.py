"""Property tests for the exact layer on micro graphs (n <= 4).

Small enough that the full sandwich holds within milliseconds per case:
``LB <= ILP optimum <= eager optimum <= heuristic makespans``, and the
extracted ILP schedule always validates.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import InfeasibleScheduleError, Platform, memheft, validate_schedule
from repro.core.bounds import lower_bound, memory_lower_bound
from repro.dags.toy import random_weights_graph
from repro.ilp import optimal_eager, solve_ilp

micro = st.fixed_dictionaries({
    "n": st.integers(min_value=1, max_value=4),
    "seed": st.integers(min_value=0, max_value=10**6),
    "procs": st.sampled_from([(1, 1), (2, 1)]),
})


@settings(max_examples=12, deadline=None)
@given(micro)
def test_unbounded_sandwich(params):
    g = random_weights_graph(params["n"], rng=params["seed"])
    plat = Platform(*params["procs"])
    sol = solve_ilp(g, plat, node_limit=30000, time_limit=60)
    assert sol.status == "optimal"
    lb = lower_bound(g, plat)
    eager = optimal_eager(g, plat)
    span = memheft(g, plat).makespan
    assert lb - 1e-6 <= sol.makespan <= eager.makespan + 1e-6 <= span + 2e-6
    if sol.schedule is not None:
        validate_schedule(g, plat, sol.schedule, eps=1e-4)


@settings(max_examples=10, deadline=None)
@given(micro, st.floats(min_value=0.5, max_value=1.5))
def test_bounded_status_consistent_with_memory_floor(params, factor):
    g = random_weights_graph(params["n"], rng=params["seed"])
    floor = memory_lower_bound(g)
    if floor == 0:
        return
    plat = Platform(1, 1).with_uniform_bound(factor * floor)
    sol = solve_ilp(g, plat, node_limit=30000, time_limit=60)
    if factor < 1.0:
        assert sol.status == "infeasible"
    else:
        # Above the floor the ILP must decide; whatever it reports must be
        # consistent with the heuristics.
        assert sol.status in ("optimal", "infeasible", "feasible")
        if sol.status == "infeasible":
            with pytest.raises(InfeasibleScheduleError):
                memheft(g, plat)
        elif sol.schedule is not None:
            validate_schedule(g, plat, sol.schedule, eps=1e-4)
