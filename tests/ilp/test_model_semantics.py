"""Probing the ILP constraints: fix indicator variables by hand and check
that the LP relaxation becomes feasible/infeasible exactly as the §4
definitions demand.  This pins the big-M transcription of Figure 6 far
more directly than end-to-end optima do."""

import numpy as np
import pytest
from scipy.optimize import linprog

from repro import Platform, TaskGraph
from repro.ilp.model import build_model


def two_task_graph(w=(4, 2), size=3.0, comm=2.0):
    g = TaskGraph("pair")
    g.add_task("a", *w)
    g.add_task("b", *w)
    g.add_dependency("a", "b", size=size, comm=comm)
    return g


def lp_feasible(model, fixes=None, max_makespan=None):
    lb = np.array(model.vars.lb, dtype=float)
    ub = np.array(model.vars.ub, dtype=float)
    for name, value in (fixes or {}).items():
        col = model.vars[name]
        lb[col] = ub[col] = value
    if max_makespan is not None:
        ub[model.vars[("M",)]] = max_makespan
    res = linprog(model.c, A_ub=model.a_ub, b_ub=model.b_ub,
                  bounds=np.column_stack([lb, ub]), method="highs")
    return res.status == 0, (res.fun if res.status == 0 else None)


class TestFlowConstraints:
    def test_same_memory_chain_runs_back_to_back(self):
        g = two_task_graph()
        model = build_model(g, Platform(1, 1), presolve=False)
        # Both on blue (b=1): no transfer, makespan can reach 2*W_blue.
        ok, obj = lp_feasible(model, {("b", "a"): 1, ("b", "b"): 1,
                                      ("delta", "a", "b"): 1})
        assert ok and obj == pytest.approx(8.0)

    def test_cross_memory_pays_the_transfer(self):
        g = two_task_graph()
        model = build_model(g, Platform(1, 1), presolve=False)
        # a on blue, b on red: W_blue + C + W_red = 4 + 2 + 2.
        ok, obj = lp_feasible(model, {("b", "a"): 1, ("b", "b"): 0,
                                      ("delta", "a", "b"): 0})
        assert ok and obj == pytest.approx(8.0)
        # Forbidding that budget must be infeasible.
        ok, _ = lp_feasible(model, {("b", "a"): 1, ("b", "b"): 0,
                                    ("delta", "a", "b"): 0},
                            max_makespan=7.9)
        assert not ok

    def test_delta_definition_enforced(self):
        g = two_task_graph()
        model = build_model(g, Platform(1, 1), presolve=False)
        # delta must equal [b_a == b_b]: contradictory fixing infeasible.
        ok, _ = lp_feasible(model, {("b", "a"): 1, ("b", "b"): 1,
                                    ("delta", "a", "b"): 0})
        assert not ok
        ok, _ = lp_feasible(model, {("b", "a"): 1, ("b", "b"): 0,
                                    ("delta", "a", "b"): 1})
        assert not ok


class TestResourceConstraint:
    def test_single_blue_processor_serialises(self):
        g = TaskGraph()
        g.add_task("x", 3, 100)
        g.add_task("y", 3, 100)  # independent tasks
        model = build_model(g, Platform(1, 0), presolve=False)
        ok, obj = lp_feasible(model)
        assert ok and obj == pytest.approx(6.0)  # cannot overlap

    def test_two_blue_processors_parallelise(self):
        g = TaskGraph()
        g.add_task("x", 3, 100)
        g.add_task("y", 3, 100)
        model = build_model(g, Platform(2, 0), presolve=False)
        ok, obj = lp_feasible(model)
        assert ok and obj == pytest.approx(3.0)


class TestMemoryConstraint26:
    def test_working_set_bound_binds(self):
        # One producer with a 3-unit output: needs >= 3 memory on its side.
        g = two_task_graph(size=3.0)
        caps = Platform(1, 1, 2.9, 2.9)
        model = build_model(g, caps)
        ok, _ = lp_feasible(model)
        assert not ok  # ILP-level structural infeasibility
        model = build_model(g, Platform(1, 1, 3.0, 3.0))
        ok, obj = lp_feasible(model)
        assert ok

    def test_asymmetric_capacity_steers_assignment(self):
        # Only red can hold the file: any integral solution needs b=0;
        # verify the blue-pinned fixing is LP-infeasible.
        g = two_task_graph(size=5.0)
        model = build_model(g, Platform(1, 1, mem_blue=4, mem_red=10),
                            presolve=False)
        ok, _ = lp_feasible(model, {("b", "a"): 1, ("b", "b"): 1,
                                    ("delta", "a", "b"): 1})
        assert not ok
        ok, _ = lp_feasible(model, {("b", "a"): 0, ("b", "b"): 0,
                                    ("delta", "a", "b"): 1})
        assert ok


class TestOrderingIndicators:
    def test_sigma_implies_separation(self):
        g = TaskGraph()
        g.add_task("x", 5, 5)
        g.add_task("y", 5, 5)
        model = build_model(g, Platform(2, 2), presolve=False)
        # sigma_xy = 1 forces t_y >= t_x + w_x; with both starts pinned to
        # 0 that is contradictory.
        fixes = {("sigma", "x", "y"): 1}
        col_tx = model.vars[("t", "x")]
        col_ty = model.vars[("t", "y")]
        lb = np.array(model.vars.lb, dtype=float)
        ub = np.array(model.vars.ub, dtype=float)
        lb[model.vars[("sigma", "x", "y")]] = 1
        ub[model.vars[("sigma", "x", "y")]] = 1
        ub[col_tx] = lb[col_tx] = 0.0
        ub[col_ty] = lb[col_ty] = 0.0
        res = linprog(model.c, A_ub=model.a_ub, b_ub=model.b_ub,
                      bounds=np.column_stack([lb, ub]), method="highs")
        assert res.status != 0
