"""Variable manager / row builder plumbing."""

import pytest

from repro.ilp.varman import RowBuilder, VariableManager


class TestVariableManager:
    def test_add_and_lookup(self):
        v = VariableManager()
        a = v.add("x", 0, 5)
        b = v.binary("y")
        assert v["x"] == a and v["y"] == b
        assert "x" in v and "z" not in v
        assert len(v) == 2
        assert v.integer == [False, True]

    def test_duplicate_rejected(self):
        v = VariableManager()
        v.add("x")
        with pytest.raises(ValueError, match="duplicate"):
            v.add("x")

    def test_fix_and_fixed_value(self):
        v = VariableManager()
        v.binary("b")
        assert not v.is_fixed("b")
        v.fix("b", 1.0)
        assert v.is_fixed("b")
        assert v.fixed_value("b") == 1.0

    def test_fixed_value_requires_fixed(self):
        v = VariableManager()
        v.add("x", 0, 2)
        with pytest.raises(ValueError):
            v.fixed_value("x")

    def test_bounds_array_shape(self):
        v = VariableManager()
        v.add("x", 1, 2)
        v.binary("y")
        arr = v.bounds_array()
        assert arr.shape == (2, 2)
        assert arr[0].tolist() == [1, 2]
        assert arr[1].tolist() == [0, 1]

    def test_integer_columns(self):
        v = VariableManager()
        v.add("x")
        v.binary("y")
        v.binary("z")
        assert v.integer_columns() == [1, 2]


class TestRowBuilder:
    def test_le_ge_eq(self):
        v = VariableManager()
        v.add("x")
        v.add("y")
        rows = RowBuilder(v)
        rows.le({"x": 1, "y": 2}, 5, "r1")
        rows.ge({"x": 1}, 1, "r2")
        rows.eq({"y": 1}, 3, "r3")
        a, b = rows.matrix()
        assert a.shape == (4, 2)  # eq expands to two rows
        dense = a.toarray()
        assert dense[0].tolist() == [1, 2] and b[0] == 5
        assert dense[1].tolist() == [-1, 0] and b[1] == -1
        assert rows.n_rows == 4
        assert rows.labels()[0] == "r1"

    def test_zero_coefficients_dropped(self):
        v = VariableManager()
        v.add("x")
        rows = RowBuilder(v)
        rows.le({"x": 0.0}, 1)
        a, _ = rows.matrix()
        assert a.nnz == 0
