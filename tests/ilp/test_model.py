"""ILP model construction: sizes, fixings, consistency with known schedules."""

from repro import Platform
from repro.dags import chain, dex
from repro.ilp.model import build_model


class TestModelShape:
    def test_dex_dimensions(self):
        model = build_model(dex(), Platform(1, 1))
        # n=4 tasks, m=4 edges; counts from Fig 5 (self pairs excluded).
        assert len(model.tasks) == 4 and len(model.edges) == 4
        assert model.n_vars > 100
        assert model.n_constraints > 300
        assert model.mmax == (3 + 2 + 6 + 1) + (1 + 2 + 3 + 1) + 4

    def test_memory_constraints_only_when_bounded(self):
        free = build_model(dex(), Platform(1, 1))
        bounded = build_model(dex(), Platform(1, 1, 5, 5))
        assert bounded.n_constraints > free.n_constraints
        assert any(lab.startswith("c26") for lab in bounded.labels)
        assert any(lab.startswith("c27") for lab in bounded.labels)
        assert not any(lab.startswith("c26") for lab in free.labels)

    def test_makespan_ub_tightens_bound(self):
        m1 = build_model(dex(), Platform(1, 1))
        m2 = build_model(dex(), Platform(1, 1), makespan_ub=8.0)
        col = m2.vars[("M",)]
        assert m2.vars.ub[col] <= 8.0 + 1e-5
        assert m1.vars.ub[m1.vars[("M",)]] > 8.0


class TestPresolveFixings:
    def test_chain_orderings_fully_fixed(self):
        g = chain(4)
        model = build_model(g, Platform(1, 1))
        v = model.vars
        # All task pairs are comparable in a chain: every m/sigma fixed.
        for a in range(4):
            for b in range(4):
                if a == b:
                    continue
                assert v.is_fixed(("m", a, b))
                assert v.is_fixed(("sigma", a, b))
        assert v.fixed_value(("m", 0, 3)) == 1.0
        assert v.fixed_value(("sigma", 3, 0)) == 0.0

    def test_presolve_can_be_disabled(self):
        g = chain(4)
        model = build_model(g, Platform(1, 1), presolve=False)
        assert not model.vars.is_fixed(("m", 0, 3))

    def test_free_binary_count_shrinks_with_presolve(self):
        g = dex()
        with_p = build_model(g, Platform(1, 1))
        without = build_model(g, Platform(1, 1), presolve=False)
        assert with_p.n_binaries < without.n_binaries

    def test_single_class_platform_fixes_b(self):
        model = build_model(dex(), Platform(n_blue=2, n_red=0))
        for t in model.tasks:
            assert model.vars.fixed_value(("b", t)) == 1.0
        model = build_model(dex(), Platform(n_blue=0, n_red=2))
        for t in model.tasks:
            assert model.vars.fixed_value(("b", t)) == 0.0

    def test_comm_task_orderings_fixed(self):
        model = build_model(dex(), Platform(1, 1))
        v = model.vars
        e = ("T1", "T2")
        # T1 weakly precedes the producer of (T1, T2).
        assert v.fixed_value(("sp", "T1", e)) == 1.0
        # T4 is a descendant of the consumer T2.
        assert v.fixed_value(("c", e, "T4")) == 1.0
        assert v.fixed_value(("d", e, "T4")) == 1.0

    def test_comm_pair_orderings_fixed(self):
        model = build_model(dex(), Platform(1, 1))
        v = model.vars
        e, f = ("T1", "T2"), ("T2", "T4")
        # e's consumer is f's producer: e strictly precedes f.
        assert v.fixed_value(("cp", e, f)) == 1.0
        assert v.fixed_value(("dp", e, f)) == 1.0
        assert v.fixed_value(("cp", f, e)) == 0.0


class TestStrengthening:
    def test_t_lower_bounds_follow_paths(self):
        g = chain(3, w_blue=4, w_red=2)  # min time 2 per stage
        model = build_model(g, Platform(1, 1))
        v = model.vars
        assert v.lb[v[("t", 0)]] == 0
        assert v.lb[v[("t", 1)]] == 2
        assert v.lb[v[("t", 2)]] == 4

    def test_makespan_lower_bound_set(self):
        model = build_model(dex(), Platform(1, 1))
        col = model.vars[("M",)]
        assert model.vars.lb[col] >= 5.0  # critical path of Dex
