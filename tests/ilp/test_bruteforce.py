"""Exhaustive eager-schedule search and the LB <= ILP <= eager <= heuristic
sandwich (DESIGN.md invariant 4)."""

import math

import pytest

from repro import (
    InfeasibleScheduleError,
    Platform,
    memheft,
    memminmin,
    validate_schedule,
)
from repro.core.bounds import lower_bound
from repro.dags import dex, tiny_rand_set
from repro.ilp import optimal_eager, solve_ilp


class TestOptimalEagerOnDex:
    def test_unbounded_finds_6(self):
        res = optimal_eager(dex(), Platform(1, 1))
        assert res.feasible and res.exhausted
        assert res.makespan == 6
        validate_schedule(dex(), Platform(1, 1), res.schedule)
        assert res.schedule.meta["algorithm"] == "optimal-eager"

    def test_m4_finds_7(self):
        plat = Platform(1, 1, 4, 4)
        res = optimal_eager(dex(), plat)
        assert res.makespan == 7
        validate_schedule(dex(), plat, res.schedule)

    def test_m3_infeasible(self):
        res = optimal_eager(dex(), Platform(1, 1, 3, 3))
        assert not res.feasible
        assert res.makespan == math.inf

    def test_upper_bound_prunes_but_preserves_value(self):
        free = optimal_eager(dex(), Platform(1, 1))
        seeded = optimal_eager(dex(), Platform(1, 1), upper_bound=free.makespan + 1)
        assert seeded.makespan == free.makespan
        assert seeded.nodes <= free.nodes + 1

    def test_node_limit_reported(self):
        res = optimal_eager(dex(), Platform(1, 1), node_limit=3)
        assert not res.exhausted


class TestSandwich:
    """LB <= ILP optimum <= eager optimum <= heuristic makespans."""

    @pytest.mark.parametrize("alpha", [1.0, 0.6])
    def test_sandwich_on_tiny_random_graphs(self, alpha):
        for g in tiny_rand_set(n_graphs=3, size=5):
            base = Platform(1, 1)
            from repro.scheduling.heft import heft
            ref = heft(g, base)
            bound = alpha * max(ref.meta["peak_blue"], ref.meta["peak_red"])
            plat = base.with_uniform_bound(bound)

            lb = lower_bound(g, plat)
            ilp = solve_ilp(g, plat, node_limit=30000, time_limit=90)
            eager = optimal_eager(g, plat)
            spans = []
            for algo in (memheft, memminmin):
                try:
                    spans.append(algo(g, plat).makespan)
                except InfeasibleScheduleError:
                    pass

            if ilp.status == "infeasible":
                # No schedule exists at all: eager and heuristics must agree.
                assert not eager.feasible
                assert spans == []
                continue
            assert ilp.status == "optimal", f"solver did not finish on {g.name}"
            assert lb - 1e-6 <= ilp.makespan
            if eager.feasible:
                assert ilp.makespan <= eager.makespan + 1e-6
                for s in spans:
                    assert eager.makespan <= s + 1e-6
            else:
                # Eager schedules are a strict subclass: the ILP may succeed
                # where every eager schedule fails; heuristics must fail too.
                assert spans == []
