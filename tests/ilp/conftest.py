"""The exact-ILP stack (model, varman, solver, extraction) is built on
numpy + scipy throughout — without them the whole directory is skipped at
collection, which is what the scalar-fallback CI leg exercises."""

import importlib.util


def _has(mod: str) -> bool:
    try:
        return importlib.util.find_spec(mod) is not None
    except ModuleNotFoundError:
        return False


if not (_has("numpy") and _has("scipy")):
    collect_ignore_glob = ["test_*.py"]
