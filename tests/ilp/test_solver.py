"""Branch-and-bound solver: paper-example optima, statuses, limits."""

import pytest

from repro import Platform, validate_schedule
from repro.dags import chain, dex
from repro.ilp import build_model, solve_branch_and_bound, solve_ilp


class TestDexOptima:
    """The worked example of §3.3: optimum 6 at M=5, 7 at M=4, none at M=3."""

    def test_unbounded_optimum_is_6(self):
        sol = solve_ilp(dex(), Platform(1, 1), time_limit=120)
        assert sol.status == "optimal"
        assert sol.makespan == pytest.approx(6.0, abs=1e-4)

    def test_m5_optimum_is_6(self):
        sol = solve_ilp(dex(), Platform(1, 1, 5, 5), time_limit=120)
        assert sol.status == "optimal"
        assert sol.makespan == pytest.approx(6.0, abs=1e-4)
        peaks = validate_schedule(dex(), Platform(1, 1, 5, 5), sol.schedule,
                                  eps=1e-4)
        assert max(peaks.values()) <= 5 + 1e-4

    def test_m4_optimum_is_7(self):
        sol = solve_ilp(dex(), Platform(1, 1, 4, 4), time_limit=120)
        assert sol.status == "optimal"
        assert sol.makespan == pytest.approx(7.0, abs=1e-4)
        peaks = validate_schedule(dex(), Platform(1, 1, 4, 4), sol.schedule,
                                  eps=1e-4)
        assert max(peaks.values()) <= 4 + 1e-4

    def test_m3_is_infeasible(self):
        sol = solve_ilp(dex(), Platform(1, 1, 3, 3), time_limit=120)
        assert sol.status == "infeasible"
        assert sol.makespan is None and sol.schedule is None


class TestSolverMechanics:
    def test_chain_trivial_optimum(self):
        # A chain on one-red platform: makespan = sum of red times.
        g = chain(3, w_blue=9, w_red=2, size=0, comm=0)
        sol = solve_ilp(g, Platform(0, 1), time_limit=60)
        assert sol.status == "optimal"
        assert sol.makespan == pytest.approx(6.0, abs=1e-4)

    def test_node_limit_reports_limit_or_solution(self):
        model = build_model(dex(), Platform(1, 1, 4, 4))
        res = solve_branch_and_bound(model, node_limit=1, time_limit=60)
        assert res.status in ("limit", "feasible", "optimal")
        assert res.nodes <= 1

    def test_incumbent_seeding_prunes(self):
        model = build_model(dex(), Platform(1, 1), makespan_ub=6.0)
        res = solve_branch_and_bound(model, incumbent=6.0, time_limit=60)
        # The optimum equals the seed: proven optimal without a better x.
        assert res.status == "optimal"
        assert res.objective == pytest.approx(6.0, abs=1e-4)

    def test_lower_bound_never_exceeds_objective(self):
        model = build_model(dex(), Platform(1, 1, 5, 5))
        res = solve_branch_and_bound(model, time_limit=60)
        assert res.lower_bound <= res.objective + 1e-6
        assert res.gap <= 1e-6

    def test_seeding_can_be_disabled(self):
        sol = solve_ilp(dex(), Platform(1, 1), seed_with_heuristics=False,
                        time_limit=120)
        assert sol.status == "optimal"
        assert sol.makespan == pytest.approx(6.0, abs=1e-4)
        assert sol.schedule is not None

    def test_extracted_schedule_matches_objective(self):
        sol = solve_ilp(dex(), Platform(1, 1, 5, 5), time_limit=120)
        assert sol.schedule.makespan == pytest.approx(sol.makespan, abs=1e-4)
