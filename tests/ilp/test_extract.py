"""Schedule extraction from ILP solution vectors."""

import pytest

from repro import Platform, validate_schedule
from repro.dags import dex, fork_join
from repro.ilp import build_model, extract_schedule, solve_branch_and_bound


def solve_and_extract(graph, platform, **kw):
    model = build_model(graph, platform)
    res = solve_branch_and_bound(model, time_limit=120, **kw)
    assert res.x is not None
    return model, res, extract_schedule(model, res.x)


def test_extraction_round_trip_dex():
    g = dex()
    plat = Platform(1, 1, 5, 5)
    model, res, schedule = solve_and_extract(g, plat)
    validate_schedule(g, plat, schedule, eps=1e-4)
    assert schedule.makespan == pytest.approx(res.objective, abs=1e-4)
    assert schedule.meta["algorithm"] == "ilp"


def test_extraction_assigns_distinct_processors():
    # Fork-join with 3 parallel equal tasks on 3 blue processors: the
    # optimum runs them simultaneously, so extraction must spread them.
    g = fork_join(3, w_blue=4, w_red=4, size=0, comm=0)
    plat = Platform(3, 1)
    model, res, schedule = solve_and_extract(g, plat)
    validate_schedule(g, plat, schedule, eps=1e-4)
    mids = [p for p in schedule.placements() if p.task in (0, 1, 2)]
    by_start = {}
    for p in mids:
        by_start.setdefault(round(p.start, 3), []).append(p)
    for group in by_start.values():
        procs = [p.proc for p in group]
        assert len(procs) == len(set(procs))


def test_cross_memory_comms_extracted():
    g = dex()
    plat = Platform(1, 1)
    model, res, schedule = solve_and_extract(g, plat)
    for u, v in g.edges():
        same = schedule.memory_of(u) is schedule.memory_of(v)
        assert (schedule.comm(u, v) is None) == same
