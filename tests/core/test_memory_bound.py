"""Structural memory floor (memory_lower_bound / schedulable_memory)."""

import pytest

from repro import (
    InfeasibleScheduleError,
    Platform,
    TaskGraph,
    memheft,
    memminmin,
)
from repro.core.bounds import memory_lower_bound, schedulable_memory
from repro.dags import dex, random_dag
from repro.ilp import solve_ilp


class TestMemoryLowerBound:
    def test_dex_floor_is_memreq_t3(self):
        assert memory_lower_bound(dex()) == 4

    def test_empty_graph(self):
        assert memory_lower_bound(TaskGraph()) == 0

    def test_floor_is_max_memreq(self):
        g = random_dag(size=20, rng=5)
        assert memory_lower_bound(g) == max(g.mem_req(t) for t in g.tasks())

    def test_ilp_confirms_infeasibility_below_floor(self):
        floor = memory_lower_bound(dex())
        sol = solve_ilp(dex(), Platform(1, 1).with_uniform_bound(floor - 1),
                        time_limit=60)
        assert sol.status == "infeasible"

    @pytest.mark.parametrize("seed", range(3))
    def test_heuristics_fail_below_floor(self, seed):
        g = random_dag(size=12, rng=seed)
        plat = Platform(1, 1).with_uniform_bound(memory_lower_bound(g) - 0.5)
        for algo in (memheft, memminmin):
            with pytest.raises(InfeasibleScheduleError):
                algo(g, plat)


class TestSchedulableMemory:
    def test_true_above_floor(self):
        assert schedulable_memory(dex(), Platform(1, 1, 4, 4))
        assert schedulable_memory(dex(), Platform(1, 1))

    def test_false_below_floor(self):
        assert not schedulable_memory(dex(), Platform(1, 1, 3, 3))

    def test_one_large_memory_suffices(self):
        # The check is against the larger capacity: a task may always go
        # to the roomier memory.
        assert schedulable_memory(dex(), Platform(1, 1, 1, 10))

    def test_is_necessary_not_sufficient(self):
        # Dex at M=3.5: every task fits somewhere in isolation only if
        # max capacity >= 4; at (4, 4) it is schedulable and at (3.9, 3.9)
        # it is not.
        assert not schedulable_memory(dex(), Platform(1, 1, 3.9, 3.9))
