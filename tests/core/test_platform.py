"""Unit tests for the dual-memory platform model."""

import math

import pytest

from repro import MEMORIES, Memory, Platform


class TestMemory:
    def test_other_is_involutive(self):
        assert Memory.BLUE.other() is Memory.RED
        assert Memory.RED.other() is Memory.BLUE
        for m in MEMORIES:
            assert m.other().other() is m

    def test_canonical_order(self):
        assert MEMORIES == (Memory.BLUE, Memory.RED)

    def test_value_strings(self):
        assert Memory.BLUE.value == "blue"
        assert Memory.RED.value == "red"


class TestPlatformIndexing:
    def test_blue_processors_come_first(self):
        p = Platform(n_blue=3, n_red=2)
        assert list(p.procs(Memory.BLUE)) == [0, 1, 2]
        assert list(p.procs(Memory.RED)) == [3, 4]

    def test_memory_of_every_processor(self):
        p = Platform(n_blue=2, n_red=3)
        assert [p.memory_of(k) for k in range(p.n_procs)] == [
            Memory.BLUE, Memory.BLUE, Memory.RED, Memory.RED, Memory.RED,
        ]

    def test_memory_of_out_of_range(self):
        p = Platform(1, 1)
        with pytest.raises(ValueError):
            p.memory_of(2)
        with pytest.raises(ValueError):
            p.memory_of(-1)

    def test_n_procs_of(self):
        p = Platform(n_blue=4, n_red=1)
        assert p.n_procs_of(Memory.BLUE) == 4
        assert p.n_procs_of(Memory.RED) == 1
        assert p.n_procs == 5

    def test_empty_resource_class_allowed(self):
        p = Platform(n_blue=0, n_red=2)
        assert list(p.procs(Memory.BLUE)) == []
        assert p.memory_of(0) is Memory.RED


class TestPlatformCapacities:
    def test_default_is_unbounded(self):
        p = Platform(1, 1)
        assert math.isinf(p.capacity(Memory.BLUE))
        assert math.isinf(p.capacity(Memory.RED))
        assert not p.is_memory_bounded

    def test_with_bounds(self):
        p = Platform(1, 1).with_bounds(10, 20)
        assert p.capacity(Memory.BLUE) == 10
        assert p.capacity(Memory.RED) == 20
        assert p.is_memory_bounded

    def test_with_uniform_bound(self):
        p = Platform(2, 2).with_uniform_bound(7)
        assert p.mem_blue == p.mem_red == 7

    def test_unbounded_round_trip(self):
        p = Platform(2, 1, 5, 5).unbounded()
        assert not p.is_memory_bounded
        assert p.n_blue == 2 and p.n_red == 1

    def test_one_sided_bound_counts_as_bounded(self):
        assert Platform(1, 1, mem_blue=4).is_memory_bounded


class TestPlatformValidation:
    def test_needs_a_processor(self):
        with pytest.raises(ValueError):
            Platform(0, 0)

    def test_negative_processors_rejected(self):
        with pytest.raises(ValueError):
            Platform(-1, 2)

    def test_negative_memory_rejected(self):
        with pytest.raises(ValueError):
            Platform(1, 1, mem_blue=-1)

    def test_frozen(self):
        p = Platform(1, 1)
        with pytest.raises(AttributeError):
            p.n_blue = 5


class TestPlatformSpeeds:
    def test_default_is_homogeneous(self):
        plat = Platform(2, 1)
        assert plat.speeds == (1.0, 1.0, 1.0)
        assert not plat.is_heterogeneous
        assert plat.uniform_classes == (True, True)
        assert plat.max_class_speeds == (1.0, 1.0)

    def test_speeds_accessors(self):
        plat = Platform(2, 1, 40.0, 40.0, speeds=[1.0, 0.5, 2.0])
        assert plat.is_heterogeneous
        assert plat.speed(1) == 0.5
        assert plat.class_speeds(0) == (1.0, 0.5)
        assert plat.class_speeds(1) == (2.0,)
        assert plat.max_class_speed(0) == 1.0
        assert not plat.is_uniform_class(0)
        assert plat.is_uniform_class(1)   # single proc => uniform
        assert plat.duration(10.0, 2) == 5.0

    def test_generic_constructor_takes_speeds(self):
        plat = Platform([1, 1, 2], [1.0, 2.0, 3.0],
                        speeds=[2.0, 1.0, 0.5, 0.5])
        assert plat.speeds == (2.0, 1.0, 0.5, 0.5)
        assert plat.uniform_classes == (True, True, True)
        assert plat.max_class_speeds == (2.0, 1.0, 0.5)

    def test_speeds_length_validated(self):
        with pytest.raises(ValueError):
            Platform(2, 1, speeds=[1.0, 1.0])

    def test_speeds_values_validated(self):
        for bad in ([0.0, 1.0], [-1.0, 1.0], [math.inf, 1.0],
                    [math.nan, 1.0]):
            with pytest.raises(ValueError):
                Platform(1, 1, speeds=bad)

    def test_equality_and_hash_include_speeds(self):
        a = Platform(1, 1, speeds=[1.0, 2.0])
        b = Platform(1, 1, speeds=[1.0, 2.0])
        c = Platform(1, 1)
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_with_capacities_preserves_speeds(self):
        plat = Platform(1, 1, speeds=[1.0, 2.0])
        assert plat.with_uniform_bound(5.0).speeds == (1.0, 2.0)
        assert plat.unbounded().speeds == (1.0, 2.0)
        assert plat.with_bounds(1.0, 2.0).speeds == (1.0, 2.0)

    def test_with_speeds_resets_and_replaces(self):
        plat = Platform(1, 1, 3.0, 4.0, speeds=[1.0, 2.0])
        reset = plat.with_speeds(None)
        assert not reset.is_heterogeneous
        assert reset.capacities == plat.capacities
        assert plat.with_speeds([0.5, 0.5]).speeds == (0.5, 0.5)

    def test_pickle_roundtrip_keeps_speeds(self):
        import pickle
        plat = Platform([2, 1], [10.0, math.inf], speeds=[1.0, 0.5, 2.0])
        assert pickle.loads(pickle.dumps(plat)) == plat
