"""Unit tests for the task-graph model."""

import networkx as nx
import pytest

from repro import Memory, TaskGraph
from repro.dags import dex


def two_task_graph():
    g = TaskGraph("pair")
    g.add_task("a", 2, 1)
    g.add_task("b", 4, 3)
    g.add_dependency("a", "b", size=5, comm=2)
    return g


class TestConstruction:
    def test_add_task_and_lookup(self):
        g = two_task_graph()
        assert g.n_tasks == 2
        assert g.w("a", Memory.BLUE) == 2
        assert g.w("a", Memory.RED) == 1
        assert g.w_blue("b") == 4 and g.w_red("b") == 3

    def test_duplicate_task_rejected(self):
        g = TaskGraph()
        g.add_task("a", 1, 1)
        with pytest.raises(ValueError, match="duplicate"):
            g.add_task("a", 2, 2)

    def test_negative_time_rejected(self):
        g = TaskGraph()
        with pytest.raises(ValueError):
            g.add_task("a", -1, 1)

    def test_zero_time_allowed(self):
        g = TaskGraph()
        g.add_task("fictitious", 0, 0)
        assert g.w_min("fictitious") == 0

    def test_edge_requires_existing_endpoints(self):
        g = TaskGraph()
        g.add_task("a", 1, 1)
        with pytest.raises(ValueError):
            g.add_dependency("a", "missing")

    def test_self_loop_rejected(self):
        g = TaskGraph()
        g.add_task("a", 1, 1)
        with pytest.raises(ValueError, match="self-loop"):
            g.add_dependency("a", "a")

    def test_duplicate_edge_rejected(self):
        g = two_task_graph()
        with pytest.raises(ValueError, match="duplicate edge"):
            g.add_dependency("a", "b")

    def test_negative_file_size_rejected(self):
        g = TaskGraph()
        g.add_task("a", 1, 1)
        g.add_task("b", 1, 1)
        with pytest.raises(ValueError):
            g.add_dependency("a", "b", size=-1)

    def test_cycle_detected_lazily(self):
        g = TaskGraph()
        for name in "abc":
            g.add_task(name, 1, 1)
        g.add_dependency("a", "b")
        g.add_dependency("b", "c")
        g.add_dependency("c", "a")  # allowed at insert time
        with pytest.raises(ValueError, match="cycle"):
            g.topological_order()
        with pytest.raises(ValueError, match="cycle"):
            g.validate()


class TestStructureQueries:
    def test_parents_children(self):
        g = dex()
        assert set(g.parents("T4")) == {"T2", "T3"}
        assert set(g.children("T1")) == {"T2", "T3"}
        assert g.parents("T1") == []
        assert g.children("T4") == []

    def test_roots_and_sinks(self):
        g = dex()
        assert g.roots() == ["T1"]
        assert g.sinks() == ["T4"]

    def test_degrees(self):
        g = dex()
        assert g.in_degree("T4") == 2
        assert g.out_degree("T1") == 2

    def test_topological_order_respects_edges(self):
        g = dex()
        order = g.topological_order()
        pos = {t: k for k, t in enumerate(order)}
        for u, v in g.edges():
            assert pos[u] < pos[v]

    def test_topological_order_cached_and_invalidated(self):
        g = two_task_graph()
        first = g.topological_order()
        assert g.topological_order() is first
        g.add_task("c", 1, 1)
        assert g.topological_order() is not first

    def test_ancestors_descendants(self):
        g = dex()
        assert g.ancestors("T4") == {"T1", "T2", "T3"}
        assert g.descendants("T1") == {"T2", "T3", "T4"}

    def test_contains_len(self):
        g = dex()
        assert "T1" in g and "T9" not in g
        assert len(g) == 4


class TestWeightsAndMemory:
    def test_mem_req_matches_paper_example(self):
        # §3.2: MemReq(T3) = F(1,3) + F(3,4) = 4.
        g = dex()
        assert g.mem_req("T3") == 4
        assert g.mem_req("T1") == 3          # outputs only (root)
        assert g.mem_req("T4") == 3          # inputs only (sink)
        assert g.mem_req("T2") == 1 + 1

    def test_in_out_sizes(self):
        g = dex()
        assert g.in_size("T1") == 0
        assert g.out_size("T1") == 3
        assert g.in_size("T4") == 3
        assert g.out_size("T4") == 0

    def test_w_min_and_mean(self):
        g = dex()
        assert g.w_min("T1") == 1
        assert g.w_mean("T1") == 2
        assert g.w_mean("T2") == 2

    def test_edge_attributes(self):
        g = dex()
        assert g.size("T1", "T3") == 2
        assert g.comm("T1", "T3") == 1

    def test_totals(self):
        g = dex()
        assert g.total_work(Memory.BLUE) == 3 + 2 + 6 + 1
        assert g.total_work(Memory.RED) == 1 + 2 + 3 + 1
        assert g.total_work() == 1 + 2 + 3 + 1  # per-task minimum
        assert g.total_comm() == 4
        assert g.total_file_size() == 6

    def test_longest_path_variants(self):
        g = dex()
        # min times: T1(1) -> T3(3) -> T4(1) = 5.
        assert g.longest_path_length("min") == 5
        # blue times: 3 + 6 + 1 = 10.
        assert g.longest_path_length("blue") == 10


class TestConversion:
    def test_networkx_round_trip(self):
        g = dex()
        back = TaskGraph.from_networkx(g.to_networkx(), name=g.name)
        assert back.n_tasks == g.n_tasks and back.n_edges == g.n_edges
        for t in g.tasks():
            assert back.w_blue(t) == g.w_blue(t)
            assert back.w_red(t) == g.w_red(t)
        for u, v in g.edges():
            assert back.size(u, v) == g.size(u, v)
            assert back.comm(u, v) == g.comm(u, v)

    def test_copy_is_independent(self):
        g = dex()
        clone = g.copy()
        clone.add_task("extra", 1, 1)
        assert "extra" not in g
        assert g.n_tasks == 4

    def test_to_networkx_is_a_copy(self):
        g = dex()
        nxg = g.to_networkx()
        nxg.add_node("intruder", w_blue=1.0, w_red=1.0)
        assert "intruder" not in g

    def test_from_networkx_defaults_edge_attrs(self):
        raw = nx.DiGraph()
        raw.add_node("a", w_blue=1.0, w_red=2.0)
        raw.add_node("b", w_blue=1.0, w_red=2.0)
        raw.add_edge("a", "b")  # no size/comm attributes
        g = TaskGraph.from_networkx(raw)
        assert g.size("a", "b") == 0.0
        assert g.comm("a", "b") == 0.0
