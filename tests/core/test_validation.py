"""The independent validator: accepts the paper's schedules, rejects each
kind of violation."""

import pytest

from repro import (
    CommEvent,
    Memory,
    Placement,
    Platform,
    Schedule,
    ScheduleError,
    is_valid,
    memory_peaks,
    validate_schedule,
)
from repro.core.validation import file_residencies
from repro.dags import dex


def schedule_s1(platform=None):
    """Schedule s1 of Figure 3: T1,T2,T4 on red, T3 on blue; makespan 6."""
    platform = platform or Platform(1, 1)
    g = dex()
    s = Schedule(platform)
    s.add(Placement("T1", proc=1, memory=Memory.RED, start=0, finish=1))
    s.add(Placement("T3", proc=1, memory=Memory.RED, start=1, finish=4))
    s.add(Placement("T2", proc=0, memory=Memory.BLUE, start=2, finish=4))
    s.add(Placement("T4", proc=1, memory=Memory.RED, start=5, finish=6))
    s.add_comm(CommEvent("T1", "T2", start=1, finish=2))
    s.add_comm(CommEvent("T2", "T4", start=4, finish=5))
    return g, s


class TestPaperScheduleS1:
    def test_s1_is_valid_and_has_makespan_6(self):
        g, s = schedule_s1()
        peaks = validate_schedule(g, Platform(1, 1), s)
        assert s.makespan == 6
        # §3.3: s1 uses 2 units of blue memory and 5 units of red memory.
        assert peaks[Memory.BLUE] == 2
        assert peaks[Memory.RED] == 5

    def test_s1_valid_under_bound_5(self):
        g, s = schedule_s1(Platform(1, 1, 5, 5))
        assert is_valid(g, Platform(1, 1, 5, 5), s)

    def test_s1_invalid_under_bound_4(self):
        g, s = schedule_s1(Platform(1, 1, 4, 4))
        with pytest.raises(ScheduleError, match="memory peak"):
            validate_schedule(g, Platform(1, 1, 4, 4), s)
        # ... but fine if the memory check is disabled.
        validate_schedule(g, Platform(1, 1, 4, 4), s, check_memory=False)

    def test_memory_peaks_helper_matches(self):
        g, s = schedule_s1()
        peaks = memory_peaks(g, Platform(1, 1), s)
        assert peaks[Memory.BLUE] == 2 and peaks[Memory.RED] == 5


class TestResidencies:
    def test_file_residency_windows(self):
        g, s = schedule_s1()
        res = {(r.src, r.dst, r.memory): (r.start, r.end)
               for r in file_residencies(g, s)}
        # (T1,T2) crosses red -> blue: red copy [0, 2), blue copy [1, 4).
        assert res[("T1", "T2", Memory.RED)] == (0, 2)
        assert res[("T1", "T2", Memory.BLUE)] == (1, 4)
        # (T1,T3) stays on red: [0, 4).
        assert res[("T1", "T3", Memory.RED)] == (0, 4)
        # (T3,T4) stays on red: [1, 6).
        assert res[("T3", "T4", Memory.RED)] == (1, 6)

    def test_zero_size_files_have_no_residency(self):
        g = dex()
        from repro.core.graph import ATTR_SIZE
        nxg = g.to_networkx()
        for u, v in nxg.edges:
            nxg.edges[u, v][ATTR_SIZE] = 0.0
        from repro import TaskGraph
        g0 = TaskGraph.from_networkx(nxg)
        _, s = schedule_s1()
        assert file_residencies(g0, s) == []


class TestViolationDetection:
    def test_missing_task(self):
        g, s = schedule_s1()
        g.add_task("T5", 1, 1)
        with pytest.raises(ScheduleError, match="not scheduled"):
            validate_schedule(g, Platform(1, 1), s)

    def test_wrong_duration(self):
        g, s = schedule_s1()
        bad = s.copy()
        bad._placements["T4"] = Placement("T4", 1, Memory.RED, 5, 7)
        with pytest.raises(ScheduleError, match="runs for"):
            validate_schedule(g, Platform(1, 1), bad)

    def test_precedence_violation_same_memory(self):
        g, s = schedule_s1()
        bad = s.copy()
        # T3 consumes (T1, T3) on red; move T3 before T1 finishes.
        bad._placements["T3"] = Placement("T3", 1, Memory.RED, 0.5, 3.5)
        with pytest.raises(ScheduleError):
            validate_schedule(g, Platform(1, 1), bad)

    def test_missing_communication(self):
        g, s = schedule_s1()
        bad = s.copy()
        del bad._comms[("T1", "T2")]
        with pytest.raises(ScheduleError, match="no communication"):
            validate_schedule(g, Platform(1, 1), bad)

    def test_comm_before_producer(self):
        g, s = schedule_s1()
        bad = s.copy()
        bad._comms[("T1", "T2")] = CommEvent("T1", "T2", start=0.5, finish=2)
        with pytest.raises(ScheduleError, match="before producer"):
            validate_schedule(g, Platform(1, 1), bad)

    def test_comm_after_consumer(self):
        g, s = schedule_s1()
        bad = s.copy()
        bad._comms[("T2", "T4")] = CommEvent("T2", "T4", start=4.5, finish=5.5)
        with pytest.raises(ScheduleError, match="after consumer"):
            validate_schedule(g, Platform(1, 1), bad)

    def test_comm_too_short(self):
        g, s = schedule_s1()
        bad = s.copy()
        bad._comms[("T2", "T4")] = CommEvent("T2", "T4", start=4.5, finish=5)
        with pytest.raises(ScheduleError, match="lasts"):
            validate_schedule(g, Platform(1, 1), bad)

    def test_spurious_comm_on_same_memory_edge(self):
        g, s = schedule_s1()
        bad = s.copy()
        bad._comms[("T1", "T3")] = CommEvent("T1", "T3", start=1, finish=2)
        with pytest.raises(ScheduleError, match="has a communication"):
            validate_schedule(g, Platform(1, 1), bad)

    def test_processor_overlap(self):
        g = dex()
        s = Schedule(Platform(1, 1))
        # T2 and T3 overlap on the single red processor.
        s.add(Placement("T1", 1, Memory.RED, 0, 1))
        s.add(Placement("T2", 1, Memory.RED, 1, 3))
        s.add(Placement("T3", 1, Memory.RED, 2, 5))
        s.add(Placement("T4", 1, Memory.RED, 6, 7))
        with pytest.raises(ScheduleError, match="overlap"):
            validate_schedule(g, Platform(1, 1), s)

    def test_is_valid_boolean_wrapper(self):
        g, s = schedule_s1()
        assert is_valid(g, Platform(1, 1), s)
        assert not is_valid(g, Platform(1, 1, 1, 1), s)
