"""Lower bounds: analytic values on simple shapes, validity on random DAGs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import Platform, heft, lower_bound, memheft, memminmin, minmin
from repro.core.bounds import (
    critical_path_lower_bound,
    split_work_lower_bound,
    work_lower_bound,
)
from repro.core.bounds import linprog as _linprog
from repro.dags import chain, dex, fork_join, random_dag

#: The LP split-work bound is the one numpy/scipy-only bound.
needs_lp = pytest.mark.skipif(_linprog is None,
                              reason="LP bound needs numpy + scipy")


class TestCriticalPath:
    def test_chain(self):
        g = chain(5, w_blue=2, w_red=1)
        assert critical_path_lower_bound(g) == 5  # five tasks at min time 1

    def test_dex(self):
        assert critical_path_lower_bound(dex()) == 5  # T1(1)+T3(3)+T4(1)

    def test_fork_join(self):
        g = fork_join(10, w_blue=3, w_red=2)
        assert critical_path_lower_bound(g) == 6  # src + one branch + sink


class TestWorkBounds:
    def test_work_bound_divides_by_all_procs(self):
        g = fork_join(8, w_blue=2, w_red=2)  # 10 tasks, min work 2 each
        assert work_lower_bound(g, Platform(2, 2)) == 20 / 4

    @needs_lp
    def test_split_bound_respects_per_class_speeds(self):
        # Tasks fast on red only; one red processor is the bottleneck.
        g = chain(4, w_blue=100, w_red=1)
        lb = split_work_lower_bound(g, Platform(1, 1))
        # LP optimum: balance 400x = 4(1-x) -> x = 1/101, T = 400/101.
        assert lb == pytest.approx(400 / 101, rel=1e-6)

    @needs_lp
    def test_split_bound_degenerates_without_blue(self):
        g = chain(3, w_blue=5, w_red=2)
        assert split_work_lower_bound(g, Platform(0, 2)) == pytest.approx(3.0)

    @needs_lp
    def test_split_bound_degenerates_without_red(self):
        g = chain(3, w_blue=5, w_red=2)
        assert split_work_lower_bound(g, Platform(3, 0)) == pytest.approx(5.0)

    @needs_lp
    def test_split_bound_at_least_work_bound_when_balanced(self):
        g = fork_join(6, w_blue=4, w_red=4)
        assert (split_work_lower_bound(g, Platform(1, 1))
                >= work_lower_bound(g, Platform(1, 1)) - 1e-9)


class TestCombinedBound:
    def test_empty_graph(self):
        from repro import TaskGraph
        g = TaskGraph()
        assert lower_bound(g, Platform(1, 1)) == 0.0

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("procs", [(1, 1), (2, 1), (2, 3)])
    def test_no_heuristic_beats_the_bound(self, seed, procs):
        g = random_dag(size=15, rng=seed)
        plat = Platform(*procs)
        lb = lower_bound(g, plat)
        for algo in (heft, minmin, memheft, memminmin):
            assert algo(g, plat).makespan >= lb - 1e-9


@given(st.integers(min_value=1, max_value=30), st.integers(min_value=0, max_value=10**6))
def test_bound_is_nonnegative_and_finite(n, seed):
    g = random_dag(size=n, rng=seed)
    lb = lower_bound(g, Platform(2, 2))
    assert 0 <= lb < float("inf")
