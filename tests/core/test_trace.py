"""Execution traces and memory timelines."""

import pytest

from repro import Memory, Platform, memheft
from repro.core.trace import format_trace, memory_timeline, trace_schedule
from repro.dags import dex


@pytest.fixture
def traced():
    g = dex()
    plat = Platform(1, 1, 5, 5)
    s = memheft(g, plat)
    return g, plat, s, trace_schedule(g, plat, s)


class TestTraceEvents:
    def test_every_task_starts_and_finishes(self, traced):
        g, _, _, events = traced
        starts = {e.what for e in events if e.kind == "task_start"}
        finishes = {e.what for e in events if e.kind == "task_finish"}
        assert starts == finishes == {"T1", "T2", "T3", "T4"}

    def test_transfers_appear_in_pairs(self, traced):
        g, _, s, events = traced
        comm_starts = [e for e in events if e.kind == "comm_start"]
        comm_finishes = [e for e in events if e.kind == "comm_finish"]
        assert len(comm_starts) == len(comm_finishes) == s.n_comms

    def test_events_time_ordered(self, traced):
        _, _, _, events = traced
        times = [e.time for e in events]
        assert times == sorted(times)

    def test_memory_columns_match_profiles(self, traced):
        g, plat, s, events = traced
        from repro.core.validation import memory_usage
        profiles = memory_usage(g, plat, s)
        for e in events:
            assert e.used_blue == profiles[Memory.BLUE].used_at(e.time)
            assert e.used_red == profiles[Memory.RED].used_at(e.time)

    def test_finishes_sort_before_starts_at_same_instant(self):
        from repro.core.trace import _KIND_ORDER
        assert _KIND_ORDER["task_finish"] < _KIND_ORDER["task_start"]
        assert _KIND_ORDER["comm_finish"] < _KIND_ORDER["comm_start"]

    def test_format_is_one_line_per_event(self, traced):
        _, _, _, events = traced
        text = format_trace(events)
        assert len(text.splitlines()) == len(events) + 1  # header


class TestMemoryTimeline:
    def test_breakpoints_cover_schedule(self, traced):
        g, plat, s, _ = traced
        red = memory_timeline(g, plat, s, Memory.RED)
        assert red[0][0] == 0.0
        assert max(v for _, v in red) == 5  # the red peak

    def test_blue_peak(self, traced):
        g, plat, s, _ = traced
        blue = memory_timeline(g, plat, s, Memory.BLUE)
        assert max(v for _, v in blue) == s.meta["peak_blue"]
