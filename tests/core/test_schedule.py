"""Unit tests for the schedule container."""

import pytest

from repro import CommEvent, Memory, Placement, Platform, Schedule


def make_schedule():
    plat = Platform(n_blue=2, n_red=1)
    s = Schedule(plat)
    s.add(Placement("a", proc=0, memory=Memory.BLUE, start=0, finish=3))
    s.add(Placement("b", proc=2, memory=Memory.RED, start=4, finish=6))
    s.add_comm(CommEvent("a", "b", start=3, finish=4))
    return s


class TestConstruction:
    def test_basic_lookup(self):
        s = make_schedule()
        assert s.placement("a").proc == 0
        assert s.memory_of("b") is Memory.RED
        assert s.start("b") == 4 and s.finish("b") == 6
        assert "a" in s and "z" not in s
        assert len(s) == 2

    def test_duplicate_placement_rejected(self):
        s = make_schedule()
        with pytest.raises(ValueError, match="already placed"):
            s.add(Placement("a", proc=1, memory=Memory.BLUE, start=0, finish=1))

    def test_proc_out_of_range_rejected(self):
        s = make_schedule()
        with pytest.raises(ValueError):
            s.add(Placement("c", proc=9, memory=Memory.BLUE, start=0, finish=1))

    def test_memory_proc_mismatch_rejected(self):
        s = make_schedule()
        with pytest.raises(ValueError, match="not attached"):
            s.add(Placement("c", proc=0, memory=Memory.RED, start=0, finish=1))

    def test_negative_start_rejected(self):
        s = make_schedule()
        with pytest.raises(ValueError):
            s.add(Placement("c", proc=1, memory=Memory.BLUE, start=-1, finish=1))

    def test_inverted_window_rejected(self):
        s = make_schedule()
        with pytest.raises(ValueError):
            s.add(Placement("c", proc=1, memory=Memory.BLUE, start=5, finish=4))

    def test_duplicate_comm_rejected(self):
        s = make_schedule()
        with pytest.raises(ValueError, match="already scheduled"):
            s.add_comm(CommEvent("a", "b", start=3, finish=4))


class TestQueries:
    def test_makespan(self):
        assert make_schedule().makespan == 6
        assert Schedule(Platform(1, 1)).makespan == 0

    def test_tasks_on_proc_sorted_by_start(self):
        plat = Platform(1, 1)
        s = Schedule(plat)
        s.add(Placement("late", proc=0, memory=Memory.BLUE, start=5, finish=6))
        s.add(Placement("early", proc=0, memory=Memory.BLUE, start=0, finish=2))
        assert [p.task for p in s.tasks_on_proc(0)] == ["early", "late"]

    def test_tasks_on_memory(self):
        s = make_schedule()
        assert [p.task for p in s.tasks_on_memory(Memory.BLUE)] == ["a"]
        assert [p.task for p in s.tasks_on_memory(Memory.RED)] == ["b"]

    def test_comm_lookup(self):
        s = make_schedule()
        assert s.comm("a", "b").duration == 1
        assert s.comm("b", "a") is None
        assert s.n_comms == 1

    def test_proc_busy_time(self):
        s = make_schedule()
        assert s.proc_busy_time(0) == 3
        assert s.proc_busy_time(1) == 0

    def test_placement_overlap_predicate(self):
        a = Placement("a", 0, Memory.BLUE, 0, 3)
        b = Placement("b", 0, Memory.BLUE, 2, 5)
        c = Placement("c", 0, Memory.BLUE, 3, 4)
        assert a.overlaps(b)
        assert not a.overlaps(c)  # touching windows do not overlap

    def test_copy_independent(self):
        s = make_schedule()
        clone = s.copy()
        clone.add(Placement("c", proc=1, memory=Memory.BLUE, start=0, finish=1))
        clone.meta["x"] = 1
        assert "c" not in s
        assert "x" not in s.meta
        assert clone.makespan == s.makespan
