"""Validator edge cases: zero-duration tasks, zero-size files, boundary
touching, and deliberately corrupted scheduler state."""

import pytest

from repro import (
    CommEvent,
    Memory,
    Placement,
    Platform,
    Schedule,
    ScheduleError,
    TaskGraph,
    validate_schedule,
)
from repro.core.validation import file_residencies, memory_peaks


def pipeline_graph():
    """a -> null -> b with 1-unit files (the linalg broadcast pattern)."""
    g = TaskGraph()
    g.add_task("a", 2, 2)
    g.add_task("null", 0, 0)
    g.add_task("b", 2, 2)
    g.add_dependency("a", "null", size=1, comm=1)
    g.add_dependency("null", "b", size=1, comm=1)
    return g


class TestZeroDurationTasks:
    def test_zero_duration_task_between_neighbours(self):
        g = pipeline_graph()
        plat = Platform(1, 0)
        s = Schedule(plat)
        s.add(Placement("a", 0, Memory.BLUE, 0, 2))
        s.add(Placement("null", 0, Memory.BLUE, 2, 2))
        s.add(Placement("b", 0, Memory.BLUE, 2, 4))
        peaks = validate_schedule(g, plat, s)
        # File (a,null) resident [0,2); file (null,b) resident [2,4).
        assert peaks[Memory.BLUE] == 1

    def test_zero_duration_overlap_allowed_at_instant(self):
        # Two zero-length tasks at the same instant on one processor are
        # consistent with the resource constraint (no positive overlap).
        g = TaskGraph()
        g.add_task("x", 0, 0)
        g.add_task("y", 0, 0)
        plat = Platform(1, 0)
        s = Schedule(plat)
        s.add(Placement("x", 0, Memory.BLUE, 1, 1))
        s.add(Placement("y", 0, Memory.BLUE, 1, 1))
        validate_schedule(g, plat, s)


class TestZeroSizeFiles:
    def test_zero_size_cross_edge_still_needs_comm_event(self):
        g = TaskGraph()
        g.add_task("a", 1, 1)
        g.add_task("b", 1, 1)
        g.add_dependency("a", "b", size=0, comm=2)
        plat = Platform(1, 1)
        s = Schedule(plat)
        s.add(Placement("a", 0, Memory.BLUE, 0, 1))
        s.add(Placement("b", 1, Memory.RED, 3, 4))
        with pytest.raises(ScheduleError, match="no communication"):
            validate_schedule(g, plat, s)
        s.add_comm(CommEvent("a", "b", 1, 3))
        peaks = validate_schedule(g, plat, s)
        assert peaks[Memory.RED] == 0  # zero bytes, no residency

    def test_zero_size_files_do_not_appear_in_residencies(self):
        g = TaskGraph()
        g.add_task("a", 1, 1)
        g.add_task("b", 1, 1)
        g.add_dependency("a", "b", size=0, comm=0)
        plat = Platform(1, 0)
        s = Schedule(plat)
        s.add(Placement("a", 0, Memory.BLUE, 0, 1))
        s.add(Placement("b", 0, Memory.BLUE, 1, 2))
        assert file_residencies(g, s) == []


class TestBoundaryTouching:
    def test_back_to_back_execution_is_legal(self):
        g = TaskGraph()
        g.add_task("a", 1, 1)
        g.add_task("b", 1, 1)
        g.add_dependency("a", "b", size=1, comm=0)
        plat = Platform(1, 0)
        s = Schedule(plat)
        s.add(Placement("a", 0, Memory.BLUE, 0, 1))
        s.add(Placement("b", 0, Memory.BLUE, 1, 2))
        validate_schedule(g, plat, s)

    def test_comm_touching_both_endpoints(self):
        g = TaskGraph()
        g.add_task("a", 1, 1)
        g.add_task("b", 1, 1)
        g.add_dependency("a", "b", size=2, comm=1)
        plat = Platform(1, 1)
        s = Schedule(plat)
        s.add(Placement("a", 0, Memory.BLUE, 0, 1))
        s.add(Placement("b", 1, Memory.RED, 2, 3))
        s.add_comm(CommEvent("a", "b", 1, 2))
        peaks = validate_schedule(g, plat, s)
        assert peaks[Memory.BLUE] == 2   # [0, 2)
        assert peaks[Memory.RED] == 2    # [1, 3)


class TestCorruptedStateDetection:
    def test_scheduler_profile_invariants_catch_corruption(self):
        from repro.scheduling.state import SchedulerState
        from repro.dags import dex
        st = SchedulerState(dex(), Platform(1, 1, 5, 5))
        st.commit(st.est("T1", Memory.RED))
        # Inject an over-allocation behind the state's back.
        st.mem[Memory.RED].add(100, 0, 1)
        with pytest.raises(AssertionError):
            st.check_invariants()

    def test_memory_peaks_independent_of_meta(self):
        from repro import memheft
        from repro.dags import dex
        g = dex()
        plat = Platform(1, 1, 5, 5)
        s = memheft(g, plat)
        s.meta["peak_red"] = -1  # corrupt the self-reported value
        peaks = memory_peaks(g, plat, s)
        assert peaks[Memory.RED] == 5  # replay does not trust meta


class TestSpeedAwareCompleteness:
    def test_wrong_class_processor_rejected_even_with_matching_duration(self):
        # On a heterogeneous platform a placement on the wrong class's
        # processor must fail the membership check, not silently validate
        # against that processor's speed.
        from repro.core.graph import TaskGraph
        from repro.core.platform import Memory, Platform
        from repro.core.schedule import Placement, Schedule

        g = TaskGraph("one", n_classes=2)
        g.add_task("t", times=(4.0, 8.0))
        plat = Platform(1, 1, speeds=[1.0, 2.0])
        sched = Schedule(plat.unbounded())
        # Blue-memory task placed on proc 1 (red), duration = W_blue/2:
        # the duration matches proc 1's speed but the class is wrong.
        sched._placements["t"] = Placement(
            task="t", proc=1, memory=Memory.BLUE, start=0.0, finish=2.0)
        with pytest.raises(ScheduleError, match="not attached"):
            validate_schedule(g, plat, sched)
