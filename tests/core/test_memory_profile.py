"""Unit + property tests for the memory staircase profile."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import MemoryProfile


class TestBasics:
    def test_empty_profile(self):
        p = MemoryProfile(10)
        assert p.used_at(0) == 0
        assert p.used_at(1e9) == 0
        assert p.free_at(5) == 10
        assert p.peak() == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            MemoryProfile(-1)

    def test_bounded_interval(self):
        p = MemoryProfile(10)
        p.add(4, 2, 6)
        assert p.used_at(1.9) == 0
        assert p.used_at(2) == 4          # half-open: included at start
        assert p.used_at(5.999) == 4
        assert p.used_at(6) == 0          # excluded at end
        assert p.peak() == 4

    def test_open_ended_interval(self):
        p = MemoryProfile(10)
        p.add(3, 1, None)
        assert p.used_at(1e12) == 3

    def test_release_from(self):
        p = MemoryProfile(10)
        p.add(3, 0, None)
        p.release_from(3, 5)
        assert p.used_at(4.9) == 3
        assert p.used_at(5) == 0

    def test_overlapping_adds_accumulate(self):
        p = MemoryProfile(100)
        p.add(5, 0, 10)
        p.add(7, 5, 15)
        assert p.used_at(2) == 5
        assert p.used_at(7) == 12
        assert p.used_at(12) == 7
        assert p.peak() == 12

    def test_zero_amount_is_noop(self):
        p = MemoryProfile(10)
        p.add(0, 1, 5)
        assert p.n_segments() == 1

    def test_empty_interval_is_noop(self):
        p = MemoryProfile(10)
        p.add(5, 3, 3)
        p.add(5, 4, 2)
        assert p.peak() == 0

    def test_negative_start_clamped(self):
        p = MemoryProfile(10)
        p.add(2, -5, 3)
        assert p.used_at(0) == 2

    def test_peak_in_window(self):
        p = MemoryProfile(100)
        p.add(5, 0, 10)
        p.add(7, 5, 15)
        assert p.peak_in(0, 5) == 5
        assert p.peak_in(5, 10) == 12
        assert p.peak_in(10, 20) == 7
        assert p.peak_in(20, 30) == 0
        assert p.peak_in(3, 3) == 0


class TestEarliestFit:
    def test_zero_need_is_immediate(self):
        p = MemoryProfile(10)
        p.add(10, 0, None)
        assert p.earliest_fit(0) == 0
        assert p.earliest_fit(0, not_before=3) == 3

    def test_over_capacity_never_fits(self):
        p = MemoryProfile(10)
        assert p.earliest_fit(11) == math.inf

    def test_fits_after_release(self):
        p = MemoryProfile(10)
        p.add(8, 0, 5)
        assert p.earliest_fit(4) == 5
        assert p.earliest_fit(2) == 0

    def test_must_fit_forever(self):
        # Free dips below the need later: the earliest fit is after the dip.
        p = MemoryProfile(10)
        p.add(8, 5, 9)
        assert p.earliest_fit(4) == 9     # gap at [0,5) is not enough
        assert p.earliest_fit(2) == 0

    def test_tail_blocks_forever(self):
        p = MemoryProfile(10)
        p.add(9, 3, None)                  # never released
        assert p.earliest_fit(2) == math.inf
        assert p.earliest_fit(1) == 0

    def test_not_before(self):
        p = MemoryProfile(10)
        p.add(8, 0, 5)
        assert p.earliest_fit(4, not_before=7) == 7

    def test_infinite_capacity(self):
        p = MemoryProfile()
        p.add(1e9, 0, None)
        assert p.earliest_fit(1e12) == 0


class TestInvariantsAndCopy:
    def test_check_invariants_catches_negative(self):
        p = MemoryProfile(10)
        p.add(-1, 0, 5)
        with pytest.raises(AssertionError):
            p.check_invariants()

    def test_check_invariants_catches_over_capacity(self):
        p = MemoryProfile(10)
        p.add(11, 0, 5)
        with pytest.raises(AssertionError):
            p.check_invariants()

    def test_copy_is_independent(self):
        p = MemoryProfile(10)
        p.add(3, 0, 5)
        q = p.copy()
        q.add(4, 1, 2)
        assert p.used_at(1.5) == 3
        assert q.used_at(1.5) == 7

    def test_compact_preserves_semantics(self):
        p = MemoryProfile(10)
        p.add(3, 0, 5)
        p.add(2, 5, 8)
        p.add(1, 5, 8)
        p.add(-3, 5, 8)  # back to 0 on [5, 8) — mergeable with [8, inf)
        before = [p.used_at(t) for t in (0, 4.5, 6, 9)]
        p.compact()
        after = [p.used_at(t) for t in (0, 4.5, 6, 9)]
        assert before == after
        assert p.n_segments() <= 3


# ----------------------------------------------------------------------
# property tests against a brute-force reference
# ----------------------------------------------------------------------
interval = st.tuples(
    st.integers(min_value=1, max_value=9),    # amount
    st.integers(min_value=0, max_value=20),   # start
    st.one_of(st.none(), st.integers(min_value=1, max_value=25)),  # length
)


def _reference_used(ops, t):
    total = 0
    for amount, start, length in ops:
        end = math.inf if length is None else start + length
        if start <= t < end:
            total += amount
    return total


@given(st.lists(interval, max_size=12))
def test_used_at_matches_brute_force(ops):
    p = MemoryProfile(1000)
    for amount, start, length in ops:
        p.add(amount, start, None if length is None else start + length)
    for t in range(0, 50, 3):
        assert p.used_at(t) == pytest.approx(_reference_used(ops, t))


@given(st.lists(interval, max_size=12), st.integers(min_value=1, max_value=60))
def test_earliest_fit_matches_brute_force(ops, need):
    capacity = 60
    p = MemoryProfile(capacity)
    for amount, start, length in ops:
        p.add(amount, start, None if length is None else start + length)
    got = p.earliest_fit(need)
    # Brute force over the integer event grid (all inputs are integers).
    horizon = 60
    expected = math.inf
    for t in range(horizon + 1):
        if all(capacity - _reference_used(ops, u) >= need
               for u in range(t, horizon + 1)):
            expected = t
            break
    assert got == pytest.approx(expected)


@given(st.lists(interval, max_size=12))
def test_peak_is_max_of_used(ops):
    p = MemoryProfile(10_000)
    for amount, start, length in ops:
        p.add(amount, start, None if length is None else start + length)
    grid_max = max(_reference_used(ops, t) for t in range(0, 50))
    assert p.peak() >= grid_max
    assert p.peak() == pytest.approx(
        max((_reference_used(ops, s) for _, s, _ in ops), default=0.0))


# ----------------------------------------------------------------------
# add_batch: the batched commit path must be bit-identical to sequential
# add() calls — same staircase function, same earliest_fit answers
# ----------------------------------------------------------------------
float_event = st.tuples(
    st.floats(min_value=-8.0, max_value=8.0, allow_nan=False,
              allow_infinity=False),
    st.floats(min_value=-2.0, max_value=20.0, allow_nan=False,
              allow_infinity=False),
    st.one_of(st.none(), st.floats(min_value=-1.0, max_value=25.0,
                                   allow_nan=False, allow_infinity=False)),
)


def _canonical(profile):
    profile.compact()
    return list(profile._xs), list(profile._vals)


class TestAddBatch:
    def test_empty_and_noop_events(self):
        p = MemoryProfile(100)
        p.add_batch([])
        p.add_batch([(0.0, 1.0, 5.0), (3.0, 7.0, 7.0), (2.0, 4.0, 2.0)])
        assert p.version == 0
        assert p.used_at(1.0) == 0.0

    def test_single_event_matches_add(self):
        a = MemoryProfile(100)
        b = MemoryProfile(100)
        a.add(5.0, 2.0, 9.0)
        b.add_batch([(5.0, 2.0, 9.0)])
        assert _canonical(a) == _canonical(b)

    def test_one_version_bump_per_batch(self):
        p = MemoryProfile(100)
        p.add_batch([(5.0, 0.0, 4.0), (-2.0, 1.0, None), (3.0, 2.0, 8.0)])
        assert p.version == 1

    def test_commit_shaped_batch(self):
        """The event shapes one scheduler commit produces: an output
        allocation to +inf, same-memory releases, and a bounded transfer
        window — against the sequential reference."""
        events = [(7.5, 3.0, None), (-2.25, 10.0, None), (1.5, 1.0, 10.0)]
        a = MemoryProfile(50)
        b = MemoryProfile(50)
        for ev in events:
            a.add(*ev)
        b.add_batch(events)
        assert _canonical(a) == _canonical(b)
        for need in (0.5, 5.0, 42.5, 49.0):
            assert a.earliest_fit(need) == b.earliest_fit(need)

    @given(st.lists(float_event, max_size=10),
           st.lists(float_event, max_size=10),
           st.floats(min_value=0.1, max_value=30.0, allow_nan=False))
    def test_batches_match_sequential_adds(self, first, second, need):
        """Two consecutive batches (with an earliest_fit query in between,
        to exercise the block-max dirty tracking) produce the exact
        staircase and answers of one-at-a-time adds."""
        def end_of(start, length):
            return None if length is None else max(0.0, start) + length

        a = MemoryProfile(30.0)
        b = MemoryProfile(30.0)
        for amount, start, length in first:
            a.add(amount, start, end_of(start, length))
        b.add_batch([(amount, start, end_of(start, length))
                     for amount, start, length in first])
        assert a.earliest_fit(need) == b.earliest_fit(need)
        for amount, start, length in second:
            a.add(amount, start, end_of(start, length))
        b.add_batch([(amount, start, end_of(start, length))
                     for amount, start, length in second])
        assert _canonical(a) == _canonical(b)
        assert a.earliest_fit(need) == b.earliest_fit(need)
        assert a.peak() == b.peak()
