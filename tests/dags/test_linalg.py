"""Tiled LU / Cholesky task graphs: node counts, structure, schedulability."""

import pytest

from repro import Platform, memheft, validate_schedule
from repro.dags.linalg import (
    DEFAULT_GPU_SPEEDUP,
    KERNEL_TIMES_MS,
    TILE_COMM_MS,
    cholesky_dag,
    cholesky_task_counts,
    lu_dag,
    lu_task_counts,
)


class TestTable1:
    def test_paper_kernel_times(self):
        assert KERNEL_TIMES_MS == {
            "getrf": 450.0, "gemm": 1450.0, "trsm_l": 990.0,
            "trsm_u": 830.0, "potrf": 450.0, "syrk": 990.0,
        }

    def test_every_kernel_has_a_speedup(self):
        assert set(DEFAULT_GPU_SPEEDUP) == set(KERNEL_TIMES_MS)
        assert all(s >= 1 for s in DEFAULT_GPU_SPEEDUP.values())

    def test_comm_is_50ms(self):
        assert TILE_COMM_MS == 50.0


class TestLU:
    @pytest.mark.parametrize("tiles", [1, 2, 3, 4, 6])
    def test_node_count_matches_closed_form(self, tiles):
        g = lu_dag(tiles)
        counts = lu_task_counts(tiles)
        assert g.n_tasks == counts["total"]
        kernels = [t for t in g.tasks() if t[0] != "bc"]
        assert len(kernels) == counts["total"] - counts["fictitious"]

    def test_kernel_counts(self):
        counts = lu_task_counts(4)
        assert counts["getrf"] == 4
        assert counts["trsm_l"] == counts["trsm_u"] == 6
        assert counts["gemm"] == 9 + 4 + 1

    def test_cubic_growth(self):
        # Total node count is Theta(t^3), as the paper notes.
        n8 = lu_task_counts(8)["total"]
        n4 = lu_task_counts(4)["total"]
        assert 5 < n8 / n4 < 9  # ~2^3 with lower-order terms

    def test_is_dag_with_single_root(self):
        g = lu_dag(4)
        g.validate()
        assert g.roots() == [("getrf", 0)]

    def test_kernel_times_applied(self):
        g = lu_dag(3)
        assert g.w_blue(("getrf", 0)) == 450
        assert g.w_red(("getrf", 0)) == 225
        assert g.w_blue(("gemm", 0, 1, 2)) == 1450
        assert g.w_red(("gemm", 0, 1, 2)) == 145

    def test_fictitious_tasks_cost_nothing(self):
        g = lu_dag(4)
        for t in g.tasks():
            if t[0] == "bc":
                assert g.w_blue(t) == 0 and g.w_red(t) == 0

    def test_all_files_are_one_tile(self):
        g = lu_dag(3)
        for u, v in g.edges():
            assert g.size(u, v) == 1
            assert g.comm(u, v) == 50

    def test_broadcast_caps_fanout(self):
        g = lu_dag(6)
        for t in g.tasks():
            assert g.out_degree(t) <= 2

    def test_custom_times_and_speedup(self):
        g = lu_dag(2, times={k: 100.0 for k in KERNEL_TIMES_MS},
                   speedup={k: 4.0 for k in KERNEL_TIMES_MS})
        assert g.w_blue(("getrf", 0)) == 100
        assert g.w_red(("getrf", 0)) == 25

    def test_invalid_tiles(self):
        with pytest.raises(ValueError):
            lu_dag(0)

    def test_schedulable_end_to_end(self):
        g = lu_dag(4)
        plat = Platform(12, 3)
        s = memheft(g, plat)
        validate_schedule(g, plat, s)


class TestCholesky:
    @pytest.mark.parametrize("tiles", [1, 2, 3, 4, 6])
    def test_node_count_matches_closed_form(self, tiles):
        g = cholesky_dag(tiles)
        counts = cholesky_task_counts(tiles)
        assert g.n_tasks == counts["total"]

    def test_kernel_counts(self):
        counts = cholesky_task_counts(4)
        assert counts["potrf"] == 4
        assert counts["trsm"] == counts["syrk"] == 6
        assert counts["gemm"] == 3 + 1  # k=0: C(3,2)=3; k=1: C(2,2)=1

    def test_half_the_gemms_of_lu(self):
        lu = lu_task_counts(8)
        chol = cholesky_task_counts(8)
        assert chol["gemm"] < lu["gemm"] / 1.9

    def test_is_dag_with_single_root(self):
        g = cholesky_dag(4)
        g.validate()
        assert g.roots() == [("potrf", 0)]

    def test_kernel_times_applied(self):
        g = cholesky_dag(3)
        assert g.w_blue(("potrf", 0)) == 450
        assert g.w_blue(("syrk", 0, 1)) == 990
        assert g.w_red(("syrk", 0, 1)) == pytest.approx(990 / 8)

    def test_broadcast_caps_fanout(self):
        g = cholesky_dag(6)
        for t in g.tasks():
            assert g.out_degree(t) <= 2

    def test_sink_is_last_potrf_or_syrk_free(self):
        g = cholesky_dag(4)
        sinks = g.sinks()
        assert sinks == [("potrf", 3)]

    def test_schedulable_end_to_end(self):
        g = cholesky_dag(4)
        plat = Platform(12, 3)
        s = memheft(g, plat)
        validate_schedule(g, plat, s)

    def test_invalid_tiles(self):
        with pytest.raises(ValueError):
            cholesky_dag(0)
