"""DAGGEN-style generator: structure, determinism, parameter semantics."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dags.daggen import (
    assign_uniform_weights,
    daggen,
    daggen_layers,
    random_dag,
)


class TestLayers:
    def test_layer_sizes_sum_to_size(self):
        for seed in range(5):
            layers = daggen_layers(100, 0.3, rng=seed)
            assert sum(layers) == 100

    def test_layer_cap_respects_width(self):
        n, w = 100, 0.3
        cap = max(1, round(2 * w * math.sqrt(n)))
        for seed in range(5):
            assert max(daggen_layers(n, w, rng=seed)) <= cap

    def test_tiny_width_gives_chain(self):
        layers = daggen_layers(10, 0.01, rng=0)
        assert layers == [1] * 10

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            daggen_layers(0, 0.5)
        with pytest.raises(ValueError):
            daggen_layers(10, 0.0)
        with pytest.raises(ValueError):
            daggen_layers(10, 1.5)


class TestStructure:
    def test_size_honoured(self):
        g = daggen(size=47, rng=0)
        assert g.n_tasks == 47

    def test_acyclic_and_layered(self):
        g = daggen(size=60, rng=1)
        g.validate()
        for u, v in g.edges():
            assert u < v  # tasks are numbered in level order

    def test_every_non_root_has_a_parent(self):
        g = daggen(size=60, width=0.4, density=0.5, jumps=3, rng=2)
        layers = daggen_layers(60, 0.4, rng=2)
        first_layer = set(range(layers[0]))
        for t in g.tasks():
            if t not in first_layer:
                assert g.in_degree(t) >= 1

    def test_deterministic_for_seed(self):
        a = daggen(size=40, rng=123)
        b = daggen(size=40, rng=123)
        assert list(a.edges()) == list(b.edges())

    def test_different_seeds_differ(self):
        a = daggen(size=40, rng=1)
        b = daggen(size=40, rng=2)
        assert list(a.edges()) != list(b.edges())

    def test_zero_density_gives_tree_like_graph(self):
        g = daggen(size=30, density=0.0, jumps=1, rng=0)
        # density 0: every non-root draws exactly one parent, no jumps.
        layers = daggen_layers(30, 0.3, rng=0)
        assert g.n_edges == 30 - layers[0]

    def test_invalid_jumps(self):
        with pytest.raises(ValueError):
            daggen(size=10, jumps=0)

    def test_invalid_density(self):
        with pytest.raises(ValueError):
            daggen(size=10, density=-0.1)


class TestWeights:
    def test_ranges_inclusive(self):
        g = random_dag(size=60, rng=0, w_range=(1, 20), c_range=(1, 10),
                       f_range=(1, 10))
        for t in g.tasks():
            assert 1 <= g.w_blue(t) <= 20
            assert 1 <= g.w_red(t) <= 20
        for u, v in g.edges():
            assert 1 <= g.comm(u, v) <= 10
            assert 1 <= g.size(u, v) <= 10

    def test_weights_are_integral(self):
        g = random_dag(size=30, rng=3)
        for t in g.tasks():
            assert g.w_blue(t).is_integer()
        for u, v in g.edges():
            assert g.size(u, v).is_integer()

    def test_assign_does_not_mutate_input(self):
        skeleton = daggen(size=20, rng=0)
        assign_uniform_weights(skeleton, rng=1)
        assert all(skeleton.w_blue(t) == 0 for t in skeleton.tasks())

    def test_structure_preserved(self):
        skeleton = daggen(size=20, rng=0)
        g = assign_uniform_weights(skeleton, rng=1)
        assert list(g.edges()) == list(skeleton.edges())

    def test_full_pipeline_deterministic(self):
        a = random_dag(size=30, rng=7)
        b = random_dag(size=30, rng=7)
        assert list(a.edges()) == list(b.edges())
        assert all(a.w_blue(t) == b.w_blue(t) for t in a.tasks())


@given(st.integers(min_value=1, max_value=60),
       st.floats(min_value=0.05, max_value=1.0),
       st.floats(min_value=0.0, max_value=1.0),
       st.integers(min_value=1, max_value=8),
       st.integers(min_value=0, max_value=2**31 - 1))
def test_generator_always_produces_valid_dags(size, width, density, jumps, seed):
    g = daggen(size=size, width=width, density=density, jumps=jumps, rng=seed)
    assert g.n_tasks == size
    g.validate()
    order = {t: k for k, t in enumerate(g.topological_order())}
    for u, v in g.edges():
        assert order[u] < order[v]
