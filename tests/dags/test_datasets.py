"""Benchmark dataset builders: sizes, ranges, per-graph determinism."""

import pytest

from repro.dags import (
    cholesky_set,
    huge_rand_set,
    large_rand_set,
    lu_set,
    small_rand_set,
    tiny_rand_set,
)


class TestRandomSets:
    def test_small_set_shape(self):
        graphs = small_rand_set(n_graphs=5, size=30)
        assert len(graphs) == 5
        assert all(g.n_tasks == 30 for g in graphs)

    def test_small_set_weight_ranges(self):
        for g in small_rand_set(n_graphs=3):
            for t in g.tasks():
                assert 1 <= g.w_blue(t) <= 20
            for u, v in g.edges():
                assert 1 <= g.size(u, v) <= 10
                assert 1 <= g.comm(u, v) <= 10

    def test_large_set_weight_ranges(self):
        for g in large_rand_set(n_graphs=2, size=40):
            for t in g.tasks():
                assert 1 <= g.w_blue(t) <= 100
            for u, v in g.edges():
                assert 1 <= g.size(u, v) <= 100

    def test_tiny_set_is_small(self):
        graphs = tiny_rand_set(n_graphs=4, size=6)
        assert all(g.n_tasks == 6 for g in graphs)

    def test_deterministic_by_seed(self):
        a = small_rand_set(n_graphs=3, seed=11)
        b = small_rand_set(n_graphs=3, seed=11)
        for ga, gb in zip(a, b):
            assert list(ga.edges()) == list(gb.edges())
            assert all(ga.w_blue(t) == gb.w_blue(t) for t in ga.tasks())

    def test_different_seed_differs(self):
        a = small_rand_set(n_graphs=1, seed=1)[0]
        b = small_rand_set(n_graphs=1, seed=2)[0]
        assert (list(a.edges()) != list(b.edges())
                or any(a.w_blue(t) != b.w_blue(t) for t in a.tasks()))

    def test_graphs_within_a_set_differ(self):
        graphs = small_rand_set(n_graphs=3)
        assert (list(graphs[0].edges()) != list(graphs[1].edges())
                or any(graphs[0].w_blue(t) != graphs[1].w_blue(t)
                       for t in graphs[0].tasks()))

    def test_names_are_indexed(self):
        graphs = small_rand_set(n_graphs=3)
        assert [g.name for g in graphs] == [f"small_rand[{k}]" for k in range(3)]


class TestHugeRandSet:
    def test_small_override_shape(self):
        # The builder itself at a CI-friendly size.
        graphs = huge_rand_set(n_graphs=2, size=60)
        assert [g.name for g in graphs] == ["huge_rand[0]", "huge_rand[1]"]
        assert all(g.n_tasks == 60 for g in graphs)
        for g in graphs:
            for t in g.tasks():
                assert 1 <= g.w_blue(t) <= 100

    def test_deterministic_by_seed(self):
        a = huge_rand_set(n_graphs=2, size=40, seed=3)
        b = huge_rand_set(n_graphs=2, size=40, seed=3)
        for ga, gb in zip(a, b):
            assert list(ga.edges()) == list(gb.edges())

    @pytest.mark.slow
    def test_default_scale(self):
        graphs = huge_rand_set()
        assert len(graphs) == 5
        assert all(g.n_tasks == 500 for g in graphs)
        for g in graphs:
            g.validate()


class TestLinalgSets:
    def test_lu_set(self):
        graphs = lu_set((2, 3))
        assert len(graphs) == 2
        assert graphs[0].name == "lu2x2"

    def test_cholesky_set(self):
        graphs = cholesky_set((2, 3))
        assert graphs[1].name == "cholesky3x3"
