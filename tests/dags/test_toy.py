"""Hand-built toy graphs, checked against the paper's Figure 2 numbers."""

import pytest

from repro.dags import chain, dex, diamond, fork_join, random_weights_graph


class TestDex:
    def test_figure2_times(self):
        g = dex()
        assert (g.w_blue("T1"), g.w_red("T1")) == (3, 1)
        assert (g.w_blue("T2"), g.w_red("T2")) == (2, 2)
        assert (g.w_blue("T3"), g.w_red("T3")) == (6, 3)
        assert (g.w_blue("T4"), g.w_red("T4")) == (1, 1)

    def test_figure2_files(self):
        g = dex()
        assert g.size("T1", "T2") == 1
        assert g.size("T1", "T3") == 2
        assert g.size("T2", "T4") == 1
        assert g.size("T3", "T4") == 2
        assert all(g.comm(u, v) == 1 for u, v in g.edges())

    def test_shape(self):
        g = dex()
        assert g.n_tasks == 4 and g.n_edges == 4
        assert g.roots() == ["T1"] and g.sinks() == ["T4"]


class TestShapes:
    def test_chain_structure(self):
        g = chain(5)
        assert g.n_tasks == 5 and g.n_edges == 4
        assert len(g.roots()) == 1 and len(g.sinks()) == 1

    def test_chain_minimum_size(self):
        assert chain(1).n_tasks == 1
        with pytest.raises(ValueError):
            chain(0)

    def test_fork_join_structure(self):
        g = fork_join(7)
        assert g.n_tasks == 9
        assert g.out_degree("src") == 7
        assert g.in_degree("sink") == 7
        with pytest.raises(ValueError):
            fork_join(0)

    def test_diamond_is_width_two(self):
        g = diamond()
        assert g.n_tasks == 4
        assert g.out_degree("src") == 2

    def test_random_weights_graph_is_dag(self):
        g = random_weights_graph(10, rng=1)
        g.validate()
        order = {t: k for k, t in enumerate(g.topological_order())}
        for u, v in g.edges():
            assert order[u] < order[v]

    def test_random_weights_graph_seeded(self):
        a = random_weights_graph(8, rng=5)
        b = random_weights_graph(8, rng=5)
        assert list(a.edges()) == list(b.edges())
