"""Decision-for-decision equivalence with the pre-refactor engine.

``tests/data/golden_schedules.json`` was captured from the seed dual-memory
implementation (commit 7a2417d) before the unified k-memory engine with the
incremental EST kernel replaced it.  The unified engine must reproduce every
placement, peak and infeasibility verdict bit-for-bit on the k = 2 case.
"""

import json
import math
from pathlib import Path

import pytest

from repro import Platform, memheft, memminmin, memsufferage
from repro.dags import dex, random_dag
from repro.scheduling.state import InfeasibleScheduleError

GOLDEN = json.loads(
    (Path(__file__).parent / "data" / "golden_schedules.json").read_text())

ALGOS = {"memheft": memheft, "memminmin": memminmin,
         "memsufferage": memsufferage}

GRAPHS = {
    "dex": dex,
    **{f"daggen30-s{seed}": (lambda s=seed: random_dag(size=30, rng=s))
       for seed in range(3)},
}


def _graph_for(case_name: str):
    base = case_name.rsplit("-", 1)[0]
    return GRAPHS[base]()


def _platform_for(case) -> Platform:
    n_blue, n_red, mem_blue, mem_red = case["platform"]
    return Platform(n_blue, n_red,
                    math.inf if mem_blue is None else mem_blue,
                    math.inf if mem_red is None else mem_red)


@pytest.mark.parametrize("case", GOLDEN["cases"],
                         ids=[f"{c['name']}-{c['algo']}"
                              for c in GOLDEN["cases"]])
def test_unified_engine_reproduces_golden_schedule(case):
    graph = _graph_for(case["name"])
    platform = _platform_for(case)
    algo = ALGOS[case["algo"]]
    if case["infeasible"]:
        with pytest.raises(InfeasibleScheduleError):
            algo(graph, platform)
        return
    schedule = algo(graph, platform)
    assert schedule.makespan == case["makespan"]
    for task_key, (proc, memory, start, finish) in case["placements"].items():
        task = int(task_key) if task_key.isdigit() else task_key
        p = schedule.placement(task)
        assert p.proc == proc
        assert p.memory.value == memory
        assert p.start == start
        assert p.finish == finish
    assert schedule.meta["peak_blue"] == case["peaks"][0]
    assert schedule.meta["peak_red"] == case["peaks"][1]


@pytest.mark.parametrize("case", GOLDEN["cases"],
                         ids=[f"{c['name']}-{c['algo']}-unitspeeds"
                              for c in GOLDEN["cases"]])
def test_explicit_unit_speeds_reproduce_golden_schedule(case):
    """PR 4 re-pin: the per-processor cost model at speeds=1.0 must stay
    bit-identical to the seed engine — the uniform-class fast path is the
    homogeneous arithmetic, not an approximation of it."""
    graph = _graph_for(case["name"])
    platform = _platform_for(case)
    platform = platform.with_speeds([1.0] * platform.n_procs)
    algo = ALGOS[case["algo"]]
    if case["infeasible"]:
        with pytest.raises(InfeasibleScheduleError):
            algo(graph, platform)
        return
    schedule = algo(graph, platform)
    assert schedule.makespan == case["makespan"]
    for task_key, (proc, memory, start, finish) in case["placements"].items():
        task = int(task_key) if task_key.isdigit() else task_key
        p = schedule.placement(task)
        assert (p.proc, p.memory.value, p.start, p.finish) == \
            (proc, memory, start, finish)
    assert schedule.meta["peak_blue"] == case["peaks"][0]
    assert schedule.meta["peak_red"] == case["peaks"][1]
