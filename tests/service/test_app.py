"""ServiceApp protocol tests — no sockets, straight into ``handle()``.

The load-bearing property throughout: every body served for a scheduling
request — cold, cached, or inside a batch — is bit-identical to what a
direct library call serializes to.
"""

import json

import pytest

from repro.core.platform import Platform
from repro.core.validation import validate_schedule
from repro.dags.daggen import random_dag
from repro.dags.toy import dex
from repro.io.json_io import (
    canonical_json,
    graph_to_dict,
    platform_to_dict,
    schedule_to_dict,
)
from repro.scheduling.registry import SCHEDULERS, get_scheduler
from repro.service.app import ServiceApp

PLATFORM = Platform(n_blue=1, n_red=1, mem_blue=5, mem_red=5)


def post(app, path, payload):
    body = payload if isinstance(payload, bytes) else \
        json.dumps(payload).encode()
    return app.handle("POST", path, body)


def schedule_req(graph=None, platform=PLATFORM, algorithm="memheft",
                 **extra):
    req = {
        "graph": graph_to_dict(graph if graph is not None else dex()),
        "platform": platform_to_dict(platform),
        "algorithm": algorithm,
    }
    req.update(extra)
    return req


def direct_body_fields(graph, platform, algorithm, **kwargs):
    schedule = get_scheduler(algorithm)(graph, platform, **kwargs)
    peaks = validate_schedule(graph, platform, schedule)
    return {
        "algorithm": algorithm,
        "makespan": schedule.makespan,
        "peaks": [peaks[m] for m in platform.memories()],
        "schedule": schedule_to_dict(schedule),
    }


class TestSchedule:
    @pytest.mark.parametrize("algorithm", sorted(SCHEDULERS))
    def test_response_equals_direct_call(self, algorithm):
        app = ServiceApp()
        status, headers, body = post(app, "/schedule",
                                     schedule_req(algorithm=algorithm))
        assert status == 200
        assert headers["X-Cache"] == "miss"
        data = json.loads(body)
        expect = direct_body_fields(dex(), PLATFORM, algorithm)
        assert data["schedule"] == expect["schedule"]
        assert data["makespan"] == expect["makespan"]
        assert data["peaks"] == expect["peaks"]
        # The body is the canonical serialization of its own parse.
        assert body == canonical_json(data).encode()

    def test_warm_hit_is_byte_identical(self):
        app = ServiceApp()
        req = schedule_req()
        _, h1, cold = post(app, "/schedule", req)
        _, h2, warm = post(app, "/schedule", req)
        assert (h1["X-Cache"], h2["X-Cache"]) == ("miss", "hit")
        assert cold == warm
        assert app.cache.stats()["hits"] == 1

    def test_equivalent_but_reordered_body_still_hits(self):
        app = ServiceApp()
        req = schedule_req()
        post(app, "/schedule", req)
        # Same content, different key order and spacing: the raw-body fast
        # path misses, the canonical digest still hits.
        reordered = json.dumps(req, sort_keys=True, indent=2).encode()
        status, headers, body = app.handle("POST", "/schedule", reordered)
        assert status == 200
        assert headers["X-Cache"] == "hit"

    def test_default_algorithm_is_memheft(self):
        app = ServiceApp()
        req = schedule_req()
        del req["algorithm"]
        _, _, body = post(app, "/schedule", req)
        assert json.loads(body)["algorithm"] == "memheft"

    def test_comm_policy_option_changes_result_and_digest(self):
        g = random_dag(size=25, rng=5)
        app = ServiceApp()
        _, _, late = post(app, "/schedule", schedule_req(g, PLATFORM.unbounded()))
        _, h, eager = post(app, "/schedule", schedule_req(
            g, PLATFORM.unbounded(), options={"comm_policy": "eager"}))
        assert h["X-Cache"] == "miss"
        assert json.loads(late)["digest"] != json.loads(eager)["digest"]

    def test_lazy_false_matches_lazy_true(self):
        g = random_dag(size=30, rng=9)
        app = ServiceApp()
        _, _, a = post(app, "/schedule",
                       schedule_req(g, PLATFORM.unbounded()))
        _, _, b = post(app, "/schedule",
                       schedule_req(g, PLATFORM.unbounded(),
                                    options={"lazy": False}))
        assert json.loads(a)["schedule"] == json.loads(b)["schedule"]


class TestErrorPaths:
    @pytest.mark.parametrize("body,err_type", [
        (b"{not json", "bad_request"),
        (b"[1,2,3]", "bad_request"),
        (b"{}", "bad_request"),
        (json.dumps({"graph": 5, "platform": {}}).encode(), "bad_request"),
    ])
    def test_malformed_requests_are_400(self, body, err_type):
        app = ServiceApp()
        status, _, out = app.handle("POST", "/schedule", body)
        assert status == 400
        assert json.loads(out)["error"]["type"] == err_type

    def test_unknown_algorithm(self):
        status, _, out = post(ServiceApp(), "/schedule",
                              schedule_req(algorithm="quantum"))
        assert status == 400
        assert json.loads(out)["error"]["type"] == "unknown_algorithm"

    def test_unknown_option_rejected(self):
        status, _, out = post(ServiceApp(), "/schedule",
                              schedule_req(options={"frobnicate": 1}))
        assert status == 400

    def test_options_on_baseline_rejected(self):
        status, _, out = post(ServiceApp(), "/schedule",
                              schedule_req(algorithm="heft",
                                           options={"comm_policy": "eager"}))
        assert status == 400

    def test_class_mismatch(self):
        req = schedule_req(platform=Platform([1, 1, 1], [5, 5, 5]))
        status, _, out = post(ServiceApp(), "/schedule", req)
        assert status == 400
        assert "memory classes" in json.loads(out)["error"]["message"]

    def test_infeasible_is_422_and_not_cached(self):
        app = ServiceApp()
        req = schedule_req(platform=Platform(1, 1, 0.5, 0.5))
        status, _, out = post(app, "/schedule", req)
        assert status == 422
        assert json.loads(out)["error"]["type"] == "infeasible"
        assert len(app.cache) == 0
        # And the identical resubmission (raw-index alias path) re-errors.
        status2, _, out2 = post(app, "/schedule", req)
        assert status2 == 422

    def test_unknown_path_and_method(self):
        app = ServiceApp()
        assert app.handle("GET", "/nope", b"")[0] == 404
        assert app.handle("GET", "/schedule", b"")[0] == 405
        assert app.handle("POST", "/healthz", b"")[0] == 405

    def test_cyclic_graph_rejected(self):
        req = schedule_req()
        req["graph"]["edges"].append(
            {"src": req["graph"]["edges"][0]["dst"],
             "dst": req["graph"]["edges"][0]["src"], "size": 1, "comm": 1})
        status, _, out = post(ServiceApp(), "/schedule", req)
        assert status == 400


class TestBatch:
    def test_batch_elements_equal_schedule_bodies(self):
        app = ServiceApp()
        graphs = [random_dag(size=15, rng=s) for s in (1, 2, 3)]
        reqs = [schedule_req(g, PLATFORM.unbounded()) for g in graphs]
        status, _, body = post(app, "/batch", {"requests": reqs})
        assert status == 200
        data = json.loads(body)
        assert data["cached"] == [False, False, False]
        singles = [json.loads(post(ServiceApp(), "/schedule", r)[2])
                   for r in reqs]
        assert data["results"] == singles

    def test_batch_deduplicates_identical_instances(self):
        app = ServiceApp()
        req = schedule_req()
        status, _, body = post(app, "/batch", {"requests": [req, req, req]})
        data = json.loads(body)
        assert data["cached"] == [False, True, True]
        assert data["results"][0] == data["results"][1] == data["results"][2]
        assert app.cache.stats()["size"] == 1

    def test_batch_embeds_per_instance_errors(self):
        app = ServiceApp()
        good = schedule_req()
        bad = schedule_req(algorithm="quantum")
        infeasible = schedule_req(platform=Platform(1, 1, 0.5, 0.5))
        _, _, body = post(app, "/batch",
                          {"requests": [good, bad, infeasible]})
        data = json.loads(body)
        assert "schedule" in data["results"][0]
        assert data["results"][1]["error"]["type"] == "unknown_algorithm"
        assert data["results"][2]["error"]["type"] == "infeasible"

    def test_batch_serial_equals_workers(self):
        graphs = [random_dag(size=20, rng=s) for s in (4, 5)]
        reqs = [schedule_req(g, PLATFORM.unbounded()) for g in graphs]
        _, _, serial = post(ServiceApp(workers=1), "/batch",
                            {"requests": reqs})
        _, _, parallel = post(ServiceApp(workers=2), "/batch",
                              {"requests": reqs})
        assert serial == parallel

    def test_batch_shape_errors(self):
        app = ServiceApp()
        assert post(app, "/batch", {"nope": []})[0] == 400
        assert post(app, "/batch", {"requests": "x"})[0] == 400

    def test_empty_batch(self):
        status, _, body = post(ServiceApp(), "/batch", {"requests": []})
        assert status == 200
        assert json.loads(body) == {"cached": [], "results": []}


class TestRobustness:
    def test_internal_errors_become_500_not_exceptions(self, monkeypatch):
        app = ServiceApp()
        monkeypatch.setattr(ServiceApp, "_handle_schedule",
                            lambda self, body: 1 / 0)
        status, _, out = post(app, "/schedule", schedule_req())
        assert status == 500
        assert json.loads(out)["error"]["type"] == "internal"

    def test_infinity_in_platform_is_400_not_500(self):
        # Python's json emits/accepts Infinity literals; canonical JSON
        # rejects them — that must surface as the *client's* error.
        req = schedule_req()
        req["platform"] = {"n_blue": 1, "n_red": 1,
                           "mem_blue": float("inf"), "mem_red": 5}
        app = ServiceApp()
        status, _, out = post(app, "/schedule", req)
        assert status == 400
        assert json.loads(out)["error"]["type"] == "bad_request"

    def test_infinity_instance_does_not_poison_batch(self):
        good = schedule_req()
        bad = schedule_req()
        bad["platform"] = {"n_blue": 1, "n_red": 1,
                           "mem_blue": float("inf"), "mem_red": 5}
        status, _, body = post(ServiceApp(), "/batch",
                               {"requests": [good, bad]})
        assert status == 200
        data = json.loads(body)
        assert "schedule" in data["results"][0]
        assert data["results"][1]["error"]["status"] == 400

    def test_batch_pool_is_persistent_across_requests(self):
        app = ServiceApp(workers=2)
        graphs = [random_dag(size=12, rng=s) for s in (41, 42, 43, 44)]
        reqs = [schedule_req(g, PLATFORM.unbounded()) for g in graphs]
        assert post(app, "/batch", {"requests": reqs[:2]})[0] == 200
        pool = app._pool
        assert pool is not None
        assert post(app, "/batch", {"requests": reqs[2:]})[0] == 200
        assert app._pool is pool   # reused, not respawned
        app.close()
        assert app._pool is None


class TestIntrospection:
    def test_algorithms_lists_registry(self):
        _, _, body = ServiceApp().handle("GET", "/algorithms", b"")
        algos = json.loads(body)["algorithms"]
        assert [a["name"] for a in algos] == sorted(SCHEDULERS)
        by_name = {a["name"]: a for a in algos}
        assert by_name["memheft"]["memory_aware"] is True
        assert by_name["heft"]["baseline"] is True
        # Every algorithm is classified exactly one way.
        for a in algos:
            assert a["memory_aware"] != a["baseline"], a
        assert by_name["sufferage"]["baseline"] is True
        assert by_name["memsufferage"]["memory_aware"] is True

    def test_healthz_counts_requests(self):
        app = ServiceApp(workers=3, cache_size=7)
        post(app, "/schedule", schedule_req())
        _, _, body = app.handle("GET", "/healthz", b"")
        health = json.loads(body)
        assert health["status"] == "ok"
        assert health["workers"] == 3
        assert health["n_requests"] == 2
        assert health["cache"]["capacity"] == 7
        assert health["cache"]["size"] == 1
