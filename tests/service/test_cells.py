"""``POST /cells``: the service side of distributed experiment sharding.

App-level tests consume the NDJSON generator straight from
``ServiceApp.handle``; transport-level tests drive a live
:class:`ThreadedServer` through :meth:`ServiceClient.run_cells` (chunked
streaming on the wire).
"""

import json

import pytest

from repro import Platform
from repro.dags import small_rand_set
from repro.experiments.engine import remote_worker
from repro.experiments.sweep import _normalized_cell
from repro.io.json_io import from_cell_wire, to_cell_wire
from repro.service import ServiceApp, ServiceClient, ThreadedServer
from repro.service.app import PROTOCOL_VERSION
from repro.service.client import ServiceClientError


@remote_worker("test.square")
def _square_cell(payload, cache, cell):
    cache["calls"] = cache.get("calls", 0) + 1
    return payload * cell * cell


@remote_worker("test.explode")
def _explode_cell(payload, cache, cell):
    if cell == 13:
        raise RuntimeError("unlucky cell")
    return cell


def _cells_body(worker, payload, cells):
    return json.dumps({
        "worker": worker,
        "payload": to_cell_wire(payload),
        "cells": [to_cell_wire(c) for c in cells],
    }).encode()


def _drain(body):
    """Consume an app-level streamed body into parsed NDJSON rows."""
    raw = b"".join(body) if not isinstance(body, bytes) else body
    return [json.loads(line) for line in raw.splitlines()]


class TestCellsEndpoint:
    def test_executes_cells_in_order(self):
        app = ServiceApp(workers=1)
        status, headers, body = app.handle(
            "POST", "/cells", _cells_body("test.square", 2, [3, 1, 2]))
        assert status == 200
        assert headers["Content-Type"] == "application/x-ndjson"
        assert headers["X-Cells"] == "3"
        rows = _drain(body)
        assert rows[-1] == {"done": 3}
        results = [from_cell_wire(r["r"]) for r in rows[:-1]]
        assert results == [18, 2, 8]
        assert [r["i"] for r in rows[:-1]] == [0, 1, 2]

    def test_worker_exception_is_structured_row(self):
        app = ServiceApp(workers=1)
        status, _headers, body = app.handle(
            "POST", "/cells", _cells_body("test.explode", None, [1, 13, 2]))
        assert status == 200
        rows = _drain(body)
        assert rows[-1] == {"done": 3}
        assert from_cell_wire(rows[0]["r"]) == 1
        assert rows[1]["error"]["type"] == "cell_error"
        assert "unlucky cell" in rows[1]["error"]["message"]
        assert from_cell_wire(rows[2]["r"]) == 2

    def test_unknown_worker_404(self):
        app = ServiceApp(workers=1)
        status, _headers, body = app.handle(
            "POST", "/cells", _cells_body("no.such.worker", None, [1]))
        assert status == 404
        assert json.loads(body)["error"]["type"] == "unknown_worker"

    def test_malformed_wire_400(self):
        app = ServiceApp(workers=1)
        body = json.dumps({"worker": "test.square", "payload": 1,
                           "cells": [{"__wire__": "rocket"}]}).encode()
        status, _headers, out = app.handle("POST", "/cells", body)
        assert status == 400
        assert json.loads(out)["error"]["type"] == "bad_request"

    @pytest.mark.parametrize("body", [
        b"[]", b'{"cells": [1]}', b'{"worker": "x", "cells": 3}',
        b'{"worker": 5, "cells": []}', b"not json",
    ])
    def test_bad_shapes_400(self, body):
        app = ServiceApp(workers=1)
        status, _headers, _out = app.handle("POST", "/cells", body)
        assert status == 400

    def test_get_method_rejected(self):
        app = ServiceApp(workers=1)
        status, _headers, _out = app.handle("GET", "/cells", b"")
        assert status == 405

    def test_healthz_counts_cells(self):
        app = ServiceApp(workers=1)
        _drain(app.handle("POST", "/cells",
                          _cells_body("test.square", 1, [1, 2]))[2])
        status, _headers, body = app.handle("GET", "/healthz", b"")
        health = json.loads(body)
        assert health["cells"] == {"requests": 1, "executed": 2}
        assert health["protocol"] == PROTOCOL_VERSION
        assert health["kernel"]["active"] in health["kernel"]["available"]
        assert "scalar" in health["kernel"]["available"]


class TestCellsOverTheWire:
    def test_streamed_roundtrip(self):
        with ThreadedServer(ServiceApp(workers=1)) as srv:
            client = ServiceClient(srv.host, srv.port)
            rows = client.run_cells(
                "test.square", to_cell_wire(3),
                [to_cell_wire(c) for c in range(5)])
            assert [from_cell_wire(r["r"]) for r in rows] == \
                [3 * c * c for c in range(5)]
            # Keep-alive must survive a streamed response.
            assert client.healthz()["status"] == "ok"
            client.close()

    def test_real_sweep_cell_worker(self):
        graphs = tuple(small_rand_set(2, 12))
        payload = (graphs, Platform(1, 1), ("memheft",), False, None)
        cells = [(0, 1.0), (1, 0.8)]
        expected = [_normalized_cell(payload, {}, c) for c in cells]
        with ThreadedServer(ServiceApp(workers=1)) as srv:
            client = ServiceClient(srv.host, srv.port)
            rows = client.run_cells(
                "sweep.normalized", to_cell_wire(payload),
                [to_cell_wire(c) for c in cells])
            client.close()
        assert [from_cell_wire(r["r"]) for r in rows] == expected

    def test_error_status_raises(self):
        with ThreadedServer(ServiceApp(workers=1)) as srv:
            client = ServiceClient(srv.host, srv.port)
            with pytest.raises(ServiceClientError) as exc_info:
                client.run_cells("no.such.worker", None, [to_cell_wire(1)])
            assert exc_info.value.status == 404
            client.close()

    @pytest.mark.slow
    def test_pool_workers_match_inprocess(self):
        graphs = tuple(small_rand_set(3, 15))
        payload = (graphs, Platform(1, 1), ("memheft", "memminmin"),
                   False, None)
        cells = [(gi, a) for gi in range(3) for a in (0.5, 0.75, 1.0)]
        serial = [_normalized_cell(payload, {}, c) for c in cells]
        with ThreadedServer(ServiceApp(workers=2)) as srv:
            client = ServiceClient(srv.host, srv.port, timeout=300.0)
            rows = client.run_cells(
                "sweep.normalized", to_cell_wire(payload),
                [to_cell_wire(c) for c in cells])
            client.close()
        assert [from_cell_wire(r["r"]) for r in rows] == serial
