"""End-to-end service tests over real sockets: a ThreadedServer driven by
ServiceClient instances, including concurrent clients and a property test
for the client/server JSON round trip."""

import http.client
import json
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.platform import Platform
from repro.core.validation import validate_schedule
from repro.dags.daggen import random_dag
from repro.dags.toy import dex
from repro.io.json_io import schedule_to_dict
from repro.scheduling.registry import get_scheduler
from repro.service import (
    ServiceApp,
    ServiceClient,
    ServiceClientError,
    ThreadedServer,
)

PLATFORM = Platform(n_blue=1, n_red=1, mem_blue=5, mem_red=5)


@pytest.fixture(scope="module")
def server():
    with ThreadedServer(ServiceApp(workers=1, cache_size=256)) as srv:
        ServiceClient(srv.host, srv.port).wait_until_ready()
        yield srv


@pytest.fixture
def client(server):
    c = ServiceClient(server.host, server.port)
    yield c
    c.close()


class TestRoundTrip:
    def test_schedule_equals_direct_call(self, client):
        resp = client.schedule(dex(), PLATFORM, "memheft")
        direct = get_scheduler("memheft")(dex(), PLATFORM)
        assert resp.schedule == schedule_to_dict(direct)
        assert resp.makespan == direct.makespan
        peaks = validate_schedule(dex(), PLATFORM, direct)
        assert resp.peaks == [peaks[m] for m in PLATFORM.memories()]

    def test_to_schedule_materialises(self, client):
        resp = client.schedule(dex(), PLATFORM, "memminmin")
        schedule = resp.to_schedule()
        validate_schedule(dex(), PLATFORM, schedule)
        assert schedule.makespan == resp.makespan

    def test_second_request_hits_cache_with_identical_bytes(self, client):
        g = random_dag(size=12, rng=101)
        cold = client.schedule(g, PLATFORM.unbounded())
        warm = client.schedule(g, PLATFORM.unbounded())
        assert cold.cached is False or cold.cached is True  # first may race
        assert warm.cached is True
        assert cold.raw == warm.raw

    def test_keep_alive_connection_reused(self, client):
        client.healthz()
        conn_before = client._conn
        client.healthz()
        assert client._conn is conn_before

    def test_batch_matches_singles(self, client):
        graphs = [random_dag(size=10, rng=s) for s in (7, 8)]
        singles = [client.schedule(g, PLATFORM.unbounded()) for g in graphs]
        results = client.batch([(g, PLATFORM.unbounded(), "memheft")
                                for g in graphs])
        for single, batched in zip(singles, results):
            assert batched.schedule == single.schedule
            assert batched.cached is True  # singles populated the cache

    def test_error_raises_client_error(self, client):
        with pytest.raises(ServiceClientError) as exc_info:
            client.schedule(dex(), PLATFORM, "quantum")
        assert exc_info.value.status == 400
        assert exc_info.value.err_type == "unknown_algorithm"

    def test_infeasible_maps_to_422(self, client):
        with pytest.raises(ServiceClientError) as exc_info:
            client.schedule(dex(), Platform(1, 1, 0.5, 0.5))
        assert exc_info.value.status == 422
        assert exc_info.value.err_type == "infeasible"

    def test_algorithms_and_healthz(self, client):
        names = [a["name"] for a in client.algorithms()]
        assert "memheft" in names and "memminmin" in names
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["n_requests"] >= 1


class TestMalformedHTTP:
    def test_bad_request_line(self, server):
        conn = http.client.HTTPConnection(server.host, server.port, timeout=5)
        conn.sock = None
        import socket as socket_mod
        raw = socket_mod.create_connection((server.host, server.port),
                                           timeout=5)
        raw.sendall(b"NOT-A-REQUEST\r\n\r\n")
        data = raw.recv(4096)
        assert b"400" in data.split(b"\r\n", 1)[0]
        raw.close()
        conn.close()

    def test_bad_content_length(self, server):
        import socket as socket_mod
        raw = socket_mod.create_connection((server.host, server.port),
                                           timeout=5)
        raw.sendall(b"POST /schedule HTTP/1.1\r\n"
                    b"Content-Length: banana\r\n\r\n")
        data = raw.recv(4096)
        assert b"400" in data.split(b"\r\n", 1)[0]
        raw.close()

    def test_oversized_header_line_is_400_not_disconnect(self, server):
        import socket as socket_mod
        raw = socket_mod.create_connection((server.host, server.port),
                                           timeout=5)
        # One header line beyond the asyncio stream limit (64 KiB).
        raw.sendall(b"POST /schedule HTTP/1.1\r\n"
                    b"X-Junk: " + b"a" * (70 * 1024) + b"\r\n\r\n")
        data = raw.recv(4096)
        assert b"400" in data.split(b"\r\n", 1)[0]
        raw.close()

    def test_invalid_json_body_is_400_not_disconnect(self, server):
        conn = http.client.HTTPConnection(server.host, server.port, timeout=5)
        conn.request("POST", "/schedule", body=b"{oops",
                     headers={"Content-Type": "application/json"})
        resp = conn.getresponse()
        assert resp.status == 400
        body = json.loads(resp.read())
        assert body["error"]["type"] == "bad_request"
        conn.close()


class TestClientRetryPolicy:
    def test_timeout_is_not_retried(self):
        app = ServiceApp()
        orig_handle = ServiceApp.handle

        def slow_handle(self, method, path, body):
            import time as time_mod
            time_mod.sleep(0.6)
            return orig_handle(self, method, path, body)

        app.handle = slow_handle.__get__(app)
        with ThreadedServer(app) as srv:
            client = ServiceClient(srv.host, srv.port, timeout=0.15)
            with pytest.raises(ServiceClientError) as exc_info:
                client.healthz()
            client.close()
            assert exc_info.value.err_type == "timeout"
            # Exactly one request reached the server: no blind resubmit.
            import time as time_mod
            time_mod.sleep(0.7)   # let the in-flight handler finish
            assert app.n_requests == 1

    def test_fresh_connection_failure_raises_immediately(self):
        client = ServiceClient("127.0.0.1", 1, timeout=1.0)
        with pytest.raises(ServiceClientError) as exc_info:
            client.healthz()
        assert exc_info.value.err_type == "transport"


class TestConcurrentClients:
    def test_concurrent_clients_get_bit_identical_schedules(self, server):
        """N threads × M mixed instances: every response must equal the
        direct library call, and repeated instances must be byte-stable."""
        graphs = [random_dag(size=14, rng=s) for s in (21, 22, 23)]
        platform = PLATFORM.unbounded()
        expected = [
            json.loads(json.dumps({
                "schedule": schedule_to_dict(
                    get_scheduler("memheft")(g, platform))
            }))["schedule"]
            for g in graphs
        ]
        failures: list[str] = []
        bodies: dict[tuple[int, int], bytes] = {}
        lock = threading.Lock()

        def worker(tid: int) -> None:
            client = ServiceClient(server.host, server.port)
            try:
                for rep in range(3):
                    for gi, g in enumerate(graphs):
                        resp = client.schedule(g, platform, "memheft")
                        if resp.schedule != expected[gi]:
                            with lock:
                                failures.append(
                                    f"thread {tid} graph {gi} mismatch")
                        with lock:
                            prev = bodies.setdefault((gi, 0), resp.raw)
                        if prev != resp.raw:
                            with lock:
                                failures.append(
                                    f"thread {tid} graph {gi} bytes differ")
            finally:
                client.close()

        threads = [threading.Thread(target=worker, args=(tid,))
                   for tid in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures

    def test_cache_accounting_sums_hits_and_misses(self):
        # Fresh server so the counters start from zero.
        with ThreadedServer(ServiceApp()) as srv:
            graphs = [random_dag(size=10, rng=s) for s in (31, 32)]
            n_threads, reps = 4, 5

            def worker() -> None:
                client = ServiceClient(srv.host, srv.port)
                for _ in range(reps):
                    for g in graphs:
                        client.schedule(g, PLATFORM.unbounded())
                client.close()

            threads = [threading.Thread(target=worker)
                       for _ in range(n_threads)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats = ServiceClient(srv.host, srv.port).healthz()["cache"]
        total = n_threads * reps * len(graphs)
        # The raw-body fast path answers byte-identical resubmissions with
        # one cache hit each; every request is accounted exactly once.
        assert stats["hits"] + stats["misses"] == total
        assert stats["size"] == len(graphs)
        assert stats["hits"] >= total - 2 * len(graphs)


# ----------------------------------------------------------------------
# client/server JSON roundtrip property test
# ----------------------------------------------------------------------
_params = st.fixed_dictionaries({
    "size": st.integers(min_value=1, max_value=18),
    "seed": st.integers(min_value=0, max_value=2**31 - 1),
    "algorithm": st.sampled_from(["memheft", "memminmin", "memsufferage"]),
})


class TestRoundTripProperty:
    @settings(max_examples=15, deadline=None)
    @given(_params)
    def test_served_schedule_equals_direct_library_call(self, server, p):
        g = random_dag(size=p["size"], rng=p["seed"])
        platform = Platform(2, 1)
        with ServiceClient(server.host, server.port) as client:
            resp = client.schedule(g, platform, p["algorithm"])
        direct = get_scheduler(p["algorithm"])(g, platform)
        assert resp.schedule == schedule_to_dict(direct)
        assert resp.makespan == direct.makespan
        # And the response parses back into a validating Schedule object.
        validate_schedule(g, platform, resp.to_schedule())


class TestConnectionClose:
    def test_connection_close_is_case_insensitive(self, server):
        import socket as socket_mod
        raw = socket_mod.create_connection((server.host, server.port),
                                           timeout=5)
        raw.sendall(b"GET /healthz HTTP/1.1\r\nConnection: Close\r\n\r\n")
        chunks = []
        while True:
            data = raw.recv(4096)
            if not data:
                break   # server honoured Close and shut the socket
            chunks.append(data)
        head = b"".join(chunks)
        assert b"Connection: close" in head
        raw.close()


class TestHardening:
    """Connection cap (503 on saturation) and per-connection idle timeout
    — the service-hardening satellite of PR 4."""

    def test_saturated_server_answers_503(self):
        import socket as socket_mod
        with ThreadedServer(ServiceApp(), max_connections=1) as srv:
            ServiceClient(srv.host, srv.port).wait_until_ready()
            # Hold one keep-alive connection open...
            first = ServiceClient(srv.host, srv.port)
            first.healthz()
            try:
                # ...then a second connection must be rejected with 503.
                raw = socket_mod.create_connection((srv.host, srv.port),
                                                   timeout=5)
                raw.sendall(b"GET /healthz HTTP/1.1\r\n\r\n")
                data = raw.recv(65536)
                assert b"503" in data.split(b"\r\n", 1)[0]
                assert b"saturated" in data
                raw.close()
                assert srv.server.n_rejected == 1
            finally:
                first.close()

    def test_rejected_client_sees_structured_error(self):
        with ThreadedServer(ServiceApp(), max_connections=1) as srv:
            holder = ServiceClient(srv.host, srv.port)
            holder.wait_until_ready()
            try:
                with pytest.raises(ServiceClientError) as exc_info:
                    ServiceClient(srv.host, srv.port).healthz()
                assert exc_info.value.status == 503
                assert exc_info.value.err_type == "saturated"
            finally:
                holder.close()

    def test_connections_below_cap_are_served(self):
        with ThreadedServer(ServiceApp(), max_connections=4) as srv:
            clients = [ServiceClient(srv.host, srv.port) for _ in range(3)]
            try:
                clients[0].wait_until_ready()
                for c in clients:
                    assert c.healthz()["status"] == "ok"
                assert srv.server.n_rejected == 0
            finally:
                for c in clients:
                    c.close()

    def test_idle_connection_is_closed_after_timeout(self):
        import socket as socket_mod
        import time as time_mod
        with ThreadedServer(ServiceApp(), idle_timeout=0.2) as srv:
            ServiceClient(srv.host, srv.port).wait_until_ready()
            raw = socket_mod.create_connection((srv.host, srv.port),
                                               timeout=5)
            raw.sendall(b"GET /healthz HTTP/1.1\r\n\r\n")
            assert b"200" in raw.recv(65536).split(b"\r\n", 1)[0]
            time_mod.sleep(0.6)            # exceed the idle timeout
            # The server closed the idle socket: reading yields EOF.
            raw.settimeout(5)
            leftover = raw.recv(65536)
            assert leftover == b""
            raw.close()

    def test_client_survives_idle_timeout_via_reconnect(self):
        import time as time_mod
        with ThreadedServer(ServiceApp(), idle_timeout=0.2) as srv:
            client = ServiceClient(srv.host, srv.port)
            try:
                client.wait_until_ready()
                time_mod.sleep(0.6)
                # Keep-alive socket was idled out; the client's
                # retry-on-reused-socket policy reconnects transparently.
                assert client.healthz()["status"] == "ok"
            finally:
                client.close()

    def test_invalid_hardening_knobs_rejected(self):
        from repro.service.server import ServiceServer
        with pytest.raises(ValueError):
            ServiceServer(max_connections=0)
        with pytest.raises(ValueError):
            ServiceServer(idle_timeout=0.0)


class TestHeterogeneousService:
    """Schema v2 end to end: ``speeds`` accepted, digests split, responses
    carry per-proc durations that the speed-aware validator accepts."""

    def test_heterogeneous_submit_roundtrip(self, client):
        g = random_dag(size=15, rng=77)
        het = Platform(2, 1, speeds=[1.0, 2.0, 1.0])
        resp = client.schedule(g, het, "memheft")
        direct = get_scheduler("memheft")(g, het)
        assert resp.schedule == schedule_to_dict(direct)
        assert resp.makespan == direct.makespan
        validate_schedule(g, het, resp.to_schedule())

    def test_speeds_split_the_cache(self, client):
        g = random_dag(size=12, rng=78)
        hom = Platform(2, 1)
        het = Platform(2, 1, speeds=[1.0, 2.0, 1.0])
        a = client.schedule(g, hom)
        b = client.schedule(g, het)
        assert a.digest != b.digest
        assert client.schedule(g, het).cached is True

    def test_unit_speeds_hit_the_homogeneous_cache_entry(self, client):
        g = random_dag(size=12, rng=79)
        cold = client.schedule(g, Platform(2, 1))
        explicit = client.schedule(g, Platform(2, 1, speeds=[1.0] * 3))
        assert explicit.digest == cold.digest
        assert explicit.cached is True
        assert explicit.raw == cold.raw

    def test_healthz_reports_digest_schema(self, client):
        assert client.healthz()["digest_schema"] == 2
