"""Content-addressed LRU cache: eviction order, accounting, thread safety."""

import threading

import pytest

from repro.service.app import ScheduleCache


class TestScheduleCache:
    def test_miss_then_hit(self):
        cache = ScheduleCache(capacity=4)
        assert cache.get("d1") is None
        cache.put("d1", b"body1")
        assert cache.get("d1") == b"body1"
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction_order(self):
        cache = ScheduleCache(capacity=2)
        cache.put("a", b"A")
        cache.put("b", b"B")
        assert cache.get("a") == b"A"   # refreshes a's recency
        cache.put("c", b"C")            # evicts b, the least recent
        assert cache.get("b") is None
        assert cache.get("a") == b"A"
        assert cache.get("c") == b"C"
        assert cache.evictions == 1
        assert len(cache) == 2

    def test_repeated_put_is_idempotent(self):
        cache = ScheduleCache(capacity=2)
        cache.put("a", b"A")
        cache.put("a", b"A")
        assert len(cache) == 1
        assert cache.evictions == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ScheduleCache(capacity=0)

    def test_stats_shape(self):
        cache = ScheduleCache(capacity=3)
        cache.put("a", b"A")
        cache.get("a")
        cache.get("zz")
        stats = cache.stats()
        assert stats == {"size": 1, "capacity": 3, "hits": 1,
                         "misses": 1, "evictions": 0, "persistent": False}

    def test_concurrent_access_keeps_accounting_consistent(self):
        cache = ScheduleCache(capacity=8)
        n_threads, n_ops = 8, 200

        def worker(k: int) -> None:
            for i in range(n_ops):
                digest = f"d{(k + i) % 16}"
                if cache.get(digest) is None:
                    cache.put(digest, digest.encode())

        threads = [threading.Thread(target=worker, args=(k,))
                   for k in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(cache) <= 8
        assert cache.hits + cache.misses == n_threads * n_ops
        # Every stored body still matches its digest.
        for digest in list(cache._data):
            assert cache._data[digest] == digest.encode()


class TestCachePersistence:
    """``cache_dir``: the LRU round-trips across restarts, eviction order
    included (the ``--cache-dir`` satellite of PR 4)."""

    def test_entries_survive_restart(self, tmp_path):
        cache = ScheduleCache(capacity=4, cache_dir=tmp_path)
        cache.put("a", b"A")
        cache.put("b", b'{"makespan": 12.5}')
        cache.close()
        back = ScheduleCache(capacity=4, cache_dir=tmp_path)
        assert back.get("a") == b"A"
        assert back.get("b") == b'{"makespan": 12.5}'
        back.close()

    def test_eviction_order_preserved_across_restart(self, tmp_path):
        cache = ScheduleCache(capacity=3, cache_dir=tmp_path)
        cache.put("a", b"A")
        cache.put("b", b"B")
        cache.put("c", b"C")
        assert cache.get("a") == b"A"   # boost a above b and c
        cache.close()

        back = ScheduleCache(capacity=3, cache_dir=tmp_path)
        back.put("d", b"D")             # must evict b (oldest), not a
        assert back.get("b") is None
        assert back.get("a") == b"A"
        assert back.get("c") == b"C"
        assert back.get("d") == b"D"
        back.close()

    def test_reload_respects_smaller_capacity(self, tmp_path):
        cache = ScheduleCache(capacity=4, cache_dir=tmp_path)
        for key in ("a", "b", "c", "d"):
            cache.put(key, key.encode())
        cache.close()
        back = ScheduleCache(capacity=2, cache_dir=tmp_path)
        assert len(back) == 2
        assert back.get("a") is None and back.get("b") is None
        assert back.get("c") == b"c" and back.get("d") == b"d"
        back.close()

    def test_journal_compacted_on_load(self, tmp_path):
        cache = ScheduleCache(capacity=2, cache_dir=tmp_path)
        for key in ("a", "b", "c", "d"):   # two evictions
            cache.put(key, key.encode())
            cache.get(key)                 # touch lines too
        cache.close()
        ScheduleCache(capacity=2, cache_dir=tmp_path).close()
        lines = (tmp_path / "cache.jsonl").read_text().splitlines()
        assert len(lines) == 2             # one put per live entry

    def test_corrupt_journal_lines_skipped(self, tmp_path):
        cache = ScheduleCache(capacity=4, cache_dir=tmp_path)
        cache.put("a", b"A")
        cache.close()
        with (tmp_path / "cache.jsonl").open("a") as fh:
            fh.write('{"op": "put", "digest": "trunc')  # crash mid-append
        back = ScheduleCache(capacity=4, cache_dir=tmp_path)
        assert back.get("a") == b"A"
        assert len(back) == 1
        back.close()

    def test_in_memory_cache_writes_nothing(self, tmp_path):
        cache = ScheduleCache(capacity=2)
        cache.put("a", b"A")
        cache.close()
        assert list(tmp_path.iterdir()) == []
        assert cache.stats()["persistent"] is False

    def test_journal_bounded_by_in_place_compaction(self, tmp_path):
        cache = ScheduleCache(capacity=2, cache_dir=tmp_path)
        cache.put("a", b"A")
        cache.put("b", b"B")
        for _ in range(3000):          # hit-heavy workload: touch lines
            cache.get("a")
        cache._journal.flush()
        lines = (tmp_path / "cache.jsonl").read_text().splitlines()
        assert len(lines) <= 1024 + 2  # compacted in place, not unbounded
        cache.close()
        back = ScheduleCache(capacity=2, cache_dir=tmp_path)
        back.put("c", b"C")            # "a" was touched last: evict "b"
        assert back.get("b") is None and back.get("a") == b"A"
        back.close()

    def test_second_instance_on_same_dir_rejected(self, tmp_path):
        import sys
        if sys.platform.startswith("win"):
            pytest.skip("flock is POSIX-only")
        cache = ScheduleCache(capacity=2, cache_dir=tmp_path)
        try:
            with pytest.raises(ValueError):
                ScheduleCache(capacity=2, cache_dir=tmp_path)
        finally:
            cache.close()
        # Released on close: a restart can reacquire.
        ScheduleCache(capacity=2, cache_dir=tmp_path).close()
