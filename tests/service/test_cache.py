"""Content-addressed LRU cache: eviction order, accounting, thread safety."""

import threading

import pytest

from repro.service.app import ScheduleCache


class TestScheduleCache:
    def test_miss_then_hit(self):
        cache = ScheduleCache(capacity=4)
        assert cache.get("d1") is None
        cache.put("d1", b"body1")
        assert cache.get("d1") == b"body1"
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction_order(self):
        cache = ScheduleCache(capacity=2)
        cache.put("a", b"A")
        cache.put("b", b"B")
        assert cache.get("a") == b"A"   # refreshes a's recency
        cache.put("c", b"C")            # evicts b, the least recent
        assert cache.get("b") is None
        assert cache.get("a") == b"A"
        assert cache.get("c") == b"C"
        assert cache.evictions == 1
        assert len(cache) == 2

    def test_repeated_put_is_idempotent(self):
        cache = ScheduleCache(capacity=2)
        cache.put("a", b"A")
        cache.put("a", b"A")
        assert len(cache) == 1
        assert cache.evictions == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ScheduleCache(capacity=0)

    def test_stats_shape(self):
        cache = ScheduleCache(capacity=3)
        cache.put("a", b"A")
        cache.get("a")
        cache.get("zz")
        stats = cache.stats()
        assert stats == {"size": 1, "capacity": 3, "hits": 1,
                         "misses": 1, "evictions": 0}

    def test_concurrent_access_keeps_accounting_consistent(self):
        cache = ScheduleCache(capacity=8)
        n_threads, n_ops = 8, 200

        def worker(k: int) -> None:
            for i in range(n_ops):
                digest = f"d{(k + i) % 16}"
                if cache.get(digest) is None:
                    cache.put(digest, digest.encode())

        threads = [threading.Thread(target=worker, args=(k,))
                   for k in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(cache) <= 8
        assert cache.hits + cache.misses == n_threads * n_ops
        # Every stored body still matches its digest.
        for digest in list(cache._data):
            assert cache._data[digest] == digest.encode()
