"""The compiled kernel backend is *optional*: with no usable C toolchain
the package must auto-detect down to the numpy backend (and further to
scalar without numpy), naming ``compiled`` explicitly must fail with a
pointed error, and the fallback schedules must be bit-identical.  Run in a
subprocess with ``MEMSCHED_CC=none`` — the knob the no-toolchain CI leg
uses — so the probe-and-memoize path is exercised exactly as on a machine
without a compiler."""

import json
import os
import subprocess
import sys

import pytest

_SCRIPT = r"""
import json

from repro import Platform
from repro.core.graph import TaskGraph
from repro.scheduling.kernel import available_backends, resolve_backend
from repro.scheduling.memheft import memheft
from repro.scheduling.memminmin import memminmin
from repro.scheduling.sufferage import memsufferage

out = {}
out["backends"] = list(available_backends())
out["auto"] = resolve_backend(None).name

g = TaskGraph("fallback")
g.add_task("a", w_blue=2.0, w_red=3.0)
g.add_task("b", w_blue=1.0, w_red=1.0)
g.add_task("c", w_blue=3.0, w_red=2.0)
g.add_dependency("a", "b", size=1.0, comm=2.0)
g.add_dependency("a", "c", size=2.0, comm=1.0)
platform = Platform(2, 1, 50.0, 50.0)

out["makespans"] = {
    name: fn(g, platform).makespan
    for name, fn in (("memheft", memheft), ("memminmin", memminmin),
                     ("memsufferage", memsufferage))
}

try:
    resolve_backend("compiled")
    out["compiled_backend_error"] = None
except ModuleNotFoundError as exc:
    out["compiled_backend_error"] = str(exc)

print(json.dumps(out))
"""


@pytest.fixture(scope="module")
def no_toolchain_result():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__), "..", "src")
    env.pop("MEMSCHED_KERNEL", None)
    env["MEMSCHED_CC"] = "none"
    proc = subprocess.run([sys.executable, "-c", _SCRIPT],
                          capture_output=True, text=True, env=env,
                          timeout=120)
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


def test_auto_detect_falls_back_to_numpy(no_toolchain_result):
    assert no_toolchain_result["backends"] == ["scalar", "numpy"]
    assert no_toolchain_result["auto"] == "numpy"


def test_explicit_compiled_raises_helpfully(no_toolchain_result):
    msg = no_toolchain_result["compiled_backend_error"]
    assert msg is not None
    assert "compiler" in msg.lower()


def test_fallback_matches_toolchain_interpreter(no_toolchain_result):
    """The toolchain-less subprocess must produce the *same* makespans as
    this interpreter (where auto-detection may pick the compiled backend):
    the degradation is bit-identical, not just functional."""
    from repro import Platform
    from repro.core.graph import TaskGraph
    from repro.scheduling.memheft import memheft
    from repro.scheduling.memminmin import memminmin
    from repro.scheduling.sufferage import memsufferage

    g = TaskGraph("fallback")
    g.add_task("a", w_blue=2.0, w_red=3.0)
    g.add_task("b", w_blue=1.0, w_red=1.0)
    g.add_task("c", w_blue=3.0, w_red=2.0)
    g.add_dependency("a", "b", size=1.0, comm=2.0)
    g.add_dependency("a", "c", size=2.0, comm=1.0)
    platform = Platform(2, 1, 50.0, 50.0)
    here = {"memheft": memheft(g, platform).makespan,
            "memminmin": memminmin(g, platform).makespan,
            "memsufferage": memsufferage(g, platform).makespan}
    assert no_toolchain_result["makespans"] == here
