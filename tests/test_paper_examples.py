"""Every concrete number the paper derives on its worked example, end to end.

These tests tie the implementation to the text of the report:

* §3.1 — schedule ``s1`` (Figure 3) is valid with makespan 6;
* §3.2 — the memory-usage values of ``s1`` (RedMemUsed(T1)=3,
  BlueMemUsed(T2)=2, RedMemUsed(T3)=5, RedMemUsed(T4)=3) and
  MemReq(T3)=4;
* §3.3 — peaks (2 blue, 5 red); under M=5 schedule s1 is optimal
  (makespan 6); under M=4 the optimum is s2's makespan 7 — the
  memory/makespan trade-off;
* §5.1 — the upward-rank formula;
* §6.2.1 — at alpha=1 the memory-aware heuristics reproduce HEFT.
"""

import pytest

from repro import (
    CommEvent,
    InfeasibleScheduleError,
    Memory,
    Placement,
    Platform,
    Schedule,
    memheft,
    memminmin,
    validate_schedule,
)
from repro.core.validation import memory_usage
from repro.dags import dex
from repro.ilp import optimal_eager, solve_ilp
from repro.scheduling import upward_ranks


def build_s1(platform):
    s = Schedule(platform)
    s.add(Placement("T1", proc=1, memory=Memory.RED, start=0, finish=1))
    s.add(Placement("T3", proc=1, memory=Memory.RED, start=1, finish=4))
    s.add(Placement("T2", proc=0, memory=Memory.BLUE, start=2, finish=4))
    s.add(Placement("T4", proc=1, memory=Memory.RED, start=5, finish=6))
    s.add_comm(CommEvent("T1", "T2", start=1, finish=2))
    s.add_comm(CommEvent("T2", "T4", start=4, finish=5))
    return s


class TestSection3:
    def test_s1_valid_with_makespan_6(self):
        g, plat = dex(), Platform(1, 1)
        s1 = build_s1(plat)
        validate_schedule(g, plat, s1)
        assert s1.makespan == 6

    def test_s1_memory_usage_during_each_task(self):
        g, plat = dex(), Platform(1, 1)
        usage = memory_usage(g, plat, build_s1(plat))
        red, blue = usage[Memory.RED], usage[Memory.BLUE]
        # RedMemUsed(T1) = F(1,2) + F(1,3) = 3 while T1 runs.
        assert red.peak_in(0, 1) == 3
        # RedMemUsed(T3) = F(1,2) + F(1,3) + F(3,4) = 5 (comm (1,2) ongoing).
        assert red.peak_in(1, 2) == 5
        # BlueMemUsed(T2) = F(1,2) + F(2,4) = 2.
        assert blue.peak_in(2, 4) == 2
        # RedMemUsed(T4) = F(2,4) + F(3,4) = 3.
        assert red.peak_in(5, 6) == 3

    def test_s1_peaks_match_section_3_3(self):
        g, plat = dex(), Platform(1, 1)
        peaks = validate_schedule(g, plat, build_s1(plat))
        assert peaks[Memory.BLUE] == 2
        assert peaks[Memory.RED] == 5

    def test_mem_req_t3(self):
        assert dex().mem_req("T3") == 4


class TestSection33TradeOff:
    """M=5: optimum 6 (s1).  M=4: optimum 7 (s2).  M=3: nothing."""

    def test_optimum_under_m5_is_6(self):
        sol = solve_ilp(dex(), Platform(1, 1, 5, 5), time_limit=120)
        assert sol.status == "optimal"
        assert sol.makespan == pytest.approx(6.0, abs=1e-4)

    def test_optimum_under_m4_is_7(self):
        sol = solve_ilp(dex(), Platform(1, 1, 4, 4), time_limit=120)
        assert sol.status == "optimal"
        assert sol.makespan == pytest.approx(7.0, abs=1e-4)

    def test_m3_has_no_schedule(self):
        sol = solve_ilp(dex(), Platform(1, 1, 3, 3), time_limit=120)
        assert sol.status == "infeasible"

    def test_eager_search_agrees(self):
        assert optimal_eager(dex(), Platform(1, 1, 5, 5)).makespan == 6
        assert optimal_eager(dex(), Platform(1, 1, 4, 4)).makespan == 7
        assert not optimal_eager(dex(), Platform(1, 1, 3, 3)).feasible


class TestSection5:
    def test_upward_rank_formula(self):
        ranks = upward_ranks(dex())
        assert ranks == {"T4": 1.0, "T2": 3.5, "T3": 6.0, "T1": 8.5}

    def test_memheft_matches_optimum_at_m5(self):
        s = memheft(dex(), Platform(1, 1, 5, 5))
        assert s.makespan == 6

    def test_heuristics_fail_exactly_like_the_model_at_m3(self):
        for algo in (memheft, memminmin):
            with pytest.raises(InfeasibleScheduleError):
                algo(dex(), Platform(1, 1, 3, 3))


class TestSection62:
    def test_alpha_one_reproduces_heft_on_dex(self):
        from repro.scheduling import heft
        g = dex()
        base = heft(g, Platform(1, 1))
        plat = Platform(1, 1).with_bounds(base.meta["peak_blue"],
                                          base.meta["peak_red"])
        assert memheft(g, plat).makespan == base.makespan
