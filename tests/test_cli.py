"""End-to-end CLI tests (generate -> schedule -> validate -> bounds -> ilp)."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def dex_file(tmp_path):
    path = tmp_path / "dex.json"
    assert main(["generate", "--kind", "dex", "-o", str(path)]) == 0
    return path


class TestGenerate:
    def test_daggen_to_file(self, tmp_path, capsys):
        path = tmp_path / "g.json"
        rc = main(["generate", "--kind", "daggen", "--size", "12",
                   "--seed", "3", "-o", str(path)])
        assert rc == 0
        data = json.loads(path.read_text())
        assert len(data["tasks"]) == 12
        assert "12 tasks" in capsys.readouterr().out

    def test_lu_generation(self, tmp_path):
        path = tmp_path / "lu.json"
        assert main(["generate", "--kind", "lu", "--tiles", "3",
                     "-o", str(path)]) == 0
        data = json.loads(path.read_text())
        assert any("getrf" in str(row["id"]) for row in data["tasks"])

    def test_dot_output(self, capsys):
        assert main(["generate", "--kind", "dex", "--dot"]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_summary_without_output(self, capsys):
        assert main(["generate", "--kind", "cholesky", "--tiles", "2"]) == 0
        assert "tasks" in capsys.readouterr().out


class TestSchedule:
    def test_schedule_reports_makespan(self, dex_file, capsys):
        rc = main(["schedule", str(dex_file), "--algo", "memheft",
                   "--mem-blue", "5", "--mem-red", "5", "--gantt", "--summary"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "makespan  : 6" in out
        assert "#" in out          # gantt bars
        assert "blue mem" in out   # sparklines

    def test_schedule_events_flag(self, dex_file, capsys):
        rc = main(["schedule", str(dex_file), "--algo", "memheft",
                   "--mem-blue", "5", "--mem-red", "5", "--events"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "task_start" in out
        assert "comm_finish" in out

    def test_schedule_trace_file(self, dex_file, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        rc = main(["schedule", str(dex_file), "--algo", "memheft",
                   "--mem-blue", "5", "--mem-red", "5",
                   "--trace", str(trace)])
        assert rc == 0
        lines = [json.loads(l) for l in trace.read_text().splitlines()]
        assert any(row["name"] == "memheft" for row in lines)
        assert main(["obs", "report", str(trace)]) == 0
        assert "memheft" in capsys.readouterr().out

    def test_infeasible_exit_code(self, dex_file, capsys):
        rc = main(["schedule", str(dex_file), "--algo", "memminmin",
                   "--mem-blue", "3", "--mem-red", "3"])
        assert rc == 2
        assert "INFEASIBLE" in capsys.readouterr().err

    def test_schedule_round_trip_validates(self, dex_file, tmp_path, capsys):
        sched = tmp_path / "s.json"
        assert main(["schedule", str(dex_file), "--algo", "heft",
                     "-o", str(sched)]) == 0
        assert main(["validate", str(dex_file), str(sched)]) == 0
        assert "valid schedule" in capsys.readouterr().out

    def test_validate_rejects_corrupted(self, dex_file, tmp_path, capsys):
        sched = tmp_path / "s.json"
        main(["schedule", str(dex_file), "--algo", "heft", "-o", str(sched)])
        data = json.loads(sched.read_text())
        data["placements"][0]["finish"] += 100.0
        sched.write_text(json.dumps(data))
        assert main(["validate", str(dex_file), str(sched)]) == 2
        assert "INVALID" in capsys.readouterr().err


class TestBoundsAndILP:
    def test_bounds(self, dex_file, capsys):
        assert main(["bounds", str(dex_file)]) == 0
        out = capsys.readouterr().out
        assert "critical path : 5" in out
        assert "lower bound" in out

    def test_ilp_optimal(self, dex_file, capsys):
        rc = main(["ilp", str(dex_file), "--mem-blue", "5", "--mem-red", "5",
                   "--time-limit", "120"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "optimal" in out
        assert "makespan    : 6" in out

    def test_ilp_infeasible_exit_code(self, dex_file):
        rc = main(["ilp", str(dex_file), "--mem-blue", "3", "--mem-red", "3"])
        assert rc == 2


class TestExperiment:
    def test_table1(self, capsys):
        assert main(["experiment", "table1", "--scale", "ci"]) == 0
        assert "gemm" in capsys.readouterr().out

    def test_fig11_ci(self, capsys):
        assert main(["experiment", "fig11", "--scale", "ci"]) == 0
        assert "memheft" in capsys.readouterr().out

    def test_fig12_csv_export(self, tmp_path, capsys):
        csv_path = tmp_path / "fig12.csv"
        assert main(["experiment", "fig12", "--scale", "ci",
                     "--csv", str(csv_path)]) == 0
        text = csv_path.read_text()
        assert text.startswith("alpha,algorithm")
        assert "memminmin" in text

    def test_fig11_csv_export(self, tmp_path):
        csv_path = tmp_path / "fig11.csv"
        assert main(["experiment", "fig11", "--scale", "ci",
                     "--csv", str(csv_path)]) == 0
        assert "lower_bound" in csv_path.read_text()

    def test_table1_csv_unsupported(self, tmp_path):
        rc = main(["experiment", "table1", "--scale", "ci",
                   "--csv", str(tmp_path / "t.csv")])
        assert rc == 2


class TestSubmit:
    @pytest.fixture
    def live_server(self):
        from repro.service import ServiceApp, ThreadedServer
        with ThreadedServer(ServiceApp()) as srv:
            yield srv

    def test_submit_matches_direct_schedule(self, dex_file, live_server,
                                            tmp_path, capsys):
        served = tmp_path / "served.json"
        direct = tmp_path / "direct.json"
        rc = main(["submit", str(dex_file), "--port", str(live_server.port),
                   "--algo", "memheft", "--mem-blue", "5", "--mem-red", "5",
                   "-o", str(served)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "makespan  : 6" in out
        assert "cache     : miss" in out
        assert main(["schedule", str(dex_file), "--algo", "memheft",
                     "--mem-blue", "5", "--mem-red", "5",
                     "-o", str(direct)]) == 0
        assert json.loads(served.read_text()) == json.loads(direct.read_text())

    def test_submit_second_time_hits_cache(self, dex_file, live_server,
                                           capsys):
        args = ["submit", str(dex_file), "--port", str(live_server.port),
                "--mem-blue", "5", "--mem-red", "5"]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert "cache     : hit" in capsys.readouterr().out

    def test_submit_many_graphs_uses_batch(self, dex_file, live_server,
                                           tmp_path, capsys):
        rc = main(["submit", str(dex_file), str(dex_file),
                   "--port", str(live_server.port),
                   "--mem-blue", "5", "--mem-red", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.count("makespan=6") == 2
        assert "cache=hit" in out   # the duplicate dedups inside the batch

    def test_submit_infeasible_exit_code(self, dex_file, live_server, capsys):
        rc = main(["submit", str(dex_file), "--port", str(live_server.port),
                   "--mem-blue", "0.5", "--mem-red", "0.5"])
        assert rc == 2
        assert "INFEASIBLE" in capsys.readouterr().err

    def test_submit_unreachable_service(self, dex_file, capsys):
        rc = main(["submit", str(dex_file), "--port", "1",
                   "--wait", "0.2", "--timeout", "1"])
        assert rc == 2
        assert "error" in capsys.readouterr().err


class TestSpeedsFlag:
    def test_schedule_with_speeds(self, dex_file, capsys):
        rc = main(["schedule", str(dex_file), "--algo", "memheft",
                   "--blue", "1", "--red", "1", "--speeds", "1,2"])
        assert rc == 0
        assert "makespan" in capsys.readouterr().out

    def test_speeds_written_into_schedule_json(self, dex_file, tmp_path,
                                               capsys):
        out = tmp_path / "sched.json"
        rc = main(["schedule", str(dex_file), "--algo", "memheft",
                   "--blue", "1", "--red", "1", "--speeds", "1,2",
                   "-o", str(out)])
        assert rc == 0
        import json as json_mod
        data = json_mod.loads(out.read_text())
        assert data["platform"]["speeds"] == [1.0, 2.0]
        # And the saved schedule revalidates against the saved platform.
        assert main(["validate", str(dex_file), str(out)]) == 0

    def test_speeds_with_generic_procs(self, dex_file, capsys):
        rc = main(["schedule", str(dex_file), "--algo", "memminmin",
                   "--procs", "1,1", "--mems", "inf,inf",
                   "--speeds", "2,0.5"])
        assert rc == 0

    def test_bad_speeds_rejected(self, dex_file):
        import pytest as pytest_mod
        with pytest_mod.raises(SystemExit):
            main(["schedule", str(dex_file), "--speeds", "1,banana"])
        with pytest_mod.raises(SystemExit):
            main(["schedule", str(dex_file), "--speeds", "1,2,3"])

    def test_ilp_rejects_heterogeneous_platform(self, dex_file, capsys):
        rc = main(["ilp", str(dex_file), "--blue", "1", "--red", "1",
                   "--speeds", "1,2"])
        assert rc == 2
        assert "homogeneous" in capsys.readouterr().err

    def test_bounds_speed_aware(self, dex_file, capsys):
        assert main(["bounds", str(dex_file), "--blue", "1", "--red", "1",
                     "--speeds", "4,4"]) == 0
        fast = capsys.readouterr().out
        assert main(["bounds", str(dex_file), "--blue", "1", "--red",
                     "1"]) == 0
        plain = capsys.readouterr().out
        assert fast != plain
