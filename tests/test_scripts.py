"""The experiment-runner script end to end (ci scale, fast figures only)."""

import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SCRIPT = REPO / "scripts" / "run_all_experiments.py"


def _env_with_repro():
    """Subprocess environment that can import the library from src/."""
    env = dict(os.environ)
    src = str(REPO / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def test_runner_writes_results(tmp_path):
    # Run from a temp cwd; the script writes relative to its own location,
    # so point it at a copy (and at the library via PYTHONPATH — the copy
    # no longer sits next to src/).
    target = tmp_path / "scripts"
    target.mkdir()
    copy = target / "run_all_experiments.py"
    copy.write_text(SCRIPT.read_text())
    out = subprocess.run(
        [sys.executable, str(copy), "ci", "table1", "fig11"],
        capture_output=True, text=True, cwd=tmp_path, timeout=300,
        env=_env_with_repro(),
    )
    assert out.returncode == 0, out.stderr
    results = tmp_path / "results" / "ci"
    assert (results / "table1.txt").exists()
    fig11 = (results / "fig11.txt").read_text()
    assert "memheft" in fig11
    assert "scale=ci" in fig11


def test_runner_help_smoke():
    out = subprocess.run(
        [sys.executable, str(SCRIPT), "--help"],
        capture_output=True, text=True, timeout=60, env=_env_with_repro(),
    )
    assert out.returncode == 0, out.stderr
    assert "usage" in out.stdout.lower()
