"""The experiment-runner script end to end (ci scale, fast figures only)."""

import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SCRIPT = REPO / "scripts" / "run_all_experiments.py"


def _env_with_repro():
    """Subprocess environment that can import the library from src/."""
    env = dict(os.environ)
    src = str(REPO / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def test_runner_writes_results(tmp_path):
    # Run from a temp cwd; the script writes relative to its own location,
    # so point it at a copy (and at the library via PYTHONPATH — the copy
    # no longer sits next to src/).
    target = tmp_path / "scripts"
    target.mkdir()
    copy = target / "run_all_experiments.py"
    copy.write_text(SCRIPT.read_text())
    out = subprocess.run(
        [sys.executable, str(copy), "ci", "table1", "fig11"],
        capture_output=True, text=True, cwd=tmp_path, timeout=300,
        env=_env_with_repro(),
    )
    assert out.returncode == 0, out.stderr
    results = tmp_path / "results" / "ci"
    assert (results / "table1.txt").exists()
    fig11 = (results / "fig11.txt").read_text()
    assert "memheft" in fig11
    assert "scale=ci" in fig11


def test_runner_rejects_bad_hosts_cleanly():
    out = subprocess.run(
        [sys.executable, str(SCRIPT), "ci", "table1", "--hosts", "nocolon"],
        capture_output=True, text=True, timeout=60, env=_env_with_repro(),
    )
    assert out.returncode != 0
    assert "invalid --hosts" in out.stderr
    assert "Traceback" not in out.stderr


def test_runner_help_smoke():
    out = subprocess.run(
        [sys.executable, str(SCRIPT), "--help"],
        capture_output=True, text=True, timeout=60, env=_env_with_repro(),
    )
    assert out.returncode == 0, out.stderr
    assert "usage" in out.stdout.lower()
    assert "--hosts" in out.stdout


# ----------------------------------------------------------------------
# the CI speedup gate (scripts/check_speedup.py)
# ----------------------------------------------------------------------
def _write_reports(tmp_path, sweep_speedup=2.0, batch_speedup=2.0,
                   dist_speedup=2.0, identical=True):
    import json
    scaling = tmp_path / "BENCH_scaling.json"
    scaling.write_text(json.dumps({
        "cpu_count": 4,
        "sweep": {"jobs": 4, "serial_s": 10.0,
                  "parallel_s": 10.0 / sweep_speedup,
                  "speedup": sweep_speedup, "identical_cells": identical},
    }))
    service = tmp_path / "BENCH_service.json"
    service.write_text(json.dumps({
        "cpu_count": 4,
        "batch": {"workers": 4, "serial_s": 8.0,
                  "workers_s": 8.0 / batch_speedup,
                  "speedup": batch_speedup, "identical_results": identical},
    }))
    dist = tmp_path / "BENCH_distributed.json"
    dist.write_text(json.dumps({
        "cpu_count": 4, "n_hosts": 2, "workers_per_host": 2,
        "sweep": {"serial_s": 6.0, "distributed_s": 6.0 / dist_speedup,
                  "speedup": dist_speedup, "identical_cells": identical},
    }))
    return scaling, service, dist


def _gate(argv):
    sys.path.insert(0, str(REPO / "scripts"))
    try:
        import check_speedup
        return check_speedup.main(argv)
    finally:
        sys.path.pop(0)


def test_speedup_gate_passes(tmp_path):
    scaling, service, dist = _write_reports(tmp_path)
    assert _gate(["--scaling", str(scaling), "--service", str(service),
                  "--distributed", str(dist)]) == 0


def test_speedup_gate_fails_below_threshold(tmp_path, capsys):
    scaling, service, dist = _write_reports(tmp_path, batch_speedup=1.1)
    assert _gate(["--scaling", str(scaling), "--service", str(service),
                  "--distributed", str(dist)]) == 1
    assert "SPEEDUP GATE FAILED" in capsys.readouterr().err


def test_speedup_gate_fails_on_divergent_cells(tmp_path):
    scaling, service, dist = _write_reports(tmp_path, identical=False)
    assert _gate(["--scaling", str(scaling)]) == 1


def test_speedup_gate_threshold_flag(tmp_path):
    scaling, service, dist = _write_reports(tmp_path, sweep_speedup=1.3,
                                            batch_speedup=1.3)
    assert _gate(["--scaling", str(scaling), "--service", str(service),
                  "--min-speedup", "1.25"]) == 0
