"""The pluggable EST kernel backends must be bit-identical: the vectorized
numpy path, the C compiled path and the scalar reference path commit
byte-equal schedules on every heuristic across fuzzed (graph, platform,
speeds, bound) instances, and the batch entry points return
breakdown-for-breakdown equal results."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Platform, heft
from repro.dags import random_dag
from repro.dags.toy import dex
from repro.scheduling import _cc
from repro.scheduling.kernel import (
    ENV_VAR,
    CompiledKernel,
    NumpyKernel,
    ScalarKernel,
    available_backends,
    resolve_backend,
)
from repro.scheduling.memheft import memheft
from repro.scheduling.memminmin import memminmin
from repro.scheduling.state import InfeasibleScheduleError, SchedulerState
from repro.scheduling.sufferage import memsufferage

HEURISTICS = (memheft, memminmin, memsufferage)

#: batch_cutoff=1 forces the vector path even on tiny ready sets, so small
#: fuzzed instances exercise the array/C code, not the scalar fallback.
FORCED_NUMPY = NumpyKernel(batch_cutoff=1)

HAS_COMPILED = _cc.compiled_available()
FORCED_COMPILED = CompiledKernel(batch_cutoff=1) if HAS_COMPILED else None

needs_compiled = pytest.mark.skipif(
    not HAS_COMPILED, reason="no C toolchain for the compiled backend")

#: Every vectorized kernel that must agree with the scalar reference.
VEC_KERNELS = [
    pytest.param(FORCED_NUMPY, id="numpy"),
    pytest.param(FORCED_COMPILED, id="compiled", marks=needs_compiled),
]


def _snap(schedule, graph):
    return [(t, p.proc, p.memory.index, p.start, p.finish)
            for t in graph.tasks()
            for p in (schedule.placement(t),)]


class TestResolveBackend:
    def test_names(self):
        assert resolve_backend("scalar").name == "scalar"
        assert resolve_backend("numpy").name == "numpy"
        expected_auto = "compiled" if HAS_COMPILED else "numpy"
        assert resolve_backend("auto").name == expected_auto

    @needs_compiled
    def test_compiled_resolves(self):
        assert resolve_backend("compiled").name == "compiled"

    def test_instance_passthrough(self):
        k = NumpyKernel(batch_cutoff=3)
        assert resolve_backend(k) is k

    def test_singletons(self):
        assert resolve_backend("scalar") is resolve_backend("scalar")
        assert resolve_backend("numpy") is resolve_backend("numpy")
        if HAS_COMPILED:
            assert resolve_backend("compiled") is resolve_backend("compiled")

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "scalar")
        assert resolve_backend(None).name == "scalar"
        monkeypatch.setenv(ENV_VAR, "NumPy")  # case-insensitive
        assert resolve_backend(None).name == "numpy"
        monkeypatch.setenv(ENV_VAR, "")  # empty -> auto
        assert resolve_backend(None).name == \
            ("compiled" if HAS_COMPILED else "numpy")

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numpy")
        assert resolve_backend("scalar").name == "scalar"

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            resolve_backend("cuda")

    def test_available_backends(self):
        expected = ("scalar", "numpy", "compiled") if HAS_COMPILED \
            else ("scalar", "numpy")
        assert available_backends() == expected

    def test_bad_cutoff_rejected(self):
        with pytest.raises(ValueError):
            NumpyKernel(batch_cutoff=0)

    def test_vectorized_flags(self):
        assert ScalarKernel.vectorized is False
        assert NumpyKernel.vectorized is True
        assert CompiledKernel.vectorized is True


class TestToolchainDisable:
    """MEMSCHED_CC=none must disable the compiled backend outright: auto
    falls back to numpy and naming it explicitly raises a pointed error
    (the graceful-degradation half of the backend contract)."""

    def test_disable_knob_falls_back(self, monkeypatch):
        from repro.scheduling import kernel as kernel_mod
        monkeypatch.setenv("MEMSCHED_CC", "none")
        monkeypatch.setattr(kernel_mod, "_COMPILED", None)
        _cc._reset_for_tests()
        try:
            assert available_backends() == ("scalar", "numpy")
            assert resolve_backend("auto").name == "numpy"
            with pytest.raises(ModuleNotFoundError, match="compiler"):
                resolve_backend("compiled")
            assert "compiler" in (_cc.unavailable_reason() or "")
        finally:
            monkeypatch.delenv("MEMSCHED_CC", raising=False)
            _cc._reset_for_tests()


class TestBatchParity:
    """Kernel-level comparison: the batch entry points of every vectorized
    backend return equal breakdowns at every step of a real scheduling
    run."""

    @pytest.mark.parametrize("vec", VEC_KERNELS)
    @pytest.mark.parametrize("platform", [
        Platform(2, 2, 80.0, 80.0),
        Platform(3, 1, math.inf, 50.0),
        Platform(2, 2, 120.0, 120.0, speeds=[1.0, 2.0, 0.5, 1.0]),
        Platform([1, 1, 1], [60.0, math.inf, 40.0]),
    ], ids=["bounded", "mixed", "hetero", "three-class"])
    def test_batch_equals_scalar_along_a_run(self, platform, vec):
        scalar = ScalarKernel()
        if platform.n_classes == 3:
            graph = _three_class_graph()
        else:
            graph = random_dag(size=40, rng=11)
        state = SchedulerState(graph, platform, backend="scalar")
        ready = list(state.ready_roots())
        while ready:
            for memory in state.memories:
                a = scalar.evaluate_class_batch(state, ready, memory)
                b = vec.evaluate_class_batch(state, ready, memory)
                assert a == b
            assert (scalar.best_est_batch(state, ready)
                    == vec.best_est_batch(state, ready))
            committed = None
            for task in ready:
                bd = state.best_est(task)
                if bd is not None:
                    committed = bd
                    break
            if committed is None:
                break
            state.commit(committed)
            ready = ([t for t in ready if t != committed.task]
                     + state.pop_newly_ready())

    def test_batch_fit_memo_coherent_with_scalar(self):
        """Batched earliest_fit results land in the shared (task, class)
        memo, so a later scalar evaluation reuses them verbatim."""
        graph = random_dag(size=30, rng=5)
        platform = Platform(2, 2, 100.0, 100.0)
        state = SchedulerState(graph, platform, backend=FORCED_NUMPY)
        ready = list(state.ready_roots())
        memory = state.memories[0]
        batched = FORCED_NUMPY.evaluate_class_batch(state, ready, memory)
        for task in ready:
            assert task in state._fit[memory.index][1]
        scalar = ScalarKernel()
        again = [scalar.evaluate(state, t, memory) for t in ready]
        assert batched == again

    @needs_compiled
    def test_compiled_agrees_without_touching_fit_memo(self):
        """The compiled backend recomputes fits in C instead of going
        through the (task, class) memo — its results must still equal a
        scalar evaluation that *does* populate the memo."""
        graph = random_dag(size=30, rng=5)
        platform = Platform(2, 2, 100.0, 100.0)
        state = SchedulerState(graph, platform, backend=FORCED_COMPILED)
        ready = list(state.ready_roots())
        memory = state.memories[0]
        compiled = FORCED_COMPILED.evaluate_class_batch(state, ready, memory)
        scalar = [ScalarKernel().evaluate(state, t, memory) for t in ready]
        assert compiled == scalar

    @pytest.mark.parametrize("vec_cls", [
        pytest.param(NumpyKernel, id="numpy"),
        pytest.param(CompiledKernel, id="compiled", marks=needs_compiled),
    ])
    def test_below_cutoff_falls_back_to_scalar_loop(self, vec_cls):
        graph = dex()
        platform = Platform(1, 1, 5.0, 5.0)
        state = SchedulerState(graph, platform, backend="scalar")
        big_cutoff = vec_cls(batch_cutoff=64)
        ready = list(state.ready_roots())
        a = big_cutoff.evaluate_class_batch(state, ready, state.memories[0])
        b = ScalarKernel().evaluate_class_batch(state, ready,
                                                state.memories[0])
        assert a == b


class TestTieChains:
    """Engineered exact ties: every backend must resolve them to the same
    operand as the Python reference chains."""

    @pytest.mark.parametrize("vec", VEC_KERNELS)
    def test_hetero_finish_tie_prefers_later_avail(self, vec):
        # Two processors with different speeds whose finish times tie
        # exactly: w=4 -> max(0, 0) + 4 == max(0, 2) + 4/2.  The reference
        # chain keeps the later-available processor (p1).
        graph = random_dag(size=6, rng=3)
        platform = Platform(2, 0, math.inf, math.inf, speeds=[1.0, 2.0])
        state = SchedulerState(graph, platform, backend="scalar")
        state.avail[1] = 2.0
        ready = list(state.ready_roots())
        memory = state.memories[0]
        a = ScalarKernel().evaluate_class_batch(state, ready, memory)
        b = vec.evaluate_class_batch(state, ready, memory)
        assert a == b

    @pytest.mark.parametrize("vec", VEC_KERNELS)
    def test_class_selection_eps_tie_keeps_first(self, vec):
        # Blue and red EFTs within EPS of each other: the §5.1 chain keeps
        # the earlier class, and the C chain must replicate that.
        from repro.core.graph import TaskGraph
        g = TaskGraph("tie")
        g.add_task("a", w_blue=1.0, w_red=1.0 + 1e-10)
        g.add_task("b", w_blue=2.0, w_red=2.0 - 1e-10)
        platform = Platform(1, 1, math.inf, math.inf)
        state = SchedulerState(g, platform, backend="scalar")
        ready = list(state.ready_roots())
        a = ScalarKernel().best_est_batch(state, ready)
        b = vec.best_est_batch(state, ready)
        assert a == b
        assert all(bd.memory.index == 0 for bd in a)


def _three_class_graph():
    from repro.multi import MultiTaskGraph
    g = MultiTaskGraph(3, name="tri")
    for k in range(12):
        g.add_task(k, (float(1 + k % 5), float(2 + k % 3), float(1 + k % 7)))
    for i in range(12):
        for j in range(i + 1, 12):
            if (i * 7 + j) % 3 == 0:
                g.add_dependency(i, j, size=float(1 + (i + j) % 4),
                                 comm=float(1 + (i * j) % 5))
    return g


class TestEndToEndEquivalence:
    @pytest.mark.parametrize("fn", HEURISTICS, ids=lambda f: f.__name__)
    def test_env_selected_backend_matches(self, fn, monkeypatch):
        graph = random_dag(size=30, rng=2)
        platform = Platform(2, 1, 150.0, 150.0)
        monkeypatch.setenv(ENV_VAR, "scalar")
        a = fn(graph, platform)
        for name in available_backends()[1:]:
            monkeypatch.setenv(ENV_VAR, name)
            b = fn(graph, platform)
            assert _snap(a, graph) == _snap(b, graph)

    @pytest.mark.parametrize("vec", VEC_KERNELS)
    @pytest.mark.parametrize("fn", HEURISTICS, ids=lambda f: f.__name__)
    @pytest.mark.parametrize("lazy", [True, False], ids=["lazy", "naive"])
    def test_forced_vector_path_bit_identical(self, fn, lazy, vec):
        graph = random_dag(size=35, rng=9)
        base = heft(graph, Platform(1, 1))
        bound = 0.8 * max(base.meta["peak_blue"], base.meta["peak_red"])
        platform = Platform(1, 1).with_uniform_bound(bound)
        try:
            a = fn(graph, platform, lazy=lazy, backend="scalar")
        except InfeasibleScheduleError:
            with pytest.raises(InfeasibleScheduleError):
                fn(graph, platform, lazy=lazy, backend=vec)
            return
        b = fn(graph, platform, lazy=lazy, backend=vec)
        assert _snap(a, graph) == _snap(b, graph)
        assert a.meta["peaks"] == b.meta["peaks"]


@settings(max_examples=25, deadline=None)
@given(size=st.integers(min_value=3, max_value=35),
       seed=st.integers(min_value=0, max_value=10**6),
       alpha=st.floats(min_value=0.3, max_value=1.5),
       procs=st.sampled_from([(1, 1), (2, 1), (1, 3), (2, 2)]),
       speed_pick=st.sampled_from([None, (1.0, 2.0, 0.5, 1.0, 4.0, 0.25)]))
def test_vector_backends_equal_scalar_fuzzed(size, seed, alpha, procs,
                                             speed_pick):
    """The acceptance property: numpy- and compiled-backend schedules are
    byte-identical to scalar-backend schedules across fuzzed graphs,
    platforms, processor speeds and memory bounds, on all three
    memory-aware heuristics."""
    vec_kernels = [FORCED_NUMPY] + \
        ([FORCED_COMPILED] if HAS_COMPILED else [])
    graph = random_dag(size=size, rng=seed)
    n_procs = sum(procs)
    speeds = None if speed_pick is None else list(speed_pick[:n_procs])
    base = heft(graph, Platform(*procs))
    ref_peak = max(base.meta["peak_blue"], base.meta["peak_red"]) or 1.0
    caps = alpha * ref_peak
    platform = Platform(procs[0], procs[1], caps, caps, speeds=speeds)
    for fn in HEURISTICS:
        try:
            scalar = fn(graph, platform, backend="scalar")
        except InfeasibleScheduleError:
            for vec in vec_kernels:
                with pytest.raises(InfeasibleScheduleError):
                    fn(graph, platform, backend=vec)
            continue
        for vec in vec_kernels:
            got = fn(graph, platform, backend=vec)
            assert _snap(scalar, graph) == _snap(got, graph)
            assert scalar.meta["peaks"] == got.meta["peaks"]
