"""DAG-scoped candidate invalidation must be invisible in the schedules
(bit-identical to the coarse per-class rule and the naive rescan) while
measurably cutting full kernel re-evaluations, and the commit-side cache
eviction must keep the EST memos bounded to the live candidate set."""

import math

import pytest

from repro import Platform
from repro.dags import random_dag
from repro.scheduling.candidates import MinEFTSelector, SufferageSelector
from repro.scheduling.memminmin import memminmin
from repro.scheduling.state import SchedulerState
from repro.scheduling.sufferage import memsufferage

SELECTORS = (MinEFTSelector, SufferageSelector)


def _drive(graph, platform, selector_cls, *, dag_scoped, backend="scalar"):
    """Run the generic selector loop to completion (or infeasibility)."""
    state = SchedulerState(graph, platform, backend=backend)
    index = {t: k for k, t in enumerate(graph.topological_order())}
    selector = selector_cls(state, index, dag_scoped=dag_scoped)
    for task in graph.roots():
        selector.push(task)
    while len(selector):
        best = selector.select()
        if best is None:
            break
        state.commit(best)
        selector.remove(best.task)
        for task in state.pop_newly_ready():
            selector.push(task)
    snap = {t: (p.proc, p.memory.index, p.start, p.finish)
            for t in graph.tasks() if state.is_scheduled(t)
            for p in (state.schedule.placement(t),)}
    return snap, selector.stats


class TestScopedEqualsCoarse:
    @pytest.mark.parametrize("selector_cls", SELECTORS,
                             ids=lambda c: c.__name__)
    @pytest.mark.parametrize("seed", range(3))
    def test_identical_schedules_across_bounds(self, selector_cls, seed):
        graph = random_dag(size=60, width=0.6, rng=seed)
        for platform in (Platform(2, 2),
                         Platform(2, 2, 300.0, 300.0),
                         Platform(2, 2, 90.0, 90.0),
                         Platform(1, 2, 60.0, 60.0)):
            scoped, _ = _drive(graph, platform, selector_cls,
                               dag_scoped=True)
            coarse, _ = _drive(graph, platform, selector_cls,
                               dag_scoped=False)
            assert scoped == coarse

    @pytest.mark.parametrize("selector_cls", SELECTORS,
                             ids=lambda c: c.__name__)
    def test_identical_on_heterogeneous_platform(self, selector_cls):
        graph = random_dag(size=40, rng=4)
        platform = Platform(2, 2, 200.0, 200.0,
                            speeds=[1.0, 2.0, 0.5, 1.0])
        scoped, _ = _drive(graph, platform, selector_cls, dag_scoped=True)
        coarse, _ = _drive(graph, platform, selector_cls, dag_scoped=False)
        assert scoped == coarse

    @pytest.mark.parametrize("fn", (memminmin, memsufferage),
                             ids=lambda f: f.__name__)
    def test_driver_kwarg_matches_naive(self, fn):
        graph = random_dag(size=30, rng=6)
        platform = Platform(2, 1, 150.0, 150.0)
        lazy = fn(graph, platform, lazy=True, dag_scoped=True)
        coarse = fn(graph, platform, lazy=True, dag_scoped=False)
        naive = fn(graph, platform, lazy=False)
        for t in graph.tasks():
            a, b, c = (s.placement(t) for s in (lazy, coarse, naive))
            assert (a.proc, a.memory, a.start, a.finish) \
                == (b.proc, b.memory, b.start, b.finish) \
                == (c.proc, c.memory, c.start, c.finish)


class TestReEvaluationReduction:
    def test_unbounded_wide_dag_cuts_full_evals_2x(self):
        """The acceptance bound: on wide DAGs with untouched (unbounded)
        profiles, scoped invalidation does >= 2x fewer full kernel
        evaluations than the coarse per-class rule — commits only move
        processor avail, which is an O(1) refresh, never a re-evaluation."""
        graph = random_dag(size=150, width=0.8, rng=1)
        platform = Platform(2, 2)
        for selector_cls in SELECTORS:
            _, scoped = _drive(graph, platform, selector_cls,
                               dag_scoped=True)
            _, coarse = _drive(graph, platform, selector_cls,
                               dag_scoped=False)
            assert scoped.n_full_evals * 2 <= coarse.n_full_evals, \
                selector_cls.__name__
            assert scoped.n_refreshes > 0
            # Scoped never does *more* work than coarse re-evaluation.
            assert scoped.n_full_evals <= coarse.n_full_evals

    def test_unbounded_full_evals_is_one_per_task_class(self):
        """With unbounded profiles every candidate needs exactly one full
        evaluation per class (on push); everything after is refresh/reuse."""
        graph = random_dag(size=80, width=0.8, rng=2)
        _, stats = _drive(graph, Platform(2, 2), MinEFTSelector,
                          dag_scoped=True)
        assert stats.n_full_evals == graph.n_tasks * 2

    def test_stats_dict_roundtrip(self):
        graph = random_dag(size=20, rng=0)
        _, stats = _drive(graph, Platform(1, 1), MinEFTSelector,
                          dag_scoped=True)
        d = stats.as_dict()
        assert set(d) == {"n_full_evals", "n_refreshes", "n_reused"}
        assert all(v >= 0 for v in d.values())


class TestCommitEviction:
    """Satellite: commit must evict the committed task's memo entries, so
    the _static/_fit caches stay bounded to ready-but-uncommitted tasks."""

    def test_fit_and_static_evicted_on_commit(self):
        graph = random_dag(size=25, rng=3)
        platform = Platform(1, 1, 200.0, 200.0)
        state = SchedulerState(graph, platform)
        committed = []
        ready = list(state.ready_roots())
        while ready:
            task = ready[0]
            bd = state.best_est(task)
            if bd is None:
                break
            state.commit(bd)
            committed.append(task)
            for t in committed:
                assert t not in state._static
                assert all(t not in slot[1] for slot in state._fit)
            ready = ready[1:] + state.pop_newly_ready()
        # Everything committed -> both memos fully drained.
        assert state.done
        assert not state._static
        assert all(not slot[1] for slot in state._fit)

    def test_memo_never_exceeds_live_candidate_count(self):
        graph = random_dag(size=40, width=0.7, rng=8)
        platform = Platform(2, 2, 300.0, 300.0)
        state = SchedulerState(graph, platform)
        k = platform.n_classes
        available = set(graph.roots())
        while available:
            bd = None
            for task in sorted(available,
                               key={t: i for i, t in
                                    enumerate(graph.topological_order())}
                               .__getitem__):
                bd = state.best_est(task)
                if bd is not None:
                    break
            if bd is None:
                break
            n_uncommitted = graph.n_tasks - state.n_scheduled
            assert len(state._static) <= n_uncommitted
            assert sum(len(slot[1]) for slot in state._fit) \
                <= n_uncommitted * k
            state.commit(bd)
            available.discard(bd.task)
            available.update(state.pop_newly_ready())


class TestClassResourcesCache:
    """Satellite: class_resources() is cached on the avail vector's
    version counter and invalidated by commits *and* direct writes."""

    def test_cached_until_avail_moves(self):
        graph = random_dag(size=10, rng=0)
        state = SchedulerState(graph, Platform(2, 1))
        first = state.class_resources()
        assert state.class_resources() is first  # served from cache
        bd = state.best_est(graph.roots()[0])
        state.commit(bd)
        second = state.class_resources()
        assert second is not first

    def test_direct_avail_write_invalidates(self):
        graph = random_dag(size=10, rng=0)
        state = SchedulerState(graph, Platform(2, 1))
        assert state.class_resources() == [0.0, 0.0]
        state.avail[0] = 7.0
        assert state.class_resources() == [0.0, 0.0]  # proc 1 still free
        state.avail[1] = 9.0
        assert state.class_resources() == [7.0, 0.0]

    def test_equal_value_write_keeps_cache(self):
        graph = random_dag(size=10, rng=0)
        state = SchedulerState(graph, Platform(1, 1))
        first = state.class_resources()
        v = state.avail.version
        state.avail[0] = 0.0  # no-op write
        assert state.avail.version == v
        assert state.class_resources() is first

    def test_no_proc_class_is_inf(self):
        from repro.multi import MultiPlatform, MultiTaskGraph
        g = MultiTaskGraph(3)
        g.add_task("a", (1.0, 1.0, 1.0))
        from repro.multi import MultiSchedulerState
        state = MultiSchedulerState(g, MultiPlatform([1, 1, 0]))
        assert state.class_resources() == [0.0, 0.0, math.inf]
