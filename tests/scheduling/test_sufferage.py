"""MemSufferage (library extension): semantics and the shared invariants."""

import pytest

from repro import (
    InfeasibleScheduleError,
    Memory,
    Platform,
    TaskGraph,
    memsufferage,
    sufferage,
    validate_schedule,
)
from repro.core.bounds import lower_bound
from repro.dags import dex, random_dag


def test_picks_the_task_that_suffers_most():
    # "critical" loses 100 if pushed off red; "flexible" loses nothing.
    g = TaskGraph()
    g.add_task("critical", 101, 1)
    g.add_task("flexible", 2, 2)
    plat = Platform(1, 1)
    s = memsufferage(g, plat)
    assert s.placement("critical").memory is Memory.RED
    assert s.placement("critical").start == 0
    # flexible then takes blue rather than queueing behind critical.
    assert s.placement("flexible").memory is Memory.BLUE


def test_single_feasible_memory_is_urgent():
    # "bulky" only fits in red memory (file of 8 > blue capacity) and must
    # be committed before "quick" fills red.
    g = TaskGraph()
    g.add_task("bulky", 5, 5)
    g.add_task("bsink", 1, 1)
    g.add_task("quick", 1, 1)
    g.add_dependency("bulky", "bsink", size=8)
    plat = Platform(1, 1, mem_blue=4, mem_red=9)
    s = memsufferage(g, plat)
    validate_schedule(g, plat, s)
    assert s.placement("bulky").memory is Memory.RED
    assert s.placement("bulky").start == 0


@pytest.mark.parametrize("seed", range(3))
def test_schedules_are_valid_and_bounded(seed):
    g = random_dag(size=20, rng=seed)
    plat = Platform(2, 2)
    s = memsufferage(g, plat)
    peaks = validate_schedule(g, plat, s)
    assert s.makespan >= lower_bound(g, plat) - 1e-9
    assert peaks[Memory.BLUE] == pytest.approx(s.meta["peak_blue"])


def test_respects_memory_bounds(small_random_graph):
    from repro.scheduling.heft import heft
    g = small_random_graph
    base = heft(g, Platform(1, 1))
    ref = max(base.meta["peak_blue"], base.meta["peak_red"])
    for alpha in (0.5, 0.75, 1.0):
        plat = Platform(1, 1).with_uniform_bound(alpha * ref)
        try:
            s = memsufferage(g, plat)
        except InfeasibleScheduleError:
            continue
        validate_schedule(g, plat, s)


def test_infeasible_raises():
    with pytest.raises(InfeasibleScheduleError, match="MemSufferage"):
        memsufferage(dex(), Platform(1, 1, 3, 3))


def test_baseline_is_unbounded_variant():
    g = dex()
    s = sufferage(g, Platform(1, 1, 4, 4))  # bounds ignored by the baseline
    assert s.meta["algorithm"] == "sufferage"
    validate_schedule(g, Platform(1, 1), s)


def test_registered():
    from repro import SCHEDULERS, get_scheduler
    assert "memsufferage" in SCHEDULERS
    assert get_scheduler("Sufferage") is sufferage
