"""MemMinMin-specific behaviour (Algorithm 2)."""

import pytest

from repro import (
    InfeasibleScheduleError,
    Memory,
    Platform,
    TaskGraph,
    memminmin,
    validate_schedule,
)
from repro.dags import dex


def test_picks_global_min_eft_first():
    """Among available tasks, the (task, memory) pair with the smallest EFT
    is committed first — not the highest-rank one."""
    g = TaskGraph()
    g.add_task("quick", 9, 1)    # EFT 1 on red
    g.add_task("slow", 5, 4)     # EFT 4 on red / 5 on blue
    plat = Platform(1, 1)
    s = memminmin(g, plat)
    assert s.placement("quick").start == 0
    assert s.placement("quick").memory is Memory.RED
    # "slow" then takes the idle blue processor (EFT 5) over waiting for red.
    assert s.placement("slow").memory is Memory.BLUE


def test_dynamic_order_reacts_to_memory_pressure():
    g = dex()
    plat = Platform(1, 1, 5, 5)
    s = memminmin(g, plat)
    validate_schedule(g, plat, s)
    assert s.makespan >= 6


def test_infeasible_raises_with_available_count():
    with pytest.raises(InfeasibleScheduleError, match="available"):
        memminmin(dex(), Platform(1, 1, 3, 3))


def test_all_tasks_scheduled_once(small_random_graph):
    g = small_random_graph
    s = memminmin(g, Platform(2, 2))
    assert len(s) == g.n_tasks


def test_deterministic_across_runs(small_random_graph):
    g = small_random_graph
    plat = Platform(2, 2)
    a = memminmin(g, plat)
    b = memminmin(g, plat)
    assert a.makespan == b.makespan
    for t in g.tasks():
        assert a.placement(t) == b.placement(t)


def test_eager_comm_policy_valid(small_random_graph):
    g = small_random_graph
    plat = Platform(1, 1)
    s = memminmin(g, plat, comm_policy="eager")
    validate_schedule(g, plat, s)
