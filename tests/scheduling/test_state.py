"""The EST machinery and commit bookkeeping of §5.1, step by step on Dex."""

import math

import pytest

from repro import Memory, Platform
from repro.dags import dex
from repro.scheduling.state import SchedulerState


def fresh_state(mem_blue=math.inf, mem_red=math.inf, n_blue=1, n_red=1, **kw):
    return SchedulerState(dex(), Platform(n_blue, n_red, mem_blue, mem_red), **kw)


class TestReadiness:
    def test_only_roots_ready_initially(self):
        st = fresh_state()
        assert st.is_ready("T1")
        assert not st.is_ready("T2")
        assert not st.is_ready("T4")

    def test_commit_unlocks_children(self):
        st = fresh_state()
        st.commit(st.est("T1", Memory.RED))
        assert st.is_ready("T2") and st.is_ready("T3")
        assert not st.is_ready("T4")
        assert set(st.pop_newly_ready()) == {"T2", "T3"}
        assert st.pop_newly_ready() == []

    def test_done_after_all_commits(self):
        st = fresh_state()
        for t in ("T1", "T2", "T3", "T4"):
            st.commit(st.est(t, Memory.RED))
        assert st.done and st.n_scheduled == 4


class TestESTComponents:
    def test_unready_task_is_infeasible(self):
        st = fresh_state()
        bd = st.est("T4", Memory.BLUE)
        assert not bd.feasible and bd.eft == math.inf

    def test_empty_resource_class_is_infeasible(self):
        st = SchedulerState(dex(), Platform(n_blue=0, n_red=1))
        assert not st.est("T1", Memory.BLUE).feasible
        assert st.est("T1", Memory.RED).feasible

    def test_root_est_is_zero(self):
        st = fresh_state()
        bd = st.est("T1", Memory.RED)
        assert bd.est == 0 and bd.eft == 1      # W_red(T1) = 1
        bd = st.est("T1", Memory.BLUE)
        assert bd.est == 0 and bd.eft == 3      # W_blue(T1) = 3

    def test_same_memory_child_waits_for_parent_only(self):
        st = fresh_state()
        st.commit(st.est("T1", Memory.RED))     # finishes at 1
        bd = st.est("T2", Memory.RED)
        assert bd.precedence == 1
        assert bd.cmax == 0
        assert bd.est == 1

    def test_cross_memory_child_pays_communication(self):
        st = fresh_state()
        st.commit(st.est("T1", Memory.RED))     # finishes at 1
        bd = st.est("T2", Memory.BLUE)
        assert bd.precedence == 1 + 1           # AFT(T1) + C(T1,T2)
        assert bd.cmax == 1
        assert bd.est == 2

    def test_resource_est_waits_for_processor(self):
        st = fresh_state()
        st.commit(st.est("T1", Memory.RED))     # red proc busy until 1
        st.commit(st.est("T3", Memory.RED))     # red proc busy until 4
        bd = st.est("T2", Memory.RED)
        assert bd.resource == 4
        assert bd.est == 4

    def test_task_mem_est_blocks_on_capacity(self):
        # MemReq(T3) = 4 > 3: T3 can never run on a 3-unit memory.
        st = fresh_state(mem_blue=3, mem_red=3)
        st.commit(st.est("T1", Memory.RED))
        assert not st.est("T3", Memory.RED).feasible
        assert not st.est("T3", Memory.BLUE).feasible

    def test_comm_mem_component_includes_cmax(self):
        st = fresh_state(mem_blue=5, mem_red=5)
        st.commit(st.est("T1", Memory.RED))
        bd = st.est("T2", Memory.BLUE)
        # Cross input of size 1 fits immediately: comm_mem = 0 + Cmax = 1.
        assert bd.comm_mem == 1

    def test_best_est_picks_min_eft(self):
        st = fresh_state()
        best = st.best_est("T1")
        assert best.memory is Memory.RED        # EFT 1 beats EFT 3
        assert best.eft == 1


class TestCommitBookkeeping:
    def test_outputs_allocated_at_start(self):
        st = fresh_state()
        st.commit(st.est("T1", Memory.RED))
        # out_size(T1) = 3 resident from t=0.
        assert st.mem[Memory.RED].used_at(0) == 3
        assert st.mem[Memory.BLUE].used_at(0) == 0

    def test_same_memory_input_freed_at_finish(self):
        st = fresh_state()
        st.commit(st.est("T1", Memory.RED))
        st.commit(st.est("T3", Memory.RED))     # T3 on red: [1, 4)
        # During T3: F(1,2)+F(1,3)+F(3,4) = 5 on red (paper: RedMemUsed(T3)=5).
        assert st.mem[Memory.RED].used_at(2) == 5
        # At t=4 the input F(1,3)=2 is freed; F(1,2)+F(3,4) = 3 remain.
        assert st.mem[Memory.RED].used_at(4) == 3

    def test_cross_memory_transfer_moves_the_file(self):
        st = fresh_state()
        st.commit(st.est("T1", Memory.RED))
        st.commit(st.est("T2", Memory.BLUE))    # starts at 2 after comm [1,2)
        ev = st.schedule.comm("T1", "T2")
        assert (ev.start, ev.finish) == (1, 2)
        # During the transfer only the incoming copy occupies blue.
        assert st.mem[Memory.BLUE].used_at(1.5) == 1
        assert st.mem[Memory.RED].used_at(1.5) == 3       # both copies live
        # Paper: BlueMemUsed(T2) = F(1,2) + F(2,4) = 2 while T2 runs.
        assert st.mem[Memory.BLUE].used_at(2.5) == 2
        # Source copy freed when the transfer ends: only F(1,3)=2 remains.
        assert st.mem[Memory.RED].used_at(2.5) == 2

    def test_peaks_match_paper_for_s1_like_run(self):
        st = fresh_state()
        st.commit(st.est("T1", Memory.RED))
        st.commit(st.est("T3", Memory.RED))
        st.commit(st.est("T2", Memory.BLUE))
        st.commit(st.est("T4", Memory.RED))
        peaks = st.peaks()
        assert peaks[Memory.BLUE] == 2
        assert peaks[Memory.RED] == 5
        st.check_invariants()

    def test_transfer_clipped_to_producer_finish(self):
        # Two cross parents with very different finish times: the common
        # late window would start before the slow parent finishes; the
        # commit must clip each transfer to its producer.
        from repro import TaskGraph
        g = TaskGraph()
        g.add_task("fast", 1, 1)
        g.add_task("slow", 50, 50)
        g.add_task("join", 1, 1)
        g.add_dependency("fast", "join", size=1, comm=10)
        g.add_dependency("slow", "join", size=1, comm=1)
        st = SchedulerState(g, Platform(2, 2))
        st.commit(st.est("fast", Memory.RED))
        st.commit(st.est("slow", Memory.RED))
        st.commit(st.est("join", Memory.BLUE))
        ev_slow = st.schedule.comm("slow", "join")
        assert ev_slow.start >= 50            # not before the producer ends
        ev_fast = st.schedule.comm("fast", "join")
        assert ev_fast.finish - ev_fast.start >= 10

    def test_choose_proc_minimises_idle(self):
        st = SchedulerState(dex(), Platform(3, 1))
        st.avail[0] = 5.0
        st.avail[1] = 2.0
        st.avail[2] = 9.0
        assert st.choose_proc(Memory.BLUE, est=6.0) == 0   # latest avail <= est
        assert st.choose_proc(Memory.BLUE, est=2.0) == 1

    def test_commit_infeasible_rejected(self):
        st = fresh_state()
        with pytest.raises(ValueError):
            st.commit(st.est("T4", Memory.BLUE))

    def test_invalid_comm_policy_rejected(self):
        with pytest.raises(ValueError, match="comm_policy"):
            fresh_state(comm_policy="sometimes")

    def test_eager_policy_fires_transfers_early(self):
        late = fresh_state(comm_policy="late")
        eager = fresh_state(comm_policy="eager")
        for st in (late, eager):
            st.commit(st.est("T1", Memory.RED))
            # Park T3 on red so T2's blue EST moves later.
            st.commit(st.est("T3", Memory.RED))
            st.commit(st.est("T2", Memory.BLUE))
        ev_late = late.schedule.comm("T1", "T2")
        ev_eager = eager.schedule.comm("T1", "T2")
        assert ev_eager.start <= ev_late.start
        assert ev_eager.finish - ev_eager.start == 1       # exactly C

    def test_copy_is_independent(self):
        st = fresh_state()
        st.commit(st.est("T1", Memory.RED))
        clone = st.copy()
        clone.commit(clone.est("T3", Memory.RED))
        assert st.n_scheduled == 1
        assert clone.n_scheduled == 2
        assert st.mem[Memory.RED].used_at(2) != clone.mem[Memory.RED].used_at(2)
