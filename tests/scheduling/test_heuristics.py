"""Cross-cutting behaviour of all four heuristics (DESIGN.md invariants 1-6)."""

import pytest

from repro import (
    InfeasibleScheduleError,
    Memory,
    Platform,
    get_scheduler,
    heft,
    memheft,
    memminmin,
    minmin,
    validate_schedule,
)
from repro.core.bounds import lower_bound
from repro.dags import chain, dex, fork_join, random_dag

ALL = ("heft", "minmin", "memheft", "memminmin")
MEM_AWARE = ("memheft", "memminmin")


@pytest.mark.parametrize("name", ALL)
@pytest.mark.parametrize("seed", range(3))
@pytest.mark.parametrize("procs", [(1, 1), (3, 1), (2, 2)])
def test_every_schedule_is_valid(name, seed, procs):
    g = random_dag(size=25, rng=seed)
    plat = Platform(*procs)
    s = get_scheduler(name)(g, plat)
    peaks = validate_schedule(g, plat, s)
    # Invariant 5: scheduler-side accounting == independent replay.
    assert peaks[Memory.BLUE] == pytest.approx(s.meta["peak_blue"])
    assert peaks[Memory.RED] == pytest.approx(s.meta["peak_red"])
    assert s.makespan >= lower_bound(g, plat) - 1e-9


@pytest.mark.parametrize("seed", range(3))
def test_memory_aware_equals_baseline_with_infinite_memory(seed):
    """Invariant 2 (§6.2.1): MemHEFT == HEFT and MemMinMin == MinMin when
    the memory bounds exceed what the baselines need."""
    g = random_dag(size=25, rng=seed)
    plat = Platform(1, 1)
    for base_fn, mem_fn in ((heft, memheft), (minmin, memminmin)):
        base = base_fn(g, plat)
        ample = plat.with_bounds(base.meta["peak_blue"], base.meta["peak_red"])
        mem = mem_fn(g, ample)
        assert mem.makespan == pytest.approx(base.makespan)
        for t in g.tasks():
            assert mem.placement(t).memory is base.placement(t).memory
            assert mem.placement(t).start == pytest.approx(base.placement(t).start)


@pytest.mark.parametrize("name", MEM_AWARE)
def test_memory_bounds_always_respected(name, small_random_graph):
    g = small_random_graph
    base = heft(g, Platform(1, 1))
    ref = max(base.meta["peak_blue"], base.meta["peak_red"])
    for alpha in (0.4, 0.6, 0.8, 1.0):
        plat = Platform(1, 1).with_uniform_bound(alpha * ref)
        try:
            s = get_scheduler(name)(g, plat)
        except InfeasibleScheduleError:
            continue
        peaks = validate_schedule(g, plat, s)
        assert peaks[Memory.BLUE] <= plat.mem_blue + 1e-9
        assert peaks[Memory.RED] <= plat.mem_red + 1e-9


@pytest.mark.parametrize("name", MEM_AWARE)
def test_success_is_monotone_in_memory(name, small_random_graph):
    """Invariant 6 (statistical form): once feasible, more memory stays
    feasible on the swept grid."""
    g = small_random_graph
    base = heft(g, Platform(1, 1))
    ref = max(base.meta["peak_blue"], base.meta["peak_red"])
    feasible = []
    for alpha in (0.3, 0.45, 0.6, 0.75, 0.9, 1.0):
        plat = Platform(1, 1).with_uniform_bound(alpha * ref)
        try:
            get_scheduler(name)(g, plat)
            feasible.append(True)
        except InfeasibleScheduleError:
            feasible.append(False)
    # No True followed by False.
    first_true = feasible.index(True) if True in feasible else len(feasible)
    assert all(feasible[first_true:]), feasible


@pytest.mark.parametrize("name", MEM_AWARE)
def test_infeasible_bounds_raise(name):
    g = dex()  # MemReq(T3) = 4
    plat = Platform(1, 1, 3, 3)
    with pytest.raises(InfeasibleScheduleError):
        get_scheduler(name)(g, plat)


@pytest.mark.parametrize("name", ALL)
def test_single_resource_class_platforms(name):
    g = random_dag(size=12, rng=9)
    for plat in (Platform(n_blue=2, n_red=0), Platform(n_blue=0, n_red=2)):
        s = get_scheduler(name)(g, plat)
        validate_schedule(g, plat, s)
        want = Memory.BLUE if plat.n_red == 0 else Memory.RED
        assert all(p.memory is want for p in s.placements())


@pytest.mark.parametrize("name", ALL)
def test_chain_serialises(name):
    g = chain(6, w_blue=2, w_red=1)
    s = get_scheduler(name)(g, Platform(2, 2))
    # A chain cannot be parallelised: tasks run back to back on red.
    assert s.makespan >= 6


@pytest.mark.parametrize("name", ALL)
def test_fork_join_uses_both_resources(name):
    g = fork_join(8, w_blue=5, w_red=5, size=0, comm=0)
    s = get_scheduler(name)(g, Platform(2, 2))
    validate_schedule(g, Platform(2, 2), s)
    used = {p.memory for p in s.placements()}
    assert used == {Memory.BLUE, Memory.RED}
    # 8 equal tasks on 4 procs between src and sink: 5 + 10 + 5.
    assert s.makespan == pytest.approx(20)


@pytest.mark.parametrize("name", ALL)
def test_zero_time_tasks_handled(name):
    """Fictitious pipeline tasks (W=0) must schedule cleanly."""
    from repro import TaskGraph
    g = TaskGraph()
    g.add_task("a", 2, 1)
    g.add_task("null", 0, 0)
    g.add_task("b", 2, 1)
    g.add_dependency("a", "null", size=1, comm=1)
    g.add_dependency("null", "b", size=1, comm=1)
    plat = Platform(1, 1)
    s = get_scheduler(name)(g, plat)
    validate_schedule(g, plat, s)


def test_meta_records_algorithm_name():
    g = dex()
    plat = Platform(1, 1)
    assert heft(g, plat).meta["algorithm"] == "heft"
    assert minmin(g, plat).meta["algorithm"] == "minmin"
    assert memheft(g, plat).meta["algorithm"] == "memheft"
    assert memminmin(g, plat).meta["algorithm"] == "memminmin"


def test_registry_lookup():
    assert get_scheduler("MemHEFT") is memheft
    with pytest.raises(ValueError, match="unknown scheduler"):
        get_scheduler("nope")


def test_heuristics_favour_faster_resource():
    # Everything is 10x faster on red and files are free: all tasks land red.
    g = chain(5, w_blue=10, w_red=1, size=0, comm=0)
    for name in ALL:
        s = get_scheduler(name)(g, Platform(2, 2))
        assert all(p.memory is Memory.RED for p in s.placements())
