"""MemHEFT-specific behaviour (Algorithm 1)."""

import pytest

from repro import (
    InfeasibleScheduleError,
    Platform,
    TaskGraph,
    memheft,
    validate_schedule,
)
from repro.dags import dex


def test_dex_unbounded_matches_paper_quality():
    """With ample memory MemHEFT finds the optimal 6-unit schedule of s1."""
    s = memheft(dex(), Platform(1, 1, 5, 5))
    assert s.makespan == 6
    assert s.meta["peak_red"] == 5
    assert s.meta["peak_blue"] <= 3


def test_dex_tight_memory_still_schedules():
    s = memheft(dex(), Platform(1, 1, 4, 4))
    validate_schedule(dex(), Platform(1, 1, 4, 4), s)
    assert s.makespan >= 7  # paper: optimum under M=4 is 7


def test_dex_infeasible_below_memreq():
    with pytest.raises(InfeasibleScheduleError):
        memheft(dex(), Platform(1, 1, 3, 3))


def test_list_scan_skips_blocked_high_rank_task():
    """A high-rank task that does not fit yet must not deadlock the scan:
    Algorithm 1 walks down the list and schedules the next fitting task."""
    g = TaskGraph()
    # "big" outranks "small" but needs 10 memory units; memory frees only
    # after "small"'s consumer finishes, so "small" must be scheduled first.
    g.add_task("big", 50, 50)
    g.add_task("small", 1, 1)
    g.add_task("sink", 1, 1)
    g.add_dependency("big", "sink", size=10, comm=0)
    g.add_dependency("small", "sink", size=1, comm=0)
    plat = Platform(n_blue=2, n_red=0, mem_blue=11, mem_red=0)
    s = memheft(g, plat)
    validate_schedule(g, plat, s)
    # Both orders are feasible here; what matters is completion.
    assert len(s) == 3


def test_rank_order_respected_when_memory_ample():
    g = dex()
    s = memheft(g, Platform(1, 1))
    # rank order is T1 > T3 > T2 > T4, so T3 gets the red processor slot
    # right after T1 (it starts before T2 does on its own resource queue).
    assert s.placement("T3").start <= s.placement("T2").start + 1e-9


def test_rng_tiebreak_changes_schedule_only_within_validity():
    g = dex()
    plat = Platform(1, 1, 5, 5)
    spans = set()
    for seed in range(6):
        s = memheft(g, plat, rng=seed)
        validate_schedule(g, plat, s)
        spans.add(s.makespan)
    # Dex has no rank ties, so every seed gives the same schedule.
    assert spans == {6}


def test_eager_comm_policy_produces_valid_schedules():
    g = dex()
    plat = Platform(1, 1, 5, 5)
    s = memheft(g, plat, comm_policy="eager")
    validate_schedule(g, plat, s)


def test_error_message_reports_remaining_tasks():
    with pytest.raises(InfeasibleScheduleError, match="tasks left"):
        memheft(dex(), Platform(1, 1, 3, 3))
