"""Per-class dirty tracking: ``SchedulerState.commit`` records exactly the
memory classes it mutated, and the selectors keyed on those serials still
take bit-identical decisions (the golden-schedule suite pins the same
property end to end)."""

import pytest

from repro.core.platform import Memory, Platform
from repro.dags.daggen import random_dag
from repro.dags.toy import dex
from repro.scheduling.memheft import memheft
from repro.scheduling.memminmin import memminmin
from repro.scheduling.state import SchedulerState
from repro.scheduling.sufferage import memsufferage


def _commit_on(state, task, memory):
    bd = state.est(task, memory)
    assert bd.feasible
    state.commit(bd)
    return bd


class TestCommitRecordsTouchedClasses:
    def test_root_with_outputs_touches_its_class_only(self):
        state = SchedulerState(dex(), Platform(1, 1))
        _commit_on(state, "T1", Memory.BLUE)   # T1 has outputs, no inputs
        assert state.last_touched_classes == (0,)
        assert state.commit_serial == 1
        assert state.class_touch_serial == [1, 0]

    def test_cross_memory_commit_touches_both_classes(self):
        state = SchedulerState(dex(), Platform(1, 1))
        _commit_on(state, "T1", Memory.BLUE)
        # T2 reads T1's file; placing it on red forces a transfer, which
        # allocates in red and schedules a release in blue.
        _commit_on(state, "T2", Memory.RED)
        assert state.last_touched_classes == (0, 1)
        assert state.class_touch_serial == [2, 2]

    def test_same_memory_commit_touches_one_class(self):
        state = SchedulerState(dex(), Platform(1, 1))
        _commit_on(state, "T1", Memory.BLUE)
        _commit_on(state, "T2", Memory.BLUE)
        assert state.last_touched_classes == (0,)
        assert state.class_touch_serial == [2, 0]

    def test_task_without_files_touches_nothing(self):
        from repro.core.graph import TaskGraph
        g = TaskGraph()
        g.add_task("a", w_blue=2, w_red=1)
        state = SchedulerState(g, Platform(1, 1))
        _commit_on(state, "a", Memory.BLUE)
        assert state.last_touched_classes == ()
        assert state.commit_serial == 1
        assert state.class_touch_serial == [0, 0]

    def test_copy_preserves_dirty_state(self):
        state = SchedulerState(dex(), Platform(1, 1))
        _commit_on(state, "T1", Memory.BLUE)
        clone = state.copy()
        assert clone.commit_serial == state.commit_serial
        assert clone.class_touch_serial == state.class_touch_serial
        assert clone.last_touched_classes == state.last_touched_classes
        # And the clone's counters advance independently.
        _commit_on(clone, "T2", Memory.BLUE)
        assert state.commit_serial == 1
        assert clone.commit_serial == 2

    def test_serials_track_profile_mutations_exactly(self):
        """A class's touch serial moves iff its profile version moved."""
        graph = random_dag(size=40, rng=13)
        platform = Platform(n_blue=1, n_red=1)
        state = SchedulerState(graph, platform)
        versions = {m: state.mem[m].version for m in state.memories}
        available = set(graph.roots())
        while available:
            task = min(available, key=str)
            bd = state.best_est(task)
            state.commit(bd)
            available.discard(task)
            available.update(state.pop_newly_ready())
            for m in state.memories:
                moved = state.mem[m].version != versions[m]
                assert (m.index in state.last_touched_classes) == moved
                versions[m] = state.mem[m].version


class TestSelectorsStayBitIdentical:
    """Belt-and-braces next to the goldens: lazy selection on the
    touch-serial stamps equals the naive rescan, including k > 2."""

    @pytest.mark.parametrize("algo,kwargs", [
        (memheft, {}), (memminmin, {}), (memsufferage, {})])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_dual_platform(self, algo, kwargs, seed):
        graph = random_dag(size=35, rng=seed)
        platform = Platform(n_blue=2, n_red=1, mem_blue=80, mem_red=80)
        try:
            lazy = algo(graph, platform, lazy=True, **kwargs)
            naive = algo(graph, platform, lazy=False, **kwargs)
        except Exception as exc:  # InfeasibleScheduleError: try unbounded
            lazy = algo(graph, platform.unbounded(), lazy=True, **kwargs)
            naive = algo(graph, platform.unbounded(), lazy=False, **kwargs)
            assert "Infeasible" in type(exc).__name__
        assert [(p.task, p.proc, p.memory, p.start, p.finish)
                for p in lazy.placements()] == \
               [(p.task, p.proc, p.memory, p.start, p.finish)
                for p in naive.placements()]

    @pytest.mark.parametrize("algo", [memminmin, memsufferage])
    def test_three_class_platform(self, algo):
        from repro._util import as_rng
        from repro.multi import MultiTaskGraph
        gen = as_rng(17)
        graph = MultiTaskGraph(3, name="dirty-tri")
        for k in range(22):
            graph.add_task(k, tuple(float(gen.integers(1, 20))
                                    for _ in range(3)))
        for i in range(22):
            for j in range(i + 1, 22):
                if gen.random() < 0.25:
                    graph.add_dependency(i, j,
                                         size=float(gen.integers(1, 8)),
                                         comm=float(gen.integers(1, 5)))
        platform = Platform([1, 1, 1], [200.0, 200.0, 200.0])
        lazy = algo(graph, platform, lazy=True)
        naive = algo(graph, platform, lazy=False)
        assert [(p.task, p.proc, p.memory, p.start, p.finish)
                for p in lazy.placements()] == \
               [(p.task, p.proc, p.memory, p.start, p.finish)
                for p in naive.placements()]
