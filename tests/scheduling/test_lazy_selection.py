"""The lazy candidate heaps must commit bit-identical schedules to the
naive full-rescan selection loops, on every heuristic, across randomized
graphs, platforms and memory bounds — including infeasibility verdicts."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Platform, heft
from repro.dags import dex, random_dag
from repro.scheduling.memheft import memheft
from repro.scheduling.memminmin import memminmin
from repro.scheduling.state import InfeasibleScheduleError
from repro.scheduling.sufferage import memsufferage

HEURISTICS = (memheft, memminmin, memsufferage)


def _assert_same_outcome(fn, graph, platform, **kwargs):
    """Run lazy and naive paths; both must agree placement-for-placement
    (or both raise)."""
    try:
        lazy = fn(graph, platform, lazy=True, **kwargs)
    except InfeasibleScheduleError:
        with pytest.raises(InfeasibleScheduleError):
            fn(graph, platform, lazy=False, **kwargs)
        return None
    naive = fn(graph, platform, lazy=False, **kwargs)
    assert lazy.makespan == naive.makespan
    for task in graph.tasks():
        pl, pn = lazy.placement(task), naive.placement(task)
        assert (pl.proc, pl.memory, pl.start, pl.finish) == \
               (pn.proc, pn.memory, pn.start, pn.finish), \
            f"{fn.__name__} diverged on {task!r}"
    assert lazy.meta["peaks"] == naive.meta["peaks"]
    return lazy


@pytest.mark.parametrize("fn", HEURISTICS, ids=lambda f: f.__name__)
def test_dex_unbounded_and_tight(fn):
    for platform in (Platform(1, 1), Platform(1, 1, 5, 5),
                     Platform(1, 1, 4, 4), Platform(1, 1, 3, 3)):
        _assert_same_outcome(fn, dex(), platform)


@settings(max_examples=20, deadline=None)
@given(size=st.integers(min_value=3, max_value=40),
       seed=st.integers(min_value=0, max_value=10**6),
       alpha=st.floats(min_value=0.3, max_value=1.2),
       procs=st.sampled_from([(1, 1), (2, 1), (1, 3)]))
def test_lazy_equals_naive_on_random_daggen(size, seed, alpha, procs):
    graph = random_dag(size=size, rng=seed)
    base = heft(graph, Platform(*procs))
    ref_peak = max(base.meta["peak_blue"], base.meta["peak_red"]) or 1.0
    bounded = Platform(*procs).with_uniform_bound(alpha * ref_peak)
    for fn in HEURISTICS:
        _assert_same_outcome(fn, graph, bounded)


@pytest.mark.parametrize("fn", HEURISTICS, ids=lambda f: f.__name__)
@pytest.mark.parametrize("seed", range(3))
def test_lazy_equals_naive_unbounded(fn, seed):
    graph = random_dag(size=30, rng=seed)
    schedule = _assert_same_outcome(fn, graph, Platform(2, 2))
    assert schedule is not None and len(schedule) == 30


@pytest.mark.parametrize("fn", (memheft, memminmin), ids=lambda f: f.__name__)
def test_lazy_equals_naive_eager_policy(fn):
    graph = random_dag(size=25, rng=7)
    base = heft(graph, Platform(1, 1))
    bound = 0.7 * max(base.meta["peak_blue"], base.meta["peak_red"])
    _assert_same_outcome(fn, graph, Platform(1, 1).with_uniform_bound(bound),
                         comm_policy="eager")


@pytest.mark.parametrize("seed", range(2))
def test_lazy_equals_naive_three_classes(seed):
    from repro._util import as_rng
    from repro.multi import MultiTaskGraph
    gen = as_rng(seed)
    g = MultiTaskGraph(3, name=f"tri{seed}")
    n = 18
    for k in range(n):
        g.add_task(k, tuple(float(gen.integers(1, 20)) for _ in range(3)))
    for i in range(n):
        for j in range(i + 1, n):
            if gen.random() < 0.3:
                g.add_dependency(i, j, size=float(gen.integers(1, 8)),
                                 comm=float(gen.integers(1, 5)))
    platform = Platform([1, 1, 1], [math.inf] * 3)
    for fn in HEURISTICS:
        _assert_same_outcome(fn, g, platform)
    bounded = Platform([1, 1, 1], [30.0] * 3)
    for fn in HEURISTICS:
        _assert_same_outcome(fn, g, bounded)


@pytest.mark.parametrize("seed", range(3))
def test_selector_lower_bound_matches_state_reference(seed):
    """MinEFTSelector's cached lower bound must agree with the reference
    implementation (SchedulerState.est_lower_bound) and actually bound the
    exact best-class EFT from below at every step."""
    from repro.scheduling.candidates import MinEFTSelector
    from repro.scheduling.state import SchedulerState

    graph = random_dag(size=25, rng=seed)
    base = heft(graph, Platform(1, 1))
    bound = 0.8 * max(base.meta["peak_blue"], base.meta["peak_red"])
    state = SchedulerState(graph, Platform(1, 1).with_uniform_bound(bound))
    index = {t: k for k, t in enumerate(graph.topological_order())}
    selector = MinEFTSelector(state, index)
    for task in graph.roots():
        selector.push(task)
    while len(selector):
        resources = state.class_resources()
        for task, entry in selector._live.items():
            cached = selector._lower_bound(entry, resources)
            assert cached == state.est_lower_bound(task, resources)
            best = state.best_est(task)
            if best is not None:
                assert cached <= best.eft + 1e-12
        best = selector.select()
        if best is None:
            break
        state.commit(best)
        selector.remove(best.task)
        for task in state.pop_newly_ready():
            selector.push(task)


def test_memheft_seeded_tiebreak_matches(fn=memheft):
    graph = random_dag(size=20, rng=3)
    for rng in (0, 1, 2):
        a = fn(graph, Platform(1, 1), rng=rng, lazy=True)
        b = fn(graph, Platform(1, 1), rng=rng, lazy=False)
        assert a.makespan == b.makespan
        for task in graph.tasks():
            assert a.placement(task).start == b.placement(task).start
