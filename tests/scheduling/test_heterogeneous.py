"""Heterogeneous-processor (per-processor ``speeds``) engine tests.

Three layers:

* unit tests of the per-processor EST kernel — the fast processor wins,
  slower-but-idle processors win when the fast one is busy, ``commit``
  honours the pre-chosen processor, the speed-aware validator accepts the
  per-proc durations;
* hypothesis properties — every heterogeneous schedule validates
  (speed-aware durations, any memory bounds), lazy and naive selection stay
  decision-identical, and explicit ``speeds=1.0`` stays bit-identical to
  the default homogeneous platform (the uniform-class fast path);
* the *platform dominance* property behind the "≤ all-slowest run"
  acceptance criterion: replaying the all-slowest homogeneous run's exact
  placements (same commit order, memory and processor) on the
  heterogeneous platform validates and never finishes later — speeding
  processors up can only help the platform.  The *heuristics themselves*
  are deliberately NOT pinned to that inequality: like all greedy list
  schedulers they suffer Graham anomalies (fuzzing finds ~0.3% of random
  instances where the heterogeneous heuristic run is slightly slower than
  the all-slowest one), the same non-monotonicity already documented for
  memory bounds in ``repro.experiments.engine``.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.platform import Memory, Platform
from repro.core.validation import validate_schedule
from repro.dags.daggen import random_dag
from repro.dags.toy import dex
from repro.experiments.sweep import spread_speeds
from repro.scheduling.memheft import memheft
from repro.scheduling.memminmin import memminmin
from repro.scheduling.state import SchedulerState
from repro.scheduling.sufferage import memsufferage

HEURISTICS = (memheft, memminmin, memsufferage)


def _same_placements(a, b, graph):
    return all(a.placement(t) == b.placement(t) for t in graph.tasks())


# ----------------------------------------------------------------------
# kernel unit tests
# ----------------------------------------------------------------------
class TestPerProcessorKernel:
    def test_fast_processor_wins_when_both_idle(self):
        g = dex()
        # Blue has a slow and a fast processor; the fast one (index 1)
        # must take the first blue task.
        plat = Platform(n_blue=2, n_red=1, speeds=[1.0, 2.0, 1.0])
        st_ = SchedulerState(g, plat)
        bd = st_.est("T1", Memory.BLUE)
        assert bd.proc == 1
        assert bd.duration == g.w_blue("T1") / 2.0
        assert bd.eft == bd.est + bd.duration

    def test_idle_slow_processor_wins_over_busy_fast_one(self):
        g = dex()
        plat = Platform(n_blue=2, n_red=1, speeds=[1.0, 10.0, 1.0])
        st_ = SchedulerState(g, plat)
        st_.avail[1] = 1000.0          # fast blue processor busy for ages
        bd = st_.est("T1", Memory.BLUE)
        assert bd.proc == 0
        assert bd.duration == g.w_blue("T1")

    def test_commit_honours_chosen_processor_and_duration(self):
        g = dex()
        plat = Platform(n_blue=2, n_red=1, speeds=[1.0, 4.0, 1.0])
        st_ = SchedulerState(g, plat)
        bd = st_.est("T1", Memory.BLUE)
        placement = st_.commit(bd)
        assert placement.proc == bd.proc == 1
        assert placement.duration == g.w_blue("T1") / 4.0
        assert st_.avail[1] == placement.finish

    def test_uniform_class_keeps_min_avail_fast_path(self):
        g = dex()
        plat = Platform(n_blue=2, n_red=1, speeds=[3.0, 3.0, 1.0])
        st_ = SchedulerState(g, plat)
        bd = st_.est("T1", Memory.BLUE)
        assert bd.proc == -1            # choose_proc decides at commit
        assert bd.duration == g.w_blue("T1") / 3.0

    def test_validator_accepts_and_checks_per_proc_durations(self):
        g = dex()
        plat = Platform(n_blue=1, n_red=1, speeds=[1.0, 2.0])
        s = memheft(g, plat)
        validate_schedule(g, plat, s)   # must not raise
        # The same schedule against the homogeneous platform must be
        # rejected: red placements run twice as fast as W^(red).
        red = [p for p in s.placements()
               if p.memory is Memory.RED and p.duration > 0]
        if red:
            import pytest
            from repro.core.validation import ScheduleError
            with pytest.raises(ScheduleError):
                validate_schedule(g, plat.with_speeds(None), s)

    def test_est_lower_bound_uses_fastest_processor(self):
        g = dex()
        plat = Platform(n_blue=2, n_red=1, speeds=[1.0, 4.0, 1.0])
        st_ = SchedulerState(g, plat)
        parts = st_.est_lower_bound_parts("T1")
        assert parts[0][0] == g.w_blue("T1") / 4.0
        assert parts[1][0] == g.w_red("T1")


# ----------------------------------------------------------------------
# hypothesis properties
# ----------------------------------------------------------------------
graph_params = st.fixed_dictionaries({
    "size": st.integers(min_value=1, max_value=20),
    "width": st.floats(min_value=0.05, max_value=1.0),
    "seed": st.integers(min_value=0, max_value=2**31 - 1),
})

counts_params = st.tuples(
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=0, max_value=3),
).filter(lambda p: p[0] + p[1] >= 1)

speed_value = st.floats(min_value=0.25, max_value=4.0,
                        allow_nan=False, allow_infinity=False)


def _build(params, counts, speeds_seed):
    graph = random_dag(size=params["size"], width=params["width"],
                       rng=params["seed"])
    import random
    rng = random.Random(speeds_seed)
    speeds = [round(rng.uniform(0.25, 4.0), 3) for _ in range(sum(counts))]
    platform = Platform(list(counts), [math.inf, math.inf], speeds=speeds)
    return graph, platform


class TestHeterogeneousProperties:
    @settings(max_examples=40, deadline=None)
    @given(graph_params, counts_params, st.integers(0, 2**31 - 1),
           st.sampled_from(HEURISTICS))
    def test_heterogeneous_schedule_validates(self, params, counts,
                                              speeds_seed, algo):
        graph, platform = _build(params, counts, speeds_seed)
        s = algo(graph, platform)
        peaks = validate_schedule(graph, platform, s)
        assert len(s) == graph.n_tasks
        assert set(peaks) == set(platform.memories())

    @settings(max_examples=25, deadline=None)
    @given(graph_params, counts_params, st.integers(0, 2**31 - 1),
           st.sampled_from(HEURISTICS))
    def test_lazy_equals_naive_on_heterogeneous_platforms(
            self, params, counts, speeds_seed, algo):
        graph, platform = _build(params, counts, speeds_seed)
        lazy = algo(graph, platform, lazy=True)
        naive = algo(graph, platform, lazy=False)
        assert _same_placements(lazy, naive, graph)

    @settings(max_examples=25, deadline=None)
    @given(graph_params, counts_params, st.sampled_from(HEURISTICS))
    def test_explicit_unit_speeds_bit_identical_to_default(
            self, params, counts, algo):
        graph = random_dag(size=params["size"], width=params["width"],
                           rng=params["seed"])
        plain = Platform(list(counts), [math.inf, math.inf])
        explicit = plain.with_speeds([1.0] * sum(counts))
        assert not explicit.is_heterogeneous
        assert _same_placements(algo(graph, plain),
                                algo(graph, explicit), graph)


# ----------------------------------------------------------------------
# platform dominance: replaying the all-slowest run can only get faster
# ----------------------------------------------------------------------
def _replay_on(graph, platform, reference):
    """Re-enact ``reference``'s placements (commit order, memory AND
    processor) on ``platform`` through the engine; returns the schedule.

    With every processor at least as fast as the reference platform's
    uniform speed, a task-by-task induction gives ``est`` and ``finish``
    never later than the reference — the makespan can only improve.
    """
    state = SchedulerState(graph, platform)
    topo = {t: i for i, t in enumerate(graph.topological_order())}
    order = sorted(graph.tasks(),
                   key=lambda t: (reference.placement(t).start, topo[t]))
    for task in order:
        ref = reference.placement(task)
        bd = state.est(task, ref.memory)
        floor = max(bd.precedence, bd.task_mem, bd.comm_mem)
        est = max(floor, state.avail[ref.proc])
        duration = graph.w(task, ref.memory) / platform.speed(ref.proc)
        state.commit(bd._replace(
            proc=ref.proc, est=est, eft=est + duration,
            duration=duration, resource=state.avail[ref.proc]))
    return state.finalize("replay")


class TestAllSlowestDominance:
    @settings(max_examples=40, deadline=None)
    @given(graph_params, counts_params, st.integers(0, 2**31 - 1),
           st.sampled_from(HEURISTICS))
    def test_replayed_slow_run_validates_and_never_slower(
            self, params, counts, speeds_seed, algo):
        graph, hetero = _build(params, counts, speeds_seed)
        slowest = hetero.with_speeds([min(hetero.speeds)] * hetero.n_procs)
        slow_run = algo(graph, slowest)
        replay = _replay_on(graph, hetero, slow_run)
        validate_schedule(graph, hetero, replay)
        assert replay.makespan <= slow_run.makespan + 1e-9


# ----------------------------------------------------------------------
# spread_speeds helper
# ----------------------------------------------------------------------
class TestSpreadSpeeds:
    def test_zero_spread_is_homogeneous(self):
        plat = spread_speeds(Platform(4, 2), 0.0)
        assert not plat.is_heterogeneous

    def test_spread_preserves_class_mean_and_capacities(self):
        base = Platform(4, 3, 10.0, 20.0)
        plat = spread_speeds(base, 0.5)
        assert plat.capacities == base.capacities
        for c in plat.classes():
            cs = plat.class_speeds(c)
            assert math.isclose(sum(cs) / len(cs), 1.0)
            assert max(cs) == 1.5 and min(cs) == 0.5

    def test_single_proc_classes_stay_unit_speed(self):
        plat = spread_speeds(Platform(1, 1), 0.7)
        assert plat.speeds == (1.0, 1.0)

    def test_invalid_spread_rejected(self):
        import pytest
        with pytest.raises(ValueError):
            spread_speeds(Platform(2, 2), 1.0)
        with pytest.raises(ValueError):
            spread_speeds(Platform(2, 2), -0.1)
