"""The incremental EST kernel must be observationally identical to the
from-scratch evaluation — every cached breakdown equals a fresh one, on
every candidate, after every commit, across randomized daggen graphs."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Platform, heft
from repro.core.memory_profile import MemoryProfile
from repro.dags import random_dag
from repro.scheduling.state import SchedulerState


def _assert_breakdowns_equal(a, b):
    assert a.task == b.task and a.memory is b.memory
    for field in ("resource", "precedence", "task_mem", "comm_mem",
                  "cmax", "est", "eft", "comm_fit"):
        va, vb = getattr(a, field), getattr(b, field)
        assert va == vb or (math.isinf(va) and math.isinf(vb)), \
            f"{field}: cached={va} fresh={vb} for {a.task!r}/{a.memory}"


def _lockstep_run(graph, platform):
    """Drive cached and fresh states through the same decisions, comparing
    every candidate's full breakdown at every step."""
    inc = SchedulerState(graph, platform, incremental=True)
    ref = SchedulerState(graph, platform, incremental=False)
    memories = platform.memories()
    available = set(graph.roots())
    while available:
        best = None
        for task in sorted(available, key=str):
            for memory in memories:
                bd_inc = inc.est(task, memory)
                bd_ref = ref.est(task, memory)
                _assert_breakdowns_equal(bd_inc, bd_ref)
                if bd_inc.feasible and (best is None or bd_inc.eft < best.eft):
                    best = bd_inc
        if best is None:
            return False  # infeasible under these bounds: both agreed throughout
        p_inc = inc.commit(best)
        p_ref = ref.commit(ref.est(best.task, best.memory))
        assert (p_inc.proc, p_inc.start, p_inc.finish) == \
               (p_ref.proc, p_ref.start, p_ref.finish)
        available.discard(best.task)
        available.update(inc.pop_newly_ready())
        ref.pop_newly_ready()
    assert inc.done and ref.done
    assert inc.schedule.makespan == ref.schedule.makespan
    assert inc.peaks() == ref.peaks()
    return True


@settings(max_examples=15, deadline=None)
@given(size=st.integers(min_value=3, max_value=35),
       seed=st.integers(min_value=0, max_value=10**6),
       alpha=st.floats(min_value=0.4, max_value=1.2))
def test_cached_equals_fresh_on_random_daggen(size, seed, alpha):
    graph = random_dag(size=size, rng=seed)
    base = heft(graph, Platform(2, 1))
    ref_peak = max(base.meta["peak_blue"], base.meta["peak_red"]) or 1.0
    bounded = Platform(2, 1).with_uniform_bound(alpha * ref_peak)
    _lockstep_run(graph, bounded)


@pytest.mark.parametrize("seed", range(3))
def test_cached_equals_fresh_unbounded(seed):
    graph = random_dag(size=25, rng=seed)
    assert _lockstep_run(graph, Platform(1, 2))


@pytest.mark.parametrize("seed", range(2))
def test_cached_equals_fresh_three_classes(seed):
    from repro.multi import MultiTaskGraph
    from repro._util import as_rng
    gen = as_rng(seed)
    g = MultiTaskGraph(3, name=f"tri{seed}")
    n = 15
    for k in range(n):
        g.add_task(k, tuple(float(gen.integers(1, 20)) for _ in range(3)))
    for i in range(n):
        for j in range(i + 1, n):
            if gen.random() < 0.3:
                g.add_dependency(i, j, size=float(gen.integers(1, 8)),
                                 comm=float(gen.integers(1, 5)))
    assert _lockstep_run(g, Platform([1, 1, 1], [math.inf] * 3))


class TestProfileCompaction:
    def test_function_preserved_across_compaction(self):
        p = MemoryProfile(100.0)
        q = MemoryProfile(100.0)
        events = [(5.0, 0.0, 10.0), (-5.0, 0.0, 10.0), (3.0, 2.0, None),
                  (7.0, 4.0, 8.0), (-7.0, 4.0, 8.0), (2.0, 6.0, None)]
        for amount, start, end in events:
            p.add(amount, start, end)
            q.add(amount, start, end)
        q.compact()
        assert q.n_segments() <= p.n_segments()
        for t in [0.0, 1.0, 2.0, 3.9, 4.0, 6.0, 7.9, 8.0, 9.9, 10.0, 11.0]:
            assert q.used_at(t) == p.used_at(t)
        for need in (1.0, 50.0, 96.0, 99.0):
            assert q.earliest_fit(need) == p.earliest_fit(need)

    def test_compaction_does_not_bump_version(self):
        p = MemoryProfile(10.0)
        p.add(4.0, 1.0, 3.0)
        v = p.version
        p.compact()
        assert p.version == v

    def test_auto_compaction_bounds_segments(self):
        p = MemoryProfile(1000.0)
        # Allocate/release churn: every pair leaves the function unchanged
        # after its window, so the staircase should not grow without bound.
        for k in range(2000):
            p.add(1.0, float(k), float(k) + 0.5)
            p.add(-1.0, float(k), float(k) + 0.5)
        assert p.n_segments() <= 2 * MemoryProfile._COMPACT_MIN + 2
        assert p.used_at(123.25) == 0.0

    def test_earliest_fit_matches_bruteforce(self):
        p = MemoryProfile(10.0)
        p.add(8.0, 2.0, 5.0)
        p.add(4.0, 7.0, None)
        # free: [0,2): 10, [2,5): 2, [5,7): 10, [7,inf): 6
        assert p.earliest_fit(2.0) == 0.0
        assert p.earliest_fit(3.0) == 5.0   # blocked by [2,5) until 5...
        assert p.earliest_fit(6.0) == 5.0
        assert p.earliest_fit(6.5) == math.inf  # tail only has 6 free
        assert p.earliest_fit(3.0, not_before=6.0) == 6.0
        assert p.earliest_fit(11.0) == math.inf
