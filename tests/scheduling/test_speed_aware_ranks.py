"""Speed-aware upward ranks: the execution term of the MemHEFT priority
becomes ``mean_c(W^(c)/max_speed(c))`` when a platform is supplied, while
speed-1.0 platforms must stay bit-identical to the speed-less formula."""

import math

import pytest

from repro import Platform
from repro.dags import random_dag
from repro.dags.toy import dex
from repro.scheduling.memheft import memheft
from repro.scheduling.ranks import rank_order, upward_ranks


class TestSpeedAwareRanks:
    def test_speed_one_platform_is_bitwise_identical(self):
        graph = random_dag(size=30, rng=1)
        plain = upward_ranks(graph)
        aware = upward_ranks(graph, Platform(2, 2))
        assert plain == aware  # exact float equality, not approx

    def test_speed_one_rank_order_identical(self):
        graph = random_dag(size=30, rng=2)
        assert rank_order(graph) == rank_order(graph,
                                               platform=Platform(1, 3))
        assert rank_order(graph, rng=5) == rank_order(
            graph, rng=5, platform=Platform(1, 3))

    def test_fast_class_shrinks_execution_term(self):
        g = dex()
        slow = upward_ranks(g, Platform(1, 1))
        # Red processors 4x faster: every rank's red execution term /= 4.
        fast = upward_ranks(g, Platform(1, 1, speeds=[1.0, 4.0]))
        for task in g.tasks():
            assert fast[task] <= slow[task]
        # A sink's rank is exactly its mean normalised time.
        sink = [t for t in g.tasks() if not list(g.children(t))][0]
        times = g.times(sink)
        assert fast[sink] == (times[0] / 1.0 + times[1] / 4.0) / 2

    def test_heterogeneous_within_class_uses_fastest(self):
        g = dex()
        ranks = upward_ranks(g, Platform(2, 1, speeds=[1.0, 3.0, 2.0]))
        sink = [t for t in g.tasks() if not list(g.children(t))][0]
        times = g.times(sink)
        assert ranks[sink] == (times[0] / 3.0 + times[1] / 2.0) / 2

    def test_class_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="memory classes"):
            upward_ranks(dex(), Platform([1, 1, 1], [math.inf] * 3))

    def test_procless_class_keeps_speed_one(self):
        from repro.multi import MultiPlatform, MultiTaskGraph
        g = MultiTaskGraph(3)
        g.add_task("a", (2.0, 4.0, 6.0))
        ranks = upward_ranks(g, MultiPlatform([1, 1, 0]))
        assert ranks["a"] == (2.0 + 4.0 + 6.0) / 3


class TestMemheftUsesSpeedAwareRanks:
    def test_speed_one_memheft_unchanged(self):
        """memheft now passes the platform into rank_order; on speed-1.0
        platforms the schedule must be exactly what it always was (the
        golden-schedule suite pins this globally; spot-check here)."""
        graph = random_dag(size=25, rng=7)
        platform = Platform(2, 1, 150.0, 150.0)
        a = memheft(graph, platform, lazy=True)
        b = memheft(graph, platform, lazy=False)
        assert a.makespan == b.makespan

    def test_heterogeneous_prioritises_by_normalised_time(self):
        """On a heterogeneous platform the rank list reorders: a task that
        is slow in raw time but lands on a fast class can outrank one that
        looked heavier under raw averaging."""
        from repro.core.graph import TaskGraph
        g = TaskGraph("pair")
        # Two independent tasks + a shared sink so ranks matter.
        g.add_task("gpuish", w_blue=8.0, w_red=8.0)
        g.add_task("cpuish", w_blue=6.0, w_red=6.0)
        g.add_task("sink", w_blue=1.0, w_red=1.0)
        g.add_dependency("gpuish", "sink", size=1.0, comm=1.0)
        g.add_dependency("cpuish", "sink", size=1.0, comm=1.0)
        plain = rank_order(g)
        assert plain.index("cpuish") > plain.index("gpuish")  # 8 > 6 raw
        fast_blue = Platform(1, 1, speeds=[4.0, 1.0])
        aware = rank_order(g, platform=fast_blue)
        # Normalised: gpuish -> (8/4 + 8)/2 = 5, cpuish -> (6/4 + 6)/2 = 3.75
        assert aware.index("cpuish") > aware.index("gpuish")
        ranks = upward_ranks(g, fast_blue)
        assert ranks["gpuish"] > ranks["cpuish"]

    def test_heterogeneous_memheft_schedule_still_valid(self):
        from repro import validate_schedule
        graph = random_dag(size=20, rng=3)
        platform = Platform(2, 2, 120.0, 120.0,
                            speeds=[1.0, 2.0, 0.5, 1.0])
        schedule = memheft(graph, platform)
        validate_schedule(graph, platform, schedule)
