"""Property-based tests: every heuristic, on arbitrary generated instances,
produces schedules satisfying all model constraints (DESIGN.md §7)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import (
    InfeasibleScheduleError,
    Memory,
    Platform,
    get_scheduler,
    validate_schedule,
)
from repro.core.bounds import lower_bound
from repro.dags import random_dag
from repro.dags.daggen import daggen

graph_params = st.fixed_dictionaries({
    "size": st.integers(min_value=1, max_value=24),
    "width": st.floats(min_value=0.05, max_value=1.0),
    "density": st.floats(min_value=0.0, max_value=1.0),
    "jumps": st.integers(min_value=1, max_value=6),
    "seed": st.integers(min_value=0, max_value=2**31 - 1),
})

platform_params = st.tuples(
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=0, max_value=3),
).filter(lambda p: p[0] + p[1] >= 1)

ALGOS = ("heft", "minmin", "memheft", "memminmin")


@given(graph_params, platform_params, st.sampled_from(ALGOS))
def test_unbounded_schedules_satisfy_all_constraints(params, procs, algo):
    g = random_dag(size=params["size"], width=params["width"],
                   density=params["density"], jumps=params["jumps"],
                   rng=params["seed"])
    plat = Platform(*procs)
    s = get_scheduler(algo)(g, plat)
    peaks = validate_schedule(g, plat, s)
    assert len(s) == g.n_tasks
    assert s.makespan >= lower_bound(g, plat) - 1e-9
    assert peaks[Memory.BLUE] == pytest.approx(s.meta["peak_blue"])
    assert peaks[Memory.RED] == pytest.approx(s.meta["peak_red"])


@given(graph_params,
       st.floats(min_value=0.2, max_value=1.0),
       st.sampled_from(("memheft", "memminmin")),
       st.sampled_from(("late", "eager")))
def test_bounded_schedules_never_exceed_memory(params, alpha, algo, policy):
    g = random_dag(size=params["size"], width=params["width"],
                   density=params["density"], jumps=params["jumps"],
                   rng=params["seed"])
    base = get_scheduler("heft")(g, Platform(1, 1))
    ref = max(base.meta["peak_blue"], base.meta["peak_red"], 1.0)
    plat = Platform(1, 1).with_uniform_bound(alpha * ref)
    try:
        s = get_scheduler(algo)(g, plat, comm_policy=policy)
    except InfeasibleScheduleError:
        return  # a refusal is always acceptable; wrong output is not
    peaks = validate_schedule(g, plat, s)
    assert peaks[Memory.BLUE] <= plat.mem_blue + 1e-6
    assert peaks[Memory.RED] <= plat.mem_red + 1e-6


@given(graph_params)
def test_memaware_with_total_file_capacity_reproduces_heft(params):
    """Invariant 2, provable form: with capacity >= the total size of all
    files the memory checks can never bind, so MemHEFT takes exactly HEFT's
    decisions.  (The paper's §6.2.1 at-peak claim is only approximate: the
    forward-looking free_mem check counts files whose consumers are not yet
    scheduled as resident forever, which can delay a task even at alpha=1;
    see tests/scheduling/test_heuristics.py for the empirical at-peak
    demonstration on typical instances.)"""
    g = random_dag(size=params["size"], width=params["width"],
                   density=params["density"], jumps=params["jumps"],
                   rng=params["seed"])
    plat = Platform(1, 1)
    base = get_scheduler("heft")(g, plat)
    ample = plat.with_uniform_bound(g.total_file_size())
    mem = get_scheduler("memheft")(g, ample)
    assert mem.makespan == pytest.approx(base.makespan)
    for t in g.tasks():
        assert mem.placement(t).memory is base.placement(t).memory


@given(st.integers(min_value=1, max_value=20),
       st.integers(min_value=0, max_value=2**31 - 1))
def test_zero_weight_skeletons_schedule(size, seed):
    """DAG skeletons (all-zero weights/files) are legal degenerate inputs."""
    g = daggen(size=size, rng=seed)
    plat = Platform(1, 1, 10, 10)
    for algo in ALGOS:
        s = get_scheduler(algo)(g, plat)
        validate_schedule(g, plat, s)
        assert s.makespan == 0.0
