"""Upward ranks (§5.1): hand-computed values and ordering properties."""

from repro import rank_order, upward_ranks
from repro.dags import chain, dex, fork_join


class TestRankValues:
    def test_dex_hand_computed(self):
        # rank(T4) = (1+1)/2 = 1
        # rank(T2) = 2 + (1 + 1/2) = 3.5
        # rank(T3) = 4.5 + (1 + 1/2) = 6
        # rank(T1) = 2 + max(3.5, 6) + 1/2 = 8.5
        ranks = upward_ranks(dex())
        assert ranks["T4"] == 1
        assert ranks["T2"] == 3.5
        assert ranks["T3"] == 6
        assert ranks["T1"] == 8.5

    def test_chain_ranks_decrease_along_the_chain(self):
        g = chain(6)
        ranks = upward_ranks(g)
        vals = [ranks[k] for k in range(6)]
        assert vals == sorted(vals, reverse=True)

    def test_sink_rank_is_mean_time(self):
        g = dex()
        assert upward_ranks(g)["T4"] == g.w_mean("T4")

    def test_parent_outranks_child_with_positive_times(self):
        g = fork_join(4)
        ranks = upward_ranks(g)
        for u, v in g.edges():
            assert ranks[u] > ranks[v]


class TestRankOrder:
    def test_dex_order(self):
        assert rank_order(dex()) == ["T1", "T3", "T2", "T4"]

    def test_deterministic_without_rng(self):
        g = fork_join(6)  # all 6 middle tasks tie
        assert rank_order(g) == rank_order(g)

    def test_order_is_a_permutation(self):
        g = fork_join(6)
        order = rank_order(g, rng=3)
        assert sorted(map(str, order)) == sorted(map(str, g.tasks()))

    def test_random_tiebreak_changes_only_ties(self):
        g = fork_join(6)
        ranks = upward_ranks(g)
        orders = {tuple(rank_order(g, rng=seed)) for seed in range(10)}
        assert len(orders) > 1  # ties actually shuffled
        for order in orders:
            vals = [ranks[t] for t in order]
            assert vals == sorted(vals, reverse=True)  # rank order respected

    def test_seeded_tiebreak_reproducible(self):
        g = fork_join(8)
        assert rank_order(g, rng=42) == rank_order(g, rng=42)
