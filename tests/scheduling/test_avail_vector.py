"""The flat data layout under the kernel: the per-class sorted avail
vector (list semantics + O(1) class minima + bisected choose_proc) and the
FlatGraph CSR adjacency (edge-order faithful to the TaskGraph views)."""

import math

import pytest

from repro import Memory, Platform
from repro._util import EPS
from repro.core.graph import TaskGraph
from repro.dags import random_dag
from repro.dags.toy import dex
from repro.scheduling.state import SchedulerState, _AvailVector


class TestAvailVector:
    def _vec(self, values, counts):
        platform = Platform(list(counts), [math.inf] * len(counts))
        return _AvailVector(values, platform.proc_classes,
                            platform.n_classes)

    def test_list_semantics(self):
        v = self._vec([0.0, 0.0, 0.0], (2, 1))
        v[0] = 3.0
        assert list(v) == [3.0, 0.0, 0.0]
        assert v[0] == 3.0 and len(v) == 3

    def test_class_min_tracks_writes(self):
        v = self._vec([0.0, 0.0, 0.0], (2, 1))
        assert v.class_min(0) == 0.0
        v[0] = 5.0
        assert v.class_min(0) == 0.0
        v[1] = 2.0
        assert v.class_min(0) == 2.0
        v[1] = 7.0
        assert v.class_min(0) == 5.0
        assert v.class_min(1) == 0.0

    def test_version_bumps_on_change_only(self):
        v = self._vec([1.0, 2.0], (1, 1))
        before = v.version
        v[0] = 1.0  # equal write: no-op
        assert v.version == before
        v[0] = 1.5
        assert v.version == before + 1

    def test_empty_class_min_is_inf(self):
        v = self._vec([0.0], (1, 0))
        assert v.class_min(1) == math.inf

    def test_structural_mutation_forbidden(self):
        v = self._vec([0.0, 0.0], (1, 1))
        with pytest.raises(TypeError):
            v.append(1.0)
        with pytest.raises(TypeError):
            del v[0]
        with pytest.raises(TypeError):
            v.sort()
        with pytest.raises(TypeError):
            v[0:1] = [2.0]

    def test_survives_state_copy(self):
        state = SchedulerState(dex(), Platform(2, 1))
        state.avail[0] = 4.0
        clone = state.copy()
        clone.avail[1] = 9.0
        assert state.avail[1] == 0.0
        assert clone.avail[0] == 4.0
        assert clone.avail.class_min(0) == 4.0
        assert state.avail.class_min(0) == 0.0


class TestChooseProc:
    def _reference(self, state, memory, est):
        """The historical linear scan over every processor of the class."""
        best_proc, best_avail = -1, -math.inf
        for p in state.platform.procs(memory):
            a = state.avail[p]
            if a <= est + EPS and a > best_avail + EPS:
                best_avail, best_proc = a, p
        return best_proc

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_linear_reference_on_random_avails(self, seed):
        import random
        rnd = random.Random(seed)
        platform = Platform(6, 3)
        state = SchedulerState(random_dag(size=5, rng=0), platform)
        for _ in range(40):
            p = rnd.randrange(platform.n_procs)
            state.avail[p] = rnd.choice([0.0, 1.0, 2.5, 4.0, 8.0])
            est = rnd.choice([0.0, 1.0, 2.5, 4.0, 9.0])
            for memory in state.memories:
                ref = self._reference(state, memory, est)
                if ref < 0:
                    continue  # no processor free: est below every avail
                assert state.choose_proc(memory, est) == ref

    def test_ties_prefer_lowest_index(self):
        state = SchedulerState(dex(), Platform(3, 1))
        state.avail[0] = 2.0
        state.avail[1] = 2.0
        assert state.choose_proc(Memory.BLUE, est=5.0) == 0

    def test_minimises_idle_time(self):
        state = SchedulerState(dex(), Platform(3, 1))
        state.avail[0] = 5.0
        state.avail[1] = 2.0
        state.avail[2] = 9.0
        assert state.choose_proc(Memory.BLUE, est=6.0) == 0
        assert state.choose_proc(Memory.BLUE, est=2.0) == 1

    def test_boundary_avail_exactly_est_plus_eps_included(self):
        state = SchedulerState(dex(), Platform(2, 1))
        state.avail[0] = 3.0 + EPS
        state.avail[1] = 0.0
        assert state.choose_proc(Memory.BLUE, est=3.0) == 0


class TestFlatGraph:
    def test_matches_graph_views(self):
        graph = random_dag(size=30, rng=3)
        flat = graph.flatten()
        assert flat.n_tasks == graph.n_tasks
        for i, task in enumerate(flat.order):
            assert flat.index[task] == i
            parents = [flat.order[flat.parent_row[e]]
                       for e in range(flat.parent_ptr[i],
                                      flat.parent_ptr[i + 1])]
            assert parents == list(graph.parents(task))
            for off, parent in enumerate(parents):
                e = flat.parent_ptr[i] + off
                assert flat.parent_comm[e] == graph.comm(parent, task)
                assert flat.parent_size[e] == graph.size(parent, task)
            children = [flat.order[flat.child_row[e]]
                        for e in range(flat.child_ptr[i],
                                       flat.child_ptr[i + 1])]
            assert children == list(graph.children(task))
            assert flat.out_size[i] == graph.out_size(task)
            assert flat.times[i] == graph.times(task)

    def test_cached_until_mutation(self):
        graph = random_dag(size=10, rng=0)
        flat = graph.flatten()
        assert graph.flatten() is flat
        graph.add_task("extra", w_blue=1.0, w_red=1.0)
        flat2 = graph.flatten()
        assert flat2 is not flat
        assert flat2.n_tasks == flat.n_tasks + 1
        graph.add_dependency(graph.topological_order()[0], "extra",
                             size=1.0, comm=1.0)
        assert graph.flatten() is not flat2

    def test_row_order_is_topological(self):
        graph = dex()
        flat = graph.flatten()
        for i in range(flat.n_tasks):
            for e in range(flat.parent_ptr[i], flat.parent_ptr[i + 1]):
                assert flat.parent_row[e] < i


class TestFlatGraphEmptyEdges:
    def test_single_task_graph(self):
        g = TaskGraph("one")
        g.add_task("t", w_blue=2.0, w_red=3.0)
        flat = g.flatten()
        assert flat.n_tasks == 1
        assert flat.parent_ptr == [0, 0]
        assert flat.child_ptr == [0, 0]
        assert flat.out_size == [0.0]
