"""The shared helper module."""

import math

import pytest

from repro._util import EPS, HAS_NUMPY, as_rng, feq, fle, fmt_num

try:
    import numpy as np
except ModuleNotFoundError:
    np = None


@pytest.mark.skipif(not HAS_NUMPY, reason="as_rng coerces numpy Generators")
class TestRngCoercion:
    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_seed_reproducible(self):
        assert as_rng(42).integers(0, 1000) == as_rng(42).integers(0, 1000)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert as_rng(gen) is gen


class TestFloatHelpers:
    def test_feq_within_eps(self):
        assert feq(1.0, 1.0 + EPS / 2)
        assert not feq(1.0, 1.0 + 1e-6)

    def test_fle(self):
        assert fle(1.0, 1.0)
        assert fle(1.0 + EPS / 2, 1.0)
        assert not fle(1.1, 1.0)


class TestFmtNum:
    def test_integral_floats_render_bare(self):
        assert fmt_num(6.0) == "6"

    def test_fractional_rendering(self):
        assert fmt_num(1.25) == "1.25"

    def test_inf(self):
        assert fmt_num(math.inf) == "inf"

    def test_long_fraction_truncated(self):
        assert len(fmt_num(1 / 3)) <= 8
