"""Ablation experiments run and report sensible aggregates."""

import pytest

from repro import Platform
from repro.dags import small_rand_set
from repro.experiments import comm_policy_ablation, tiebreak_ablation


class TestCommPolicyAblation:
    @pytest.fixture(scope="class")
    def rows(self):
        graphs = small_rand_set(n_graphs=3, size=15)
        return comm_policy_ablation(graphs, Platform(1, 1), alphas=(0.5, 0.8, 1.0))

    def test_row_per_alpha(self, rows):
        assert [r.alpha for r in rows] == [0.5, 0.8, 1.0]
        assert all(r.n_graphs == 3 for r in rows)

    def test_alpha_one_both_policies_succeed(self, rows):
        top = rows[-1]
        assert top.late_success == 3
        assert top.eager_success == 3

    def test_late_policy_never_less_feasible(self, rows):
        """The design rationale for late transfers: they hold destination
        memory for shorter windows, so feasibility can only improve."""
        for r in rows:
            assert r.late_success >= r.eager_success


class TestTiebreakAblation:
    def test_spread_brackets_deterministic_run(self):
        graphs = small_rand_set(n_graphs=2, size=15)
        rows = tiebreak_ablation(graphs, Platform(1, 1), n_seeds=4)
        assert len(rows) == 2
        for r in rows:
            assert r.seeded_min <= r.seeded_mean <= r.seeded_max
            assert r.deterministic > 0
