"""ASCII report rendering."""

from repro import Platform
from repro.dags import dex, small_rand_set
from repro.experiments import (
    absolute_sweep,
    normalized_sweep,
    render_absolute_sweep,
    render_normalized_sweep,
    render_table,
)


class TestRenderTable:
    def test_alignment_and_separator(self):
        text = render_table(["a", "long_header"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert set(lines[1]) <= {"-", "+"}
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all rows padded to equal width

    def test_none_rendered_as_dash(self):
        text = render_table(["x"], [[None]])
        assert "-" in text.splitlines()[-1]

    def test_title(self):
        text = render_table(["x"], [[1]], title="hello")
        assert text.splitlines()[0] == "hello"

    def test_float_formatting(self):
        text = render_table(["x"], [[1.0], [1.25]])
        assert "1.25" in text
        assert "1.0\n" not in text  # integral floats render bare


class TestSweepRendering:
    def test_normalized_sweep_table(self):
        graphs = small_rand_set(n_graphs=2, size=10)
        res = normalized_sweep(graphs, Platform(1, 1), alphas=(0.5, 1.0))
        text = render_normalized_sweep(res, title="T")
        assert "memheft:norm_mk" in text
        assert "memminmin:success" in text
        assert text.startswith("T")

    def test_absolute_sweep_table(self):
        res = absolute_sweep(dex(), Platform(1, 1), (4, 5))
        text = render_absolute_sweep(res, title="dex")
        assert "lower_bound" in text
        assert "HEFT needs memory >= 5" in text
        assert "MinMin needs" in text
