"""Parallel experiment engine: serial/parallel equivalence, determinism,
per-cell seeding, reference caching, and the feasibility frontier."""

import math

import pytest

from repro import Platform
from repro.dags import dex, small_rand_set
from repro.experiments import (
    ReferenceRun,
    absolute_sweep,
    cell_seed,
    comm_policy_ablation,
    feasibility_frontier,
    frontier_sweep,
    map_cells,
    normalized_sweep,
    reference_run,
    resolve_jobs,
    tiebreak_ablation,
)
from repro.experiments.sweep import SweepResult


# Top-level so the process pool can pickle it.
def _square_cell(payload, cache, cell):
    cache["hits"] = cache.get("hits", 0) + 1
    return payload * cell * cell


class TestMapCells:
    def test_serial_preserves_order(self):
        assert map_cells(_square_cell, 2, [3, 1, 2]) == [18, 2, 8]

    def test_parallel_preserves_order(self):
        cells = list(range(20))
        assert map_cells(_square_cell, 1, cells, jobs=4) == \
            [c * c for c in cells]

    def test_cache_is_per_process_and_persistent(self):
        # Serial: one cache across all cells.
        seen = {}

        def worker(payload, cache, cell):
            cache.setdefault("n", 0)
            cache["n"] += 1
            seen["n"] = cache["n"]
            return cell

        map_cells(worker, None, [1, 2, 3])
        assert seen["n"] == 3

    def test_resolve_jobs(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(-1) >= 1


class TestCellSeed:
    def test_deterministic_and_distinct(self):
        a = cell_seed("tiebreak", "g1", 0)
        assert a == cell_seed("tiebreak", "g1", 0)
        assert a != cell_seed("tiebreak", "g1", 1)
        assert a != cell_seed("tiebreak", "g2", 0)
        assert 0 <= a < 2 ** 63


class TestParallelSerialEquivalence:
    @pytest.fixture(scope="class")
    def graphs(self):
        return small_rand_set(n_graphs=4, size=15)

    def test_normalized_sweep_jobs1_vs_jobs4(self, graphs):
        kwargs = dict(alphas=(0.4, 0.7, 1.0))
        serial = normalized_sweep(graphs, Platform(1, 1), **kwargs)
        parallel = normalized_sweep(graphs, Platform(1, 1), jobs=4, **kwargs)
        assert serial.algorithms == parallel.algorithms
        assert serial.alphas == parallel.alphas
        assert serial.cells == parallel.cells

    def test_two_parallel_runs_agree(self, graphs):
        kwargs = dict(alphas=(0.5, 1.0), jobs=4)
        a = normalized_sweep(graphs, Platform(1, 1), **kwargs)
        b = normalized_sweep(graphs, Platform(1, 1), **kwargs)
        assert a.cells == b.cells

    def test_absolute_sweep_jobs1_vs_jobs4(self, graphs):
        g = graphs[0]
        ref = reference_run(g, Platform(1, 1))
        grid = [ref.ref_memory * a for a in (0.4, 0.6, 0.8, 1.0)]
        serial = absolute_sweep(g, Platform(1, 1), grid)
        parallel = absolute_sweep(g, Platform(1, 1), grid, jobs=4)
        assert serial.points == parallel.points
        assert serial.lower_bound == parallel.lower_bound

    def test_comm_policy_ablation_parity(self, graphs):
        serial = comm_policy_ablation(graphs, Platform(1, 1), (0.6, 1.0))
        parallel = comm_policy_ablation(graphs, Platform(1, 1), (0.6, 1.0),
                                        jobs=3)
        assert serial == parallel

    def test_tiebreak_ablation_parity(self, graphs):
        serial = tiebreak_ablation(graphs[:2], Platform(1, 1), n_seeds=3)
        parallel = tiebreak_ablation(graphs[:2], Platform(1, 1), n_seeds=3,
                                     jobs=2)
        assert serial == parallel


class TestReferenceRunKMemory:
    def test_ref_memory_takes_max_over_all_peaks(self):
        # Regression: the dual-era implementation read peaks[0]/peaks[1]
        # only, silently ignoring classes >= 2 on k-memory platforms.
        ref = ReferenceRun(graph=None, makespan=10.0, peaks=(3.0, 5.0, 9.0))
        assert ref.ref_memory == 9.0
        assert ref.peak_blue == 3.0 and ref.peak_red == 5.0

    def test_dual_facade_unchanged(self):
        ref = ReferenceRun(graph=None, makespan=10.0, peaks=(3.0, 5.0))
        assert ref.ref_memory == 5.0
        assert ref.peak_red == 5.0

    def test_single_class_peak_red_defaults_zero(self):
        ref = ReferenceRun(graph=None, makespan=1.0, peaks=(4.0,))
        assert ref.peak_red == 0.0
        assert ref.ref_memory == 4.0


class TestSweepResultIndex:
    def test_exact_and_tolerant_lookup(self):
        res = normalized_sweep(small_rand_set(2, 12), Platform(1, 1),
                               alphas=(0.5, 1.0))
        c = res.cell(1.0, "memheft")
        assert c.alpha == 1.0 and c.algorithm == "memheft"
        # repeated lookups hit the index
        assert res.cell(1.0, "memheft") is c
        # near-miss alphas still resolve (isclose fallback)
        assert res.cell(1.0 + 1e-12, "memheft") is c
        with pytest.raises(KeyError):
            res.cell(0.123, "memheft")

    def test_index_rebuilds_after_append(self):
        res = SweepResult(algorithms=("x",), alphas=(0.5,))
        with pytest.raises(KeyError):
            res.cell(0.5, "x")
        from repro.experiments.sweep import SweepCell
        res.cells.append(SweepCell(0.5, "x", 1, 1, 1.0))
        assert res.cell(0.5, "x").n_success == 1


class TestFeasibilityFrontier:
    def test_dex_frontier_brackets_known_boundary(self):
        # From the absolute sweeps: dex is infeasible at 3, feasible at 4.
        p = feasibility_frontier(dex(), Platform(1, 1), "memheft",
                                 rel_tol=0.05, verify_samples=4)
        assert 3.0 <= p.feasible_bound <= 4.2
        assert p.infeasible_bound < p.feasible_bound
        assert p.verified is True
        assert p.n_evals > 3

    def test_frontier_consistent_with_grid(self):
        g = small_rand_set(1, 15)[0]
        ref = reference_run(g, Platform(1, 1))
        p = feasibility_frontier(g, Platform(1, 1), "memminmin",
                                 rel_tol=0.02)
        assert p.verified is None
        # the frontier must lie at or below the alpha=1 grid point
        assert p.feasible_bound <= ref.ref_memory + 1e-9
        # and scheduling at the reported bound must actually succeed
        from repro.experiments.engine import _is_feasible
        assert _is_feasible(g, Platform(1, 1), "memminmin", p.feasible_bound)

    def test_frontier_sweep_parallel_parity(self):
        graphs = small_rand_set(2, 12)
        serial = frontier_sweep(graphs, Platform(1, 1), rel_tol=0.05)
        parallel = frontier_sweep(graphs, Platform(1, 1), rel_tol=0.05,
                                  jobs=2)
        assert serial == parallel
        assert len(serial) == 4  # 2 graphs x 2 default algorithms

    def test_rejects_bad_hi(self):
        with pytest.raises(ValueError):
            feasibility_frontier(dex(), Platform(1, 1), "memheft",
                                 hi=math.inf)
