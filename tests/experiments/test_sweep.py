"""Sweep machinery: references, aggregation, baseline anchoring."""

import pytest

from repro import Platform
from repro.dags import dex, random_dag, small_rand_set
from repro.experiments import (
    absolute_sweep,
    default_alphas,
    heterogeneity_sweep,
    normalized_sweep,
    reference_run,
)


class TestReferenceRun:
    def test_reference_matches_heft_meta(self):
        ref = reference_run(dex(), Platform(1, 1))
        assert ref.makespan == 6
        # HEFT's own schedule peaks at 3 blue / 5 red (schedule s1 of the
        # paper reaches 2/5; HEFT overlaps the transfer differently).
        assert ref.peak_red == 5 and ref.peak_blue == 3
        assert ref.ref_memory == 5


class TestDefaultAlphas:
    def test_grid_properties(self):
        alphas = default_alphas(10)
        assert len(alphas) == 10
        assert alphas[-1] == pytest.approx(1.0)
        assert all(a > 0 for a in alphas)
        assert list(alphas) == sorted(alphas)


class TestNormalizedSweep:
    @pytest.fixture(scope="class")
    def result(self):
        graphs = small_rand_set(n_graphs=4, size=15)
        return normalized_sweep(graphs, Platform(1, 1),
                                alphas=(0.4, 0.7, 1.0), check=True)

    def test_grid_complete(self, result):
        assert result.alphas == (0.4, 0.7, 1.0)
        assert len(result.cells) == 3 * 2

    def test_alpha_one_reproduces_heft(self, result):
        # At alpha=1 every graph schedules; the makespan matches HEFT up to
        # the (small) conservativeness of the forward-looking memory check —
        # see tests/scheduling/test_property.py for why it is not exact.
        cell = result.cell(1.0, "memheft")
        assert cell.success_rate == 1.0
        assert cell.mean_norm_makespan == pytest.approx(1.0, abs=0.05)

    def test_success_rate_monotone_in_alpha(self, result):
        for algo in result.algorithms:
            rates = [c.success_rate for c in result.series(algo)]
            assert rates == sorted(rates)

    def test_failed_cells_have_no_makespan(self):
        graphs = small_rand_set(n_graphs=2, size=15)
        res = normalized_sweep(graphs, Platform(1, 1), alphas=(0.01,))
        for cell in res.cells:
            if cell.n_success == 0:
                assert cell.mean_norm_makespan is None

    def test_extra_solver_series(self):
        graphs = small_rand_set(n_graphs=2, size=10)

        def fake_solver(graph, platform):
            return 100.0  # always "succeeds"

        res = normalized_sweep(graphs, Platform(1, 1), alphas=(0.5, 1.0),
                               extra_solver=fake_solver, extra_name="oracle")
        assert "oracle" in res.algorithms
        assert res.cell(1.0, "oracle").success_rate == 1.0

    def test_unknown_alpha_or_algo_raises(self, result):
        with pytest.raises(KeyError):
            result.cell(0.123, "memheft")


class TestAbsoluteSweep:
    def test_dex_absolute_sweep(self):
        res = absolute_sweep(dex(), Platform(1, 1), (3, 4, 5, 6), check=True)
        assert res.heft_makespan == 6
        assert res.heft_memory == 5
        assert res.lower_bound == 5
        spans = {p.memory: p.makespan for p in res.series("memheft")}
        assert spans[3] is None            # below MemReq(T3)
        assert spans[4] is not None
        assert spans[5] == 6

    def test_min_feasible_memory(self):
        res = absolute_sweep(dex(), Platform(1, 1), (3, 4, 5, 6))
        assert res.min_feasible_memory("memheft") == 4
        assert res.min_feasible_memory("memminmin") == 4

    def test_makespan_weakly_decreases_with_memory(self):
        g = small_rand_set(n_graphs=1, size=15)[0]
        ref = reference_run(g, Platform(1, 1))
        grid = [ref.ref_memory * a for a in (0.5, 0.75, 1.0)]
        res = absolute_sweep(g, Platform(1, 1), grid)
        for algo in ("memheft", "memminmin"):
            spans = [p.makespan for p in res.series(algo) if p.makespan]
            # not strictly monotone in general, but the trend must hold
            # between the tightest and loosest feasible bounds.
            if len(spans) >= 2:
                assert spans[-1] <= spans[0] + 1e-9


class TestHeterogeneitySweep:
    @pytest.fixture(scope="class")
    def result(self):
        graphs = [random_dag(size=12, rng=s) for s in (0, 1)]
        return heterogeneity_sweep(
            graphs, Platform(2, 2), spreads=(0.0, 0.4, 0.8), check=True)

    def test_grid_complete(self, result):
        assert len(result.cells) == 3 * len(result.algorithms)
        assert all(c.n_success == c.n_graphs for c in result.cells)

    def test_zero_spread_is_the_homogeneous_baseline(self, result):
        for algo in result.algorithms:
            cell = result.cell(0.0, algo)
            assert cell.mean_ratio_to_homogeneous == pytest.approx(1.0)

    def test_series_sorted_by_spread(self, result):
        for algo in result.algorithms:
            spreads = [c.spread for c in result.series(algo)]
            assert spreads == sorted(spreads)

    def test_parallel_identical_to_serial(self, result):
        graphs = [random_dag(size=12, rng=s) for s in (0, 1)]
        parallel = heterogeneity_sweep(
            graphs, Platform(2, 2), spreads=(0.0, 0.4, 0.8), check=True,
            jobs=2)
        assert parallel.cells == result.cells

    def test_unknown_cell_raises(self, result):
        with pytest.raises(KeyError):
            result.cell(0.123, "memheft")
