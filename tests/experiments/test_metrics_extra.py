"""Cross-algorithm metric relations on common instances."""

import pytest

from repro import Platform, get_scheduler
from repro.dags import random_dag
from repro.experiments.metrics import schedule_stats


@pytest.mark.parametrize("seed", range(2))
def test_metrics_consistent_across_family(seed):
    g = random_dag(size=18, rng=seed)
    plat = Platform(2, 2)
    stats = {}
    for name in ("heft", "minmin", "sufferage", "memheft", "memminmin",
                 "memsufferage"):
        s = get_scheduler(name)(g, plat)
        stats[name] = schedule_stats(g, plat, s)
    for name, st in stats.items():
        assert st.optimality_ratio >= 1.0 - 1e-9, name
        assert 0.0 <= st.utilization <= 1.0, name
        assert st.transfer_volume >= 0.0, name
        # With unbounded memory the mem-aware variant reproduces the
        # baseline makespan exactly.
    assert stats["memheft"].makespan == pytest.approx(stats["heft"].makespan)
    assert stats["memminmin"].makespan == pytest.approx(stats["minmin"].makespan)
    assert stats["memsufferage"].makespan == pytest.approx(
        stats["sufferage"].makespan)


def test_transfer_volume_zero_on_single_class_platform():
    g = random_dag(size=12, rng=3)
    plat = Platform(2, 0)
    s = get_scheduler("memheft")(g, plat)
    st = schedule_stats(g, plat, s)
    assert st.n_transfers == 0
    assert st.transfer_volume == 0.0
