"""Distributed cell executor: serial ≡ distributed parity, weighted
dispatch, and every failure path the coordinator must survive — hosts
dying mid-sweep (chunks reassigned, no cell lost), hosts answering
malformed streams (structured error, sweep continues on survivors), and
deterministic per-cell errors (raised, never retried)."""

import time

import pytest

from repro import Platform
from repro.dags import small_rand_set
from repro.experiments import (
    CellExecutionError,
    RemoteExecutor,
    RemoteExecutorError,
    frontier_sweep,
    map_cells,
    normalized_sweep,
    remote_hosts,
)
from repro.experiments.ablation import comm_policy_ablation, tiebreak_ablation
from repro.experiments.engine import remote_worker
from repro.experiments.sweep import heterogeneity_sweep
from repro.service import ServiceApp, ThreadedServer


@remote_worker("test.remote_double")
def _double_cell(payload, cache, cell):
    return payload * cell


@remote_worker("test.remote_fail_on_7")
def _fail_on_7(payload, cache, cell):
    if cell == 7:
        raise ValueError("deterministic failure")
    return cell


def _unregistered_cell(payload, cache, cell):
    return cell


class SlowCellsApp(ServiceApp):
    """Healthy host whose /cells responses take a beat — keeps the work
    queue occupied long enough that a co-host provably pulls chunks."""

    def __init__(self, delay: float = 0.05) -> None:
        super().__init__(workers=1)
        self.delay = delay

    def _cells_stream(self, *args, **kwargs):
        inner = ServiceApp._cells_stream(self, *args, **kwargs)

        def gen():
            for line in inner:
                time.sleep(self.delay)
                yield line
        return gen()


class CrashingCellsApp(ServiceApp):
    """Host that dies mid-stream on every /cells request: one row goes out,
    then the connection is torn down without the NDJSON sentinel."""

    def __init__(self) -> None:
        super().__init__(workers=1)
        self.cells_requests = 0

    def _cells_stream(self, *args, **kwargs):
        self.cells_requests += 1
        inner = ServiceApp._cells_stream(self, *args, **kwargs)

        def gen():
            yield next(inner)
            raise RuntimeError("host crashed mid-stream")
        return gen()


class MalformedCellsApp(ServiceApp):
    """Host answering /cells with 200 + garbage instead of NDJSON rows."""

    def handle(self, method, path, body):
        if path == "/cells":
            return 200, {"Content-Type": "application/x-ndjson"}, \
                b"%% not ndjson %%\n"
        return super().handle(method, path, body)


class StaleProtocolApp(ServiceApp):
    """A pre-/cells service version: the route does not exist, so the
    request 404s with the route-level ``not_found`` error."""

    def handle(self, method, path, body):
        if path == "/cells":
            path = "/cells-did-not-exist-yet"
        return super().handle(method, path, body)


@pytest.fixture()
def two_hosts():
    with ThreadedServer(ServiceApp(workers=1)) as a, \
            ThreadedServer(ServiceApp(workers=1)) as b:
        yield [f"{a.host}:{a.port}", f"{b.host}:{b.port}"]


class TestParity:
    @pytest.fixture(scope="class")
    def graphs(self):
        return small_rand_set(n_graphs=3, size=14)

    def test_normalized_sweep_distributed_equals_serial(self, graphs,
                                                        two_hosts):
        kwargs = dict(alphas=(0.5, 0.75, 1.0))
        serial = normalized_sweep(graphs, Platform(1, 1), **kwargs)
        with remote_hosts(two_hosts):
            dist = normalized_sweep(graphs, Platform(1, 1), **kwargs)
        assert serial.cells == dist.cells
        assert serial.alphas == dist.alphas
        assert serial.algorithms == dist.algorithms

    def test_heterogeneity_sweep_distributed_equals_serial(self, graphs,
                                                           two_hosts):
        p = Platform(2, 2)
        serial = heterogeneity_sweep(graphs, p, spreads=(0.0, 0.5))
        with remote_hosts(two_hosts):
            dist = heterogeneity_sweep(graphs, p, spreads=(0.0, 0.5))
        assert serial.cells == dist.cells

    def test_frontier_sweep_distributed_equals_serial(self, graphs,
                                                      two_hosts):
        serial = frontier_sweep(graphs[:2], Platform(1, 1), rel_tol=0.05)
        with remote_hosts(two_hosts):
            dist = frontier_sweep(graphs[:2], Platform(1, 1), rel_tol=0.05)
        assert serial == dist

    def test_ablations_distributed_equal_serial(self, graphs, two_hosts):
        serial_cp = comm_policy_ablation(graphs, Platform(1, 1), (0.6, 1.0))
        serial_tb = tiebreak_ablation(graphs[:2], Platform(1, 1), n_seeds=3)
        with remote_hosts(two_hosts):
            dist_cp = comm_policy_ablation(graphs, Platform(1, 1),
                                           (0.6, 1.0))
            dist_tb = tiebreak_ablation(graphs[:2], Platform(1, 1),
                                        n_seeds=3)
        assert serial_cp == dist_cp
        assert serial_tb == dist_tb

    def test_explicit_hosts_argument(self, two_hosts):
        out = map_cells(_double_cell, 3, list(range(10)), hosts=two_hosts)
        assert out == [3 * c for c in range(10)]

    def test_executor_reused_across_calls(self, two_hosts):
        executor = RemoteExecutor(two_hosts)
        a = map_cells(_double_cell, 2, list(range(8)), hosts=executor)
        b = map_cells(_double_cell, 5, list(range(4)), hosts=executor)
        assert a == [2 * c for c in range(8)]
        assert b == [5 * c for c in range(4)]
        stats = executor.stats()
        assert sum(h["cells"] for h in stats["hosts"].values()) == 12


class TestWeighting:
    def test_weight_read_from_healthz_workers(self):
        with ThreadedServer(ServiceApp(workers=3)) as srv:
            executor = RemoteExecutor([f"{srv.host}:{srv.port}"])
            executor.probe()
            assert executor.hosts[0].weight == 3

    def test_all_cells_accounted_across_hosts(self, two_hosts):
        executor = RemoteExecutor(two_hosts)
        out = map_cells(_double_cell, 1, list(range(24)), hosts=executor,
                        chunk_size=2)
        assert out == list(range(24))
        stats = executor.stats()
        assert sum(h["cells"] for h in stats["hosts"].values()) == 24
        assert stats["reassigned_chunks"] == 0


class TestFailurePaths:
    def test_host_dies_mid_sweep_chunks_reassigned(self):
        # One deliberately slow healthy host + one that crashes mid-stream
        # on every request: all cells must still come back, computed on
        # the survivor, with the failure accounted.
        crash_app = CrashingCellsApp()
        with ThreadedServer(SlowCellsApp(delay=0.03)) as good, \
                ThreadedServer(crash_app) as bad:
            executor = RemoteExecutor(
                [f"{good.host}:{good.port}", f"{bad.host}:{bad.port}"])
            cells = list(range(12))
            out = map_cells(_double_cell, 10, cells, hosts=executor,
                            chunk_size=1)
        assert out == [10 * c for c in cells]          # no cell lost
        stats = executor.stats()
        bad_addr = f"{bad.host}:{bad.port}"
        assert crash_app.cells_requests >= 1           # it really was hit
        assert not stats["hosts"][bad_addr]["alive"]
        assert "truncated" in stats["hosts"][bad_addr]["error"]
        assert stats["reassigned_chunks"] >= 1
        assert stats["hosts"][bad_addr]["cells"] == 0  # nothing credited

    def test_malformed_host_structured_error_sweep_continues(self):
        with ThreadedServer(SlowCellsApp(delay=0.03)) as good, \
                ThreadedServer(MalformedCellsApp()) as bad:
            executor = RemoteExecutor(
                [f"{good.host}:{good.port}", f"{bad.host}:{bad.port}"])
            cells = list(range(10))
            out = map_cells(_double_cell, 4, cells, hosts=executor,
                            chunk_size=1)
        assert out == [4 * c for c in cells]
        info = executor.stats()["hosts"][f"{bad.host}:{bad.port}"]
        assert not info["alive"]
        assert "NDJSON" in info["error"] or "malformed" in info["error"]

    def test_version_skewed_host_dies_sweep_survives(self):
        # A mixed fleet with one pre-/cells host: its route-level 404 must
        # kill that host, not the campaign ("only when every host is gone
        # does the sweep fail") — unlike unknown_worker/bad_request 4xxs,
        # which every host would answer identically.
        with ThreadedServer(SlowCellsApp(delay=0.03)) as good, \
                ThreadedServer(StaleProtocolApp()) as stale:
            executor = RemoteExecutor(
                [f"{good.host}:{good.port}", f"{stale.host}:{stale.port}"])
            cells = list(range(10))
            out = map_cells(_double_cell, 6, cells, hosts=executor,
                            chunk_size=1)
        assert out == [6 * c for c in cells]
        info = executor.stats()["hosts"][f"{stale.host}:{stale.port}"]
        assert not info["alive"]
        assert "not_found" in info["error"]

    def test_all_hosts_dead_raises_with_host_errors(self):
        with ThreadedServer(MalformedCellsApp()) as only:
            executor = RemoteExecutor([f"{only.host}:{only.port}"])
            with pytest.raises(RemoteExecutorError) as exc_info:
                map_cells(_double_cell, 1, list(range(4)), hosts=executor)
        assert "cells still queued" in str(exc_info.value)

    def test_unreachable_host_skipped_at_probe(self, two_hosts):
        # Port 1 on localhost refuses connections instantly.
        executor = RemoteExecutor([two_hosts[0], "127.0.0.1:1"],
                                  ready_timeout=0.5)
        out = map_cells(_double_cell, 2, list(range(6)), hosts=executor)
        assert out == [2 * c for c in range(6)]
        stats = executor.stats()
        assert not stats["hosts"]["127.0.0.1:1"]["alive"]
        assert "probe failed" in stats["hosts"]["127.0.0.1:1"]["error"]

    def test_no_reachable_hosts_raises(self):
        executor = RemoteExecutor(["127.0.0.1:1"], ready_timeout=0.2)
        with pytest.raises(RemoteExecutorError) as exc_info:
            map_cells(_double_cell, 1, [1, 2], hosts=executor)
        assert "no usable hosts" in str(exc_info.value)

    def test_deterministic_cell_error_raises_not_retries(self, two_hosts):
        executor = RemoteExecutor(two_hosts)
        with pytest.raises(CellExecutionError) as exc_info:
            map_cells(_fail_on_7, None, list(range(10)), hosts=executor)
        assert "deterministic failure" in str(exc_info.value)
        # The worker bug is not a host failure: nobody got marked dead.
        assert all(h["alive"]
                   for h in executor.stats()["hosts"].values())

    def test_dead_host_resurrected_on_next_call(self, two_hosts):
        # A host marked dead mid-campaign (crash, 503 back-pressure) must
        # rejoin at the next map_cells call if it answers the re-probe —
        # transient failures cost one sweep, not the campaign.
        executor = RemoteExecutor(two_hosts)
        map_cells(_double_cell, 1, [1, 2], hosts=executor)
        dead = executor.hosts[0]
        dead.alive = False
        dead.error = "simulated mid-campaign failure"
        out = map_cells(_double_cell, 3, list(range(6)), hosts=executor)
        assert out == [3 * c for c in range(6)]
        info = executor.stats()["hosts"][dead.address]
        assert info["alive"] and info["error"] is None

    def test_probe_skips_healthy_hosts(self, two_hosts):
        executor = RemoteExecutor(two_hosts)
        executor.probe()
        # Weights were read once; a second probe with every host healthy
        # must be a no-op (no /healthz churn between back-to-back sweeps).
        before = [h.weight for h in executor.hosts]
        for h in executor.hosts:
            h.weight += 100   # would be overwritten by a real re-probe
        executor.probe()
        assert [h.weight for h in executor.hosts] == \
            [w + 100 for w in before]

    def test_unregistered_worker_rejected_locally(self, two_hosts):
        with pytest.raises(ValueError, match="not a registered"):
            map_cells(_unregistered_cell, None, [1, 2], hosts=two_hosts)

    def test_unknown_worker_on_host_is_fatal_not_retried(self, two_hosts):
        executor = RemoteExecutor(two_hosts)
        with pytest.raises(Exception) as exc_info:
            executor.map_cells("test.never_registered_xyz", None, [1])
        assert "never_registered_xyz" in str(exc_info.value)


class TestHostSpecs:
    def test_bad_specs_rejected(self):
        with pytest.raises(ValueError):
            RemoteExecutor([])
        with pytest.raises(ValueError):
            RemoteExecutor(["nocolon"])
        with pytest.raises(ValueError):
            RemoteExecutor(["h:1", "h:1"])

    def test_tuple_specs_accepted(self):
        executor = RemoteExecutor([("127.0.0.1", 8123)])
        assert executor.hosts[0].address == "127.0.0.1:8123"
