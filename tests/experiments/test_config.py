"""Scale presets."""

import pytest

from repro.experiments import SCALES, get_scale


def test_three_presets():
    assert set(SCALES) == {"ci", "default", "paper"}


def test_paper_scale_matches_section_6(monkeypatch):
    paper = get_scale("paper")
    assert paper.small_n_graphs == 50 and paper.small_size == 30
    assert paper.large_n_graphs == 100 and paper.large_size == 1000
    assert paper.lu_tiles == 13 and paper.cholesky_tiles == 13


def test_env_variable_selects_scale(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "ci")
    assert get_scale().name == "ci"
    monkeypatch.delenv("REPRO_SCALE")
    assert get_scale().name == "default"


def test_explicit_name_wins(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "ci")
    assert get_scale("paper").name == "paper"


def test_unknown_scale_rejected():
    with pytest.raises(ValueError, match="unknown scale"):
        get_scale("gigantic")


def test_scales_ordered_by_effort():
    ci, default, paper = get_scale("ci"), get_scale("default"), get_scale("paper")
    assert ci.small_n_graphs <= default.small_n_graphs <= paper.small_n_graphs
    assert ci.large_size <= default.large_size <= paper.large_size
    assert ci.lu_tiles <= default.lu_tiles <= paper.lu_tiles
