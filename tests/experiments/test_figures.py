"""Figure drivers: each regenerates its table at CI scale and the paper's
qualitative shapes hold."""

import pytest

from repro.experiments import EXPERIMENTS, get_scale
from repro.experiments.figures import (
    fig11,
    fig12,
    fig14,
    fig15,
    table1,
)

CI = get_scale("ci")


class TestTable1:
    def test_contains_paper_numbers(self):
        res = table1()
        assert "1450" in res.text       # gemm
        assert "450" in res.text        # getrf/potrf
        assert res.figure_id == "table1"


class TestFigureDrivers:
    def test_registry_covers_every_figure(self):
        assert set(EXPERIMENTS) == {
            "table1", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
            "hetero",
        }

    @pytest.mark.parametrize("fid", ["fig11", "fig12", "fig13"])
    def test_random_figures_run_at_ci_scale(self, fid):
        res = EXPERIMENTS[fid](CI)
        assert res.figure_id == fid
        assert res.text.strip()

    def test_fig11_baselines_anchor_the_series(self):
        res = fig11(CI)
        data = res.data
        # At the largest swept bound, MemHEFT reproduces HEFT (alpha = 1).
        last = data.series("memheft")[-1]
        assert last.makespan == pytest.approx(data.heft_makespan)
        assert data.lower_bound <= data.heft_makespan + 1e-9

    def test_fig12_success_rates_monotone(self):
        res = fig12(CI)
        for algo in res.data.algorithms:
            rates = [c.success_rate for c in res.data.series(algo)]
            assert rates == sorted(rates)
            assert rates[-1] == 1.0      # alpha = 1 always schedulable

    def test_fig14_memheft_survives_tighter_memory_than_memminmin(self):
        """The paper's headline LU observation (§6.2.3)."""
        res = fig14(CI)
        data = res.data
        mh = data.min_feasible_memory("memheft")
        mm = data.min_feasible_memory("memminmin")
        assert mh is not None
        assert mm is None or mh <= mm

    def test_fig15_cholesky_same_shape(self):
        res = fig15(CI)
        data = res.data
        mh = data.min_feasible_memory("memheft")
        mm = data.min_feasible_memory("memminmin")
        assert mh is not None
        assert mm is None or mh <= mm

    def test_notes_mention_paper_scale(self):
        res = fig12(CI)
        assert any("paper" in n for n in res.notes)

    def test_str_renders(self):
        res = fig11(CI)
        assert "fig11" in str(res)


@pytest.mark.slow
class TestFig10:
    """fig10 includes the ILP series; a few seconds even at CI scale."""

    def test_fig10_optimal_never_loses_to_heuristics(self):
        res = EXPERIMENTS["fig10"](CI)
        opt = res.data["optimal"]
        for alpha in opt.alphas:
            o = opt.cell(alpha, "optimal")
            for algo in ("memheft", "memminmin"):
                h = opt.cell(alpha, algo)
                # Optimal succeeds at least as often...
                assert o.n_success >= h.n_success
                # ... and is at least as fast when both report a mean.
                if (o.mean_norm_makespan is not None
                        and h.mean_norm_makespan is not None
                        and o.n_success == h.n_success):
                    assert o.mean_norm_makespan <= h.mean_norm_makespan + 1e-6


class TestHeteroDriver:
    def test_hetero_runs_at_ci_scale(self):
        res = EXPERIMENTS["hetero"](CI, check=True)
        assert res.figure_id == "hetero"
        assert "spread" in res.text
        baseline = res.data.cell(0.0, "memheft")
        assert baseline.mean_ratio_to_homogeneous == 1.0
