"""Schedule statistics."""

import pytest

from repro import Platform, heft, memheft
from repro.dags import chain, dex, fork_join
from repro.experiments.metrics import STATS_HEADERS, schedule_stats


class TestScheduleStats:
    def test_dex_stats(self):
        g = dex()
        plat = Platform(1, 1, 5, 5)
        s = memheft(g, plat)
        stats = schedule_stats(g, plat, s)
        assert stats.makespan == 6
        assert stats.peak_red == 5
        assert stats.optimality_ratio == pytest.approx(6 / 5)
        assert stats.n_transfers == s.n_comms
        assert 0 < stats.utilization <= 1
        assert stats.max_utilization >= stats.utilization

    def test_chain_on_single_proc_fully_utilised(self):
        g = chain(4, w_blue=9, w_red=2, size=0, comm=0)
        plat = Platform(0, 1)
        s = heft(g, plat)
        stats = schedule_stats(g, plat, s)
        assert stats.utilization == pytest.approx(1.0)
        assert stats.n_transfers == 0
        assert stats.transfer_volume == 0

    def test_transfer_volume_counts_sizes(self):
        g = dex()
        plat = Platform(1, 1)
        s = heft(g, plat)
        stats = schedule_stats(g, plat, s)
        expect = sum(g.size(ev.src, ev.dst) for ev in s.comms())
        assert stats.transfer_volume == expect

    def test_fork_join_utilisation_below_one(self):
        g = fork_join(6, w_blue=3, w_red=3, size=0, comm=0)
        plat = Platform(2, 2)
        s = heft(g, plat)
        stats = schedule_stats(g, plat, s)
        assert stats.utilization < 1.0

    def test_as_row_matches_headers(self):
        g = dex()
        plat = Platform(1, 1)
        stats = schedule_stats(g, plat, heft(g, plat))
        assert len(stats.as_row()) == len(STATS_HEADERS)
