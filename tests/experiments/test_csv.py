"""CSV exports of sweep results."""

import csv
import io

from repro import Platform
from repro.dags import dex, small_rand_set
from repro.experiments import (
    absolute_sweep,
    absolute_to_csv,
    normalized_sweep,
    sweep_to_csv,
)


class TestSweepCsv:
    def test_parses_and_covers_grid(self):
        graphs = small_rand_set(n_graphs=2, size=10)
        res = normalized_sweep(graphs, Platform(1, 1), alphas=(0.5, 1.0))
        rows = list(csv.DictReader(io.StringIO(sweep_to_csv(res))))
        assert len(rows) == 2 * 2
        assert {r["algorithm"] for r in rows} == {"memheft", "memminmin"}
        for r in rows:
            assert 0 <= float(r["success_rate"]) <= 1

    def test_failed_cells_have_empty_makespan(self):
        graphs = small_rand_set(n_graphs=1, size=10)
        res = normalized_sweep(graphs, Platform(1, 1), alphas=(0.01,))
        rows = list(csv.DictReader(io.StringIO(sweep_to_csv(res))))
        assert all(r["mean_norm_makespan"] == "" for r in rows)


class TestAbsoluteCsv:
    def test_includes_baselines_and_bound(self):
        res = absolute_sweep(dex(), Platform(1, 1), (4, 5))
        rows = list(csv.DictReader(io.StringIO(absolute_to_csv(res))))
        algos = {r["algorithm"] for r in rows}
        assert {"memheft", "memminmin", "heft", "minmin", "lower_bound"} <= algos
        lb = [r for r in rows if r["algorithm"] == "lower_bound"][0]
        assert float(lb["makespan"]) == 5.0
