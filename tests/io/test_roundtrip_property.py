"""Property-based JSON round-trips over generated graphs and schedules."""

from hypothesis import given
from hypothesis import strategies as st

from repro import Platform, memheft
from repro.dags.daggen import random_dag
from repro.io import (
    graph_from_dict,
    graph_to_dict,
    schedule_from_dict,
    schedule_to_dict,
)

params = st.fixed_dictionaries({
    "size": st.integers(min_value=1, max_value=25),
    "seed": st.integers(min_value=0, max_value=2**31 - 1),
})


@given(params)
def test_graph_round_trip_preserves_everything(p):
    g = random_dag(size=p["size"], rng=p["seed"])
    back = graph_from_dict(graph_to_dict(g))
    assert back.n_tasks == g.n_tasks and back.n_edges == g.n_edges
    for t in g.tasks():
        assert back.w_blue(t) == g.w_blue(t)
        assert back.w_red(t) == g.w_red(t)
    for u, v in g.edges():
        assert back.size(u, v) == g.size(u, v)
        assert back.comm(u, v) == g.comm(u, v)


@given(params)
def test_schedule_round_trip_preserves_timing(p):
    g = random_dag(size=p["size"], rng=p["seed"])
    plat = Platform(2, 1)
    s = memheft(g, plat)
    back = schedule_from_dict(schedule_to_dict(s))
    assert back.makespan == s.makespan
    assert back.n_comms == s.n_comms
    for t in g.tasks():
        a, b = s.placement(t), back.placement(t)
        assert (a.proc, a.memory, a.start, a.finish) == \
               (b.proc, b.memory, b.start, b.finish)
