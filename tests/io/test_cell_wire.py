"""Cell wire format: exact round-trips for everything a sweep ships."""

import json
import math

import pytest

from repro import Platform
from repro.dags import dex, random_dag
from repro.experiments.engine import FrontierPoint
from repro.experiments.sweep import ReferenceRun, reference_run
from repro.io.json_io import from_cell_wire, to_cell_wire


def roundtrip(value):
    wire = to_cell_wire(value)
    # The wire form must survive real JSON transport, not just in-memory.
    return from_cell_wire(json.loads(json.dumps(wire)))


class TestScalars:
    @pytest.mark.parametrize("value", [
        None, True, False, 0, -17, 2 ** 62, "", "blue", 0.0, -1.5,
        0.1 + 0.2, 1e-308, 1.7976931348623157e308,
    ])
    def test_exact(self, value):
        out = roundtrip(value)
        assert out == value and type(out) is type(value)

    def test_floats_bit_exact(self):
        for x in [3.141592653589793, 1 / 3, 2 ** -1074]:
            assert roundtrip(x).hex() == x.hex()

    def test_non_finite_floats(self):
        assert roundtrip(math.inf) == math.inf
        assert roundtrip(-math.inf) == -math.inf
        assert math.isnan(roundtrip(math.nan))


class TestContainers:
    def test_tuples_stay_tuples(self):
        value = (1, "memheft", (0.5, None), [1, 2, (3,)])
        out = roundtrip(value)
        assert out == value
        assert isinstance(out, tuple) and isinstance(out[2], tuple)
        assert isinstance(out[3], list) and isinstance(out[3][2], tuple)

    def test_lists_stay_lists(self):
        out = roundtrip([None, [0.25, "x"], ()])
        assert out == [None, [0.25, "x"], ()]
        assert isinstance(out[2], tuple)

    def test_dicts(self):
        value = {"a": 1, "b": {"c": (2.5, None)}}
        out = roundtrip(value)
        assert out == value and isinstance(out["b"]["c"], tuple)

    def test_non_string_dict_keys_rejected(self):
        with pytest.raises(TypeError):
            to_cell_wire({1: "x"})


class TestModels:
    def test_graph_roundtrip(self):
        g = random_dag(size=12, rng=3)
        out = roundtrip(g)
        assert out.name == g.name
        assert sorted(out.tasks()) == sorted(g.tasks())
        assert out.n_edges == g.n_edges
        for t in g.tasks():
            assert out.times(t) == g.times(t)

    def test_platform_roundtrip_including_inf_and_speeds(self):
        p = Platform(n_blue=2, n_red=1, mem_blue=math.inf, mem_red=40.0,
                     speeds=[1.0, 0.5, 2.0])
        out = roundtrip(p)
        assert out.proc_counts == p.proc_counts
        assert out.capacities == p.capacities
        assert out.speeds == p.speeds

    def test_reference_run_dataclass(self):
        ref = reference_run(dex(), Platform(1, 1))
        out = roundtrip(ref)
        assert isinstance(out, ReferenceRun)
        assert out.makespan == ref.makespan
        assert out.peaks == ref.peaks
        assert sorted(out.graph.tasks()) == sorted(ref.graph.tasks())

    def test_frontier_point_dataclass(self):
        p = FrontierPoint(graph_name="g", algorithm="memheft",
                          feasible_bound=4.25, infeasible_bound=4.0,
                          n_evals=9, verified=None)
        assert roundtrip(p) == p


class TestErrors:
    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            to_cell_wire(object())
        with pytest.raises(TypeError):
            to_cell_wire({"x": {1, 2}})

    def test_unknown_tag_rejected(self):
        with pytest.raises(ValueError):
            from_cell_wire({"__wire__": "rocket", "v": 1})

    def test_unknown_dataclass_rejected(self):
        with pytest.raises(ValueError):
            from_cell_wire({"__wire__": "dataclass", "t": "NotAThing",
                            "v": {}})

    def test_untagged_dict_rejected(self):
        # Plain dicts are always wrapped on the wire; a bare one is a
        # malformed message, not a value.
        with pytest.raises(ValueError):
            from_cell_wire({"a": 1})
