"""Memory occupancy sparklines."""

import math

from repro.io.gantt import memory_sparkline


class TestSparkline:
    def test_empty_profile(self):
        line = memory_sparkline([], capacity=10, width=10)
        assert line == "|" + " " * 10 + "|"

    def test_full_occupancy_renders_solid(self):
        line = memory_sparkline([(0.0, 10.0), (4.0, 10.0)], capacity=10,
                                width=8, span=4.0)
        assert line == "|" + "█" * 8 + "|"

    def test_zero_occupancy_renders_blank(self):
        line = memory_sparkline([(0.0, 0.0)], capacity=10, width=8, span=4.0)
        assert set(line[1:-1]) == {" "}

    def test_step_visible(self):
        line = memory_sparkline([(0.0, 0.0), (5.0, 10.0)], capacity=10,
                                width=10, span=10.0)
        body = line[1:-1]
        assert body[:5] == "     "
        assert body[5:] == "█████"

    def test_infinite_capacity_scales_to_peak(self):
        line = memory_sparkline([(0.0, 7.0)], capacity=math.inf, width=4,
                                span=2.0)
        assert line == "|████|"

    def test_width_respected(self):
        line = memory_sparkline([(0.0, 3.0)], capacity=10, width=33, span=1.0)
        assert len(line) == 35
