"""Digest-stability regression: the schema-v2 (``speeds``) bump must not
churn a single pre-existing content address.

``tests/io/data/digest_fixtures.json`` pins the ``canonical_digest`` of 132
representative homogeneous payloads (graphs x platforms x algorithms x
options), captured at commit 4737e73 *before* the heterogeneous-processor
refactor.  The service's content-addressed cache keys — including entries
persisted across restarts via ``--cache-dir`` — are exactly these digests,
so any drift here silently invalidates every deployed cache.
"""

import json
import math
from pathlib import Path

import pytest

from repro.core.platform import Platform
from repro.io.json_io import (
    DIGEST_SCHEMA_VERSION,
    canonical_digest,
    platform_from_dict,
    platform_to_dict,
)

FIXTURES = json.loads(
    (Path(__file__).parent / "data" / "digest_fixtures.json").read_text())


@pytest.mark.parametrize(
    "fixture", FIXTURES["fixtures"],
    ids=[f"{f['graph']}-{f['platform']}-{f['algorithm']}-{f['options']}"
         for f in FIXTURES["fixtures"]])
def test_pinned_digest_unchanged(fixture):
    payloads = FIXTURES["payloads"]
    digest = canonical_digest(
        payloads["graphs"][fixture["graph"]],
        payloads["platforms"][fixture["platform"]],
        fixture["algorithm"],
        payloads["options"][fixture["options"]],
    )
    assert digest == fixture["digest"], (
        f"canonical_digest drifted for {fixture} — content-addressed "
        f"cache keys of existing deployments would churn")


def test_schema_version_is_v2():
    assert DIGEST_SCHEMA_VERSION == 2


def test_homogeneous_platform_dict_has_no_speeds_key():
    # The stability above hinges on this: all-1.0 speeds must serialize
    # exactly like the pre-v2 layout.
    assert "speeds" not in platform_to_dict(Platform(2, 1, 40.0, 40.0))
    assert "speeds" not in platform_to_dict(
        Platform([2, 1, 1], [1.0, 2.0, math.inf]))
    assert "speeds" not in platform_to_dict(
        Platform(2, 1, 40.0, 40.0, speeds=[1.0, 1.0, 1.0]))


def test_heterogeneous_platform_changes_digest():
    graph_d = FIXTURES["payloads"]["graphs"]["dex"]
    hom = platform_to_dict(Platform(1, 1))
    het = platform_to_dict(Platform(1, 1, speeds=[2.0, 1.0]))
    assert (canonical_digest(graph_d, hom, "memheft", None)
            != canonical_digest(graph_d, het, "memheft", None))


def test_heterogeneous_platform_roundtrips_through_dict():
    for plat in (Platform(2, 1, 40.0, 40.0, speeds=[1.0, 0.5, 2.0]),
                 Platform([3], [10.0], speeds=[1.0, 2.0, 0.25]),
                 Platform([1, 1, 2], [1.0, 2.0, math.inf],
                          speeds=[2.0, 1.0, 0.5, 1.5])):
        assert platform_from_dict(platform_to_dict(plat)) == plat
