"""JSON round-trips for graphs, platforms and schedules."""

import math

import pytest

from repro import Platform, memheft
from repro.dags import dex, lu_dag, random_dag
from repro.io import (
    canonical_digest,
    canonical_json,
    graph_from_dict,
    graph_to_dict,
    load_graph,
    load_schedule,
    platform_from_dict,
    platform_to_dict,
    save_graph,
    save_schedule,
    schedule_from_dict,
    schedule_to_dict,
)


class TestGraphRoundTrip:
    def test_dex(self):
        g = dex()
        back = graph_from_dict(graph_to_dict(g))
        assert back.n_tasks == 4 and back.n_edges == 4
        assert back.w_blue("T3") == 6
        assert back.size("T1", "T3") == 2
        assert back.name == "dex"

    def test_random_graph(self):
        g = random_dag(size=25, rng=3)
        back = graph_from_dict(graph_to_dict(g))
        assert back.n_tasks == g.n_tasks and back.n_edges == g.n_edges

    def test_tuple_ids_stringified(self):
        g = lu_dag(2)
        d = graph_to_dict(g)
        assert all(isinstance(row["id"], (str, int)) for row in d["tasks"])
        back = graph_from_dict(d)
        assert back.n_tasks == g.n_tasks

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "g.json"
        save_graph(dex(), path)
        assert load_graph(path).n_tasks == 4


class TestPlatformRoundTrip:
    def test_bounded(self):
        p = Platform(2, 3, 10, 20)
        assert platform_from_dict(platform_to_dict(p)) == p

    def test_unbounded_memory_becomes_null(self):
        p = Platform(1, 1)
        d = platform_to_dict(p)
        assert d["mem_blue"] is None
        back = platform_from_dict(d)
        assert math.isinf(back.mem_blue)


class TestScheduleRoundTrip:
    def test_memheft_schedule(self, tmp_path):
        g = dex()
        plat = Platform(1, 1, 5, 5)
        s = memheft(g, plat)
        back = schedule_from_dict(schedule_to_dict(s))
        assert back.makespan == s.makespan
        assert back.platform == plat
        assert back.n_comms == s.n_comms
        for t in g.tasks():
            assert back.placement(t).memory is s.placement(t).memory
            assert back.placement(t).start == s.placement(t).start

    def test_meta_preserved(self):
        g = dex()
        s = memheft(g, Platform(1, 1, 5, 5))
        back = schedule_from_dict(schedule_to_dict(s))
        assert back.meta["algorithm"] == "memheft"
        assert back.meta["peak_red"] == s.meta["peak_red"]

    def test_file_round_trip(self, tmp_path):
        s = memheft(dex(), Platform(1, 1, 5, 5))
        path = tmp_path / "s.json"
        save_schedule(s, path)
        assert load_schedule(path).makespan == s.makespan


class TestCanonicalDigest:
    def test_canonical_json_is_key_order_independent(self):
        assert canonical_json({"b": 1, "a": [1.5, "x"]}) == \
               canonical_json({"a": [1.5, "x"], "b": 1})

    def test_canonical_json_rejects_nan(self):
        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})

    def test_objects_and_dicts_address_the_same_content(self):
        g = dex()
        p = Platform(1, 1, 5, 5)
        assert canonical_digest(g, p, "memheft") == \
               canonical_digest(graph_to_dict(g), platform_to_dict(p),
                                "memheft")

    def test_default_options_and_case_are_normalised(self):
        g, p = dex(), Platform(1, 1, 5, 5)
        assert canonical_digest(g, p, "MemHEFT") == \
               canonical_digest(g, p, "memheft", {})

    def test_sensitive_to_every_component(self):
        g, p = dex(), Platform(1, 1, 5, 5)
        base = canonical_digest(g, p, "memheft")
        assert base != canonical_digest(g, p, "memminmin")
        assert base != canonical_digest(g, Platform(1, 1, 6, 5), "memheft")
        assert base != canonical_digest(g, p, "memheft",
                                        {"comm_policy": "eager"})
        g2 = dex()
        d2 = graph_to_dict(g2)
        d2["tasks"][0]["w_blue"] += 1
        assert base != canonical_digest(d2, platform_to_dict(p), "memheft")

    def test_stable_across_calls(self):
        g, p = dex(), Platform(1, 1, 5, 5)
        assert canonical_digest(g, p, "memheft") == \
               canonical_digest(g, p, "memheft")
        assert len(canonical_digest(g, p, "memheft")) == 64
