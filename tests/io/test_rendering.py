"""DOT export and ASCII Gantt rendering."""

from repro import Platform, Schedule, memheft
from repro.dags import dex
from repro.io import ascii_gantt, schedule_summary, to_dot


class TestDot:
    def test_structure(self):
        text = to_dot(dex())
        assert text.startswith('digraph "dex"')
        assert text.rstrip().endswith("}")
        assert '"T1" -> "T2"' in text

    def test_weights_in_labels(self):
        text = to_dot(dex())
        assert "3/1" in text      # W(T1)
        assert "2 (1)" in text    # F(1,3) with C

    def test_weights_can_be_hidden(self):
        text = to_dot(dex(), show_weights=False)
        assert "label" not in text

    def test_quoting(self):
        from repro import TaskGraph
        g = TaskGraph('with"quote')
        g.add_task('t"x', 1, 1)
        text = to_dot(g)
        assert r"\"" in text


class TestGantt:
    def test_empty_schedule(self):
        assert "empty" in ascii_gantt(Schedule(Platform(1, 1)))

    def test_rows_per_processor(self):
        s = memheft(dex(), Platform(1, 1, 5, 5))
        text = ascii_gantt(s)
        lines = text.splitlines()
        assert any(line.startswith("P0") for line in lines)
        assert any(line.startswith("P1") for line in lines)
        assert "makespan = 6" in lines[0]
        assert "#" in text

    def test_transfer_row_when_cross_memory(self):
        s = memheft(dex(), Platform(1, 1, 5, 5))
        if s.n_comms:
            assert "~" in ascii_gantt(s)

    def test_summary_lists_all_tasks(self):
        s = memheft(dex(), Platform(1, 1, 5, 5))
        text = schedule_summary(s)
        for t in ("T1", "T2", "T3", "T4"):
            assert t in text
