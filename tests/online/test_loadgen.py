"""Load generation must be bit-reproducible: the same (ident, seed)
draws the same trace in this process and in a fresh interpreter."""

import subprocess
import sys

import pytest

from repro.online import poisson_trace, read_trace, write_trace, zero_release

pytest.importorskip("numpy")


def test_same_seed_same_trace():
    a = poisson_trace(8, seed=5, rate=2.0)
    b = poisson_trace(8, seed=5, rate=2.0)
    assert a == b


def test_different_seed_different_trace():
    a = poisson_trace(8, seed=5, rate=2.0)
    b = poisson_trace(8, seed=6, rate=2.0)
    assert [r["release"] for r in a] != [r["release"] for r in b]


def test_releases_monotone_and_rounded():
    trace = poisson_trace(20, seed=1, rate=3.0)
    releases = [r["release"] for r in trace]
    assert releases == sorted(releases)
    assert all(r == round(r, 6) for r in releases)


def test_tick_quantizes_down():
    plain = poisson_trace(20, seed=1, rate=3.0)
    ticked = poisson_trace(20, seed=1, rate=3.0, tick=2.5)
    for p, t in zip(plain, ticked):
        assert t["release"] <= p["release"]
        assert t["release"] == round(int(p["release"] / 2.5) * 2.5, 6)
    # quantization merges neighbours into shared release times
    assert len({r["release"] for r in ticked}) < \
        len({r["release"] for r in plain})


@pytest.mark.parametrize("kwargs", [
    {"n_jobs": 0},
    {"n_jobs": 3, "rate": 0.0},
    {"n_jobs": 3, "rate": -1.0},
    {"n_jobs": 3, "tick": -0.5},
])
def test_rejects_bad_parameters(kwargs):
    with pytest.raises(ValueError):
        poisson_trace(**kwargs)


def test_zero_release_preserves_jobs():
    trace = poisson_trace(6, seed=2)
    zeroed = zero_release(trace)
    assert all(r["release"] == 0.0 for r in zeroed)
    assert [r["graph"] for r in zeroed] == [r["graph"] for r in trace]
    # the original trace is untouched
    assert any(r["release"] > 0.0 for r in trace)


def test_write_read_roundtrip(tmp_path):
    trace = poisson_trace(5, seed=9, rate=1.5)
    path = tmp_path / "trace.jsonl"
    write_trace(trace, path)
    assert read_trace(path) == trace


def test_write_is_byte_stable(tmp_path):
    trace = poisson_trace(5, seed=9)
    a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    write_trace(trace, a)
    write_trace(trace, b)
    assert a.read_bytes() == b.read_bytes()


def test_read_rejects_rows_without_graph(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"job": "j", "release": 0.0}\n')
    with pytest.raises(ValueError, match="graph"):
        read_trace(path)


def test_determinism_across_processes(tmp_path):
    """A fresh interpreter regenerates the byte-identical trace file —
    the property the CI online job's replay determinism rests on."""
    here = tmp_path / "here.jsonl"
    write_trace(poisson_trace(6, seed=13, rate=2.0, tick=2.5), here)
    there = tmp_path / "there.jsonl"
    script = (
        "from repro.online import poisson_trace, write_trace\n"
        f"write_trace(poisson_trace(6, seed=13, rate=2.0, tick=2.5), "
        f"{str(there)!r})\n"
    )
    subprocess.run([sys.executable, "-c", script], check=True)
    assert here.read_bytes() == there.read_bytes()
