"""The /jobs surface: session lifecycle over HTTP semantics (straight
into ``ServiceApp.handle``), config conflict detection, error paths and
per-session locking under concurrent submitters."""

import json
import threading

import pytest

from repro.core.platform import Platform
from repro.dags.daggen import random_dag
from repro.dags.toy import dex
from repro.io.json_io import graph_to_dict, platform_to_dict
from repro.service.app import PROTOCOL_VERSION, ServiceApp

pytest.importorskip("numpy")

PLATFORM = Platform(n_blue=1, n_red=1)


def submit(app, graph=None, session="s", release=0.0, platform=PLATFORM,
           **extra):
    payload = {
        "session": session,
        "release_time": release,
        "graph": graph_to_dict(graph if graph is not None else dex()),
    }
    if platform is not None:
        payload["platform"] = platform_to_dict(platform)
    payload.update(extra)
    status, _, body = app.handle("POST", "/jobs",
                                 json.dumps(payload).encode())
    return status, json.loads(body)


def get(app, path):
    status, _, body = app.handle("GET", path, b"")
    return status, json.loads(body)


class TestSubmit:
    def test_submit_plans_and_reports(self):
        app = ServiceApp()
        status, out = submit(app)
        assert status == 200
        assert out["job_id"] == "job-0000"
        assert out["state"] == "scheduled"
        assert out["planned"] == ["job-0000"]
        assert out["makespan"] > 0.0
        assert out["n_pending"] == 0

    def test_protocol_version_bumped_for_jobs(self):
        assert PROTOCOL_VERSION >= 5
        app = ServiceApp()
        status, out = get(app, "/healthz")
        assert status == 200
        assert out["protocol"] == PROTOCOL_VERSION
        assert out["sessions"] == {"count": 0, "jobs": 0, "pending": 0}

    def test_healthz_counts_sessions(self):
        app = ServiceApp()
        submit(app, session="a")
        submit(app, session="b")
        submit(app, session="b")
        _, out = get(app, "/healthz")
        assert out["sessions"] == {"count": 2, "jobs": 3, "pending": 0}

    def test_get_job_roundtrip(self):
        app = ServiceApp()
        _, sub = submit(app)
        status, out = get(app, f"/jobs/{sub['job_id']}?session=s")
        assert status == 200
        assert out["session"] == "s"
        assert out["state"] == "scheduled"
        assert len(out["tasks"]) == dex().n_tasks
        assert all(t["finish"] > t["start"] >= 0.0 for t in out["tasks"])

    def test_session_info_carries_journal(self):
        app = ServiceApp()
        submit(app)
        status, out = get(app, "/jobs?session=s")
        assert status == 200
        header = json.loads(out["journal"].split("\n", 1)[0])
        assert header["kind"] == "online-journal"
        assert out["summary"]["n_planned"] == 1

    def test_future_release_stays_pending_until_flush(self):
        app = ServiceApp()
        _, out = submit(app, session="lazy", policy="batched:50",
                        release=1.0)
        assert out["state"] == "queued"
        assert out["n_pending"] == 1
        _, out2 = submit(app, session="lazy", release=2.0, flush=True)
        assert out2["n_pending"] == 0
        _, job = get(app, "/jobs/job-0000?session=lazy")
        assert job["state"] == "scheduled"


class TestErrors:
    def test_unknown_session_404(self):
        app = ServiceApp()
        status, out = get(app, "/jobs?session=ghost")
        assert (status, out["error"]["type"]) == (404, "unknown_session")

    def test_unknown_job_404(self):
        app = ServiceApp()
        submit(app)
        status, out = get(app, "/jobs/nope?session=s")
        assert (status, out["error"]["type"]) == (404, "unknown_job")

    def test_first_request_requires_platform(self):
        app = ServiceApp()
        status, out = submit(app, platform=None)
        assert (status, out["error"]["type"]) == (400, "bad_request")
        assert "platform" in out["error"]["message"]

    def test_config_conflict_409(self):
        app = ServiceApp()
        submit(app, algorithm="memheft")
        status, out = submit(app, algorithm="memminmin")
        assert (status, out["error"]["type"]) == (409, "session_mismatch")
        status, out = submit(app, platform=Platform(n_blue=2, n_red=2))
        assert (status, out["error"]["type"]) == (409, "session_mismatch")

    def test_consistent_restatement_accepted(self):
        app = ServiceApp()
        submit(app, algorithm="memheft")
        status, _ = submit(app, algorithm="memheft")
        assert status == 200

    def test_bad_graph_400(self):
        app = ServiceApp()
        payload = {"session": "s", "platform": platform_to_dict(PLATFORM),
                   "graph": {"tasks": "nope"}}
        status, _, body = app.handle("POST", "/jobs",
                                     json.dumps(payload).encode())
        assert status == 400
        assert json.loads(body)["error"]["type"] == "bad_graph"

    def test_bad_release_400(self):
        app = ServiceApp()
        status, out = submit(app, release=True)
        assert (status, out["error"]["type"]) == (400, "bad_request")
        status, out = submit(app, release=-2.0)
        assert (status, out["error"]["type"]) == (400, "bad_request")

    def test_duplicate_job_id_400(self):
        app = ServiceApp()
        submit(app, job_id="j")
        status, out = submit(app, job_id="j")
        assert (status, out["error"]["type"]) == (400, "bad_request")

    def test_infeasible_422(self):
        tight = Platform(n_blue=1, n_red=1, mem_blue=0.001, mem_red=0.001)
        app = ServiceApp()
        status, out = submit(app, platform=tight)
        assert (status, out["error"]["type"]) == (422, "infeasible")

    def test_classic_algorithm_rejected(self):
        app = ServiceApp()
        status, out = submit(app, session="x", algorithm="heft")
        assert (status, out["error"]["type"]) == (400, "bad_request")


class TestConcurrency:
    def test_concurrent_submits_serialize_per_session(self):
        """16 threads racing into one session: every submit lands, ids
        are unique, and the final union schedule is complete."""
        app = ServiceApp()
        graphs = [random_dag(size=6, width=0.5, density=0.5, jumps=2,
                             rng=k) for k in range(16)]
        results, errors = [], []

        def worker(k):
            try:
                status, out = submit(app, graph=graphs[k], session="race",
                                     release=0.0)
                results.append((status, out["job_id"]))
            except Exception as exc:   # noqa: BLE001 — fail the test below
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(k,))
                   for k in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert all(status == 200 for status, _ in results)
        ids = [job_id for _, job_id in results]
        assert len(set(ids)) == 16
        _, info = get(app, "/jobs?session=race")
        assert info["summary"]["n_planned"] == 16
        assert info["summary"]["n_pending"] == 0

    def test_sessions_are_isolated(self):
        app = ServiceApp()
        submit(app, session="a", algorithm="memheft")
        submit(app, session="b", algorithm="memminmin")
        _, a = get(app, "/jobs?session=a")
        _, b = get(app, "/jobs?session=b")
        assert a["summary"]["algorithm"] == "memheft"
        assert b["summary"]["algorithm"] == "memminmin"
        assert a["summary"]["n_jobs"] == b["summary"]["n_jobs"] == 1
