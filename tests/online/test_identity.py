"""The offline-identity property: with every release zero, the online
session commits placements bit-identical to the offline heuristic on the
union DAG — per algorithm, per kernel backend (DESIGN anchor pinned by
``repro.online.session``'s module docstring)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import Platform, get_scheduler
from repro.dags import random_dag
from repro.online import OnlineSession, build_union_graph, simulate
from repro.online.loadgen import zero_release
from repro.scheduling import _cc
from repro.scheduling.kernel import NumpyKernel, ScalarKernel

pytest.importorskip("numpy")

ALGOS = ("memheft", "memminmin", "memsufferage")

BACKENDS = [pytest.param(ScalarKernel(), id="scalar"),
            pytest.param(NumpyKernel(batch_cutoff=1), id="numpy")]
if _cc.compiled_available():
    from repro.scheduling.kernel import CompiledKernel
    BACKENDS.append(pytest.param(CompiledKernel(batch_cutoff=1),
                                 id="compiled"))


def _snap(session):
    out = []
    for job in sorted(session.jobs.values(), key=lambda j: j.arrival_index):
        for task, p in job.placements.items():
            out.append((f"{job.job_id}/{task}", p.proc, p.memory.index,
                        p.start, p.finish))
    return out


def _offline_snap(schedule, union):
    return [(str(t), p.proc, p.memory.index, p.start, p.finish)
            for t in union.tasks() for p in (schedule.placement(t),)]


@given(st.integers(min_value=1, max_value=4),          # n jobs
       st.integers(min_value=2, max_value=12),         # tasks per job
       st.integers(min_value=0, max_value=2**31 - 1),  # seed
       st.sampled_from(ALGOS))
def test_zero_release_online_equals_offline(n_jobs, size, seed, algo):
    graphs = [random_dag(size=size, width=0.4, density=0.5, jumps=3,
                         rng=seed + k) for k in range(n_jobs)]
    platform = Platform(n_blue=1 + seed % 2, n_red=1 + (seed >> 1) % 2)

    session = OnlineSession(platform, algorithm=algo)
    for g in graphs:
        session.submit(g, release=0.0)
    session.flush()

    union = build_union_graph(
        sorted(session.jobs.values(), key=lambda j: j.arrival_index),
        platform.n_classes)
    offline = get_scheduler(algo)(union, platform)
    assert sorted(_snap(session)) == sorted(_offline_snap(offline, union))
    assert session.makespan == offline.makespan


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("algo", ALGOS)
def test_identity_per_backend_via_simulator(algo, backend):
    """The simulator path (the one the benchmark gates): a zero-release
    trace ends offline-identical under every kernel backend, and regret
    is exactly zero."""
    trace = zero_release([
        {"job": f"job-{k:04d}", "release": 3.0 * k,
         "graph": random_dag(size=10, width=0.4, density=0.5, jumps=3,
                             rng=100 + k)}
        for k in range(3)
    ])
    platform = Platform(n_blue=2, n_red=2)
    result = simulate(trace, platform, algorithm=algo, backend=backend)

    union = build_union_graph(
        sorted(result.session.jobs.values(),
               key=lambda j: j.arrival_index),
        platform.n_classes)
    offline = get_scheduler(algo)(union, platform, backend=backend)
    assert sorted(_snap(result.session)) == \
        sorted(_offline_snap(offline, union))
    assert result.regret() == 0.0


@pytest.mark.parametrize("backend", BACKENDS)
def test_journal_backend_independent(backend):
    """Decision journals are part of the determinism contract: the bytes
    must not depend on which kernel backend computed the ESTs."""
    trace = [
        {"job": f"job-{k:04d}", "release": 1.5 * k,
         "graph": random_dag(size=8, width=0.4, density=0.5, jumps=3,
                             rng=200 + k)}
        for k in range(4)
    ]
    platform = Platform(n_blue=1, n_red=1)
    reference = simulate(trace, platform,
                         backend=ScalarKernel()).journal()
    assert simulate(trace, platform, backend=backend).journal() == reference
