"""Event-driven simulator: event ordering, determinism, latency stats,
regret plumbing."""

import pytest

from repro import Platform
from repro.online import poisson_trace, simulate
from repro.io.json_io import graph_to_dict

pytest.importorskip("numpy")

PLATFORM = Platform(n_blue=2, n_red=2)


@pytest.fixture(scope="module")
def trace():
    return poisson_trace(10, seed=4, rate=2.0, tick=2.5, size=8)


def test_simulate_plans_every_job(trace):
    result = simulate(trace, PLATFORM)
    assert result.session.summary()["n_planned"] == len(trace)
    assert result.session.n_pending == 0
    assert result.makespan > 0.0


def test_events_chronological_and_complete(trace):
    result = simulate(trace, PLATFORM)
    times = [e["t"] for e in result.events]
    assert times == sorted(times)
    releases = [e for e in result.events if e["kind"] == "release"]
    completes = [e for e in result.events if e["kind"] == "complete"]
    assert len(releases) == len(trace)
    assert len(completes) == len(trace)
    # a job can only complete after it was released
    released_at = {e["job"]: e["t"] for e in releases}
    for e in completes:
        assert e["t"] >= released_at[e["job"]]


def test_same_trace_same_journal(trace):
    a = simulate(trace, PLATFORM)
    b = simulate(trace, PLATFORM)
    assert a.journal() == b.journal()
    assert a.makespan == b.makespan
    assert [e["t"] for e in a.events] == [e["t"] for e in b.events]


def test_wire_dict_graphs_accepted(trace):
    """Trace rows may carry graphs in wire-dict form (what read_trace
    yields) — the result must match the TaskGraph-object run."""
    wire = [dict(row, graph=graph_to_dict(row["graph"]))
            if not isinstance(row["graph"], dict) else row
            for row in trace]
    assert simulate(wire, PLATFORM).journal() == \
        simulate(trace, PLATFORM).journal()


def test_latency_stats_shape(trace):
    stats = simulate(trace, PLATFORM).latency_stats()
    assert stats["n_rounds"] >= 1
    assert 0.0 <= stats["p50_ms"] <= stats["p99_ms"] <= stats["max_ms"]


def test_regret_accepts_precomputed_baseline(trace):
    result = simulate(trace, PLATFORM)
    assert result.regret(result.makespan) == 0.0
    assert result.regret(result.makespan / 2.0) == pytest.approx(1.0)
    assert result.regret(0.0) == 0.0   # degenerate baseline guard


def test_policies_share_the_stream(trace):
    """Different policies see the same arrivals; batched plans in at
    most as many rounds as immediate."""
    immediate = simulate(trace, PLATFORM, policy="immediate")
    batched = simulate(trace, PLATFORM, policy="batched:10")
    assert batched.session.summary()["n_rounds"] <= \
        immediate.session.summary()["n_rounds"]
    assert batched.session.summary()["n_planned"] == \
        immediate.session.summary()["n_planned"]
