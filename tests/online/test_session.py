"""OnlineSession lifecycle and edge cases: grouping, ordering, errors,
journals, replanning."""

import pytest

from repro import Platform, validate_schedule
from repro.dags import random_dag
from repro.dags.toy import dex
from repro.online import (
    JOURNAL_VERSION,
    OnlineSession,
    build_union_graph,
    clairvoyant_makespan,
)

pytest.importorskip("numpy")

PLATFORM = Platform(n_blue=1, n_red=1)


def graphs(n, size=8, seed0=0):
    return [random_dag(size=size, width=0.4, density=0.5, jumps=3,
                       rng=seed0 + k) for k in range(n)]


class TestSubmit:
    def test_submit_only_enqueues(self):
        session = OnlineSession(PLATFORM)
        job_id = session.submit(dex(), release=1.0)
        assert session.jobs[job_id].state == "queued"
        assert session.n_pending == 1
        assert session.makespan == 0.0

    def test_auto_ids_follow_arrival_order(self):
        session = OnlineSession(PLATFORM)
        assert session.submit(dex()) == "job-0000"
        assert session.submit(dex()) == "job-0001"

    def test_duplicate_id_rejected(self):
        session = OnlineSession(PLATFORM)
        session.submit(dex(), job_id="j1")
        with pytest.raises(ValueError, match="duplicate"):
            session.submit(dex(), job_id="j1")

    def test_slash_in_id_rejected(self):
        session = OnlineSession(PLATFORM)
        with pytest.raises(ValueError, match="'/'"):
            session.submit(dex(), job_id="a/b")

    @pytest.mark.parametrize("release", [-1.0, float("inf"), float("nan")])
    def test_bad_release_rejected(self, release):
        session = OnlineSession(PLATFORM)
        with pytest.raises(ValueError, match="release"):
            session.submit(dex(), release=release)

    def test_wrong_memory_class_count_rejected(self):
        three = Platform([1, 1, 1])
        session = OnlineSession(three)
        with pytest.raises(ValueError, match="memory classes"):
            session.submit(dex())   # dex has 2 classes

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError, match="heft"):
            OnlineSession(PLATFORM, algorithm="heft")


class TestPoll:
    def test_simultaneous_releases_one_round(self):
        session = OnlineSession(PLATFORM)
        for g in graphs(3):
            session.submit(g, release=4.0)
        assert session.poll(3.9) == []
        planned = session.poll(4.0)
        assert planned == ["job-0000", "job-0001", "job-0002"]
        assert len(session.rounds) == 1
        assert session.rounds[0]["n_jobs"] == 3

    def test_distinct_releases_distinct_rounds(self):
        session = OnlineSession(PLATFORM)
        g1, g2 = graphs(2)
        session.submit(g1, release=1.0)
        session.submit(g2, release=2.0)
        assert session.poll(5.0) == ["job-0000", "job-0001"]
        assert len(session.rounds) == 2

    def test_no_task_starts_before_its_round_floor(self):
        session = OnlineSession(PLATFORM)
        for k, g in enumerate(graphs(3)):
            session.submit(g, release=float(k) * 3.0)
        session.flush()
        for job in session.jobs.values():
            assert job.start >= job.due

    def test_empty_session_is_quiet(self):
        session = OnlineSession(PLATFORM)
        assert session.poll(10.0) == []
        assert session.flush() == []
        assert session.makespan == 0.0
        assert session.rounds == []
        # journal is just the header
        lines = session.journal().strip().split("\n")
        assert len(lines) == 1

    def test_flush_drains_batched_residue(self):
        session = OnlineSession(PLATFORM, policy="batched:10")
        session.submit(dex(), release=1.0)
        assert session.poll(1.0) == []   # due at 10, not yet
        assert session.flush() == ["job-0000"]
        assert session.jobs["job-0000"].state == "scheduled"

    def test_clock_never_regresses(self):
        session = OnlineSession(PLATFORM)
        g1, g2 = graphs(2)
        session.submit(g1, release=5.0)
        session.poll(5.0)
        session.submit(g2, release=0.0)   # late submit of an early release
        session.poll(None)
        assert session.clock == 5.0
        # the late job is still floored at the round it ran in
        assert session.jobs["job-0001"].start >= 0.0


class TestJournal:
    def test_header_carries_config(self):
        import json
        session = OnlineSession(PLATFORM, algorithm="memminmin",
                                policy="batched:2")
        header = json.loads(session.journal().split("\n", 1)[0])
        assert header["v"] == JOURNAL_VERSION
        assert header["kind"] == "online-journal"
        assert header["algorithm"] == "memminmin"
        assert header["policy"] == "batched:2"

    def test_identical_streams_identical_journals(self):
        def run():
            session = OnlineSession(PLATFORM)
            for k, g in enumerate(graphs(4)):
                session.submit(g, release=float(k))
            session.flush()
            return session.journal()
        assert run() == run()

    def test_pending_jobs_not_in_journal(self):
        session = OnlineSession(PLATFORM, policy="batched:100")
        session.submit(dex(), release=1.0)
        lines = session.journal().strip().split("\n")
        assert len(lines) == 1   # header only


class TestReplan:
    def test_replan_revokes_and_still_valid(self):
        """A replanning session must report revocations and end with a
        valid union schedule (all placements consistent)."""
        gs = graphs(5, size=10)
        releases = [0.0, 0.0, 1.0, 2.0, 3.0]

        def run(policy):
            session = OnlineSession(PLATFORM, policy=policy)
            for g, r in zip(gs, releases):
                session.submit(g, release=r)
                session.poll(r)
            session.flush()
            return session

        replan = run("replan:16")
        assert sum(r["replanned"] for r in replan.rounds) > 0
        # every job planned exactly once, all starts respect due floors
        for job in replan.jobs.values():
            assert job.state == "scheduled"
            assert job.start >= job.due - 1e-9

    def test_replan_on_empty_log_is_carry_forward(self):
        session = OnlineSession(PLATFORM, policy="replan:4")
        session.submit(dex(), release=0.0)
        session.poll(0.0)
        assert session.rounds[0]["replanned"] == 0


class TestOfflineIdentity:
    def test_zero_release_matches_offline_schedule(self):
        """All releases zero -> one round, bit-identical to the offline
        heuristic on the union DAG (the anchor of the online design)."""
        from repro import get_scheduler

        gs = graphs(3)
        session = OnlineSession(PLATFORM)
        for g in gs:
            session.submit(g, release=0.0)
        session.poll(0.0)
        assert len(session.rounds) == 1

        union = build_union_graph(
            sorted(session.jobs.values(), key=lambda j: j.arrival_index),
            PLATFORM.n_classes)
        offline = get_scheduler("memheft")(union, PLATFORM)
        validate_schedule(union, PLATFORM, offline)
        assert session.makespan == offline.makespan
        for job in session.jobs.values():
            for task, placement in job.placements.items():
                ref = offline.placement(f"{job.job_id}/{task}")
                assert (placement.proc, placement.start,
                        placement.finish) == (ref.proc, ref.start,
                                              ref.finish)

    def test_clairvoyant_is_release_free(self):
        gs = graphs(3)
        session = OnlineSession(PLATFORM)
        for k, g in enumerate(gs):
            session.submit(g, release=float(k) * 10.0)
        session.flush()
        jobs = sorted(session.jobs.values(), key=lambda j: j.arrival_index)
        baseline = clairvoyant_makespan(jobs, PLATFORM)
        # staggered releases can only hurt the online schedule
        assert session.makespan >= baseline - 1e-9
