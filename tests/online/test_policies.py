"""Arrival policy semantics: due-time mapping, spec parsing, errors."""

import pytest

from repro.online import (
    BatchedQuantum,
    BoundedReplan,
    ImmediateGreedy,
    make_policy,
)


class TestImmediate:
    def test_due_is_release(self):
        policy = ImmediateGreedy()
        for release in (0.0, 0.5, 17.25):
            assert policy.due(release) == release

    def test_no_replan_window(self):
        assert ImmediateGreedy().replan_window == 0


class TestBatched:
    def test_due_ceils_to_next_boundary(self):
        policy = BatchedQuantum(5.0)
        assert policy.due(0.1) == 5.0
        assert policy.due(4.99) == 5.0
        assert policy.due(5.01) == 10.0

    def test_release_on_boundary_keeps_boundary(self):
        # All-zero release times must collapse into one round at t=0
        # (the offline-identity property depends on this).
        policy = BatchedQuantum(5.0)
        assert policy.due(0.0) == 0.0
        assert policy.due(5.0) == 5.0
        assert policy.due(10.0) == 10.0

    @pytest.mark.parametrize("quantum", [0.0, -1.0, float("inf"),
                                         float("nan")])
    def test_rejects_bad_quantum(self, quantum):
        with pytest.raises(ValueError):
            BatchedQuantum(quantum)


class TestReplan:
    def test_due_is_release(self):
        policy = BoundedReplan(4)
        assert policy.due(3.5) == 3.5
        assert policy.replan_window == 4

    @pytest.mark.parametrize("window", [0, -3])
    def test_rejects_bad_window(self, window):
        with pytest.raises(ValueError):
            BoundedReplan(window)


class TestMakePolicy:
    def test_parses_all_specs(self):
        assert make_policy("immediate").name == "immediate"
        assert make_policy("batched:2.5").name == "batched:2.5"
        assert make_policy("batched:2.5").quantum == 2.5
        assert make_policy("replan:8").name == "replan:8"
        assert make_policy("replan:8").window == 8

    def test_case_and_whitespace_tolerant(self):
        assert make_policy("Immediate").name == "immediate"
        assert make_policy(" batched :4").name == "batched:4"

    def test_policy_object_passes_through(self):
        policy = BatchedQuantum(3.0)
        assert make_policy(policy) is policy

    @pytest.mark.parametrize("spec", [
        "immediate:3",      # immediate takes no argument
        "batched",          # missing quantum
        "batched:zero",     # non-numeric quantum
        "batched:-2",       # negative quantum
        "replan",           # missing window
        "replan:1.5",       # non-integer window
        "replan:0",         # window < 1
        "fifo",             # unknown name
    ])
    def test_rejects_bad_specs(self, spec):
        with pytest.raises(ValueError):
            make_policy(spec)

    def test_rejects_non_string(self):
        with pytest.raises(ValueError):
            make_policy(42)
