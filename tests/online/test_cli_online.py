"""The ``memsched online`` CLI group end to end (no sockets: trace +
run + journal determinism), plus ``obs report --expect-arrivals``."""

import json

import pytest

from repro.cli import main

pytest.importorskip("numpy")

PLATFORM_ARGS = ["--blue", "2", "--red", "2",
                 "--mem-blue", "20000", "--mem-red", "20000"]


@pytest.fixture
def trace_file(tmp_path):
    path = tmp_path / "trace.jsonl"
    rc = main(["online", "trace", "-n", "6", "--seed", "3", "--rate", "2",
               "--tick", "2.5", "--size", "8", "-o", str(path)])
    assert rc == 0
    return path


class TestTrace:
    def test_trace_generation_is_byte_stable(self, tmp_path, trace_file):
        again = tmp_path / "again.jsonl"
        assert main(["online", "trace", "-n", "6", "--seed", "3",
                     "--rate", "2", "--tick", "2.5", "--size", "8",
                     "-o", str(again)]) == 0
        assert trace_file.read_bytes() == again.read_bytes()

    def test_trace_header_and_rows(self, trace_file):
        lines = trace_file.read_text().strip().split("\n")
        header = json.loads(lines[0])
        assert header == {"kind": "online-trace", "n_jobs": 6, "v": 1}
        assert len(lines) == 7

    def test_zero_release_flag(self, tmp_path):
        path = tmp_path / "z.jsonl"
        assert main(["online", "trace", "-n", "4", "--seed", "1",
                     "--zero-release", "-o", str(path)]) == 0
        rows = [json.loads(line) for line in
                path.read_text().strip().split("\n")[1:]]
        assert all(r["release"] == 0.0 for r in rows)


class TestRun:
    def test_run_reports_and_journals(self, tmp_path, trace_file, capsys):
        journal = tmp_path / "journal.jsonl"
        rc = main(["online", "run", str(trace_file), "--algo", "memheft",
                   *PLATFORM_ARGS, "--journal", str(journal)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "makespan" in out and "regret" in out and "p99" in out
        header = json.loads(journal.read_text().split("\n", 1)[0])
        assert header["kind"] == "online-journal"

    def test_run_journal_deterministic(self, tmp_path, trace_file):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        for path in (a, b):
            assert main(["online", "run", str(trace_file),
                         *PLATFORM_ARGS, "--journal", str(path)]) == 0
        assert a.read_bytes() == b.read_bytes()

    def test_run_missing_trace_errors(self, tmp_path, capsys):
        rc = main(["online", "run", str(tmp_path / "missing.jsonl"),
                   *PLATFORM_ARGS])
        assert rc == 2
        assert "cannot read" in capsys.readouterr().err


class TestExpectArrivals:
    def run_traced(self, tmp_path, trace_file):
        span_trace = tmp_path / "spans.jsonl"
        assert main(["online", "run", str(trace_file), *PLATFORM_ARGS,
                     "--trace", str(span_trace)]) == 0
        return span_trace

    def test_all_arrivals_present(self, tmp_path, trace_file, capsys):
        span_trace = self.run_traced(tmp_path, trace_file)
        rc = main(["obs", "report", str(span_trace),
                   "--expect-arrivals", "6"])
        assert rc == 0
        assert "all 6 arrival decisions present" in capsys.readouterr().out

    def test_missing_arrivals_fail(self, tmp_path, trace_file, capsys):
        span_trace = self.run_traced(tmp_path, trace_file)
        rc = main(["obs", "report", str(span_trace),
                   "--expect-arrivals", "9"])
        assert rc == 1
        assert "no decision span" in capsys.readouterr().err
