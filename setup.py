"""Setup shim: keeps legacy installs (``python setup.py develop``) working in
offline environments without the ``wheel`` package; configuration lives in
pyproject.toml."""
from setuptools import setup

setup()
