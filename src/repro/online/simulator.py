"""Event-driven simulator over one :class:`OnlineSession` timeline.

A heap of ``(time, seq, kind)`` events — job *releases* from the arrival
trace, job *completions* computed as placements commit — drives the
session: all releases sharing one timestamp are ingested before the
session is polled, so simultaneous arrivals land in one planning round
(with all-zero release times that single round is bit-identical to the
offline heuristic on the union DAG).

The result bundles the deterministic decision journal (byte-comparable
across runs and processes), the chronological event log, per-round
decision latencies, and the makespan-regret helper against the
clairvoyant offline schedule of the union DAG.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Optional

from ..core.platform import Platform
from ..io.json_io import graph_from_dict
from ..scheduling.kernel import KernelLike
from .session import OnlineSession, clairvoyant_makespan


def _percentile(samples, q: float) -> float:
    """Nearest-rank percentile (same convention as the benchmarks)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    k = max(0, min(len(ordered) - 1,
                   round(q / 100.0 * (len(ordered) - 1))))
    return ordered[k]


class OnlineResult:
    """Outcome of one simulated arrival stream."""

    def __init__(self, session: OnlineSession, events: list) -> None:
        self.session = session
        #: Chronological ``{"t", "kind": "release"|"complete", "job"}``.
        self.events = events

    @property
    def makespan(self) -> float:
        return self.session.makespan

    @property
    def decision_ms(self) -> list:
        """Per-round planning latencies, chronological."""
        return [r["ms"] for r in self.session.rounds]

    def latency_stats(self) -> dict:
        samples = self.decision_ms
        return {
            "n_rounds": len(samples),
            "p50_ms": round(_percentile(samples, 50.0), 4),
            "p99_ms": round(_percentile(samples, 99.0), 4),
            "max_ms": round(max(samples), 4) if samples else 0.0,
        }

    def journal(self) -> str:
        return self.session.journal()

    def clairvoyant_makespan(self) -> float:
        """Makespan of the clairvoyant baseline (see
        :func:`repro.online.session.clairvoyant_makespan`) — the offline
        heuristic interleaving the whole stream in one global pass,
        release times relaxed to zero (a lower bound)."""
        session = self.session
        jobs = sorted(session.jobs.values(), key=lambda j: j.arrival_index)
        return clairvoyant_makespan(jobs, session.platform,
                                    algorithm=session.algorithm,
                                    comm_policy=session.comm_policy,
                                    backend=session.backend)

    def regret(self, clairvoyant: Optional[float] = None) -> float:
        """``online_makespan / clairvoyant_makespan - 1`` (0.10 = 10%
        worse than the clairvoyant; both sides are heuristics, so small
        negative values are possible)."""
        if clairvoyant is None:
            clairvoyant = self.clairvoyant_makespan()
        if clairvoyant <= 0.0:
            return 0.0
        return self.makespan / clairvoyant - 1.0


def _trace_jobs(trace) -> list:
    """Normalise trace rows to ``(job_id, graph, release)``; accepts the
    loadgen row dicts (graphs as wire dicts or TaskGraph objects)."""
    jobs = []
    for k, row in enumerate(trace):
        graph = row["graph"]
        if isinstance(graph, dict):
            graph = graph_from_dict(graph)
        jobs.append((row.get("job", f"job-{k:04d}"), graph,
                     float(row.get("release", 0.0))))
    return jobs


def simulate(trace, platform: Platform, *, algorithm: str = "memheft",
             policy="immediate", comm_policy: str = "late",
             backend: KernelLike = None) -> OnlineResult:
    """Run one arrival trace through an event-driven session timeline.

    ``trace`` is a sequence of ``{"job", "release", "graph"}`` rows (see
    :mod:`repro.online.loadgen`).  Releases are processed in time order
    (ties by trace position); after the stream drains, the session is
    flushed so batched/replan policies place their residue.
    """
    session = OnlineSession(platform, algorithm=algorithm, policy=policy,
                            comm_policy=comm_policy, backend=backend)
    seq = itertools.count()
    queue: list = []
    for job_id, graph, release in _trace_jobs(trace):
        heapq.heappush(queue, (release, next(seq), "release",
                               job_id, graph))
    events: list = []
    completions: set = set()

    def note_completions() -> None:
        # Completion events join the shared timeline as placements
        # commit; they are observational (resource reuse is already
        # encoded in the avail vector and memory profiles).
        for job in session.jobs.values():
            if job.placements is not None and job.job_id not in completions:
                completions.add(job.job_id)
                heapq.heappush(queue, (job.finish, next(seq), "complete",
                                       job.job_id, None))

    while queue:
        t = queue[0][0]
        releases = False
        while queue and queue[0][0] <= t:
            _, _, kind, job_id, graph = heapq.heappop(queue)
            if kind == "release":
                session.submit(graph, release=t, job_id=job_id)
                events.append({"t": t, "kind": "release", "job": job_id})
                releases = True
            else:
                events.append({"t": t, "kind": "complete", "job": job_id})
        if releases:
            session.poll(t)
            note_completions()
    session.flush()
    note_completions()
    while queue:
        t, _, kind, job_id, _ = heapq.heappop(queue)
        events.append({"t": t, "kind": kind, "job": job_id})
    return OnlineResult(session, events)
