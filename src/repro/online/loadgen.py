"""Seeded load generation for online sessions: Poisson arrival streams
and trace files for bit-reproducible replay.

All randomness is rooted in the experiment engine's sha256
:func:`~repro.experiments.engine.cell_seed` discipline, so the same
``(ident, seed)`` pair draws the same stream in any process on any
platform: inter-arrival gaps come from ``random.Random(cell_seed(...))``
(Mersenne Twister, stable across CPython versions), per-job graphs from
:func:`repro.dags.daggen.random_dag` under per-job derived seeds.

Trace rows are plain dicts ``{"job", "release", "graph"}`` with the
graph in :func:`~repro.io.json_io.graph_to_dict` wire form; trace files
are canonical JSONL, so two generations of the same trace are
byte-identical files.
"""

from __future__ import annotations

import json
import random
from pathlib import Path

from .._util import atomic_write_text
from ..io.json_io import canonical_json, graph_to_dict


def poisson_trace(n_jobs: int, *, seed: int = 0, rate: float = 1.0,
                  ident: str = "poisson", size: int = 12,
                  width: float = 0.4, density: float = 0.5,
                  jumps: int = 3, tick: float = 0.0) -> list:
    """A seeded Poisson arrival stream of ``n_jobs`` random DAGs.

    ``rate`` is the arrival intensity (expected jobs per unit time);
    release times accumulate exponential gaps and are rounded to
    microsecond ticks (rounding keeps the wire form short and is itself
    deterministic).  A nonzero ``tick`` additionally quantizes releases
    *down* to multiples of ``tick`` — modelling a system that observes
    arrivals at a polling granularity — so jobs landing in one tick
    share a release time and plan together in one interleaved round
    even under the ``immediate`` policy.  Graph shape knobs pass
    through to ``random_dag``.  Requires numpy (the DAG generator
    does).
    """
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
    if not rate > 0.0:
        raise ValueError(f"rate must be > 0, got {rate}")
    if tick < 0.0:
        raise ValueError(f"tick must be >= 0, got {tick}")
    # Both imports are deferred: daggen needs numpy, and the experiment
    # engine's package pulls in the service client, which imports
    # ``repro.online`` right back (the /jobs endpoint).
    from ..dags.daggen import random_dag
    from ..experiments.engine import cell_seed

    gaps = random.Random(cell_seed("online-arrivals", ident, seed, rate))
    rows = []
    release = 0.0
    for k in range(n_jobs):
        release += gaps.expovariate(rate)
        observed = int(release / tick) * tick if tick else release
        graph = random_dag(size=size, width=width, density=density,
                           jumps=jumps,
                           rng=cell_seed("online-graph", ident, seed, k))
        rows.append({
            "job": f"job-{k:04d}",
            "release": round(observed, 6),
            "graph": graph_to_dict(graph),
        })
    return rows


def zero_release(trace) -> list:
    """The same job set with every release forced to 0.0 — the input of
    the online-equals-offline identity property."""
    return [dict(row, release=0.0) for row in trace]


def write_trace(trace, path) -> None:
    """Write a trace as canonical JSONL (one header row, one row per
    job) — byte-stable for identical inputs."""
    header = {"kind": "online-trace", "v": 1, "n_jobs": len(trace)}
    lines = [canonical_json(header)]
    lines.extend(canonical_json(row) for row in trace)
    atomic_write_text(path, "\n".join(lines) + "\n")


def read_trace(path) -> list:
    """Load a trace written by :func:`write_trace` (header skipped);
    raises ``ValueError`` on rows without the required fields."""
    rows = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            if not isinstance(row, dict):
                raise ValueError(f"trace row is not an object: {line[:80]}")
            if row.get("kind") == "online-trace":
                continue
            if "graph" not in row:
                raise ValueError(f"trace row without 'graph': {line[:80]}")
            rows.append(row)
    return rows
