"""Arrival policies: when a released job becomes *due* for planning.

A policy maps a job's release time to the logical time at which the
session commits its placements.  The session plans all pending jobs that
share one due time in a single planning round, so a policy also controls
how arrivals group:

* ``immediate`` — plan every job the moment it is released
  (``due = release``), one round per distinct release time;
* ``batched:Q`` — quantize releases up to the next multiple of the
  quantum ``Q`` and plan each quantum's arrivals together (a release
  exactly on a boundary belongs to that boundary, so all-zero release
  times still collapse into one round);
* ``replan:W`` — greedy due times like ``immediate``, but each round may
  first *revoke* up to ``W`` of the most recent uncommitted decisions
  (placements whose start lies beyond the round's floor) and re-plan
  them together with the new arrivals, warm-started from the kept
  prefix of the decision log.

Policies are pure and stateless; :func:`make_policy` parses the spec
strings used by the CLI, the service and the benchmarks.
"""

from __future__ import annotations

import math


class ImmediateGreedy:
    """Plan each job at its release time."""

    name = "immediate"
    replan_window = 0

    def due(self, release: float) -> float:
        return release


class BatchedQuantum:
    """Pool arrivals until the next quantum boundary, then plan them
    as one round."""

    replan_window = 0

    def __init__(self, quantum: float) -> None:
        if not (quantum > 0.0 and math.isfinite(quantum)):
            raise ValueError(f"batched quantum must be finite and > 0, "
                             f"got {quantum!r}")
        self.quantum = quantum
        self.name = f"batched:{quantum:g}"

    def due(self, release: float) -> float:
        # ceil to the next boundary; a release exactly on a boundary
        # (release 0 included) keeps that boundary as its due time.
        q = self.quantum
        steps = math.ceil(release / q - 1e-12)
        return max(0.0, steps * q)


class BoundedReplan:
    """Greedy due times plus bounded revocation of the uncommitted
    suffix: each round may tear up to ``window`` of the most recent
    decisions whose start lies beyond the round's floor and re-plan
    them together with the new arrivals."""

    def __init__(self, window: int) -> None:
        if window < 1:
            raise ValueError(f"replan window must be >= 1, got {window!r}")
        self.window = int(window)
        self.name = f"replan:{self.window}"

    @property
    def replan_window(self) -> int:
        return self.window

    def due(self, release: float) -> float:
        return release


def make_policy(spec):
    """Parse a policy spec: ``"immediate"``, ``"batched:Q"`` or
    ``"replan:W"`` (an already-built policy object passes through)."""
    if hasattr(spec, "due"):
        return spec
    if not isinstance(spec, str):
        raise ValueError(f"policy spec must be a string, got {type(spec)}")
    name, _, arg = spec.partition(":")
    name = name.strip().lower()
    if name == "immediate":
        if arg:
            raise ValueError("the immediate policy takes no argument")
        return ImmediateGreedy()
    if name == "batched":
        try:
            return BatchedQuantum(float(arg))
        except (TypeError, ValueError) as exc:
            raise ValueError(
                f"invalid batched policy {spec!r} (want 'batched:Q' with "
                f"a positive quantum): {exc}") from None
    if name == "replan":
        try:
            return BoundedReplan(int(arg))
        except (TypeError, ValueError):
            raise ValueError(
                f"invalid replan policy {spec!r} (want 'replan:W' with "
                f"a positive integer window)") from None
    raise ValueError(f"unknown arrival policy {name!r} "
                     f"(known: immediate, batched:Q, replan:W)")
