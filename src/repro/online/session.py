"""Stateful online scheduling session: jobs stream in with release
times, placements are committed incrementally on a live timeline.

The session drives the *same* lazy list-scheduling loops as the offline
heuristics (:mod:`repro.scheduling.memheft` et al.) over a live
:class:`~repro.scheduling.state.SchedulerState`, one **planning round**
per due time (see :mod:`repro.online.policies`):

* **carry-forward rounds** (immediate / batched) build a fresh state
  over the union DAG of just the *pending* jobs, seed it with the
  session's processor-avail vector and hand it the session's live
  :class:`~repro.core.memory_profile.MemoryProfile` objects by
  reference — prior commitments are fully encoded in those two
  structures because jobs are independent DAGs, so a round costs
  O(pending work), not O(session history);
* **re-planning rounds** (``replan:W``) revoke up to ``W`` of the most
  recent decisions whose start lies beyond the round's floor, replay
  the kept decision log through :meth:`SchedulerState.commit`
  (``breakdown.proc`` is honoured verbatim, so replay does zero EST
  evaluations), and then drive the heuristic over the revoked + new
  tasks — a warm start from the committed prefix.

Every committed decision is clamped to the round's **floor** (its due
time): ``est' = max(est, floor)``.  This is feasibility-safe because the
memory fit points have suffix semantics — ``earliest_fit`` guarantees
room from ``t`` on for *all* ``t' >= t`` — and transfer windows only
shift right with the start.  With all release times zero the floor is 0,
the clamp is the identity, and the single planning round is
bit-identical to the offline heuristic on the union DAG (pinned by
``tests/online/test_identity.py`` across kernel backends).

Task identities are namespaced ``"<job_id>/<task>"`` in the union DAG
and the decision journal; per-job views translate back.
"""

from __future__ import annotations

import itertools
import math
import time
from typing import Hashable, NamedTuple, Optional

from .. import obs
from ..core.graph import TaskGraph
from ..core.memory_profile import MemoryProfile
from ..core.platform import Platform
from ..core.schedule import Placement
from ..io.json_io import canonical_json, platform_to_dict
from ..scheduling.candidates import (
    MinEFTSelector,
    RankSelector,
    SufferageSelector,
)
from ..scheduling.kernel import ESTBreakdown, KernelLike
from ..scheduling.ranks import rank_order
from ..scheduling.registry import ENGINE_OPTIONED, get_scheduler
from ..scheduling.state import InfeasibleScheduleError, SchedulerState
from .policies import make_policy

Task = Hashable

#: Due times within this tolerance land in the same planning round.
_TIME_EPS = 1e-9

#: Journal schema revision (first line of :meth:`OnlineSession.journal`).
JOURNAL_VERSION = 1


class OnlineJob:
    """One submitted task graph and its lifecycle inside a session."""

    __slots__ = ("job_id", "graph", "release", "due", "arrival_index",
                 "placements", "decision_ms")

    def __init__(self, job_id: str, graph: TaskGraph, release: float,
                 due: float, arrival_index: int) -> None:
        self.job_id = job_id
        self.graph = graph
        self.release = release
        self.due = due
        self.arrival_index = arrival_index
        #: ``{original_task: Placement}`` once planned, ``None`` before.
        self.placements: Optional[dict] = None
        #: Wall-clock cost of the planning round that placed this job.
        self.decision_ms: Optional[float] = None

    @property
    def state(self) -> str:
        return "queued" if self.placements is None else "scheduled"

    @property
    def start(self) -> Optional[float]:
        if not self.placements:
            return None
        return min(p.start for p in self.placements.values())

    @property
    def finish(self) -> Optional[float]:
        if not self.placements:
            return None
        return max(p.finish for p in self.placements.values())

    def to_dict(self) -> dict:
        out = {
            "job_id": self.job_id,
            "state": self.state,
            "release": self.release,
            "arrival_index": self.arrival_index,
            "n_tasks": self.graph.n_tasks,
        }
        if self.placements is not None:
            out.update(
                start=self.start,
                finish=self.finish,
                decision_ms=self.decision_ms,
                tasks=[
                    {"task": str(t), "proc": p.proc,
                     "memory": p.memory.index,
                     "start": p.start, "finish": p.finish}
                    for t, p in self.placements.items()
                ],
            )
        return out


class _Decision(NamedTuple):
    """One committed placement, recorded with exactly the breakdown
    fields :meth:`SchedulerState.commit` consumes — replaying a decision
    is one ``commit`` call with ``proc`` honoured verbatim and zero EST
    evaluations."""

    task: Task         # namespaced "<job_id>/<task>"
    memidx: int
    est: float         # post-clamp start
    duration: float
    cmax: float
    comm_fit: float
    proc: int


def _split_ns(task: Task) -> tuple[str, str]:
    """``"<job_id>/<task>" -> (job_id, task)`` (job ids contain no '/')."""
    job_id, _, name = str(task).partition("/")
    return job_id, name


def build_union_graph(jobs, n_classes: int,
                      name: str = "online-union") -> TaskGraph:
    """The union DAG of independent jobs, task ids namespaced
    ``"<job_id>/<task>"``, insertion order = arrival order then each
    job's own task order (deterministic, name-independent)."""
    union = TaskGraph(name=name, n_classes=n_classes)
    for job in jobs:
        prefix = job.job_id + "/"
        jg = job.graph
        for t in jg.tasks():
            union.add_task(prefix + str(t), times=jg.times(t))
        for u, v in jg.edges():
            union.add_dependency(prefix + str(u), prefix + str(v),
                                 size=jg.size(u, v), comm=jg.comm(u, v))
    return union


def clairvoyant_makespan(jobs, platform: Platform, *,
                         algorithm: str = "memheft",
                         comm_policy: str = "late",
                         backend: KernelLike = None) -> float:
    """The regret baseline: the offline heuristic's makespan on the
    union DAG of the whole stream, release times relaxed to zero.

    This is a clairvoyant *lower bound* — a scheduler that saw every
    job up front and were free of arrival constraints could interleave
    all tasks in one global pass — so measured regret upper-bounds the
    true loss to the best feasible schedule.  With all releases zero
    the relaxation is vacuous and the bound coincides with the offline
    heuristic the identity property pins online against.
    """
    jobs = sorted(jobs, key=lambda j: j.arrival_index)
    union = build_union_graph(jobs, platform.n_classes,
                              name="clairvoyant-union")
    return get_scheduler(algorithm)(
        union, platform, comm_policy=comm_policy,
        backend=backend).makespan


class OnlineSession:
    """One shared timeline accepting task graphs with release times.

    ``submit`` only enqueues; ``poll(now)`` runs the planning rounds
    whose due times have passed (grouping same-due arrivals into one
    round — how all-zero release times collapse into the offline-
    identical single round); ``flush`` drains everything pending.
    Callers that want submit-and-plan semantics (the service does) call
    ``submit`` + ``poll(release)`` back to back.

    Not thread-safe: the service wraps each session in its own lock.
    """

    def __init__(self, platform: Platform, algorithm: str = "memheft",
                 policy="immediate", comm_policy: str = "late",
                 backend: KernelLike = None) -> None:
        if algorithm not in ENGINE_OPTIONED:
            raise ValueError(
                f"online sessions support the engine heuristics "
                f"{sorted(ENGINE_OPTIONED)}, got {algorithm!r}")
        self.platform = platform
        self.algorithm = algorithm
        self.policy = make_policy(policy)
        self.comm_policy = comm_policy
        self.backend = backend
        self.clock = 0.0
        self.jobs: dict[str, OnlineJob] = {}
        self._pending: list[OnlineJob] = []
        self._avail: list[float] = [0.0] * platform.n_procs
        self._profiles: dict = {
            m: MemoryProfile(platform.capacity(m))
            for m in platform.memories()
        }
        self._log: list[_Decision] = []
        self._arrivals = itertools.count()
        #: One row per planning round: n_jobs/n_tasks/floor/replanned/ms.
        self.rounds: list[dict] = []

    # ------------------------------------------------------------------
    # submission / planning
    # ------------------------------------------------------------------
    @property
    def n_pending(self) -> int:
        return len(self._pending)

    def submit(self, graph: TaskGraph, release: float = 0.0,
               job_id: Optional[str] = None) -> str:
        """Enqueue one job; returns its id.  Plan with :meth:`poll`."""
        if graph.n_classes != self.platform.n_classes:
            raise ValueError(
                f"job graph has {graph.n_classes} memory classes but the "
                f"session platform has {self.platform.n_classes}")
        if not (math.isfinite(release) and release >= 0.0):
            raise ValueError(f"release time must be finite and >= 0, "
                             f"got {release!r}")
        index = next(self._arrivals)
        if job_id is None:
            job_id = f"job-{index:04d}"
        if job_id in self.jobs:
            raise ValueError(f"duplicate job id {job_id!r}")
        if "/" in job_id:
            raise ValueError(f"job id {job_id!r} must not contain '/'")
        job = OnlineJob(job_id, graph, float(release),
                        self.policy.due(float(release)), index)
        self.jobs[job_id] = job
        self._pending.append(job)
        with obs.span("arrival", i=index, job=job_id,
                      n_tasks=graph.n_tasks):
            pass
        st = obs.active()
        if st is not None:
            st.registry.counter("memsched_online_jobs_total",
                                policy=self.policy.name).inc()
        return job_id

    def poll(self, now: Optional[float] = None) -> list[str]:
        """Run every planning round due at or before ``now`` (``None`` =
        all of them), earliest due first; returns the planned job ids."""
        planned: list[str] = []
        while self._pending:
            due = min(j.due for j in self._pending)
            if now is not None and due > now + _TIME_EPS:
                break
            group = [j for j in self._pending
                     if j.due <= due + _TIME_EPS]
            self._pending = [j for j in self._pending if j not in group]
            self.clock = max(self.clock, due)
            self._run_round(group, floor=self.clock)
            planned.extend(j.job_id for j in group)
        return planned

    def flush(self) -> list[str]:
        """Plan everything still pending (end of the arrival stream)."""
        return self.poll(None)

    # ------------------------------------------------------------------
    # planning rounds
    # ------------------------------------------------------------------
    def _run_round(self, group: list, floor: float) -> None:
        t0 = time.perf_counter()
        window = self.policy.replan_window
        with obs.span("plan", policy=self.policy.name, floor=floor,
                      n_jobs=len(group)):
            if window and self._log:
                replanned = self._replan_round(group, floor, window)
            else:
                replanned = 0
                self._carry_forward_round(group, floor)
        ms = (time.perf_counter() - t0) * 1000.0
        for job in group:
            job.decision_ms = ms
            with obs.span("decision", i=job.arrival_index,
                          job=job.job_id, floor=floor):
                pass
        self.rounds.append({
            "floor": floor,
            "n_jobs": len(group),
            "n_tasks": sum(j.graph.n_tasks for j in group),
            "replanned": replanned,
            "ms": ms,
        })
        st = obs.active()
        if st is not None:
            st.registry.histogram("memsched_online_decision_seconds",
                                  policy=self.policy.name
                                  ).observe(ms / 1000.0)

    def _carry_forward_round(self, group: list, floor: float) -> None:
        """Fresh state over the pending union DAG, seeded with the live
        avail vector and the session's memory profiles (by reference)."""
        union = build_union_graph(group, self.platform.n_classes)
        state = SchedulerState(union, self.platform,
                               comm_policy=self.comm_policy,
                               backend=self.backend)
        state.mem = self._profiles
        for p, a in enumerate(self._avail):
            state.avail[p] = a
        records = self._drive(state, union, floor)
        self._log.extend(records)
        self._avail = list(state.avail)
        self._adopt_placements(state, group)

    def _replan_round(self, group: list, floor: float, window: int) -> int:
        """Revoke the revocable tail, rebuild by replaying the kept log,
        then plan revoked + new tasks together at ``floor``.

        A decision is revocable when it sits in the last ``window`` log
        entries *and* its start lies beyond ``floor``.  The kept set is
        ancestor-closed (a child never starts before its parent
        finishes) and the revoked set is descendant-closed (descendants
        commit later in the log and start later), so replaying the kept
        entries in log order is a valid partial schedule.
        """
        head = self._log[:-window] if window < len(self._log) else []
        tail = self._log[len(head):]
        revoked = [d for d in tail if d.est > floor + _TIME_EPS]
        kept = head + [d for d in tail if d.est <= floor + _TIME_EPS]

        # Jobs still pending for a *later* due time stay out of the
        # union — the driver schedules every uncommitted task it sees.
        in_round = [j for j in self.jobs.values()
                    if j.placements is not None or j in group]
        union = build_union_graph(in_round, self.platform.n_classes)
        state = SchedulerState(union, self.platform,
                               comm_policy=self.comm_policy,
                               backend=self.backend)
        memories = self.platform.memories()
        for decision in kept:
            state.commit(ESTBreakdown(
                task=decision.task, memory=memories[decision.memidx],
                resource=0.0, precedence=0.0, task_mem=0.0, comm_mem=0.0,
                cmax=decision.cmax, est=decision.est,
                eft=decision.est + decision.duration,
                comm_fit=decision.comm_fit, duration=decision.duration,
                proc=decision.proc))
            state.pop_newly_ready()   # readiness comes from the log order
        records = self._drive(state, union, floor)
        self._log = kept + records
        self._avail = list(state.avail)
        self._profiles = state.mem
        self._adopt_placements(state, in_round)
        return len(revoked)

    def _drive(self, state: SchedulerState, graph: TaskGraph,
               floor: float) -> list[_Decision]:
        """The offline lazy driver loop, verbatim per algorithm, plus the
        release-floor clamp — with ``floor == 0`` and nothing committed
        this is bit-for-bit the offline heuristic."""
        if self.algorithm == "memheft":
            position = {t: k for k, t in enumerate(
                rank_order(graph, rng=None, platform=self.platform))}
            selector = RankSelector(state, position)
        elif self.algorithm == "memminmin":
            index = {t: k for k, t in enumerate(graph.topological_order())}
            selector = MinEFTSelector(state, index)
        else:   # memsufferage (constructor rejects anything else)
            index = {t: k for k, t in enumerate(graph.topological_order())}
            selector = SufferageSelector(state, index)
        if state.n_scheduled == 0:
            ready = graph.roots()
        else:
            ready = [t for t in graph.topological_order()
                     if state.is_ready(t)]
        for task in ready:
            selector.push(task)
        n_left = graph.n_tasks - state.n_scheduled
        records: list[_Decision] = []
        while n_left:
            best = selector.select()
            if best is None:
                raise InfeasibleScheduleError(
                    f"online {self.algorithm}: no pending task fits within "
                    f"the memory bounds ({n_left} tasks left, "
                    f"capacities={list(self.platform.capacities)})")
            if floor > best.est:
                best = best._replace(est=floor, eft=floor + best.duration)
            placement = state.commit(best)
            records.append(_Decision(
                best.task, best.memory.index, placement.start,
                placement.finish - placement.start, best.cmax,
                best.comm_fit, placement.proc))
            selector.remove(best.task)
            n_left -= 1
            for task in state.pop_newly_ready():
                selector.push(task)
        return records

    def _adopt_placements(self, state: SchedulerState, jobs) -> None:
        """Copy the round state's placements back into per-job views
        (original task names, insertion order)."""
        by_job: dict[str, dict] = {}
        for placement in state.schedule.placements():
            job_id, name = _split_ns(placement.task)
            by_job.setdefault(job_id, {})[name] = placement
        for job in jobs:
            placed = by_job.get(job.job_id)
            if placed is None:
                continue
            job.placements = {
                t: Placement(task=str(t), proc=placed[str(t)].proc,
                             memory=placed[str(t)].memory,
                             start=placed[str(t)].start,
                             finish=placed[str(t)].finish)
                for t in job.graph.tasks()
            }

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    @property
    def makespan(self) -> float:
        """Latest finish over every committed placement (0.0 when
        nothing is planned yet)."""
        finishes = [j.finish for j in self.jobs.values()
                    if j.placements is not None]
        return max(finishes) if finishes else 0.0

    def journal(self) -> str:
        """Canonical JSONL decision journal: a header row, then one row
        per *planned* job in arrival order.  Deterministic — identical
        seed + trace produce byte-identical journals (wall-clock
        latencies deliberately excluded)."""
        header = {
            "v": JOURNAL_VERSION,
            "kind": "online-journal",
            "algorithm": self.algorithm,
            "policy": self.policy.name,
            "comm_policy": self.comm_policy,
            "platform": platform_to_dict(self.platform),
        }
        rows = [canonical_json(header)]
        for job in sorted(self.jobs.values(),
                          key=lambda j: j.arrival_index):
            if job.placements is None:
                continue
            rows.append(canonical_json({
                "job": job.job_id,
                "release": job.release,
                "tasks": [
                    {"task": str(t), "proc": p.proc,
                     "memory": p.memory.index,
                     "start": p.start, "finish": p.finish}
                    for t, p in job.placements.items()
                ],
            }))
        return "\n".join(rows) + "\n"

    def summary(self) -> dict:
        planned = [j for j in self.jobs.values() if j.placements is not None]
        return {
            "algorithm": self.algorithm,
            "policy": self.policy.name,
            "comm_policy": self.comm_policy,
            "clock": self.clock,
            "n_jobs": len(self.jobs),
            "n_planned": len(planned),
            "n_pending": len(self._pending),
            "n_rounds": len(self.rounds),
            "makespan": self.makespan,
        }
