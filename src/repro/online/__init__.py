"""``repro.online`` — stateful online scheduling: jobs arrive over time
and the engine commits placements incrementally on one shared timeline.

Three layers (see the module docstrings for the mechanics):

* :mod:`repro.online.session` — :class:`OnlineSession`, the live
  timeline: submit graphs with release times, plan in rounds driven by
  an arrival policy, read back per-job placements and the deterministic
  decision journal;
* :mod:`repro.online.policies` — arrival policies (``immediate``,
  ``batched:Q``, ``replan:W``) parsed by :func:`make_policy`;
* :mod:`repro.online.simulator` — the event-driven harness
  (:func:`simulate`) plus regret against the clairvoyant offline
  schedule; :mod:`repro.online.loadgen` generates seeded Poisson
  arrival traces for it.

The service exposes sessions over HTTP (``POST /jobs`` /
``GET /jobs/{id}``, protocol 5); ``memsched online`` is the CLI front
end.
"""

from .loadgen import poisson_trace, read_trace, write_trace, zero_release
from .policies import (
    BatchedQuantum,
    BoundedReplan,
    ImmediateGreedy,
    make_policy,
)
from .session import (
    JOURNAL_VERSION,
    OnlineJob,
    OnlineSession,
    build_union_graph,
    clairvoyant_makespan,
)
from .simulator import OnlineResult, simulate

__all__ = [
    "BatchedQuantum",
    "BoundedReplan",
    "ImmediateGreedy",
    "JOURNAL_VERSION",
    "OnlineJob",
    "OnlineResult",
    "OnlineSession",
    "build_union_graph",
    "clairvoyant_makespan",
    "make_policy",
    "poisson_trace",
    "read_trace",
    "simulate",
    "write_trace",
    "zero_release",
]
