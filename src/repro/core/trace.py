"""Execution traces: a schedule flattened into a time-ordered event log
plus per-memory usage timelines.

`validate_schedule` checks a schedule; :func:`trace_schedule` *narrates*
it — task starts/finishes, transfer starts/finishes and the running memory
occupancy of both memories at each event.  Used by the CLI (``--trace``),
by examples, and handy for debugging heuristic decisions.

The replay is driven entirely by the schedule's placements, so per-proc
durations on heterogeneous platforms (``W^(c) / speed(p)``) are narrated
as-is — a task's window is whatever its processor actually ran.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Literal

from .graph import TaskGraph
from .platform import Memory, Platform
from .schedule import Schedule
from .validation import memory_usage

Task = Hashable

EventKind = Literal["task_start", "task_finish", "comm_start", "comm_finish"]

#: Render order for events sharing a timestamp: finishes release resources
#: before starts claim them, transfers land before the consumer starts.
_KIND_ORDER = {"task_finish": 0, "comm_finish": 1, "comm_start": 2, "task_start": 3}


@dataclass(frozen=True)
class TraceEvent:
    """One schedule event with the memory occupancy right after it."""

    time: float
    kind: EventKind
    what: str           # task name or "src->dst"
    proc: int           # -1 for transfers
    memory: str         # memory/direction label
    used_blue: float    # class-0 occupancy (the dual platform's blue)
    used_red: float     # class-1 occupancy (0 on single-memory platforms)
    used: tuple[float, ...] = ()  # per-class occupancy, all k classes


def trace_schedule(graph: TaskGraph, platform: Platform,
                   schedule: Schedule) -> list[TraceEvent]:
    """Time-ordered event log of a complete schedule."""
    profiles = memory_usage(graph, platform, schedule)

    raw: list[tuple[float, str, str, int, str]] = []
    for p in schedule.placements():
        raw.append((p.start, "task_start", str(p.task), p.proc, p.memory.value))
        raw.append((p.finish, "task_finish", str(p.task), p.proc, p.memory.value))
    for ev in schedule.comms():
        label = f"{ev.src}->{ev.dst}"
        src = schedule.memory_of(ev.src).value
        dst = schedule.memory_of(ev.dst).value
        raw.append((ev.start, "comm_start", label, -1, f"{src}->{dst}"))
        raw.append((ev.finish, "comm_finish", label, -1, f"{src}->{dst}"))

    raw.sort(key=lambda r: (r[0], _KIND_ORDER[r[1]], r[2]))
    memories = platform.memories()
    out = []
    for time, kind, what, proc, memory in raw:
        used = tuple(profiles[m].used_at(time) for m in memories)
        out.append(TraceEvent(
            time=time, kind=kind, what=what, proc=proc, memory=memory,
            used_blue=used[0],
            used_red=used[1] if len(used) > 1 else 0.0,
            used=used,
        ))
    return out


def format_trace(events: list[TraceEvent]) -> str:
    """Human-readable rendering of a trace."""
    lines = [f"{'time':>9}  {'event':<12} {'what':<20} {'where':<12} "
             f"{'blue':>8} {'red':>8}"]
    for ev in events:
        where = f"P{ev.proc}" if ev.proc >= 0 else ev.memory
        lines.append(f"{ev.time:9g}  {ev.kind:<12} {ev.what:<20} "
                     f"{where:<12} {ev.used_blue:8g} {ev.used_red:8g}")
    return "\n".join(lines)


def memory_timeline(graph: TaskGraph, platform: Platform, schedule: Schedule,
                    memory: Memory) -> list[tuple[float, float]]:
    """``(time, used)`` breakpoints of one memory over the schedule."""
    profile = memory_usage(graph, platform, schedule)[memory]
    return [(start, used) for start, _end, used in profile.segments()]
