"""Piecewise-constant memory-occupancy profile (the ``free_mem`` staircase of §5.1).

The paper's heuristics maintain, per memory, a staircase function
``free_mem(t)`` stored as a list of couples ``[(x_1, val_1), .., (x_l, val_l)]``.
We store the *used* memory instead (``free = capacity - used``), which keeps
the same representation working when the capacity is infinite — the classical
memory-oblivious heuristics are then just the memory-aware ones run with
``capacity = inf`` while still being able to report their memory peaks.

Supported queries:

* :meth:`add` — add (or with a negative amount, release) memory over a
  time interval ``[start, end)``; ``end=None`` means "until further notice"
  (the paper's note that ``val_l`` may be non-zero because files stay
  resident until their consumer is scheduled).
* :meth:`earliest_fit` — the ``min { t : for all t' >= t, free(t') >= need }``
  primitive used by ``task_mem_EST`` and ``comm_mem_EST``.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Iterator, Optional

from .._util import EPS


class MemoryProfile:
    """Used-memory staircase over ``[0, +inf)`` with capacity queries."""

    __slots__ = ("capacity", "_xs", "_vals", "_suffix_max", "_dirty")

    def __init__(self, capacity: float = math.inf) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self._xs: list[float] = [0.0]  # breakpoint times, sorted, xs[0] == 0
        self._vals: list[float] = [0.0]  # used memory on [xs[k], xs[k+1]) (last: to +inf)
        self._suffix_max: Optional[list[float]] = None
        self._dirty = True

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def _breakpoint_index(self, t: float) -> int:
        """Index of the segment containing ``t``, inserting a breakpoint at
        ``t`` if needed; ``t`` must be >= 0."""
        k = bisect_right(self._xs, t) - 1
        if self._xs[k] != t:
            self._xs.insert(k + 1, t)
            self._vals.insert(k + 1, self._vals[k])
            k += 1
        return k

    def add(self, amount: float, start: float, end: Optional[float] = None) -> None:
        """Add ``amount`` of used memory on ``[start, end)``.

        ``end=None`` extends to +inf.  Negative amounts release memory.
        ``start`` is clamped to 0.  Empty or zero-amount intervals are no-ops.
        """
        if amount == 0.0:
            return
        start = max(0.0, start)
        if end is not None and end <= start:
            return
        i0 = self._breakpoint_index(start)
        i1 = len(self._xs) if end is None else self._breakpoint_index(end)
        for k in range(i0, i1):
            self._vals[k] += amount
        self._dirty = True

    def release_from(self, amount: float, start: float) -> None:
        """Release ``amount`` from ``start`` onwards (convenience wrapper)."""
        self.add(-amount, start, None)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def used_at(self, t: float) -> float:
        """Used memory at time ``t`` (segments are half-open ``[x_k, x_{k+1})``)."""
        if t < 0:
            return 0.0
        k = bisect_right(self._xs, t) - 1
        return self._vals[k]

    def free_at(self, t: float) -> float:
        """Free memory at time ``t``."""
        return self.capacity - self.used_at(t)

    def peak(self) -> float:
        """Maximum used memory over all time."""
        return max(self._vals)

    def peak_in(self, start: float, end: float) -> float:
        """Maximum used memory over ``[start, end)``."""
        if end <= start:
            return 0.0
        k0 = max(0, bisect_right(self._xs, max(0.0, start)) - 1)
        peak = 0.0
        for k in range(k0, len(self._xs)):
            if self._xs[k] >= end:
                break
            peak = max(peak, self._vals[k])
        return peak

    def _ensure_suffix_max(self) -> list[float]:
        if self._dirty or self._suffix_max is None:
            sm: list[float] = [0.0] * len(self._vals)
            running = -math.inf
            for k in range(len(self._vals) - 1, -1, -1):
                running = max(running, self._vals[k])
                sm[k] = running
            self._suffix_max = sm
            self._dirty = False
        return self._suffix_max

    def earliest_fit(self, need: float, not_before: float = 0.0) -> float:
        """Earliest ``t >= not_before`` such that ``free(t') >= need`` for all
        ``t' >= t`` — the query behind ``task_mem_EST`` / ``comm_mem_EST``
        (§5.1).  Returns ``inf`` when ``need`` exceeds the capacity or the
        tail of the profile never frees enough memory.
        """
        if need <= EPS:
            return max(0.0, not_before)
        if need > self.capacity + EPS:
            return math.inf
        threshold = self.capacity - need
        sm = self._ensure_suffix_max()
        # sm is non-increasing; find the leftmost segment whose suffix max
        # fits under the threshold.
        lo, hi = 0, len(sm)
        while lo < hi:
            mid = (lo + hi) // 2
            if sm[mid] <= threshold + EPS:
                hi = mid
            else:
                lo = mid + 1
        if lo == len(sm):
            return math.inf  # tail value itself exceeds the threshold
        t = self._xs[lo] if lo > 0 else 0.0
        return max(t, not_before)

    # ------------------------------------------------------------------
    # introspection / invariants
    # ------------------------------------------------------------------
    def segments(self) -> Iterator[tuple[float, float, float]]:
        """Yield ``(start, end, used)`` segments; the last has ``end = inf``."""
        for k in range(len(self._xs)):
            end = self._xs[k + 1] if k + 1 < len(self._xs) else math.inf
            yield (self._xs[k], end, self._vals[k])

    def n_segments(self) -> int:
        return len(self._xs)

    def check_invariants(self) -> None:
        """Used memory must stay within ``[0, capacity]`` (tolerance ``EPS``)."""
        for k, v in enumerate(self._vals):
            if v < -1e-6:
                raise AssertionError(f"negative used memory {v} at segment {k}")
            if v > self.capacity + 1e-6:
                raise AssertionError(
                    f"used memory {v} exceeds capacity {self.capacity} at segment {k}"
                )

    def compact(self) -> None:
        """Merge adjacent segments with equal values (cosmetic/space only)."""
        xs, vals = [self._xs[0]], [self._vals[0]]
        for x, v in zip(self._xs[1:], self._vals[1:]):
            if v != vals[-1]:
                xs.append(x)
                vals.append(v)
        self._xs, self._vals = xs, vals
        self._dirty = True

    def copy(self) -> "MemoryProfile":
        clone = MemoryProfile(self.capacity)
        clone._xs = list(self._xs)
        clone._vals = list(self._vals)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cap = "inf" if math.isinf(self.capacity) else f"{self.capacity:g}"
        return f"MemoryProfile(capacity={cap}, segments={len(self._xs)}, peak={self.peak():g})"
