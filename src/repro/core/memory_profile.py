"""Piecewise-constant memory-occupancy profile (the ``free_mem`` staircase of §5.1).

The paper's heuristics maintain, per memory, a staircase function
``free_mem(t)`` stored as a list of couples ``[(x_1, val_1), .., (x_l, val_l)]``.
We store the *used* memory instead (``free = capacity - used``), which keeps
the same representation working when the capacity is infinite — the classical
memory-oblivious heuristics are then just the memory-aware ones run with
``capacity = inf`` while still being able to report their memory peaks.

Supported queries:

* :meth:`add` — add (or with a negative amount, release) memory over a
  time interval ``[start, end)``; ``end=None`` means "until further notice"
  (the paper's note that ``val_l`` may be non-zero because files stay
  resident until their consumer is scheduled).
* :meth:`earliest_fit` — the ``min { t : for all t' >= t, free(t') >= need }``
  primitive used by ``task_mem_EST`` and ``comm_mem_EST``.

``earliest_fit`` is the hot query of the EST kernel.  Rather than rebuilding
an O(l) suffix-max array after every mutation (the seed implementation's
hidden quadratic term), the profile keeps *block maxima* over the segment
values: mutations dirty only the blocks at/after their leftmost touched
index — almost always near the staircase's tail, since schedules grow
forward in time — and the query scans blocks right-to-left for the
rightmost segment exceeding the threshold, skipping whole blocks.  Both the
repair and the scan are O(l / B + B) in the common case.  Unbounded
profiles skip the machinery entirely (any amount fits at t = 0).
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from typing import Iterator, Optional

from .._util import EPS


class MemoryProfile:
    """Used-memory staircase over ``[0, +inf)`` with capacity queries.

    The profile carries a ``version`` counter, bumped on every mutation that
    can change the staircase *function*; the scheduler's incremental EST
    kernel keys its ``earliest_fit`` memoisation on it.  Merging adjacent
    equal-valued segments (:meth:`compact`) leaves the function — and hence
    the version — unchanged, which lets long schedules compact away dead
    breakpoints without invalidating any cached EST component.
    """

    __slots__ = ("capacity", "version", "_xs", "_vals", "_bmax", "_bdirty",
                 "_compact_floor")

    #: Segments per max-block.  Mutation repair and threshold queries cost
    #: O(l / B + B); 64 balances the two for the profile sizes large
    #: schedules produce (a few thousand segments).
    _BLOCK = 64

    #: Auto-compaction triggers when the segment count exceeds
    #: ``max(_COMPACT_MIN, 2 * floor)`` where ``floor`` is the count right
    #: after the previous compaction — amortized O(1) per mutation.
    _COMPACT_MIN = 64

    def __init__(self, capacity: float = math.inf) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self.version = 0
        self._xs: list[float] = [0.0]  # breakpoint times, sorted, xs[0] == 0
        self._vals: list[float] = [0.0]  # used memory on [xs[k], xs[k+1]) (last: to +inf)
        self._bmax: list[float] = []   # per-block max of _vals[b*B:(b+1)*B]
        self._bdirty = 0               # blocks >= _bdirty are stale
        self._compact_floor = 1

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def _mark_dirty(self, index: int) -> None:
        """Record that segment values at/after ``index`` changed or shifted."""
        block = index // self._BLOCK
        if block < self._bdirty:
            self._bdirty = block

    def _breakpoint_index(self, t: float) -> int:
        """Index of the segment containing ``t``, inserting a breakpoint at
        ``t`` if needed; ``t`` must be >= 0."""
        k = bisect_right(self._xs, t) - 1
        if self._xs[k] != t:
            self._xs.insert(k + 1, t)
            self._vals.insert(k + 1, self._vals[k])
            k += 1
            self._mark_dirty(k)
        return k

    def add(self, amount: float, start: float, end: Optional[float] = None) -> None:
        """Add ``amount`` of used memory on ``[start, end)``.

        ``end=None`` extends to +inf.  Negative amounts release memory.
        ``start`` is clamped to 0.  Empty or zero-amount intervals are no-ops.
        """
        if amount == 0.0:
            return
        start = max(0.0, start)
        if end is not None and end <= start:
            return
        i0 = self._breakpoint_index(start)
        i1 = len(self._xs) if end is None else self._breakpoint_index(end)
        for k in range(i0, i1):
            self._vals[k] += amount
        self._mark_dirty(i0)
        self.version += 1
        if len(self._xs) > max(self._COMPACT_MIN, 2 * self._compact_floor):
            self.compact()

    def release_from(self, amount: float, start: float) -> None:
        """Release ``amount`` from ``start`` onwards (convenience wrapper)."""
        self.add(-amount, start, None)

    def add_batch(self, events) -> None:
        """Apply many :meth:`add` mutations in one pass.

        ``events`` is an iterable of ``(amount, start, end)`` triples with
        the same per-event semantics as :meth:`add` (``end=None`` extends
        to +inf, starts clamped to 0, zero-amount or empty intervals are
        no-ops).  One commit issues several adds against the same profile;
        applying them together replaces E breakpoint-insertion list shifts
        and E block-dirty/compaction checks with a single merge pass and
        one version bump.

        The resulting staircase *function* is bit-identical to issuing the
        events one at a time: breakpoint insertion never changes the
        function, and each segment's value accumulates the amounts of the
        events covering it in event order — exactly the per-segment ``+=``
        order of the sequential path.  (The ``version`` counter advances
        once instead of E times; consumers only ever compare versions for
        equality.)
        """
        live: list[tuple[float, float, Optional[float]]] = []
        for amount, start, end in events:
            if amount == 0.0:
                continue
            start = max(0.0, start)
            if end is not None and end <= start:
                continue
            live.append((amount, start, end))
        if not live:
            return
        if len(live) == 1:
            self.add(*live[0])
            return

        # Merge all new breakpoints into the staircase in one pass.  Every
        # breakpoint time is >= 0 == xs[0], and each event's end exceeds
        # its start, so the earliest time is always some event's start.
        times = sorted({t for _, s, e in live
                        for t in ((s,) if e is None else (s, e))})
        xs, vals = self._xs, self._vals
        new_xs: list[float] = []
        new_vals: list[float] = []
        ti = 0
        nt = len(times)
        for k in range(len(xs)):
            x = xs[k]
            while ti < nt and times[ti] < x:
                t = times[ti]
                ti += 1
                if t != new_xs[-1]:
                    new_xs.append(t)
                    new_vals.append(new_vals[-1])
            if ti < nt and times[ti] == x:
                ti += 1
            new_xs.append(x)
            new_vals.append(vals[k])
        while ti < nt:  # breakpoints inside the final to-infinity segment
            t = times[ti]
            ti += 1
            if t != new_xs[-1]:
                new_xs.append(t)
                new_vals.append(new_vals[-1])

        # Apply the amounts per event, in event order (now that every
        # start/end is an exact breakpoint, each is one bisect + slice).
        n = len(new_xs)
        for amount, start, end in live:
            i1 = n if end is None else bisect_left(new_xs, end)
            for k in range(bisect_left(new_xs, start), i1):
                new_vals[k] += amount

        self._xs, self._vals = new_xs, new_vals
        # All inserts and value changes sit at/after the earliest event
        # time, which is itself a breakpoint of the merged staircase.
        self._mark_dirty(bisect_left(new_xs, times[0]))
        self.version += 1
        if n > max(self._COMPACT_MIN, 2 * self._compact_floor):
            self.compact()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def used_at(self, t: float) -> float:
        """Used memory at time ``t`` (segments are half-open ``[x_k, x_{k+1})``)."""
        if t < 0:
            return 0.0
        k = bisect_right(self._xs, t) - 1
        return self._vals[k]

    def free_at(self, t: float) -> float:
        """Free memory at time ``t``."""
        return self.capacity - self.used_at(t)

    def peak(self) -> float:
        """Maximum used memory over all time."""
        return max(self._vals)

    def peak_in(self, start: float, end: float) -> float:
        """Maximum used memory over ``[start, end)``."""
        if end <= start:
            return 0.0
        k0 = max(0, bisect_right(self._xs, max(0.0, start)) - 1)
        peak = 0.0
        for k in range(k0, len(self._xs)):
            if self._xs[k] >= end:
                break
            peak = max(peak, self._vals[k])
        return peak

    def _repair_blocks(self) -> None:
        """Recompute the stale tail of the block-max array."""
        vals = self._vals
        B = self._BLOCK
        n_blocks = (len(vals) + B - 1) // B
        del self._bmax[self._bdirty:]
        for b in range(self._bdirty, n_blocks):
            self._bmax.append(max(vals[b * B:(b + 1) * B]))
        self._bdirty = n_blocks

    def _rightmost_above(self, threshold: float) -> int:
        """Rightmost segment index whose value exceeds ``threshold`` (with
        the library tolerance), or -1 when none does."""
        self._repair_blocks()
        vals = self._vals
        B = self._BLOCK
        bound = threshold + EPS
        for b in range(len(self._bmax) - 1, -1, -1):
            if self._bmax[b] <= bound:
                continue
            lo = b * B
            for k in range(min(len(vals), lo + B) - 1, lo - 1, -1):
                if vals[k] > bound:
                    return k
        return -1

    def earliest_fit(self, need: float, not_before: float = 0.0) -> float:
        """Earliest ``t >= not_before`` such that ``free(t') >= need`` for all
        ``t' >= t`` — the query behind ``task_mem_EST`` / ``comm_mem_EST``
        (§5.1).  Returns ``inf`` when ``need`` exceeds the capacity or the
        tail of the profile never frees enough memory.
        """
        if need <= EPS:
            return max(0.0, not_before)
        if need > self.capacity + EPS:
            return math.inf
        if math.isinf(self.capacity):
            return max(0.0, not_before)
        # Find the rightmost segment still too full; everything after fits.
        j = self._rightmost_above(self.capacity - need)
        if j < 0:
            return max(0.0, not_before)
        if j == len(self._vals) - 1:
            return math.inf  # tail value itself exceeds the threshold
        return max(self._xs[j + 1], not_before)

    # ------------------------------------------------------------------
    # introspection / invariants
    # ------------------------------------------------------------------
    def segments(self) -> Iterator[tuple[float, float, float]]:
        """Yield ``(start, end, used)`` segments; the last has ``end = inf``."""
        for k in range(len(self._xs)):
            end = self._xs[k + 1] if k + 1 < len(self._xs) else math.inf
            yield (self._xs[k], end, self._vals[k])

    def n_segments(self) -> int:
        return len(self._xs)

    def check_invariants(self) -> None:
        """Used memory must stay within ``[0, capacity]`` (tolerance ``EPS``)."""
        for k, v in enumerate(self._vals):
            if v < -1e-6:
                raise AssertionError(f"negative used memory {v} at segment {k}")
            if v > self.capacity + 1e-6:
                raise AssertionError(
                    f"used memory {v} exceeds capacity {self.capacity} at segment {k}"
                )

    def compact(self) -> None:
        """Merge adjacent segments with equal values.

        The staircase *function* is unchanged (only exactly-equal neighbours
        merge), so ``version`` is deliberately left alone: every cached
        ``earliest_fit`` answer remains valid.  Called automatically once
        the segment list doubles past the last compaction (amortized O(1)
        per mutation), keeping long schedules from accumulating dead
        breakpoints left behind by release/allocate churn.
        """
        xs, vals = [self._xs[0]], [self._vals[0]]
        for x, v in zip(self._xs[1:], self._vals[1:]):
            if v != vals[-1]:
                xs.append(x)
                vals.append(v)
        self._xs, self._vals = xs, vals
        self._bmax = []
        self._bdirty = 0
        self._compact_floor = len(xs)

    def copy(self) -> "MemoryProfile":
        clone = MemoryProfile(self.capacity)
        clone.version = self.version
        clone._xs = list(self._xs)
        clone._vals = list(self._vals)
        clone._bmax = list(self._bmax)
        clone._bdirty = self._bdirty
        clone._compact_floor = self._compact_floor
        return clone

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cap = "inf" if math.isinf(self.capacity) else f"{self.capacity:g}"
        return f"MemoryProfile(capacity={cap}, segments={len(self._xs)}, peak={self.peak():g})"
