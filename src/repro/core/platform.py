"""k-memory platform model (paper §3.1, generalised per §7).

A platform holds ``k`` memory classes; class ``c`` owns ``proc_counts[c]``
processors sharing a memory of capacity ``capacities[c]``.  Processors are
indexed globally, class after class: class 0 first, then class 1, and so on.

The paper's dual-memory platform is the ``k = 2`` special case: class 0 is
the *blue* memory (multicore CPUs), class 1 the *red* one (GPU/FPGA
accelerators).  The historical dual-memory API (``Memory.BLUE``/``RED``,
``n_blue``/``n_red``, ``mem_blue``/``mem_red``) is preserved as a thin
facade over the generic representation, so existing call sites and
serialized schedules keep working unchanged.

**Heterogeneous processors.**  The paper assumes the processors inside a
memory class are identical; real hybrid nodes mix CPU SKUs and GPU
generations.  ``speeds`` gives every processor a relative speed factor
(default 1.0): a task with per-class time ``W^(c)`` runs for
``W^(c) / speeds[p]`` on processor ``p`` of class ``c`` (the related-machines
model of Amaris et al., arXiv:1711.06433).  ``speeds = all 1.0`` recovers
the paper's model exactly — serialization omits the vector and the
scheduling kernel takes the identical uniform-class arithmetic, so
homogeneous platforms behave (and hash) exactly as before.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Union


class Memory:
    """One memory class of a platform, identified by its index.

    Instances are interned (one object per index), so identity comparisons
    (``placement.memory is Memory.BLUE``) behave exactly like the historical
    enum.  ``Memory(0)`` / ``Memory("blue")`` both yield the blue memory;
    indices beyond the dual pair render as ``"mem2"``, ``"mem3"``, ...
    """

    __slots__ = ("index", "value")

    _interned: dict[int, "Memory"] = {}
    _CANONICAL_NAMES = {0: "blue", 1: "red"}

    # Populated after the class body (interning needs the class object).
    BLUE: "Memory"
    RED: "Memory"

    def __new__(cls, key: Union[int, str, "Memory"]) -> "Memory":
        if isinstance(key, Memory):
            return key
        if isinstance(key, str):
            key = cls._index_of_name(key)
        index = int(key)
        if index < 0:
            raise ValueError(f"memory index must be >= 0, got {index}")
        try:
            return cls._interned[index]
        except KeyError:
            self = super().__new__(cls)
            object.__setattr__(self, "index", index)
            object.__setattr__(self, "value",
                               cls._CANONICAL_NAMES.get(index, f"mem{index}"))
            cls._interned[index] = self
            return self

    @classmethod
    def _index_of_name(cls, name: str) -> int:
        for idx, canonical in cls._CANONICAL_NAMES.items():
            if name == canonical:
                return idx
        if name.startswith("mem") and name[3:].isdigit():
            return int(name[3:])
        raise ValueError(f"unknown memory name {name!r}")

    # -- interning keeps identity semantics; forbid mutation ------------
    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Memory instances are immutable")

    def __reduce__(self):  # pickling / deepcopy preserve interning
        return (Memory, (self.index,))

    def __copy__(self) -> "Memory":
        return self

    def __deepcopy__(self, memo: dict) -> "Memory":
        return self

    # -- dual-memory conveniences ----------------------------------------
    def other(self) -> "Memory":
        """The opposite memory of the dual pair (only defined for k = 2)."""
        if self.index not in (0, 1):
            raise ValueError(f"other() is only defined for the dual pair, "
                             f"not {self}")
        return Memory(1 - self.index)

    # -- ordering / rendering --------------------------------------------
    def __lt__(self, other: "Memory") -> bool:
        return self.index < other.index

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Memory.{self.value}>"


Memory.BLUE = Memory(0)
Memory.RED = Memory(1)

#: The dual pair, in canonical (blue, red) order — the ``k = 2`` facade.
MEMORIES: tuple[Memory, Memory] = (Memory.BLUE, Memory.RED)


def _as_index(memory: Union[Memory, int]) -> int:
    return memory.index if isinstance(memory, Memory) else int(memory)


class Platform:
    """Processor counts and memory capacities, one entry per memory class.

    Construction accepts either the historical dual-memory signature::

        Platform(n_blue=2, n_red=1, mem_blue=40, mem_red=40)

    or a generic sequence per class (any ``k >= 1``)::

        Platform([2, 1, 1], [40, 40, 10])

    ``math.inf`` capacities mean unbounded, which turns the memory-aware
    heuristics into their classical memory-oblivious counterparts.

    ``speeds`` optionally gives each processor (global index order) a
    relative speed factor; omitted, every processor runs at speed 1.0 (the
    paper's homogeneous model).
    """

    __slots__ = ("proc_counts", "capacities", "speeds", "_proc_ranges",
                 "uniform_classes", "max_class_speeds", "proc_classes")

    def __init__(self,
                 n_blue: Union[int, Sequence[int]] = 1,
                 n_red: Union[int, Sequence[float], None] = None,
                 mem_blue: float = math.inf,
                 mem_red: float = math.inf,
                 speeds: Optional[Sequence[float]] = None) -> None:
        if isinstance(n_blue, (list, tuple)):
            counts = tuple(int(n) for n in n_blue)
            if n_red is None:
                caps = tuple(math.inf for _ in counts)
            else:
                if isinstance(n_red, (int, float)):
                    raise TypeError("generic Platform(counts, capacities) "
                                    "needs a capacity sequence")
                caps = tuple(float(c) for c in n_red)
        else:
            counts = (int(n_blue), 1 if n_red is None else int(n_red))
            caps = (float(mem_blue), float(mem_red))
        if not counts:
            raise ValueError("platform needs at least one memory class")
        if len(counts) != len(caps):
            raise ValueError("proc_counts and capacities must have equal length")
        if any(n < 0 for n in counts):
            raise ValueError("processor counts must be non-negative")
        if sum(counts) == 0:
            raise ValueError("platform needs at least one processor")
        if any(c < 0 for c in caps):
            raise ValueError("memory capacities must be non-negative")
        object.__setattr__(self, "proc_counts", counts)
        object.__setattr__(self, "capacities", caps)
        ranges, start = [], 0
        for n in counts:
            ranges.append(range(start, start + n))
            start += n
        object.__setattr__(self, "_proc_ranges", tuple(ranges))
        # Inverse map: global processor index -> memory-class index (the
        # flat layout the scheduling kernel and avail structures index by).
        object.__setattr__(self, "proc_classes",
                           tuple(c for c, n in enumerate(counts)
                                 for _ in range(n)))

        n_procs = sum(counts)
        if speeds is None:
            spd = (1.0,) * n_procs
        else:
            spd = tuple(float(s) for s in speeds)
            if len(spd) != n_procs:
                raise ValueError(
                    f"speeds must have one entry per processor "
                    f"({n_procs}), got {len(spd)}")
            if any(s <= 0 or not math.isfinite(s) for s in spd):
                raise ValueError("processor speeds must be finite and > 0")
        object.__setattr__(self, "speeds", spd)
        # Per class: whether all its processors share one speed (the fast
        # path of the EST kernel), and the fastest speed (lower-bound key
        # of the lazy selectors).
        uniform, fastest = [], []
        for r in ranges:
            cs = spd[r.start:r.stop]
            uniform.append(len(set(cs)) <= 1)
            fastest.append(max(cs) if cs else 1.0)
        object.__setattr__(self, "uniform_classes", tuple(uniform))
        object.__setattr__(self, "max_class_speeds", tuple(fastest))

    # -- frozen semantics -------------------------------------------------
    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Platform is immutable")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Platform):
            return NotImplemented
        return (self.proc_counts == other.proc_counts
                and self.capacities == other.capacities
                and self.speeds == other.speeds)

    def __hash__(self) -> int:
        return hash((self.proc_counts, self.capacities, self.speeds))

    def __reduce__(self):
        return (Platform, (list(self.proc_counts), list(self.capacities),
                           math.inf, math.inf,
                           None if not self.is_heterogeneous
                           else list(self.speeds)))

    # ------------------------------------------------------------------
    # memory classes
    # ------------------------------------------------------------------
    @property
    def n_classes(self) -> int:
        """Number of memory classes (2 for the paper's dual platform)."""
        return len(self.proc_counts)

    def memories(self) -> tuple[Memory, ...]:
        """All memory classes, in index order."""
        return tuple(Memory(c) for c in range(self.n_classes))

    def classes(self) -> range:
        """Memory-class indices (``range(k)``)."""
        return range(self.n_classes)

    def _require_dual(self, attr: str) -> None:
        if self.n_classes != 2:
            raise AttributeError(
                f"{attr} is only defined on dual-memory (k=2) platforms; "
                f"this one has {self.n_classes} classes")

    # -- dual facade ------------------------------------------------------
    @property
    def n_blue(self) -> int:
        self._require_dual("n_blue")
        return self.proc_counts[0]

    @property
    def n_red(self) -> int:
        self._require_dual("n_red")
        return self.proc_counts[1]

    @property
    def mem_blue(self) -> float:
        self._require_dual("mem_blue")
        return self.capacities[0]

    @property
    def mem_red(self) -> float:
        self._require_dual("mem_red")
        return self.capacities[1]

    # ------------------------------------------------------------------
    # processor indexing
    # ------------------------------------------------------------------
    @property
    def n_procs(self) -> int:
        """Total number of processors."""
        return sum(self.proc_counts)

    def procs(self, memory: Union[Memory, int]) -> range:
        """Global indices of the processors attached to ``memory``."""
        return self._proc_ranges[_as_index(memory)]

    def n_procs_of(self, memory: Union[Memory, int]) -> int:
        """Number of processors attached to ``memory``."""
        return self.proc_counts[_as_index(memory)]

    def memory_of(self, proc: int) -> Memory:
        """Memory a global processor index operates on."""
        if not 0 <= proc < self.n_procs:
            raise ValueError(f"processor index {proc} out of range [0, {self.n_procs})")
        return Memory(self.proc_classes[proc])

    def class_of(self, proc: int) -> int:
        """Memory-class index of a global processor index."""
        return self.memory_of(proc).index

    # ------------------------------------------------------------------
    # processor speeds
    # ------------------------------------------------------------------
    @property
    def is_heterogeneous(self) -> bool:
        """Whether any processor runs at a speed other than 1.0.

        ``False`` is the paper's model; serialization omits the speed
        vector exactly when this is ``False`` (digest stability).
        """
        return any(s != 1.0 for s in self.speeds)

    def speed(self, proc: int) -> float:
        """Relative speed of a global processor index."""
        return self.speeds[proc]

    def class_speeds(self, memory: Union[Memory, int]) -> tuple[float, ...]:
        """Speeds of the processors attached to ``memory``."""
        r = self._proc_ranges[_as_index(memory)]
        return self.speeds[r.start:r.stop]

    def max_class_speed(self, memory: Union[Memory, int]) -> float:
        """Fastest processor speed inside ``memory`` (1.0 when empty) —
        the per-class duration lower bound ``W^(c) / max_speed`` used by
        the lazy selectors' eternal heap keys."""
        return self.max_class_speeds[_as_index(memory)]

    def is_uniform_class(self, memory: Union[Memory, int]) -> bool:
        """Whether every processor of ``memory`` shares one speed — the
        condition under which the EST kernel takes the class-wide
        ``min(avail)`` fast path (bit-identical to the homogeneous
        arithmetic)."""
        return self.uniform_classes[_as_index(memory)]

    def duration(self, w: float, proc: int) -> float:
        """Execution time of a task with class-time ``w`` on ``proc``
        (``w / speed``; exact — bit-identical to ``w`` — at speed 1.0)."""
        return w / self.speeds[proc]

    def with_speeds(self, speeds: Optional[Sequence[float]]) -> "Platform":
        """Copy of this platform with a different speed vector
        (``None`` resets to homogeneous)."""
        return Platform(list(self.proc_counts), list(self.capacities),
                        speeds=None if speeds is None else list(speeds))

    # ------------------------------------------------------------------
    # memory capacities
    # ------------------------------------------------------------------
    def capacity(self, memory: Union[Memory, int]) -> float:
        """Capacity of ``memory``."""
        return self.capacities[_as_index(memory)]

    @property
    def is_memory_bounded(self) -> bool:
        """Whether at least one memory has a finite capacity."""
        return any(math.isfinite(c) for c in self.capacities)

    def with_capacities(self, capacities: Sequence[float]) -> "Platform":
        """Copy of this platform with different memory capacities
        (processor speeds preserved)."""
        return Platform(list(self.proc_counts), list(capacities),
                        speeds=list(self.speeds))

    def with_bounds(self, mem_blue: float, mem_red: float) -> "Platform":
        """Copy with different capacities (dual-memory convenience)."""
        self._require_dual("with_bounds")
        return self.with_capacities((mem_blue, mem_red))

    def with_uniform_bound(self, bound: float) -> "Platform":
        """Copy with the same capacity ``bound`` on every memory
        (the ``M^(bound)`` setting used throughout the paper's §6)."""
        return self.with_capacities([bound] * self.n_classes)

    def unbounded(self) -> "Platform":
        """Copy of this platform with infinite memories."""
        return self.with_capacities([math.inf] * self.n_classes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        caps = ", ".join("inf" if math.isinf(c) else f"{c:g}"
                         for c in self.capacities)
        spd = (f", speeds={[f'{s:g}' for s in self.speeds]}"
               if self.is_heterogeneous else "")
        return (f"Platform(procs={list(self.proc_counts)}, "
                f"capacities=[{caps}]{spd})")
