"""Dual-memory platform model (paper §3.1).

A platform holds ``n_blue`` identical processors attached to the *blue*
memory and ``n_red`` identical processors attached to the *red* memory
(e.g. multicore CPUs + GPU/FPGA accelerators).  Processors are indexed
globally: ``0 .. n_blue-1`` are blue, ``n_blue .. n_blue+n_red-1`` are red.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from enum import Enum


class Memory(Enum):
    """One of the two memories of a dual-memory platform."""

    BLUE = "blue"
    RED = "red"

    def other(self) -> "Memory":
        """The opposite memory."""
        return Memory.RED if self is Memory.BLUE else Memory.BLUE

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Both memories, in canonical (blue, red) order.
MEMORIES: tuple[Memory, Memory] = (Memory.BLUE, Memory.RED)


@dataclass(frozen=True)
class Platform:
    """A dual-memory platform: processor counts and memory capacities.

    Parameters
    ----------
    n_blue, n_red:
        Number of identical processors attached to each memory (``P1`` and
        ``P2`` in the paper).  At least one processor overall is required.
    mem_blue, mem_red:
        Memory capacities (``M^(blue)`` and ``M^(red)``); ``math.inf`` means
        unbounded, which turns the memory-aware heuristics into their
        classical memory-oblivious counterparts.
    """

    n_blue: int = 1
    n_red: int = 1
    mem_blue: float = math.inf
    mem_red: float = math.inf

    def __post_init__(self) -> None:
        if self.n_blue < 0 or self.n_red < 0:
            raise ValueError("processor counts must be non-negative")
        if self.n_blue + self.n_red == 0:
            raise ValueError("platform needs at least one processor")
        if self.mem_blue < 0 or self.mem_red < 0:
            raise ValueError("memory capacities must be non-negative")

    # ------------------------------------------------------------------
    # processor indexing
    # ------------------------------------------------------------------
    @property
    def n_procs(self) -> int:
        """Total number of processors."""
        return self.n_blue + self.n_red

    def procs(self, memory: Memory) -> range:
        """Global indices of the processors attached to ``memory``."""
        if memory is Memory.BLUE:
            return range(0, self.n_blue)
        return range(self.n_blue, self.n_blue + self.n_red)

    def n_procs_of(self, memory: Memory) -> int:
        """Number of processors attached to ``memory``."""
        return self.n_blue if memory is Memory.BLUE else self.n_red

    def memory_of(self, proc: int) -> Memory:
        """Memory a global processor index operates on."""
        if not 0 <= proc < self.n_procs:
            raise ValueError(f"processor index {proc} out of range [0, {self.n_procs})")
        return Memory.BLUE if proc < self.n_blue else Memory.RED

    # ------------------------------------------------------------------
    # memory capacities
    # ------------------------------------------------------------------
    def capacity(self, memory: Memory) -> float:
        """Capacity of ``memory``."""
        return self.mem_blue if memory is Memory.BLUE else self.mem_red

    @property
    def is_memory_bounded(self) -> bool:
        """Whether at least one memory has a finite capacity."""
        return math.isfinite(self.mem_blue) or math.isfinite(self.mem_red)

    def with_bounds(self, mem_blue: float, mem_red: float) -> "Platform":
        """Copy of this platform with different memory capacities."""
        return replace(self, mem_blue=mem_blue, mem_red=mem_red)

    def with_uniform_bound(self, bound: float) -> "Platform":
        """Copy with the same capacity ``bound`` on both memories
        (the ``M^(bound)`` setting used throughout the paper's §6)."""
        return replace(self, mem_blue=bound, mem_red=bound)

    def unbounded(self) -> "Platform":
        """Copy of this platform with infinite memories."""
        return replace(self, mem_blue=math.inf, mem_red=math.inf)
