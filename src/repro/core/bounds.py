"""Makespan lower bounds (the "Lower bound" series of Figure 11).

Three bounds, all valid for *any* memory capacities (memory constraints can
only increase the optimal makespan, so memory-oblivious bounds remain valid):

* :func:`critical_path_lower_bound` — longest path where each task counts
  for its fastest processing time and communications count for zero (both
  endpoints may share a memory).
* :func:`work_lower_bound` — total fastest work spread over all processors.
* :func:`split_work_lower_bound` — the tighter load-balance bound from the
  fractional assignment LP: choose the fraction of each task mapped to blue
  to minimise ``max(blue load / P1, red load / P2)``.

:func:`lower_bound` is the max of the three.

All three are speed-aware on heterogeneous platforms: the fastest
processing time of a task becomes ``min_c W^(c) / max_speed(c)`` (its best
case is the fastest processor of the best class) and a class's processing
capacity becomes the *sum of its processor speeds* rather than its
processor count.  On homogeneous (all speed 1.0) platforms both reduce to
the historical expressions exactly.
"""

from __future__ import annotations

import math

try:  # the LP bound is optional: numpy + scipy may be absent
    import numpy as np
    from scipy.optimize import linprog
except ModuleNotFoundError:  # pragma: no cover - exercised in the
    np = linprog = None      # no-numpy CI leg (tests/test_no_numpy.py)

from typing import Optional

from .graph import TaskGraph
from .platform import Platform


def _best_case_duration(graph: TaskGraph, platform: Platform, task) -> float:
    """Fastest possible execution time of one task on ``platform``:
    the fastest processor of its best class."""
    fastest = platform.max_class_speeds
    return min(graph.w(task, c) / fastest[c]
               for c in platform.classes() if platform.proc_counts[c])


def critical_path_lower_bound(graph: TaskGraph,
                              platform: Optional[Platform] = None) -> float:
    """Longest path with per-task best-case durations and zero comms.

    Without a platform (or on a homogeneous one) the per-task weight is
    ``min_c W^(c)`` exactly as before; a heterogeneous platform scales
    each class by its fastest processor speed."""
    if platform is None or not platform.is_heterogeneous:
        return graph.longest_path_length(weight="min")
    best: dict = {}
    for t in graph.topological_order():
        incoming = max((best[p] for p in graph.parents(t)), default=0.0)
        best[t] = incoming + _best_case_duration(graph, platform, t)
    return max(best.values(), default=0.0)


def _class_capacity(platform: Platform, cls: int) -> float:
    """Processing capacity of one class: the sum of its processor speeds
    (reduces to the processor count at speed 1.0)."""
    return sum(platform.class_speeds(cls))


def work_lower_bound(graph: TaskGraph, platform: Platform) -> float:
    """Total fastest work divided by the total processing capacity
    (``sum of speeds``; the processor count on homogeneous platforms)."""
    if platform.n_procs == 0:
        return math.inf
    if not platform.is_heterogeneous:
        return graph.total_work(None) / platform.n_procs
    # Task i on class c occupies its processor for W^(c)/s_p time, i.e.
    # consumes W^(c) >= min_c W^(c) capacity units; the platform provides
    # sum(speeds) capacity units per unit of time.
    return graph.total_work(None) / sum(platform.speeds)


def split_work_lower_bound(graph: TaskGraph, platform: Platform) -> float:
    """Fractional-assignment load-balance bound.

    Dual platform LP: minimise ``T`` s.t. ``sum_i x_i W1_i <= S1 T``,
    ``sum_i (1 - x_i) W2_i <= S2 T``, ``0 <= x_i <= 1``, where ``S_c`` is
    the class's processing capacity — the sum of its processor speeds,
    which is the processor count on homogeneous platforms.
    Degenerates gracefully when one resource class is empty, and
    generalises to k classes with per-class fractions ``x_{i,c}``.
    """
    if linprog is None:
        raise ImportError(
            "split_work_lower_bound needs numpy and scipy (the LP bound); "
            "install them or use critical_path_lower_bound / "
            "work_lower_bound / lower_bound, which degrade gracefully")
    tasks = list(graph.tasks())
    n = len(tasks)
    if n == 0:
        return 0.0
    if platform.n_classes != 2:
        return _split_work_k_classes(graph, platform, tasks)
    w1 = np.array([graph.w_blue(t) for t in tasks])
    w2 = np.array([graph.w_red(t) for t in tasks])
    s1 = _class_capacity(platform, 0)
    s2 = _class_capacity(platform, 1)
    if platform.n_blue == 0:
        return float(w2.sum()) / max(s2, 1)
    if platform.n_red == 0:
        return float(w1.sum()) / max(s1, 1)

    # Variables: x_0..x_{n-1}, T.  Minimise T.
    c = np.zeros(n + 1)
    c[-1] = 1.0
    a_ub = np.zeros((2, n + 1))
    a_ub[0, :n] = w1
    a_ub[0, -1] = -s1
    a_ub[1, :n] = -w2
    a_ub[1, -1] = -s2
    b_ub = np.array([0.0, -w2.sum()])
    bounds = [(0.0, 1.0)] * n + [(0.0, None)]
    res = linprog(c, A_ub=a_ub, b_ub=b_ub, bounds=bounds, method="highs")
    if not res.success:  # pragma: no cover - LP above is always feasible
        return 0.0
    return float(res.fun)


def _split_work_k_classes(graph: TaskGraph, platform: Platform,
                          tasks: list) -> float:
    """k-class fractional assignment: minimise ``T`` s.t. for every class
    ``c`` with processors, ``sum_i x_{i,c} W^(c)_i <= S_c T`` (``S_c`` the
    class's speed sum); fractions of each task over the *usable* classes
    sum to 1."""
    usable = [c for c in platform.classes() if platform.proc_counts[c] > 0]
    n = len(tasks)
    k = len(usable)
    if k == 1:
        c0 = usable[0]
        return sum(graph.w(t, c0) for t in tasks) / _class_capacity(platform, c0)

    # Variables: x_{i,c} for usable classes (n*k), then T.  Minimise T.
    nvar = n * k + 1
    c_obj = np.zeros(nvar)
    c_obj[-1] = 1.0
    a_ub = np.zeros((k, nvar))
    for col, cls in enumerate(usable):
        for i, t in enumerate(tasks):
            a_ub[col, i * k + col] = graph.w(t, cls)
        a_ub[col, -1] = -_class_capacity(platform, cls)
    b_ub = np.zeros(k)
    a_eq = np.zeros((n, nvar))
    for i in range(n):
        a_eq[i, i * k:(i + 1) * k] = 1.0
    b_eq = np.ones(n)
    bounds = [(0.0, 1.0)] * (n * k) + [(0.0, None)]
    res = linprog(c_obj, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq,
                  bounds=bounds, method="highs")
    if not res.success:  # pragma: no cover - LP above is always feasible
        return 0.0
    return float(res.fun)


def lower_bound(graph: TaskGraph, platform: Platform) -> float:
    """Best available makespan lower bound (max of all bounds).

    Without numpy/scipy the LP split-work term is skipped — the result is
    still a valid (just possibly looser) lower bound."""
    best = max(critical_path_lower_bound(graph, platform),
               work_lower_bound(graph, platform))
    if linprog is not None:
        best = max(best, split_work_lower_bound(graph, platform))
    return best


def memory_lower_bound(graph: TaskGraph) -> float:
    """Smallest uniform memory bound under which *any* schedule can exist.

    Every task must run on some memory that simultaneously holds all its
    input and output files (§3.2), so no schedule exists when both
    capacities are below ``max_i MemReq(i)``.  This is the structural
    infeasibility floor visible in Figures 10-15: below it even the exact
    ILP reports infeasible.
    """
    return max((graph.mem_req(t) for t in graph.tasks()), default=0.0)


def schedulable_memory(graph: TaskGraph, platform: Platform) -> bool:
    """Necessary (not sufficient) memory check: every task fits somewhere."""
    cap = max(platform.capacities)
    return all(graph.mem_req(t) <= cap for t in graph.tasks())
