"""Makespan lower bounds (the "Lower bound" series of Figure 11).

Three bounds, all valid for *any* memory capacities (memory constraints can
only increase the optimal makespan, so memory-oblivious bounds remain valid):

* :func:`critical_path_lower_bound` — longest path where each task counts
  for its fastest processing time and communications count for zero (both
  endpoints may share a memory).
* :func:`work_lower_bound` — total fastest work spread over all processors.
* :func:`split_work_lower_bound` — the tighter load-balance bound from the
  fractional assignment LP: choose the fraction of each task mapped to blue
  to minimise ``max(blue load / P1, red load / P2)``.

:func:`lower_bound` is the max of the three.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.optimize import linprog

from .graph import TaskGraph
from .platform import Platform


def critical_path_lower_bound(graph: TaskGraph) -> float:
    """Longest path with per-task ``min(W_blue, W_red)`` and zero comms."""
    return graph.longest_path_length(weight="min")


def work_lower_bound(graph: TaskGraph, platform: Platform) -> float:
    """Total fastest work divided by the total processor count."""
    if platform.n_procs == 0:
        return math.inf
    return graph.total_work(None) / platform.n_procs


def split_work_lower_bound(graph: TaskGraph, platform: Platform) -> float:
    """Fractional-assignment load-balance bound.

    LP: minimise ``T`` s.t. ``sum_i x_i W1_i <= P1 T``,
    ``sum_i (1 - x_i) W2_i <= P2 T``, ``0 <= x_i <= 1``.
    Degenerates gracefully when one resource class is empty.
    """
    tasks = list(graph.tasks())
    n = len(tasks)
    if n == 0:
        return 0.0
    w1 = np.array([graph.w_blue(t) for t in tasks])
    w2 = np.array([graph.w_red(t) for t in tasks])
    if platform.n_blue == 0:
        return float(w2.sum()) / max(platform.n_red, 1)
    if platform.n_red == 0:
        return float(w1.sum()) / max(platform.n_blue, 1)

    # Variables: x_0..x_{n-1}, T.  Minimise T.
    c = np.zeros(n + 1)
    c[-1] = 1.0
    a_ub = np.zeros((2, n + 1))
    a_ub[0, :n] = w1
    a_ub[0, -1] = -platform.n_blue
    a_ub[1, :n] = -w2
    a_ub[1, -1] = -platform.n_red
    b_ub = np.array([0.0, -w2.sum()])
    bounds = [(0.0, 1.0)] * n + [(0.0, None)]
    res = linprog(c, A_ub=a_ub, b_ub=b_ub, bounds=bounds, method="highs")
    if not res.success:  # pragma: no cover - LP above is always feasible
        return 0.0
    return float(res.fun)


def lower_bound(graph: TaskGraph, platform: Platform) -> float:
    """Best available makespan lower bound (max of all bounds)."""
    return max(
        critical_path_lower_bound(graph),
        work_lower_bound(graph, platform),
        split_work_lower_bound(graph, platform),
    )


def memory_lower_bound(graph: TaskGraph) -> float:
    """Smallest uniform memory bound under which *any* schedule can exist.

    Every task must run on some memory that simultaneously holds all its
    input and output files (§3.2), so no schedule exists when both
    capacities are below ``max_i MemReq(i)``.  This is the structural
    infeasibility floor visible in Figures 10-15: below it even the exact
    ILP reports infeasible.
    """
    return max((graph.mem_req(t) for t in graph.tasks()), default=0.0)


def schedulable_memory(graph: TaskGraph, platform: Platform) -> bool:
    """Necessary (not sufficient) memory check: every task fits somewhere."""
    caps = (platform.mem_blue, platform.mem_red)
    return all(graph.mem_req(t) <= max(caps) for t in graph.tasks())
