"""Makespan lower bounds (the "Lower bound" series of Figure 11).

Three bounds, all valid for *any* memory capacities (memory constraints can
only increase the optimal makespan, so memory-oblivious bounds remain valid):

* :func:`critical_path_lower_bound` — longest path where each task counts
  for its fastest processing time and communications count for zero (both
  endpoints may share a memory).
* :func:`work_lower_bound` — total fastest work spread over all processors.
* :func:`split_work_lower_bound` — the tighter load-balance bound from the
  fractional assignment LP: choose the fraction of each task mapped to blue
  to minimise ``max(blue load / P1, red load / P2)``.

:func:`lower_bound` is the max of the three.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.optimize import linprog

from .graph import TaskGraph
from .platform import Platform


def critical_path_lower_bound(graph: TaskGraph) -> float:
    """Longest path with per-task ``min(W_blue, W_red)`` and zero comms."""
    return graph.longest_path_length(weight="min")


def work_lower_bound(graph: TaskGraph, platform: Platform) -> float:
    """Total fastest work divided by the total processor count."""
    if platform.n_procs == 0:
        return math.inf
    return graph.total_work(None) / platform.n_procs


def split_work_lower_bound(graph: TaskGraph, platform: Platform) -> float:
    """Fractional-assignment load-balance bound.

    Dual platform LP: minimise ``T`` s.t. ``sum_i x_i W1_i <= P1 T``,
    ``sum_i (1 - x_i) W2_i <= P2 T``, ``0 <= x_i <= 1``.
    Degenerates gracefully when one resource class is empty, and
    generalises to k classes with per-class fractions ``x_{i,c}``.
    """
    tasks = list(graph.tasks())
    n = len(tasks)
    if n == 0:
        return 0.0
    if platform.n_classes != 2:
        return _split_work_k_classes(graph, platform, tasks)
    w1 = np.array([graph.w_blue(t) for t in tasks])
    w2 = np.array([graph.w_red(t) for t in tasks])
    if platform.n_blue == 0:
        return float(w2.sum()) / max(platform.n_red, 1)
    if platform.n_red == 0:
        return float(w1.sum()) / max(platform.n_blue, 1)

    # Variables: x_0..x_{n-1}, T.  Minimise T.
    c = np.zeros(n + 1)
    c[-1] = 1.0
    a_ub = np.zeros((2, n + 1))
    a_ub[0, :n] = w1
    a_ub[0, -1] = -platform.n_blue
    a_ub[1, :n] = -w2
    a_ub[1, -1] = -platform.n_red
    b_ub = np.array([0.0, -w2.sum()])
    bounds = [(0.0, 1.0)] * n + [(0.0, None)]
    res = linprog(c, A_ub=a_ub, b_ub=b_ub, bounds=bounds, method="highs")
    if not res.success:  # pragma: no cover - LP above is always feasible
        return 0.0
    return float(res.fun)


def _split_work_k_classes(graph: TaskGraph, platform: Platform,
                          tasks: list) -> float:
    """k-class fractional assignment: minimise ``T`` s.t. for every class
    ``c`` with processors, ``sum_i x_{i,c} W^(c)_i <= P_c T``; fractions of
    each task over the *usable* classes sum to 1."""
    usable = [c for c in platform.classes() if platform.proc_counts[c] > 0]
    n = len(tasks)
    k = len(usable)
    if k == 1:
        c0 = usable[0]
        return sum(graph.w(t, c0) for t in tasks) / platform.proc_counts[c0]

    # Variables: x_{i,c} for usable classes (n*k), then T.  Minimise T.
    nvar = n * k + 1
    c_obj = np.zeros(nvar)
    c_obj[-1] = 1.0
    a_ub = np.zeros((k, nvar))
    for col, cls in enumerate(usable):
        for i, t in enumerate(tasks):
            a_ub[col, i * k + col] = graph.w(t, cls)
        a_ub[col, -1] = -platform.proc_counts[cls]
    b_ub = np.zeros(k)
    a_eq = np.zeros((n, nvar))
    for i in range(n):
        a_eq[i, i * k:(i + 1) * k] = 1.0
    b_eq = np.ones(n)
    bounds = [(0.0, 1.0)] * (n * k) + [(0.0, None)]
    res = linprog(c_obj, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq,
                  bounds=bounds, method="highs")
    if not res.success:  # pragma: no cover - LP above is always feasible
        return 0.0
    return float(res.fun)


def lower_bound(graph: TaskGraph, platform: Platform) -> float:
    """Best available makespan lower bound (max of all bounds)."""
    return max(
        critical_path_lower_bound(graph),
        work_lower_bound(graph, platform),
        split_work_lower_bound(graph, platform),
    )


def memory_lower_bound(graph: TaskGraph) -> float:
    """Smallest uniform memory bound under which *any* schedule can exist.

    Every task must run on some memory that simultaneously holds all its
    input and output files (§3.2), so no schedule exists when both
    capacities are below ``max_i MemReq(i)``.  This is the structural
    infeasibility floor visible in Figures 10-15: below it even the exact
    ILP reports infeasible.
    """
    return max((graph.mem_req(t) for t in graph.tasks()), default=0.0)


def schedulable_memory(graph: TaskGraph, platform: Platform) -> bool:
    """Necessary (not sufficient) memory check: every task fits somewhere."""
    cap = max(platform.capacities)
    return all(graph.mem_req(t) <= cap for t in graph.tasks())
