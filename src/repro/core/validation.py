"""Independent schedule validator / replay simulator.

Replays a :class:`~repro.core.schedule.Schedule` against its
:class:`~repro.core.graph.TaskGraph` and :class:`~repro.core.platform.Platform`
and checks every constraint of the model (§3):

* **completeness** — every task placed exactly once, durations match the
  per-memory processing times scaled by the assigned processor's speed
  (``W^(c) / speed(p)``; speed is 1.0 everywhere on the paper's
  homogeneous platforms);
* **flow** (§3.1) — producers finish before transfers start, transfers finish
  before consumers start, same-memory edges respect precedence directly, and
  every transfer window is at least ``C_ij`` long;
* **resource** (§3.1) — tasks sharing a processor never overlap;
* **memory** (§3.2) — the file-residency timeline never exceeds either
  capacity.  File residency follows the paper exactly: an output file lives in
  the producer's memory from the producer's start; a same-memory input is
  freed when the consumer finishes; a cross-memory file additionally lives in
  the destination memory from the start of its transfer until the consumer
  finishes, and its source copy is freed when the transfer ends.

The validator is written independently from the scheduler-side bookkeeping so
tests can cross-check the two (DESIGN.md invariant 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from .graph import TaskGraph
from .memory_profile import MemoryProfile
from .platform import Memory, Platform
from .schedule import Schedule

Task = Hashable


class ScheduleError(ValueError):
    """A schedule violates the model; the message names the constraint."""


@dataclass(frozen=True)
class FileResidency:
    """One stay of one file in one memory: ``[start, end)``."""

    src: Task
    dst: Task
    memory: Memory
    size: float
    start: float
    end: float


def file_residencies(graph: TaskGraph, schedule: Schedule) -> list[FileResidency]:
    """Every interval during which an edge file occupies a memory."""
    out: list[FileResidency] = []
    for u, v in graph.edges():
        size = graph.size(u, v)
        if size == 0.0:
            continue
        pu = schedule.placement(u)
        pv = schedule.placement(v)
        if pu.memory is pv.memory:
            out.append(FileResidency(u, v, pu.memory, size, pu.start, pv.finish))
        else:
            ev = schedule.comm(u, v)
            if ev is None:
                raise ScheduleError(f"cross-memory edge ({u!r}, {v!r}) has no communication")
            out.append(FileResidency(u, v, pu.memory, size, pu.start, ev.finish))
            out.append(FileResidency(u, v, pv.memory, size, ev.start, pv.finish))
    return out


def memory_usage(graph: TaskGraph, platform: Platform, schedule: Schedule
                 ) -> dict[Memory, MemoryProfile]:
    """Used-memory staircases of every memory, rebuilt from the schedule."""
    profiles = {m: MemoryProfile(platform.capacity(m))
                for m in platform.memories()}
    for res in file_residencies(graph, schedule):
        profiles[res.memory].add(res.size, res.start, res.end)
    return profiles


def memory_peaks(graph: TaskGraph, platform: Platform, schedule: Schedule
                 ) -> dict[Memory, float]:
    """Peak usage of each memory (``M^s_blue``, ``M^s_red`` of §3.3)."""
    return {m: p.peak() for m, p in memory_usage(graph, platform, schedule).items()}


def validate_schedule(
    graph: TaskGraph,
    platform: Platform,
    schedule: Schedule,
    *,
    check_memory: bool = True,
    eps: float = 1e-6,
) -> dict[Memory, float]:
    """Check every model constraint; returns the memory peaks on success.

    Raises :class:`ScheduleError` naming the first violated constraint.
    """
    # -- completeness and durations ------------------------------------
    for task in graph.tasks():
        if task not in schedule:
            raise ScheduleError(f"task {task!r} is not scheduled")
        p = schedule.placement(task)
        if platform.n_procs_of(p.memory) == 0:
            raise ScheduleError(f"task {task!r} placed on empty resource {p.memory}")
        if p.proc not in platform.procs(p.memory):
            # Must precede the duration check: the expected duration reads
            # the *processor's* speed, which is only meaningful when the
            # processor actually belongs to the placement's memory class.
            raise ScheduleError(
                f"task {task!r} placed on processor {p.proc}, which is not "
                f"attached to memory {p.memory}"
            )
        expect = graph.w(task, p.memory) / platform.speed(p.proc)
        if abs(p.duration - expect) > eps:
            raise ScheduleError(
                f"task {task!r} runs for {p.duration} but "
                f"W^({p.memory}) / speed(P{p.proc}) = {expect}"
            )

    if len(schedule) != graph.n_tasks:
        extra = {p.task for p in schedule.placements()} - set(graph.tasks())
        raise ScheduleError(f"schedule places unknown tasks: {sorted(map(repr, extra))}")

    # -- flow constraints ----------------------------------------------
    for u, v in graph.edges():
        pu, pv = schedule.placement(u), schedule.placement(v)
        if pu.memory is pv.memory:
            if schedule.comm(u, v) is not None:
                raise ScheduleError(f"same-memory edge ({u!r}, {v!r}) has a communication")
            if pu.finish > pv.start + eps:
                raise ScheduleError(
                    f"precedence violated on ({u!r}, {v!r}): "
                    f"{pu.finish} > {pv.start}"
                )
        else:
            ev = schedule.comm(u, v)
            if ev is None:
                raise ScheduleError(f"cross-memory edge ({u!r}, {v!r}) has no communication")
            if ev.start < pu.finish - eps:
                raise ScheduleError(
                    f"communication ({u!r}, {v!r}) starts at {ev.start} "
                    f"before producer finishes at {pu.finish}"
                )
            if ev.finish > pv.start + eps:
                raise ScheduleError(
                    f"communication ({u!r}, {v!r}) ends at {ev.finish} "
                    f"after consumer starts at {pv.start}"
                )
            if ev.duration < graph.comm(u, v) - eps:
                raise ScheduleError(
                    f"communication ({u!r}, {v!r}) lasts {ev.duration} "
                    f"< C = {graph.comm(u, v)}"
                )

    # -- resource constraints --------------------------------------------
    for proc in range(platform.n_procs):
        rows = schedule.tasks_on_proc(proc)
        for a, b in zip(rows, rows[1:]):
            if b.start < a.finish - eps:
                raise ScheduleError(
                    f"tasks {a.task!r} and {b.task!r} overlap on processor {proc}: "
                    f"[{a.start}, {a.finish}) vs [{b.start}, {b.finish})"
                )

    # -- memory constraints ----------------------------------------------
    peaks = memory_peaks(graph, platform, schedule)
    if check_memory:
        for memory in platform.memories():
            if peaks[memory] > platform.capacity(memory) + eps:
                raise ScheduleError(
                    f"{memory} memory peak {peaks[memory]} exceeds capacity "
                    f"{platform.capacity(memory)}"
                )
    return peaks


def is_valid(graph: TaskGraph, platform: Platform, schedule: Schedule,
             *, check_memory: bool = True) -> bool:
    """Boolean convenience wrapper around :func:`validate_schedule`."""
    try:
        validate_schedule(graph, platform, schedule, check_memory=check_memory)
    except ScheduleError:
        return False
    return True
