"""Schedule representation: the triple ``(sigma, tau, proc)`` of §3.1.

A :class:`Schedule` maps every task to a :class:`Placement` (processor,
memory, start, finish) and every *cross-memory* edge to a :class:`CommEvent`
(the transfer window).  Same-memory edges have no communication event —
their transfer is instantaneous in the model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Iterator, Optional

from .platform import Memory, Platform

Task = Hashable


@dataclass(frozen=True)
class Placement:
    """Where and when one task executes."""

    task: Task
    proc: int
    memory: Memory
    start: float
    finish: float

    @property
    def cls(self) -> int:
        """Memory-class index (generic alias for ``memory.index``)."""
        return self.memory.index

    @property
    def duration(self) -> float:
        return self.finish - self.start

    def overlaps(self, other: "Placement") -> bool:
        """Whether the two execution windows overlap (open intervals)."""
        return self.start < other.finish and other.start < self.finish


@dataclass(frozen=True)
class CommEvent:
    """Transfer of the file on edge ``(src, dst)`` between two memories."""

    src: Task
    dst: Task
    start: float
    finish: float

    @property
    def duration(self) -> float:
        return self.finish - self.start


class Schedule:
    """A complete mapping of a task graph onto a platform.

    The schedule also carries a free-form ``meta`` dict used by the
    schedulers to report diagnostics (algorithm name, memory peaks, ...).
    """

    def __init__(self, platform: Platform) -> None:
        self.platform = platform
        self._placements: dict[Task, Placement] = {}
        self._comms: dict[tuple[Task, Task], CommEvent] = {}
        self.meta: dict[str, Any] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add(self, placement: Placement) -> None:
        if placement.task in self._placements:
            raise ValueError(f"task {placement.task!r} already placed")
        if not 0 <= placement.proc < self.platform.n_procs:
            raise ValueError(f"processor {placement.proc} out of range")
        if self.platform.memory_of(placement.proc) is not placement.memory:
            raise ValueError(
                f"processor {placement.proc} is not attached to memory {placement.memory}"
            )
        if placement.finish < placement.start or placement.start < 0:
            raise ValueError(f"invalid execution window for {placement.task!r}")
        self._placements[placement.task] = placement

    def add_comm(self, event: CommEvent) -> None:
        key = (event.src, event.dst)
        if key in self._comms:
            raise ValueError(f"communication {key!r} already scheduled")
        if event.finish < event.start or event.start < 0:
            raise ValueError(f"invalid communication window for {key!r}")
        self._comms[key] = event

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, task: Task) -> bool:
        return task in self._placements

    def __len__(self) -> int:
        return len(self._placements)

    def placement(self, task: Task) -> Placement:
        return self._placements[task]

    def placements(self) -> Iterator[Placement]:
        return iter(self._placements.values())

    def comm(self, src: Task, dst: Task) -> Optional[CommEvent]:
        return self._comms.get((src, dst))

    def comms(self) -> Iterator[CommEvent]:
        return iter(self._comms.values())

    @property
    def n_comms(self) -> int:
        return len(self._comms)

    def memory_of(self, task: Task) -> Memory:
        return self._placements[task].memory

    def start(self, task: Task) -> float:
        return self._placements[task].start

    def finish(self, task: Task) -> float:
        return self._placements[task].finish

    @property
    def makespan(self) -> float:
        """Finish time of the last task (0 for an empty schedule)."""
        return max((p.finish for p in self._placements.values()), default=0.0)

    def tasks_on_proc(self, proc: int) -> list[Placement]:
        """Placements on one processor, ordered by start time."""
        rows = [p for p in self._placements.values() if p.proc == proc]
        rows.sort(key=lambda p: (p.start, p.finish))
        return rows

    def tasks_on_memory(self, memory: Memory) -> list[Placement]:
        """Placements on one memory, ordered by start time."""
        rows = [p for p in self._placements.values() if p.memory is memory]
        rows.sort(key=lambda p: (p.start, p.finish))
        return rows

    def proc_busy_time(self, proc: int) -> float:
        """Total execution time scheduled on ``proc``."""
        return sum(p.duration for p in self._placements.values() if p.proc == proc)

    def copy(self) -> "Schedule":
        """Shallow copy (placements and events are immutable)."""
        clone = Schedule(self.platform)
        clone._placements = dict(self._placements)
        clone._comms = dict(self._comms)
        clone.meta = dict(self.meta)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Schedule(n_tasks={len(self._placements)}, n_comms={len(self._comms)}, "
            f"makespan={self.makespan:g})"
        )
