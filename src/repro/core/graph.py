"""Task-graph model (paper §3.1–3.2, generalised to k memory classes).

A :class:`TaskGraph` is a DAG whose nodes are tasks with one processing time
per memory class (``W^(c)`` for class ``c``; the paper's dual platform has
``W^(1)`` on blue and ``W^(2)`` on red) and whose edges are data files: edge
``(i, j)`` carries a file of size ``F_ij`` that must reside in memory while
either endpoint executes, and whose transfer between two *different*
memories takes ``C_ij`` time units (regardless of which pair of classes).

The class wraps a :class:`networkx.DiGraph` and exposes the accessors the
schedulers need (parents/children, per-memory time, memory requirement of a
task, cached topological order).  The historical dual-memory accessors
(``add_task(t, w_blue, w_red)``, ``w_blue``/``w_red``) remain available on
``k = 2`` graphs.
"""

from __future__ import annotations

import math
from typing import Hashable, Iterator, Optional, Sequence, Union

import networkx as nx

from .platform import Memory

Task = Hashable
Edge = tuple[Task, Task]

#: Node attribute holding the per-class processing-time tuple.
ATTR_TIMES = "times"
#: Legacy node attribute names (kept on k = 2 graphs for interop).
ATTR_W_BLUE = "w_blue"
ATTR_W_RED = "w_red"
#: Edge attribute names.
ATTR_SIZE = "size"
ATTR_COMM = "comm"


class FlatGraph:
    """Contiguous array-of-structs view of a :class:`TaskGraph`.

    Rows are tasks in topological order; adjacency is CSR-encoded with the
    *exact* edge iteration order of :meth:`TaskGraph.parents` /
    :meth:`TaskGraph.children`, so a kernel walking the flat arrays
    accumulates floating-point sums in the same order — and hence to the
    same bits — as one walking the networkx adjacency.  Built once per
    :class:`~repro.scheduling.state.SchedulerState` via
    :meth:`TaskGraph.flatten` (cached on the graph, invalidated by
    mutation); everything here is immutable plain-Python data, shared
    freely between states and kernel backends.
    """

    __slots__ = ("order", "index", "parent_ptr", "parent_row", "parent_comm",
                 "parent_size", "child_ptr", "child_row", "out_size", "times")

    def __init__(self, graph: "TaskGraph") -> None:
        order = graph.topological_order()
        index = {t: i for i, t in enumerate(order)}
        n = len(order)
        parent_ptr = [0] * (n + 1)
        parent_row: list[int] = []
        parent_comm: list[float] = []
        parent_size: list[float] = []
        child_ptr = [0] * (n + 1)
        child_row: list[int] = []
        out_size = [0.0] * n
        times: list[tuple[float, ...]] = [()] * n
        for i, task in enumerate(order):
            times[i] = graph.times(task)
            for parent in graph.parents(task):
                parent_row.append(index[parent])
                parent_comm.append(graph.comm(parent, task))
                parent_size.append(graph.size(parent, task))
            parent_ptr[i + 1] = len(parent_row)
            total = 0.0
            for child in graph.children(task):
                child_row.append(index[child])
                total += graph.size(task, child)
            child_ptr[i + 1] = len(child_row)
            out_size[i] = total
        self.order = order
        self.index = index
        self.parent_ptr = parent_ptr
        self.parent_row = parent_row
        self.parent_comm = parent_comm
        self.parent_size = parent_size
        self.child_ptr = child_ptr
        self.child_row = child_row
        self.out_size = out_size
        self.times = times

    @property
    def n_tasks(self) -> int:
        return len(self.order)


class TaskGraph:
    """Directed acyclic task graph with per-class processing times and
    file edges."""

    def __init__(self, name: str = "taskgraph", n_classes: int = 2) -> None:
        if n_classes < 1:
            raise ValueError("need at least one memory class")
        self.name = name
        self.n_classes = n_classes
        self._g = nx.DiGraph()
        self._topo_cache: Optional[tuple[Task, ...]] = None
        self._flat_cache: Optional[FlatGraph] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_task(self, task: Task, w_blue: Optional[float] = None,
                 w_red: Optional[float] = None, *,
                 times: Optional[Sequence[float]] = None) -> Task:
        """Add a task with its per-class processing times; returns ``task``.

        Either pass ``times`` (one entry per memory class) or, on dual
        graphs, the historical ``w_blue``/``w_red`` pair.  Zero times are
        allowed (the paper's fictitious broadcast-pipeline tasks have null
        processing time on both resources).
        """
        if times is None:
            if w_blue is None or w_red is None:
                raise ValueError(f"{task!r}: pass times= or both w_blue/w_red")
            if self.n_classes != 2:
                raise ValueError(
                    f"{task!r}: w_blue/w_red only apply to 2-class graphs; "
                    f"this one has {self.n_classes} — pass times=")
            times = (w_blue, w_red)
        elif w_blue is not None or w_red is not None:
            raise ValueError(f"{task!r}: pass either times= or w_blue/w_red, not both")
        if task in self._g:
            raise ValueError(f"duplicate task {task!r}")
        times = tuple(float(w) for w in times)
        if len(times) != self.n_classes:
            raise ValueError(
                f"{task!r}: expected {self.n_classes} times, got {len(times)}")
        if any(w < 0 or not math.isfinite(w) for w in times):
            raise ValueError(f"processing times of {task!r} must be finite and >= 0")
        self._g.add_node(task, **{ATTR_TIMES: times})
        self._topo_cache = None
        self._flat_cache = None
        return task

    def add_dependency(self, u: Task, v: Task, size: float = 0.0, comm: float = 0.0) -> None:
        """Add edge ``(u, v)``: a file of ``size`` units, transfer time ``comm``."""
        if u not in self._g or v not in self._g:
            raise ValueError(f"both endpoints of ({u!r}, {v!r}) must be tasks")
        if u == v:
            raise ValueError(f"self-loop on {u!r}")
        if self._g.has_edge(u, v):
            raise ValueError(f"duplicate edge ({u!r}, {v!r})")
        if size < 0 or comm < 0 or not (math.isfinite(size) and math.isfinite(comm)):
            raise ValueError(f"size/comm of ({u!r}, {v!r}) must be finite and >= 0")
        # Acyclicity is checked lazily (validate() / topological_order()):
        # a per-edge reachability test would make graph construction quadratic.
        self._g.add_edge(u, v, **{ATTR_SIZE: float(size), ATTR_COMM: float(comm)})
        self._topo_cache = None
        self._flat_cache = None

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def n_tasks(self) -> int:
        return self._g.number_of_nodes()

    @property
    def n_edges(self) -> int:
        return self._g.number_of_edges()

    def __len__(self) -> int:
        return self.n_tasks

    def __contains__(self, task: Task) -> bool:
        return task in self._g

    def tasks(self) -> Iterator[Task]:
        return iter(self._g.nodes)

    def edges(self) -> Iterator[Edge]:
        return iter(self._g.edges)

    def parents(self, task: Task) -> list[Task]:
        """Immediate predecessors of ``task``."""
        return list(self._g.predecessors(task))

    def children(self, task: Task) -> list[Task]:
        """Immediate successors of ``task``."""
        return list(self._g.successors(task))

    def in_degree(self, task: Task) -> int:
        return self._g.in_degree(task)

    def out_degree(self, task: Task) -> int:
        return self._g.out_degree(task)

    def roots(self) -> list[Task]:
        """Tasks without predecessors."""
        return [t for t in self._g.nodes if self._g.in_degree(t) == 0]

    def sinks(self) -> list[Task]:
        """Tasks without successors."""
        return [t for t in self._g.nodes if self._g.out_degree(t) == 0]

    # ------------------------------------------------------------------
    # weights
    # ------------------------------------------------------------------
    def times(self, task: Task) -> tuple[float, ...]:
        """Per-class processing times of ``task``."""
        return self._g.nodes[task][ATTR_TIMES]

    def w(self, task: Task, memory: Union[Memory, int]) -> float:
        """Processing time of ``task`` on a processor of ``memory``."""
        idx = memory.index if isinstance(memory, Memory) else int(memory)
        return self._g.nodes[task][ATTR_TIMES][idx]

    def w_blue(self, task: Task) -> float:
        return self._g.nodes[task][ATTR_TIMES][0]

    def w_red(self, task: Task) -> float:
        return self._g.nodes[task][ATTR_TIMES][1]

    def w_min(self, task: Task) -> float:
        """Fastest processing time of ``task`` over all resources."""
        return min(self._g.nodes[task][ATTR_TIMES])

    def w_mean(self, task: Task) -> float:
        """Mean processing time (used by the HEFT upward rank)."""
        times = self._g.nodes[task][ATTR_TIMES]
        return sum(times) / len(times)

    def size(self, u: Task, v: Task) -> float:
        """File size ``F_uv`` of edge ``(u, v)``."""
        return self._g.edges[u, v][ATTR_SIZE]

    def comm(self, u: Task, v: Task) -> float:
        """Cross-memory transfer time ``C_uv`` of edge ``(u, v)``."""
        return self._g.edges[u, v][ATTR_COMM]

    # ------------------------------------------------------------------
    # memory requirements (paper §3.2)
    # ------------------------------------------------------------------
    def in_size(self, task: Task) -> float:
        """Total size of the input files of ``task``."""
        return sum(self._g.edges[p, task][ATTR_SIZE] for p in self._g.predecessors(task))

    def out_size(self, task: Task) -> float:
        """Total size of the output files of ``task``."""
        return sum(self._g.edges[task, c][ATTR_SIZE] for c in self._g.successors(task))

    def mem_req(self, task: Task) -> float:
        """``MemReq(i)``: memory needed while ``task`` executes
        (all input files plus all output files, §3.2)."""
        return self.in_size(task) + self.out_size(task)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def topological_order(self) -> tuple[Task, ...]:
        """A (cached) topological order of the tasks.

        Raises ``ValueError`` if the graph contains a cycle.
        """
        if self._topo_cache is None:
            try:
                self._topo_cache = tuple(nx.topological_sort(self._g))
            except nx.NetworkXUnfeasible as exc:
                raise ValueError("task graph contains a cycle") from exc
        return self._topo_cache

    def flatten(self) -> FlatGraph:
        """The (cached) :class:`FlatGraph` array view of this graph.

        Rebuilt lazily after any mutation; raises ``ValueError`` on cyclic
        graphs (the flattening is row-ordered by :meth:`topological_order`).
        """
        if self._flat_cache is None:
            self._flat_cache = FlatGraph(self)
        return self._flat_cache

    def ancestors(self, task: Task) -> set[Task]:
        return nx.ancestors(self._g, task)

    def descendants(self, task: Task) -> set[Task]:
        return nx.descendants(self._g, task)

    def longest_path_length(self, weight: str = "min") -> float:
        """Length of the longest path using per-task weights (``min``,
        ``mean``, ``blue``/``red``, or a class index as a string),
        ignoring communications."""
        if weight == "min":
            pick = self.w_min
        elif weight == "mean":
            pick = self.w_mean
        elif weight == "blue":
            pick = self.w_blue
        elif weight == "red":
            pick = self.w_red
        elif weight.isdigit():
            idx = int(weight)
            pick = lambda t: self.w(t, idx)  # noqa: E731
        else:
            raise KeyError(weight)
        best: dict[Task, float] = {}
        for t in self.topological_order():
            incoming = max((best[p] for p in self._g.predecessors(t)), default=0.0)
            best[t] = incoming + pick(t)
        return max(best.values(), default=0.0)

    def validate(self) -> None:
        """Check structural invariants; raises ``ValueError`` on violation."""
        if not nx.is_directed_acyclic_graph(self._g):
            raise ValueError("task graph contains a cycle")

    # ------------------------------------------------------------------
    # conversion
    # ------------------------------------------------------------------
    def to_networkx(self) -> nx.DiGraph:
        """A copy of the underlying :class:`networkx.DiGraph`.

        On dual graphs every node also carries the legacy ``w_blue`` /
        ``w_red`` attributes next to ``times``, for interop with external
        tooling written against the dual-memory layout.
        """
        g = self._g.copy()
        if self.n_classes == 2:
            for _node, data in g.nodes(data=True):
                data[ATTR_W_BLUE], data[ATTR_W_RED] = data[ATTR_TIMES]
        return g

    @classmethod
    def from_networkx(cls, g: nx.DiGraph, name: str = "taskgraph") -> "TaskGraph":
        """Build from a DiGraph carrying either ``times`` tuples or legacy
        ``w_blue``/``w_red`` node attributes, and ``size``/``comm`` edge
        attributes (missing edge attrs default 0)."""
        n_classes = 2
        for _node, data in g.nodes(data=True):
            if ATTR_TIMES in data:
                n_classes = len(data[ATTR_TIMES])
            break
        tg = cls(name=name, n_classes=n_classes)
        for node, data in g.nodes(data=True):
            if ATTR_TIMES in data:
                tg.add_task(node, times=data[ATTR_TIMES])
            else:
                tg.add_task(node, times=(data[ATTR_W_BLUE], data[ATTR_W_RED]))
        for u, v, data in g.edges(data=True):
            tg.add_dependency(u, v, data.get(ATTR_SIZE, 0.0), data.get(ATTR_COMM, 0.0))
        return tg

    def _empty_like(self) -> "TaskGraph":
        """A new empty graph of the same concrete type/arity (overridden by
        subclasses with different constructor signatures)."""
        return TaskGraph(name=self.name, n_classes=self.n_classes)

    def copy(self) -> "TaskGraph":
        clone = self._empty_like()
        for node, data in self._g.nodes(data=True):
            TaskGraph.add_task(clone, node, times=data[ATTR_TIMES])
        for u, v, data in self._g.edges(data=True):
            clone.add_dependency(u, v, data[ATTR_SIZE], data[ATTR_COMM])
        return clone

    # ------------------------------------------------------------------
    # aggregate metrics
    # ------------------------------------------------------------------
    def total_work(self, memory: Optional[Union[Memory, int]] = None) -> float:
        """Sum of processing times (on ``memory``, or the per-task minimum)."""
        if memory is None:
            return sum(self.w_min(t) for t in self._g.nodes)
        return sum(self.w(t, memory) for t in self._g.nodes)

    def total_comm(self) -> float:
        """Sum of all edge transfer times."""
        return sum(d[ATTR_COMM] for _, _, d in self._g.edges(data=True))

    def total_file_size(self) -> float:
        """Sum of all file sizes."""
        return sum(d[ATTR_SIZE] for _, _, d in self._g.edges(data=True))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TaskGraph({self.name!r}, n_tasks={self.n_tasks}, n_edges={self.n_edges})"
