"""Core model: platform, task graph, schedules, memory profiles, validation."""

from .bounds import (
    critical_path_lower_bound,
    lower_bound,
    memory_lower_bound,
    schedulable_memory,
    split_work_lower_bound,
    work_lower_bound,
)
from .graph import TaskGraph
from .memory_profile import MemoryProfile
from .platform import MEMORIES, Memory, Platform
from .schedule import CommEvent, Placement, Schedule
from .trace import TraceEvent, format_trace, memory_timeline, trace_schedule
from .validation import (
    FileResidency,
    ScheduleError,
    file_residencies,
    is_valid,
    memory_peaks,
    memory_usage,
    validate_schedule,
)

__all__ = [
    "TaskGraph",
    "MemoryProfile",
    "Memory",
    "MEMORIES",
    "Platform",
    "Schedule",
    "Placement",
    "CommEvent",
    "ScheduleError",
    "FileResidency",
    "file_residencies",
    "memory_usage",
    "memory_peaks",
    "validate_schedule",
    "is_valid",
    "lower_bound",
    "critical_path_lower_bound",
    "work_lower_bound",
    "split_work_lower_bound",
    "memory_lower_bound",
    "schedulable_memory",
    "TraceEvent",
    "trace_schedule",
    "format_trace",
    "memory_timeline",
]
