"""Core model: platform, task graph, schedules, memory profiles, validation.

The makespan lower bounds (:mod:`repro.core.bounds`) depend on
``numpy``/``scipy`` (the LP of the split-work bound), which are *optional*
dependencies of the core library — they are re-exported lazily (PEP 562)
so ``import repro`` works on a numpy-less interpreter and only touching a
bound symbol raises the helpful :func:`repro._util.require_numpy` style
error.
"""

from .graph import TaskGraph
from .memory_profile import MemoryProfile
from .platform import MEMORIES, Memory, Platform
from .schedule import CommEvent, Placement, Schedule
from .trace import TraceEvent, format_trace, memory_timeline, trace_schedule
from .validation import (
    FileResidency,
    ScheduleError,
    file_residencies,
    is_valid,
    memory_peaks,
    memory_usage,
    validate_schedule,
)

#: Symbols served lazily from :mod:`repro.core.bounds` (numpy/scipy).
_BOUNDS_EXPORTS = (
    "critical_path_lower_bound",
    "lower_bound",
    "memory_lower_bound",
    "schedulable_memory",
    "split_work_lower_bound",
    "work_lower_bound",
)

__all__ = [
    "TaskGraph",
    "MemoryProfile",
    "Memory",
    "MEMORIES",
    "Platform",
    "Schedule",
    "Placement",
    "CommEvent",
    "ScheduleError",
    "FileResidency",
    "file_residencies",
    "memory_usage",
    "memory_peaks",
    "validate_schedule",
    "is_valid",
    "lower_bound",
    "critical_path_lower_bound",
    "work_lower_bound",
    "split_work_lower_bound",
    "memory_lower_bound",
    "schedulable_memory",
    "TraceEvent",
    "trace_schedule",
    "format_trace",
    "memory_timeline",
]


def __getattr__(name: str):
    if name in _BOUNDS_EXPORTS:
        from . import bounds
        return getattr(bounds, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(__all__) | set(globals()))
