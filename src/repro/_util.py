"""Small shared helpers (tolerances, RNG coercion)."""

from __future__ import annotations

from typing import Union

import numpy as np

#: Absolute tolerance used for every floating-point comparison of times and
#: memory amounts throughout the library.  Task times and file sizes in the
#: paper's experiments are small integers, so 1e-9 is far below any meaningful
#: difference while absorbing accumulated rounding error.
EPS: float = 1e-9

RngLike = Union[None, int, np.random.Generator]


def as_rng(rng: RngLike) -> np.random.Generator:
    """Coerce ``None`` / seed / Generator into a :class:`numpy.random.Generator`."""
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def feq(a: float, b: float, eps: float = EPS) -> bool:
    """Float equality within the library tolerance."""
    return abs(a - b) <= eps


def fle(a: float, b: float, eps: float = EPS) -> bool:
    """``a <= b`` within the library tolerance."""
    return a <= b + eps


def fmt_num(x: float) -> str:
    """Compact number rendering for reports (drops trailing ``.0``)."""
    if x == float("inf"):
        return "inf"
    if float(x).is_integer():
        return str(int(x))
    return f"{x:.4g}"
