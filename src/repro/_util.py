"""Small shared helpers (tolerances, RNG coercion).

``numpy`` is an *optional* dependency of the core library: the scheduling
engine runs on the pure-Python scalar kernel without it (the vectorized
kernel backend and the RNG-driven DAG generators are the only consumers).
The import is guarded here once; everything else checks :data:`HAS_NUMPY`
or calls :func:`require_numpy` at the point of use.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Union

try:
    import numpy as np
    HAS_NUMPY = True
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    np = None  # type: ignore[assignment]
    HAS_NUMPY = False

if TYPE_CHECKING:  # pragma: no cover
    import numpy  # noqa: F401

#: Absolute tolerance used for every floating-point comparison of times and
#: memory amounts throughout the library.  Task times and file sizes in the
#: paper's experiments are small integers, so 1e-9 is far below any meaningful
#: difference while absorbing accumulated rounding error.
EPS: float = 1e-9

RngLike = Union[None, int, "numpy.random.Generator"]


def require_numpy(feature: str):
    """Return the ``numpy`` module, or raise a helpful error when the
    optional dependency is missing."""
    if not HAS_NUMPY:
        raise ModuleNotFoundError(
            f"{feature} requires numpy, which is not installed; "
            f"the scalar scheduling kernel works without it")
    return np


def as_rng(rng: RngLike) -> "numpy.random.Generator":
    """Coerce ``None`` / seed / Generator into a :class:`numpy.random.Generator`."""
    _np = require_numpy("RNG coercion (as_rng)")
    if isinstance(rng, _np.random.Generator):
        return rng
    return _np.random.default_rng(rng)


def feq(a: float, b: float, eps: float = EPS) -> bool:
    """Float equality within the library tolerance."""
    return abs(a - b) <= eps


def fle(a: float, b: float, eps: float = EPS) -> bool:
    """``a <= b`` within the library tolerance."""
    return a <= b + eps


def fmt_num(x: float) -> str:
    """Compact number rendering for reports (drops trailing ``.0``)."""
    if x == float("inf"):
        return "inf"
    if float(x).is_integer():
        return str(int(x))
    return f"{x:.4g}"


def atomic_write_text(path, text: str, encoding: str = "utf-8") -> None:
    """Write ``text`` to ``path`` atomically: temp file in the same
    directory, flush + fsync, then ``os.replace``.  A crash mid-write
    leaves either the old file or the new one — never a half-file that
    downstream tooling half-parses.  All result-file writers (BENCH
    JSONs, experiment CSVs, figure outputs) go through here."""
    import os
    import tempfile
    from pathlib import Path as _Path

    target = _Path(path)
    fd, tmp = tempfile.mkstemp(dir=str(target.parent or _Path(".")),
                               prefix=target.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding=encoding) as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_json(path, obj, *, indent=2) -> None:
    """:func:`atomic_write_text` of ``json.dumps(obj, indent=indent)``
    plus a trailing newline (the BENCH_*.json convention)."""
    import json as _json
    atomic_write_text(path, _json.dumps(obj, indent=indent) + "\n")
