"""Scheduling heuristics: MemHEFT, MemMinMin and their classical baselines."""

from .candidates import MinEFTSelector, RankSelector, SufferageSelector
from .heft import heft
from .memheft import memheft
from .memminmin import memminmin
from .minmin import minmin
from .ranks import rank_order, upward_ranks
from .registry import (
    BASELINES,
    ENGINE_OPTIONED,
    MEMORY_AWARE,
    MEMORY_OBLIVIOUS,
    SCHEDULERS,
    get_scheduler,
)
from .state import ESTBreakdown, InfeasibleScheduleError, SchedulerState
from .sufferage import memsufferage, sufferage

__all__ = [
    "heft",
    "minmin",
    "sufferage",
    "memheft",
    "memminmin",
    "memsufferage",
    "upward_ranks",
    "rank_order",
    "SchedulerState",
    "ESTBreakdown",
    "MinEFTSelector",
    "RankSelector",
    "SufferageSelector",
    "InfeasibleScheduleError",
    "SCHEDULERS",
    "MEMORY_AWARE",
    "BASELINES",
    "MEMORY_OBLIVIOUS",
    "ENGINE_OPTIONED",
    "get_scheduler",
]
