"""Pluggable EST kernel backends: the numeric core of the §5.1 machinery.

The list-scheduling heuristics spend almost all of their time evaluating
:class:`ESTBreakdown` candidates — ``EST = max(resource, precedence,
task_mem, comm_mem + Cmax)``, ``EFT = EST + W/speed`` — against the partial
schedule.  This module packages that arithmetic behind one interface with
three interchangeable backends:

* :class:`ScalarKernel` — the reference pure-Python path (the historical
  ``SchedulerState.est`` logic, extracted verbatim).  Always available.
* :class:`NumpyKernel` — evaluates a whole candidate batch per memory
  class in one vectorized pass: the per-profile ``earliest_fit`` staircase
  query becomes a suffix-max + ``searchsorted`` over the whole batch, and
  the per-processor finish-time argmin of heterogeneous classes becomes an
  elementwise comparison chain.  Requires the *optional* ``numpy``
  dependency (import-guarded in :mod:`repro._util`).
* :class:`CompiledKernel` — the whole per-(batch, class) evaluation in a
  small C library compiled on demand with the system toolchain and driven
  through ctypes (:mod:`repro.scheduling._cc`): precedence gathers over
  the CSR arrays, staircase fits, tie chains and class selection all run
  with zero per-candidate Python churn; only winning breakdowns are
  materialised.  Requires numpy (for marshalling) plus a C compiler.

All backends are **bit-identical** by construction, which the golden
schedules and the hypothesis equivalence suite pin:

* the precedence parts contain an order-dependent sequential sum
  (``cross_in += size``), so they are computed by the *shared scalar code*
  (:meth:`SchedulerState._precedence_parts` over the
  :class:`~repro.core.graph.FlatGraph` CSR arrays) in both backends —
  numpy's pairwise summation would round differently;
* the vectorized parts are restricted to elementwise ``max``/``+``/``/``
  and comparisons (IEEE-identical to the scalar operators) plus
  ``searchsorted`` (pure comparisons); order-dependent EPS tie-break
  chains are replicated as masked update loops over the k classes /
  processors, never as ``argmin``;
* the ``earliest_fit`` results of a batch are written back into the same
  per-``(task, class)`` memo (keyed on the profile ``version``) the scalar
  path reads, so mixing batched and scalar evaluations stays coherent.

Backend selection (:func:`resolve_backend`): an explicit ``backend=``
argument (name or instance) wins, then the ``MEMSCHED_KERNEL`` environment
variable (``scalar`` / ``numpy`` / ``compiled`` / ``auto``), then
auto-detection — compiled when numpy and a working C toolchain are
present, then numpy, then scalar.  Kernel instances are stateless; all
per-state scratch (the suffix-max staircase arrays, the C-layout CSR and
placement mirrors) lives on the ``SchedulerState`` so one kernel object
can serve any number of states.
"""

from __future__ import annotations

import math
import os
import threading
import time
from bisect import bisect_left
from itertools import repeat
from typing import TYPE_CHECKING, Hashable, NamedTuple, Optional, Sequence, Union

from .. import obs
from .._util import EPS, HAS_NUMPY, require_numpy
from ..obs.metrics import SIZE_BUCKETS

if TYPE_CHECKING:  # pragma: no cover
    from ..core.platform import Memory
    from .state import SchedulerState

Task = Hashable

#: Environment variable consulted when no explicit backend is passed.
ENV_VAR = "MEMSCHED_KERNEL"


class ESTBreakdown(NamedTuple):
    """All EST components for one (task, memory) candidate.

    A ``NamedTuple`` rather than a dataclass: the kernels construct one per
    evaluated candidate on the hot path, and tuple construction is several
    times cheaper than a frozen dataclass ``__init__``.
    """

    task: Task
    memory: "Memory"
    resource: float
    precedence: float
    task_mem: float
    comm_mem: float  # already includes the +Cmax term; 0.0 when no cross input
    cmax: float
    est: float
    eft: float
    #: Raw ``earliest_fit(cross inputs)`` value (no +Cmax); the eager
    #: transfer policy re-uses it at commit time.
    comm_fit: float = 0.0
    #: Execution time on the chosen resource (``W^(mu) / speed``); equals
    #: ``W^(mu)`` bit-for-bit on speed-1.0 processors.
    duration: float = math.inf
    #: Pre-chosen processor for heterogeneous classes (honoured by
    #: :meth:`SchedulerState.commit`); ``-1`` on uniform classes, where the
    #: processor is picked at commit time by ``choose_proc`` exactly as in
    #: the homogeneous engine.
    proc: int = -1

    @property
    def cls(self) -> int:
        """Memory-class index (generic alias for ``memory.index``)."""
        return self.memory.index

    @property
    def feasible(self) -> bool:
        return math.isfinite(self.eft)


def infeasible_breakdown(task: Task, memory: "Memory") -> ESTBreakdown:
    inf = math.inf
    return ESTBreakdown(task, memory, inf, inf, inf, inf, 0.0, inf, inf)


#: ``tuple.__new__`` bound once: constructing a NamedTuple through it skips
#: the generated ``__new__``'s Python frame — the batch paths build tens of
#: thousands of breakdowns per run.
_tuple_new = tuple.__new__


class _BatchAccum(threading.local):
    """Per-thread kernel batch accounting, folded into the registry once
    per schedule run (:func:`flush_batch_stats`).  A batch entry happens
    once per selector flush per memory class — tens of thousands of
    times in a sweep — so the per-event path must be plain unlocked
    arithmetic, not registry lookups and metric locks."""

    def __init__(self) -> None:
        #: ``{(backend, route): [n_batches, seconds, bucket_counts,
        #: size_sum]}`` with ``bucket_counts`` aligned to
        #: :data:`~repro.obs.metrics.SIZE_BUCKETS` (+Inf included).
        self.map: dict = {}


_ACCUM = _BatchAccum()


def _record_batch(backend: str, route: str, n: int,
                  duration: float) -> None:
    """Accumulate one batch-entry call thread-locally: batch size, the
    scalar-vs-vector routing decision, and kernel seconds."""
    acc = _ACCUM.map.get((backend, route))
    if acc is None:
        acc = _ACCUM.map[(backend, route)] = \
            [0, 0.0, [0] * (len(SIZE_BUCKETS) + 1), 0.0]
    acc[0] += 1
    acc[1] += duration
    acc[2][bisect_left(SIZE_BUCKETS, n)] += 1
    acc[3] += n


def flush_batch_stats(st) -> tuple:
    """Fold this thread's accumulated batch stats into ``st``'s metrics
    registry; returns ``(kernel_seconds, n_batches)`` drained (the
    observed drivers' ``est`` phase span).  Called at the end of every
    observed schedule run — and on its way out when the run raises, so
    totals stay current across infeasible schedules."""
    amap = _ACCUM.map
    if not amap:
        return 0.0, 0
    registry = st.registry
    total = 0.0
    total_batches = 0
    for (backend, route), acc in amap.items():
        n_batches, seconds, bucket_counts, size_sum = acc
        registry.counter("memsched_kernel_batches_total",
                         backend=backend, route=route).inc(n_batches)
        registry.histogram("memsched_kernel_batch_size",
                           buckets=SIZE_BUCKETS, backend=backend,
                           route=route).merge(bucket_counts, size_sum,
                                              n_batches)
        registry.counter("memsched_kernel_seconds_total",
                         backend=backend).inc(seconds)
        total += seconds
        total_batches += n_batches
    amap.clear()
    return total, total_batches


class ScalarKernel:
    """Reference backend: one candidate at a time, pure Python.

    This *is* the historical incremental EST kernel — the arithmetic every
    other backend must reproduce bit-for-bit.
    """

    name = "scalar"
    #: Whether :meth:`evaluate_class_batch` ever leaves the scalar loop
    #: (selectors only assemble batches for vectorized backends).
    vectorized = False

    # -- single candidate ------------------------------------------------
    def evaluate(self, state: "SchedulerState", task: Task,
                 memory: "Memory") -> ESTBreakdown:
        """Incremental EST/EFT breakdown of a candidate: precedence parts
        cached per task, ``earliest_fit`` memoised per profile version."""
        if not state.is_ready(task) or state.platform.n_procs_of(memory) == 0:
            return infeasible_breakdown(task, memory)

        idx = memory.index
        precedence, cmax, cross_in, need_task = \
            state._precedence_parts(task)[idx]

        profile = state.mem[memory]
        slot = state._fit[idx]
        if slot[0] != profile.version:
            slot[0] = profile.version
            slot[1].clear()
            cached = None
        else:
            cached = slot[1].get(task)
        if cached is not None:
            task_mem, comm_fit = cached
        else:
            task_mem = profile.earliest_fit(need_task)
            comm_fit = (profile.earliest_fit(cross_in)
                        if cross_in > 0.0 or cmax > 0.0 else 0.0)
            slot[1][task] = (task_mem, comm_fit)
        comm_mem = comm_fit + cmax if cross_in > 0.0 or cmax > 0.0 else 0.0

        resource, est, duration, proc = state._resource_choice(
            memory, precedence, task_mem, comm_mem, state.graph.w(task, memory))
        eft = est + duration if math.isfinite(est) else math.inf
        return ESTBreakdown(task, memory, resource, precedence, task_mem,
                            comm_mem, cmax, est, eft, comm_fit,
                            duration, proc)

    def evaluate_fresh(self, state: "SchedulerState", task: Task,
                       memory: "Memory") -> ESTBreakdown:
        """From-scratch evaluation (the pre-incremental reference path,
        kept for cross-checks and the kernel benchmark): re-walks the
        parent list and re-queries the staircases, no caches."""
        if not state.is_ready(task) or state.platform.n_procs_of(memory) == 0:
            return infeasible_breakdown(task, memory)

        graph = state.graph
        precedence = 0.0
        cmax = 0.0
        cross_in = 0.0
        for parent in graph.parents(task):
            pp = state.schedule.placement(parent)
            if pp.memory is memory:
                precedence = max(precedence, pp.finish)
            else:
                c = graph.comm(parent, task)
                precedence = max(precedence, pp.finish + c)
                cmax = max(cmax, c)
                cross_in += graph.size(parent, task)

        need_task = cross_in + graph.out_size(task)
        task_mem = state.mem[memory].earliest_fit(need_task)

        comm_fit = 0.0
        if cross_in > 0.0 or cmax > 0.0:
            comm_fit = state.mem[memory].earliest_fit(cross_in)
            comm_mem = comm_fit + cmax
        else:
            comm_mem = 0.0

        resource, est, duration, proc = state._resource_choice(
            memory, precedence, task_mem, comm_mem, graph.w(task, memory))
        eft = est + duration if math.isfinite(est) else math.inf
        return ESTBreakdown(task, memory, resource, precedence, task_mem,
                            comm_mem, cmax, est, eft, comm_fit,
                            duration, proc)

    # -- batches ---------------------------------------------------------
    def _evaluate_batch_scalar(self, state: "SchedulerState",
                               tasks: Sequence[Task],
                               memory: "Memory") -> list[ESTBreakdown]:
        """The scalar batch loop with the per-candidate lookup traffic
        hoisted out: :meth:`evaluate` re-resolves the profile, the fit-memo
        slot, the times table and half a dozen bound methods per candidate,
        which the PR 8 phase timings flagged as the dominant cost of large
        scalar flushes.  One binding of each per (batch, class) leaves only
        the arithmetic in the loop — same operations in the same order, so
        bit-identical to the one-at-a-time path."""
        idx = memory.index
        if state.platform.n_procs_of(memory) == 0:
            return [infeasible_breakdown(task, memory) for task in tasks]
        profile = state.mem[memory]
        slot = state._fit[idx]
        if slot[0] != profile.version:
            slot[0] = profile.version
            slot[1].clear()
        fitd = slot[1]
        fit_get = fitd.get
        static_get = state._static.get
        parts_of = state._precedence_parts
        earliest_fit = profile.earliest_fit
        resource_choice = state._resource_choice
        times = state._flat.times
        row_of = state._row
        is_ready = state.is_ready
        isfinite = math.isfinite
        inf = math.inf
        tn = _tuple_new
        bd_cls = ESTBreakdown
        out: list[ESTBreakdown] = []
        append = out.append
        for task in tasks:
            if not is_ready(task):
                append(infeasible_breakdown(task, memory))
                continue
            parts = static_get(task)
            if parts is None:
                parts = parts_of(task)
            precedence, cmax, cross_in, need_task = parts[idx]
            cached = fit_get(task)
            if cached is not None:
                task_mem, comm_fit = cached
            else:
                task_mem = earliest_fit(need_task)
                comm_fit = (earliest_fit(cross_in)
                            if cross_in > 0.0 or cmax > 0.0 else 0.0)
                fitd[task] = (task_mem, comm_fit)
            comm_mem = comm_fit + cmax if cross_in > 0.0 or cmax > 0.0 else 0.0
            resource, est, duration, proc = resource_choice(
                memory, precedence, task_mem, comm_mem,
                times[row_of[task]][idx])
            append(tn(bd_cls, (task, memory, resource, precedence, task_mem,
                               comm_mem, cmax, est,
                               est + duration if isfinite(est) else inf,
                               comm_fit, duration, proc)))
        return out

    def evaluate_class_batch(self, state: "SchedulerState",
                             tasks: Sequence[Task],
                             memory: "Memory") -> list[ESTBreakdown]:
        """Breakdowns of all ``tasks`` (which must be *ready*) on one
        memory class.  The scalar backend just loops; vectorized backends
        overload this with one array pass per batch."""
        st = obs.active()
        if st is None:
            return self._evaluate_batch_scalar(state, tasks, memory)
        t0 = time.perf_counter()
        out = self._evaluate_batch_scalar(state, tasks, memory)
        _record_batch(self.name, "scalar", len(tasks),
                      time.perf_counter() - t0)
        return out

    def best_est_batch(self, state: "SchedulerState",
                       tasks: Sequence[Task]) -> list[Optional[ESTBreakdown]]:
        """Per-task best-class choice over a whole candidate batch — the
        §5.1 memory-selection EPS-chain of :meth:`SchedulerState.best_est`
        replayed class-by-class over the batched columns."""
        per_class = [self.evaluate_class_batch(state, tasks, m)
                     for m in state.memories]
        out: list[Optional[ESTBreakdown]] = []
        for b in range(len(tasks)):
            best: Optional[ESTBreakdown] = None
            for bds in per_class:
                bd = bds[b]
                if not bd.feasible:
                    continue
                if best is None or bd.eft < best.eft - EPS:
                    best = bd
            out.append(best)
        return out


class NumpyKernel(ScalarKernel):
    """Vectorized backend: one array pass per (batch, memory class).

    Falls back to the scalar loop below ``batch_cutoff`` candidates, where
    array setup costs more than it saves — the default sits at the
    measured crossover on CPython 3.11 (mid-size flush batches pay ~50us
    of fixed array-setup per class, vs ~1us per scalar evaluation).
    Construct with ``batch_cutoff=1`` to force the vector path (the
    equivalence tests do, so tiny fuzzed instances still exercise it).
    """

    name = "numpy"
    vectorized = True

    def __init__(self, batch_cutoff: int = 48) -> None:
        require_numpy("the numpy kernel backend")
        if batch_cutoff < 1:
            raise ValueError("batch_cutoff must be >= 1")
        self.batch_cutoff = batch_cutoff

    # -- vectorized earliest_fit ----------------------------------------
    def _fit_batch(self, state: "SchedulerState", idx: int, needs):
        """``earliest_fit(need)`` for an array of needs against one
        profile: rightmost staircase segment above ``capacity - need`` via
        a suffix-max array and one ``searchsorted`` (same ``> bound``
        predicate as the scalar block-max scan, so bit-identical).

        The suffix-max / breakpoint arrays are cached per class on the
        state's kernel scratch, keyed by the profile ``version`` — the
        staircase *function* they encode survives :meth:`MemoryProfile.
        compact` (which is exactly why compaction leaves ``version``
        alone), so a compact between queries cannot desynchronise them.
        """
        np = require_numpy("the numpy kernel backend")
        profile = state.mem[state.memories[idx]]
        cap = profile.capacity
        if math.isinf(cap):
            return np.zeros(len(needs))
        key = ("sfx", idx)
        cached = state._kernel_scratch.get(key)
        if cached is None or cached[0] != profile.version:
            vals = np.array(profile._vals, dtype=np.float64)
            # sm_asc[i] = max(vals[n-1-i:]) — the suffix maxima, ascending.
            sm_asc = np.maximum.accumulate(vals[::-1])
            xs = np.array(profile._xs, dtype=np.float64)
            cached = (profile.version, sm_asc, xs)
            state._kernel_scratch[key] = cached
        _, sm_asc, xs = cached
        n = len(xs)
        bound = (cap - needs) + EPS
        # Rightmost segment j with vals[j] > bound == rightmost j with
        # suffix-max > bound; count elements <= bound in the ascending
        # suffix-max array, the rest form the exceeding prefix.
        j = (n - np.searchsorted(sm_asc, bound, side="right")) - 1
        # j + 1 is always >= 0, so a one-sided minimum replaces np.clip
        # (whose dtype-limit checks dominate on small batches).
        res = np.where(j < 0, 0.0,
                       np.where(j >= n - 1, math.inf,
                                xs[np.minimum(j + 1, n - 1)]))
        return np.where(needs <= EPS, 0.0,
                        np.where(needs > cap + EPS, math.inf, res))

    # -- batch evaluation ------------------------------------------------
    def _class_columns(self, state: "SchedulerState", tasks: Sequence[Task],
                       parts_all: list, memory: "Memory"):
        """All breakdown components of one (batch, class) in one vectorized
        pass, as ``(eft_array, *columns)`` where the columns are plain
        Python lists (cheap to index when assembling breakdowns).

        ``parts_all`` is the per-task :meth:`SchedulerState.
        _precedence_parts` list, computed once per batch by the callers and
        shared across the k classes."""
        np = require_numpy("the numpy kernel backend")
        platform = state.platform
        idx = memory.index
        B = len(tasks)
        parts = [p[idx] for p in parts_all]
        prec_t, cmax_t, cross_t, need_t = zip(*parts)
        prec = np.array(prec_t)
        cmax = np.array(cmax_t)
        cross = np.array(cross_t)

        # Memory parts through the shared per-class {task: (task_mem,
        # comm_fit)} memo; only the misses hit the staircase.  A profile
        # version bump invalidates the class dict wholesale, so the common
        # post-commit case is fully cold and skips the per-candidate scan.
        profile = state.mem[memory]
        version = profile.version
        slot = state._fit[idx]
        if slot[0] != version:
            slot[0] = version
            slot[1].clear()
        fitd = slot[1]
        if not fitd:
            task_mem = self._fit_batch(state, idx, np.array(need_t))
            comm_fit = self._fit_batch(state, idx, cross)
            fitd.update(zip(tasks, zip(task_mem.tolist(),
                                       comm_fit.tolist())))
        else:
            task_mem = np.empty(B)
            comm_fit = np.empty(B)
            misses: list[int] = []
            for b, task in enumerate(tasks):
                cached = fitd.get(task)
                if cached is not None:
                    task_mem[b] = cached[0]
                    comm_fit[b] = cached[1]
                else:
                    misses.append(b)
            if misses:
                need_m = np.array([need_t[b] for b in misses])
                tm = self._fit_batch(state, idx, need_m)
                cf = self._fit_batch(state, idx, cross[misses])
                task_mem[misses] = tm
                comm_fit[misses] = cf
                tm_l, cf_l = tm.tolist(), cf.tolist()
                for pos, b in enumerate(misses):
                    fitd[tasks[b]] = (tm_l[pos], cf_l[pos])
        has_comm = (cross > 0.0) | (cmax > 0.0)
        comm_mem = np.where(has_comm, comm_fit + cmax, 0.0)

        row = state._row
        times_mat = state._kernel_scratch.get("times")
        if times_mat is None:
            times_mat = np.array(state._flat.times, dtype=np.float64)
            state._kernel_scratch["times"] = times_mat
        w = times_mat[[row[task] for task in tasks], idx]

        if platform.uniform_classes[idx]:
            resource = state.class_resources()[idx]
            est = np.maximum(np.maximum(prec, task_mem),
                             np.maximum(comm_mem, resource))
            dur = w / platform.max_class_speeds[idx]
            eft = est + dur
            res_l = [resource] * B
            proc_l = [-1] * B
        else:
            floor = np.maximum(np.maximum(prec, task_mem), comm_mem)
            avail = state.avail
            speeds = platform.speeds
            best_finish = np.full(B, math.inf)
            best_avail = np.full(B, -math.inf)
            best_dur = np.full(B, math.inf)
            best_proc = np.full(B, -1)
            # The exact tie chain of _finish_choice, replayed elementwise
            # in processor-index order (never an argmin).
            for p in platform.procs(memory):
                a = avail[p]
                dur_p = w / speeds[p]
                finish = np.maximum(floor, a) + dur_p
                upd = (finish < best_finish) | ((finish == best_finish)
                                                & (a > best_avail))
                best_finish = np.where(upd, finish, best_finish)
                best_dur = np.where(upd, dur_p, best_dur)
                best_proc = np.where(upd, p, best_proc)
                best_avail = np.where(upd, a, best_avail)
            est = np.maximum(floor, best_avail)
            dur = best_dur
            eft = est + dur
            res_l = best_avail.tolist()
            proc_l = best_proc.tolist()

        # est + finite dur keeps inf lanes at inf, matching the scalar
        # `eft = est + duration if isfinite(est) else inf` exactly.
        return (eft, res_l, prec.tolist(), task_mem.tolist(),
                comm_mem.tolist(), cmax.tolist(), est.tolist(), eft.tolist(),
                comm_fit.tolist(), dur.tolist(), proc_l)

    def evaluate_class_batch(self, state: "SchedulerState",
                             tasks: Sequence[Task],
                             memory: "Memory") -> list[ESTBreakdown]:
        st = obs.active()
        if (len(tasks) < self.batch_cutoff
                or state.platform.n_procs_of(memory) == 0):
            if st is None:
                return self._evaluate_batch_scalar(state, tasks, memory)
            t0 = time.perf_counter()
            out = self._evaluate_batch_scalar(state, tasks, memory)
            _record_batch(self.name, "scalar", len(tasks),
                          time.perf_counter() - t0)
            return out
        t0 = time.perf_counter() if st is not None else 0.0
        static = state._static
        parts_of = state._precedence_parts
        parts_all = [static.get(task) or parts_of(task) for task in tasks]
        (_, res_l, prec_l, tmem_l, cmem_l, cmax_l, est_l, eft_l, cfit_l,
         dur_l, proc_l) = self._class_columns(state, tasks, parts_all, memory)
        # zip assembles the rows and ``map(tuple.__new__, ...)`` turns them
        # into breakdowns, all at C level — no per-candidate Python frame.
        out = list(map(_tuple_new, repeat(ESTBreakdown),
                       zip(tasks, repeat(memory), res_l, prec_l, tmem_l,
                           cmem_l, cmax_l, est_l, eft_l, cfit_l, dur_l,
                           proc_l)))
        if st is not None:
            _record_batch(self.name, "vector", len(tasks),
                          time.perf_counter() - t0)
        return out

    def best_est_batch(self, state: "SchedulerState",
                       tasks: Sequence[Task]) -> list[Optional[ESTBreakdown]]:
        """Batched §5.1 memory selection without materialising the per-class
        breakdowns: the per-class columns stay arrays, the class-order EPS
        chain runs elementwise over the batch, and only the winning
        (task, class) breakdowns are constructed."""
        if len(tasks) < self.batch_cutoff:
            return super().best_est_batch(state, tasks)
        st = obs.active()
        t0 = time.perf_counter() if st is not None else 0.0
        np = require_numpy("the numpy kernel backend")
        B = len(tasks)
        platform = state.platform
        memories = state.memories
        static = state._static
        parts_of = state._precedence_parts
        parts_all = [static.get(task) or parts_of(task) for task in tasks]
        best_eft = np.full(B, math.inf)
        best_cls = np.full(B, -1, dtype=np.intp)
        cols: list = []
        for memory in memories:
            if platform.n_procs_of(memory) == 0:
                cols.append(None)
                continue
            col = self._class_columns(state, tasks, parts_all, memory)
            cols.append(col)
            eft = col[0]
            # The exact EPS chain of ScalarKernel.best_est_batch, replayed
            # elementwise in class-index order.
            upd = np.isfinite(eft) & ((best_cls < 0) | (eft < best_eft - EPS))
            best_eft = np.where(upd, eft, best_eft)
            best_cls = np.where(upd, memory.index, best_cls)
        # Assemble each winning class's rows once (C-level zip), then copy
        # the winning row per task into a breakdown.
        cls_l = best_cls.tolist()
        rows: list = [None] * len(cols)
        tn = _tuple_new
        bd_cls = ESTBreakdown
        out: list[Optional[ESTBreakdown]] = []
        append = out.append
        for b, task in enumerate(tasks):
            ci = cls_l[b]
            if ci < 0:
                append(None)
                continue
            r = rows[ci]
            if r is None:
                r = rows[ci] = list(zip(tasks, repeat(memories[ci]),
                                        *cols[ci][1:]))
            append(tn(bd_cls, r[b]))
        if st is not None:
            _record_batch(self.name, "vector", len(tasks),
                          time.perf_counter() - t0)
        return out


class CompiledKernel(NumpyKernel):
    """Compiled backend: the per-(batch, class) evaluation runs in C.

    A ~200-line shared library (``_estkernel.c``, built on demand by
    :mod:`repro.scheduling._cc` with the system C toolchain and loaded via
    ctypes) performs the precedence gathers over the CSR parent arrays,
    the suffix-max ``earliest_fit`` staircase queries, the heterogeneous
    finish-time tie chains and the §5.1 class-selection EPS chain — zero
    per-candidate Python object churn; only the *winning* breakdowns are
    materialised back into :class:`ESTBreakdown` tuples.

    Marshalling layout (all per-state, living in ``state._kernel_scratch``
    so one kernel instance serves any number of states):

    * static: the FlatGraph CSR arrays, the (n x k) times matrix and the
      per-class processor lists as int64/float64 numpy arrays, built once
      per state;
    * dynamic: float64/int64 mirrors of the per-row ``_finish``/``_memidx``
      placement views, updated incrementally by draining the state's
      ``_commit_log`` (one committed row per commit) instead of re-copying
      n-element lists per batch;
    * per class: the profile staircase as contiguous ``xs``/suffix-max
      arrays keyed on the profile ``version``, and the processor avail
      array keyed on the avail vector's ``version``.

    Unlike the numpy backend it does **not** read or populate the shared
    ``(task, class)`` fit memo — the C pass recomputes fits from the
    staircase, which is cheaper than the dict traffic and bit-identical by
    construction, so mixing compiled batches with scalar singles stays
    coherent.  The cutoff below which the scalar loop wins is much lower
    than numpy's (one C call costs ~2us vs ~50us of array setup).
    """

    name = "compiled"
    vectorized = True

    def __init__(self, batch_cutoff: int = 16) -> None:
        super().__init__(batch_cutoff=batch_cutoff)  # checks numpy
        from . import _cc
        self._lib = _cc.load_library()  # raises CompiledKernelUnavailable
        self._np = require_numpy("the compiled kernel backend")
        #: Placeholder pointer target for array arguments the C side never
        #: dereferences (staircases of unbounded profiles, avail of
        #: uniform classes).
        self._dummy = self._np.zeros(1)

    # -- per-state scratch ----------------------------------------------
    def _cstatic(self, state: "SchedulerState"):
        """The state's immutable arrays in C layout, built once per state."""
        sc = state._kernel_scratch
        st = sc.get("cstatic")
        if st is None:
            np = self._np
            flat = state._flat
            platform = state.platform
            times = sc.get("times")
            if times is None:
                times = sc["times"] = np.array(flat.times, dtype=np.float64)
            st = sc["cstatic"] = (
                np.asarray(flat.parent_ptr, dtype=np.int64),
                np.asarray(flat.parent_row, dtype=np.int64),
                np.asarray(flat.parent_comm, dtype=np.float64),
                np.asarray(flat.parent_size, dtype=np.float64),
                np.asarray(flat.out_size, dtype=np.float64),
                times,
                np.asarray(platform.speeds, dtype=np.float64),
                tuple(np.asarray(list(platform.procs(m)), dtype=np.int64)
                      for m in state.memories),
            )
        return st

    def _cdynamic(self, state: "SchedulerState"):
        """Array mirrors of ``_finish``/``_memidx``, maintained by draining
        the commit log (rows committed since the last drain)."""
        sc = state._kernel_scratch
        log = state._commit_log
        dyn = sc.get("cdyn")
        if dyn is None:
            np = self._np
            dyn = sc["cdyn"] = [
                len(log),
                np.asarray(state._finish, dtype=np.float64),
                np.asarray(state._memidx, dtype=np.int64),
            ]
        elif dyn[0] < len(log):
            fa, ma = dyn[1], dyn[2]
            fin = state._finish
            mem = state._memidx
            for r in log[dyn[0]:]:
                fa[r] = fin[r]
                ma[r] = mem[r]
            dyn[0] = len(log)
        return dyn[1], dyn[2]

    def _cavail(self, state: "SchedulerState"):
        """Processor avail times as a float64 array, keyed on the avail
        vector's version (commits and direct writes both bump it)."""
        sc = state._kernel_scratch
        avail = state.avail
        cached = sc.get("cavail")
        if cached is None or cached[0] != avail.version:
            cached = sc["cavail"] = (
                avail.version, self._np.array(avail, dtype=self._np.float64))
        return cached[1]

    def _cstaircase(self, state: "SchedulerState", idx: int):
        """One class's staircase as contiguous ``(cap, nseg, xs, sm)`` with
        ``sm[j] = max(vals[j:])`` non-increasing, keyed on the profile
        ``version`` (compaction leaves the version — and the function the
        arrays encode — unchanged, exactly like the numpy scratch)."""
        profile = state.mem[state.memories[idx]]
        cap = profile.capacity
        if math.isinf(cap):
            return cap, 1, self._dummy, self._dummy  # never dereferenced
        sc = state._kernel_scratch
        key = ("csfx", idx)
        cached = sc.get(key)
        if cached is None or cached[0] != profile.version:
            np = self._np
            vals = np.array(profile._vals, dtype=np.float64)
            sm = np.ascontiguousarray(
                np.maximum.accumulate(vals[::-1])[::-1])
            xs = np.array(profile._xs, dtype=np.float64)
            cached = sc[key] = (profile.version, xs, sm)
        _, xs, sm = cached
        return cap, len(xs), xs, sm

    # -- C dispatch ------------------------------------------------------
    def _eval_class_c(self, state: "SchedulerState", rows,
                      memory: "Memory", bufs) -> None:
        """One ``est_eval_class_batch`` call filling the ten column buffers
        for (batch, class)."""
        idx = memory.index
        platform = state.platform
        (parent_ptr, parent_row, parent_comm, parent_size, out_size,
         times, speeds, procs_by_class) = self._cstatic(state)
        finish, memidx = self._cdynamic(state)
        cap, nseg, xs, sm = self._cstaircase(state, idx)
        uniform = platform.uniform_classes[idx]
        procs = procs_by_class[idx]
        if uniform:
            class_resource = state.class_resources()[idx]
            avail = self._dummy
        else:
            class_resource = 0.0
            avail = self._cavail(state)
        (o_res, o_prec, o_tmem, o_cmem, o_cmax, o_est, o_eft, o_cfit,
         o_dur, o_proc) = bufs
        self._lib.est_eval_class_batch(
            len(rows), rows.ctypes.data, idx, len(state.memories),
            parent_ptr.ctypes.data, parent_row.ctypes.data,
            parent_comm.ctypes.data, parent_size.ctypes.data,
            out_size.ctypes.data, times.ctypes.data,
            finish.ctypes.data, memidx.ctypes.data,
            nseg, xs.ctypes.data, sm.ctypes.data, cap,
            1 if uniform else 0, class_resource,
            platform.max_class_speeds[idx],
            len(procs), procs.ctypes.data, avail.ctypes.data,
            speeds.ctypes.data,
            o_res.ctypes.data, o_prec.ctypes.data, o_tmem.ctypes.data,
            o_cmem.ctypes.data, o_cmax.ctypes.data, o_est.ctypes.data,
            o_eft.ctypes.data, o_cfit.ctypes.data, o_dur.ctypes.data,
            o_proc.ctypes.data)

    # -- batch entry points ----------------------------------------------
    def evaluate_class_batch(self, state: "SchedulerState",
                             tasks: Sequence[Task],
                             memory: "Memory") -> list[ESTBreakdown]:
        if (len(tasks) < self.batch_cutoff
                or state.platform.n_procs_of(memory) == 0):
            return super().evaluate_class_batch(state, tasks, memory)
        st = obs.active()
        t0 = time.perf_counter() if st is not None else 0.0
        np = self._np
        B = len(tasks)
        row = state._row
        rows = np.asarray([row[t] for t in tasks], dtype=np.int64)
        bufs = tuple(np.empty(B) for _ in range(9)) \
            + (np.empty(B, dtype=np.int64),)
        self._eval_class_c(state, rows, memory, bufs)
        out = list(map(_tuple_new, repeat(ESTBreakdown),
                       zip(tasks, repeat(memory),
                           *(buf.tolist() for buf in bufs))))
        if st is not None:
            _record_batch(self.name, "vector", B,
                          time.perf_counter() - t0)
        return out

    def best_est_batch(self, state: "SchedulerState",
                       tasks: Sequence[Task]) -> list[Optional[ESTBreakdown]]:
        """Batched §5.1 memory selection fully in C: one evaluation call
        per class into a shared (k x B) EFT matrix, one ``est_select_best``
        chain call, then winner-only breakdown materialisation."""
        if len(tasks) < self.batch_cutoff:
            return ScalarKernel.best_est_batch(self, state, tasks)
        st = obs.active()
        t0 = time.perf_counter() if st is not None else 0.0
        np = self._np
        B = len(tasks)
        memories = state.memories
        k = len(memories)
        platform = state.platform
        row = state._row
        rows = np.asarray([row[t] for t in tasks], dtype=np.int64)
        eft_mat = np.full((k, B), math.inf)
        present = np.zeros(k, dtype=np.int64)
        bufs_by_class: list = [None] * k
        for memory in memories:
            ci = memory.index
            if platform.n_procs_of(memory) == 0:
                continue
            present[ci] = 1
            # eft_mat[ci] is a contiguous row of the C-order matrix, so
            # the C call writes the EFT column straight into the matrix
            # est_select_best consumes.
            bufs = (np.empty(B), np.empty(B), np.empty(B), np.empty(B),
                    np.empty(B), np.empty(B), eft_mat[ci], np.empty(B),
                    np.empty(B), np.empty(B, dtype=np.int64))
            bufs_by_class[ci] = bufs
            self._eval_class_c(state, rows, memory, bufs)
        best_cls = np.empty(B, dtype=np.int64)
        self._lib.est_select_best(B, k, eft_mat.ctypes.data,
                                  present.ctypes.data, best_cls.ctypes.data)
        cls_l = best_cls.tolist()
        rows_cache: list = [None] * k
        tn = _tuple_new
        bd_cls = ESTBreakdown
        out: list[Optional[ESTBreakdown]] = []
        append = out.append
        for b, task in enumerate(tasks):
            ci = cls_l[b]
            if ci < 0:
                append(None)
                continue
            r = rows_cache[ci]
            if r is None:
                r = rows_cache[ci] = list(
                    zip(tasks, repeat(memories[ci]),
                        *(buf.tolist() for buf in bufs_by_class[ci])))
            append(tn(bd_cls, r[b]))
        if st is not None:
            _record_batch(self.name, "vector", B,
                          time.perf_counter() - t0)
        return out


KernelLike = Union[None, str, ScalarKernel]

_SCALAR = ScalarKernel()
_NUMPY: Optional[NumpyKernel] = None
_COMPILED: Optional[CompiledKernel] = None


def available_backends() -> tuple[str, ...]:
    """Names accepted by :func:`resolve_backend` on this interpreter.

    The first call may probe — and build — the compiled backend's shared
    library; the probe's outcome is memoized in
    :mod:`repro.scheduling._cc`, so later calls are free."""
    if not HAS_NUMPY:
        return ("scalar",)
    from . import _cc
    if _cc.compiled_available():
        return ("scalar", "numpy", "compiled")
    return ("scalar", "numpy")


def resolve_backend(backend: KernelLike = None) -> ScalarKernel:
    """Resolve a backend spec to a kernel instance.

    Precedence: explicit ``backend`` (a name or a kernel instance) >
    ``MEMSCHED_KERNEL`` environment variable > ``auto``.  ``auto`` picks
    the fastest backend this interpreter supports — ``compiled`` when
    numpy and a working C toolchain are present, then ``numpy``, then
    ``scalar``; naming ``numpy`` or ``compiled`` explicitly when
    unavailable is an error.
    """
    if isinstance(backend, ScalarKernel):
        return backend
    name = backend if backend is not None else os.environ.get(ENV_VAR) or "auto"
    name = name.strip().lower()
    if name == "auto":
        if not HAS_NUMPY:
            name = "scalar"
        else:
            from . import _cc
            name = "compiled" if _cc.compiled_available() else "numpy"
    if name == "scalar":
        return _SCALAR
    if name == "numpy":
        global _NUMPY
        if _NUMPY is None:
            _NUMPY = NumpyKernel()  # raises when numpy is missing
        return _NUMPY
    if name == "compiled":
        global _COMPILED
        if _COMPILED is None:
            # Raises with the concrete reason when numpy or the C
            # toolchain is missing.
            _COMPILED = CompiledKernel()
        return _COMPILED
    raise ValueError(
        f"unknown kernel backend {name!r}; expected one of "
        f"{('auto',) + available_backends()}")
