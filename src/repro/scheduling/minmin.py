"""MinMin baseline (Braun et al. 2001), memory-oblivious.

MemMinMin with unbounded memories: at each step pick the available task with
the smallest completion time on its best resource.
"""

from __future__ import annotations

from ..core.graph import TaskGraph
from ..core.platform import Platform
from ..core.schedule import Schedule
from .kernel import KernelLike
from .memminmin import memminmin


def minmin(graph: TaskGraph, platform: Platform, *,
           backend: KernelLike = None) -> Schedule:
    """Schedule with classical (memory-oblivious) MinMin."""
    schedule = memminmin(graph, platform.unbounded(), backend=backend)
    schedule.meta["algorithm"] = "minmin"
    return schedule
