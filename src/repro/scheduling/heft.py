"""HEFT baseline (Topcuoglu et al. 2002), memory-oblivious.

As the paper notes (§6.2.1), MemHEFT takes *exactly* the same decisions as
classical HEFT when both memories are large enough, so the baseline is
MemHEFT run with unbounded memory bounds — while still tracking usage, which
gives the per-graph peaks ``M^HEFT_blue`` / ``M^HEFT_red`` that normalise the
memory axis of Figures 10–15.
"""

from __future__ import annotations

from .._util import RngLike
from ..core.graph import TaskGraph
from ..core.platform import Platform
from ..core.schedule import Schedule
from .kernel import KernelLike
from .memheft import memheft


def heft(graph: TaskGraph, platform: Platform, *, rng: RngLike = None,
         backend: KernelLike = None) -> Schedule:
    """Schedule with classical (memory-oblivious) HEFT.

    The returned schedule's ``meta`` carries ``peak_blue`` / ``peak_red``:
    the memory the schedule *would* need, used as the normalisation
    reference in the paper's experiments.
    """
    schedule = memheft(graph, platform.unbounded(), rng=rng, backend=backend)
    schedule.meta["algorithm"] = "heft"
    return schedule
