"""MemHEFT — memory-aware HEFT (paper Algorithm 1).

Two phases:

1. *task prioritising* — upward ranks, list sorted by non-increasing rank
   (random tie-break);
2. *memory selection* — walk the list from the front; the first task that is
   ready and fits in some memory is assigned to the memory minimising its
   EFT and to the processor minimising idle time, its incoming transfers are
   scheduled as late as possible, and the scan restarts from the front.

If no remaining task can be scheduled the memory bounds are unsatisfiable
for this heuristic and :class:`InfeasibleScheduleError` is raised
(the ``Error`` branch of Algorithm 1).
"""

from __future__ import annotations

from .._util import RngLike
from ..core.graph import TaskGraph
from ..core.platform import Platform
from ..core.schedule import Schedule
from .ranks import rank_order
from .state import InfeasibleScheduleError, SchedulerState


def memheft(graph: TaskGraph, platform: Platform, *, rng: RngLike = None,
            comm_policy: str = "late") -> Schedule:
    """Schedule ``graph`` on ``platform`` with MemHEFT.

    ``comm_policy`` selects when incoming transfers fire: ``"late"`` (the
    paper's choice) or ``"eager"`` (ablation, see
    :mod:`repro.experiments.ablation`).

    Raises
    ------
    InfeasibleScheduleError
        When the heuristic cannot fit the graph within the memory bounds.
    """
    state = SchedulerState(graph, platform, comm_policy=comm_policy)
    remaining = rank_order(graph, rng=rng)

    while remaining:
        committed = False
        for index, task in enumerate(remaining):
            if not state.is_ready(task):
                # Skipping keeps the list scan faithful to Algorithm 1: a
                # not-yet-ready task has EFT = +inf on both memories.
                continue
            best = state.best_est(task)
            if best is None:
                continue
            state.commit(best)
            remaining.pop(index)
            committed = True
            break
        if not committed:
            raise InfeasibleScheduleError(
                "MemHEFT: no remaining task fits within the memory bounds "
                f"({len(remaining)} tasks left, "
                f"capacities={list(platform.capacities)})"
            )
    return state.finalize("memheft")
