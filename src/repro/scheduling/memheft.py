"""MemHEFT — memory-aware HEFT (paper Algorithm 1).

Two phases:

1. *task prioritising* — upward ranks, list sorted by non-increasing rank
   (random tie-break);
2. *memory selection* — walk the list from the front; the first task that is
   ready and fits in some memory is assigned to the memory minimising its
   EFT and to the processor minimising idle time, its incoming transfers are
   scheduled as late as possible, and the scan restarts from the front.

If no remaining task can be scheduled the memory bounds are unsatisfiable
for this heuristic and :class:`InfeasibleScheduleError` is raised
(the ``Error`` branch of Algorithm 1).

By default the "first ready task in rank order that fits" query is served
by a heap over the rank positions of the *ready* tasks
(:class:`repro.scheduling.candidates.RankSelector`) instead of re-walking
the remaining list — which is mostly not-yet-ready tasks — on every step;
``lazy=False`` keeps the list walk.  Both paths commit identical schedules.
"""

from __future__ import annotations

from .. import obs
from .._util import RngLike
from ..core.graph import TaskGraph
from ..core.platform import Platform
from ..core.schedule import Schedule
from .candidates import RankSelector
from .kernel import KernelLike
from .ranks import rank_order
from .state import InfeasibleScheduleError, SchedulerState


def memheft(graph: TaskGraph, platform: Platform, *, rng: RngLike = None,
            comm_policy: str = "late", lazy: bool = True,
            backend: KernelLike = None) -> Schedule:
    """Schedule ``graph`` on ``platform`` with MemHEFT.

    ``comm_policy`` selects when incoming transfers fire: ``"late"`` (the
    paper's choice) or ``"eager"`` (ablation, see
    :mod:`repro.experiments.ablation`).  ``lazy`` selects the ready-task
    heap (default) or the naive priority-list walk.  ``backend`` picks the
    EST kernel backend (:func:`repro.scheduling.kernel.resolve_backend`).

    The upward ranks are speed-aware: on heterogeneous platforms each
    class's execution term is normalised by its fastest processor (a no-op
    on the paper's speed-1.0 platforms).

    Raises
    ------
    InfeasibleScheduleError
        When the heuristic cannot fit the graph within the memory bounds.
    """
    state = SchedulerState(graph, platform, comm_policy=comm_policy,
                           backend=backend)

    if lazy:
        if obs.active() is not None:
            return _lazy_observed(state, graph, platform, rng)
        position = {t: k for k, t in enumerate(
            rank_order(graph, rng=rng, platform=platform))}
        selector = RankSelector(state, position)
        for task in graph.roots():
            selector.push(task)
        n_left = graph.n_tasks
        while n_left:
            best = selector.select()
            if best is None:
                raise InfeasibleScheduleError(
                    "MemHEFT: no remaining task fits within the memory "
                    f"bounds ({n_left} tasks left, "
                    f"capacities={list(platform.capacities)})"
                )
            state.commit(best)
            selector.remove(best.task)
            n_left -= 1
            for task in state.pop_newly_ready():
                selector.push(task)
        return state.finalize("memheft")

    remaining = rank_order(graph, rng=rng, platform=platform)
    while remaining:
        committed = False
        for index, task in enumerate(remaining):
            if not state.is_ready(task):
                # Skipping keeps the list scan faithful to Algorithm 1: a
                # not-yet-ready task has EFT = +inf on both memories.
                continue
            best = state.best_est(task)
            if best is None:
                continue
            state.commit(best)
            remaining.pop(index)
            committed = True
            break
        if not committed:
            raise InfeasibleScheduleError(
                "MemHEFT: no remaining task fits within the memory bounds "
                f"({len(remaining)} tasks left, "
                f"capacities={list(platform.capacities)})"
            )
    return state.finalize("memheft")


def _lazy_observed(state: SchedulerState, graph: TaskGraph,
                   platform: Platform, rng: RngLike) -> Schedule:
    """The lazy path under :mod:`repro.obs`: identical commit sequence,
    plus an algorithm span, a rank-phase span, and per-phase timings."""
    from .instrument import observed_lazy_run

    import time

    st = obs.active()
    with obs.span("memheft", n_tasks=graph.n_tasks):
        t0 = time.perf_counter()
        with obs.span("rank"):
            position = {t: k for k, t in enumerate(
                rank_order(graph, rng=rng, platform=platform))}
        st.registry.counter("memsched_phase_seconds_total",
                            algorithm="memheft",
                            phase="rank").inc(time.perf_counter() - t0)
        selector = RankSelector(state, position)
        for task in graph.roots():
            selector.push(task)
        return observed_lazy_run(
            state, selector, "memheft", st,
            lambda n_left: (
                "MemHEFT: no remaining task fits within the memory "
                f"bounds ({n_left} tasks left, "
                f"capacities={list(platform.capacities)})"),
            n_tasks=graph.n_tasks)
