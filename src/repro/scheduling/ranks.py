"""Task prioritisation: the upward rank of §5.1, over k memory classes.

``rank(i) = mean_c(W^(c)_i) + max_{j in Children(i)} (rank(j) + C_ij * (k-1)/k)``

computed in reverse topological order.  The expected communication weight of
an edge is ``C * (k - 1) / k`` — the chance that two uniformly chosen memory
classes differ — which reduces to the paper's ``C / 2`` on the dual-memory
platform (``k = 2``).

With a ``platform`` given, the execution term becomes *speed-aware*:
``mean_c(W^(c) / max_speed(c))`` — each class's time is normalised by its
fastest processor, the standard HEFT generalisation to heterogeneous
processors (average computation cost over resources).  On speed-1.0
platforms ``W / 1.0 == W`` bit-for-bit and the sum runs in the same class
order, so the ranks — and every schedule derived from them — are unchanged.

The task list of MemHEFT sorts by non-increasing rank; the paper breaks ties
randomly, which we reproduce with a seeded RNG (``rng=None`` keeps a
deterministic insertion-order tie-break, used by tests and the tie-breaking
ablation bench).
"""

from __future__ import annotations

from typing import Hashable, Optional

from .._util import RngLike, as_rng
from ..core.graph import TaskGraph
from ..core.platform import Platform

Task = Hashable


def upward_ranks(graph: TaskGraph,
                 platform: Optional[Platform] = None) -> dict[Task, float]:
    """Upward rank of every task (mean execution + expected communication).

    ``platform`` (optional) supplies per-class fastest speeds for the
    speed-aware execution term (classes without processors carry speed 1.0,
    keeping the mean aligned with the speed-less formula)."""
    k = graph.n_classes
    comm_weight = (k - 1) / k
    if platform is not None:
        # Accept the historical MultiPlatform facade transparently.
        platform = getattr(platform, "core", platform)
        if platform.n_classes != k:
            raise ValueError(
                f"graph has {k} memory classes, platform "
                f"{platform.n_classes}")
        fastest = platform.max_class_speeds

        def mean_w(task: Task) -> float:
            times = graph.times(task)
            return sum(times[ci] / fastest[ci]
                       for ci in range(k)) / k
    else:
        mean_w = graph.w_mean

    ranks: dict[Task, float] = {}
    for task in reversed(graph.topological_order()):
        best_child = 0.0
        for child in graph.children(task):
            cand = ranks[child] + graph.comm(task, child) * comm_weight
            if cand > best_child:
                best_child = cand
        ranks[task] = mean_w(task) + best_child
    return ranks


def rank_order(graph: TaskGraph, rng: RngLike = None,
               platform: Optional[Platform] = None) -> list[Task]:
    """Tasks sorted by non-increasing upward rank.

    With ``rng`` given (seed or Generator), ties are broken uniformly at
    random as in the paper; otherwise ties keep a stable deterministic order.
    ``platform`` turns on the speed-aware execution term of
    :func:`upward_ranks` (a no-op on speed-1.0 platforms).
    """
    ranks = upward_ranks(graph, platform)
    order = list(graph.tasks())
    if rng is None:
        index = {t: k for k, t in enumerate(order)}
        order.sort(key=lambda t: (-ranks[t], index[t]))
        return order

    gen = as_rng(rng)
    # Shuffle first, then stable-sort by rank: equal ranks stay shuffled.
    gen.shuffle(order)
    order.sort(key=lambda t: -ranks[t])
    return order
