"""Task prioritisation: the upward rank of §5.1, over k memory classes.

``rank(i) = mean_c(W^(c)_i) + max_{j in Children(i)} (rank(j) + C_ij * (k-1)/k)``

computed in reverse topological order.  The expected communication weight of
an edge is ``C * (k - 1) / k`` — the chance that two uniformly chosen memory
classes differ — which reduces to the paper's ``C / 2`` on the dual-memory
platform (``k = 2``).

The task list of MemHEFT sorts by non-increasing rank; the paper breaks ties
randomly, which we reproduce with a seeded RNG (``rng=None`` keeps a
deterministic insertion-order tie-break, used by tests and the tie-breaking
ablation bench).
"""

from __future__ import annotations

from typing import Hashable

from .._util import RngLike, as_rng
from ..core.graph import TaskGraph

Task = Hashable


def upward_ranks(graph: TaskGraph) -> dict[Task, float]:
    """Upward rank of every task (mean execution + expected communication)."""
    k = graph.n_classes
    comm_weight = (k - 1) / k
    ranks: dict[Task, float] = {}
    for task in reversed(graph.topological_order()):
        best_child = 0.0
        for child in graph.children(task):
            cand = ranks[child] + graph.comm(task, child) * comm_weight
            if cand > best_child:
                best_child = cand
        ranks[task] = graph.w_mean(task) + best_child
    return ranks


def rank_order(graph: TaskGraph, rng: RngLike = None) -> list[Task]:
    """Tasks sorted by non-increasing upward rank.

    With ``rng`` given (seed or Generator), ties are broken uniformly at
    random as in the paper; otherwise ties keep a stable deterministic order.
    """
    ranks = upward_ranks(graph)
    order = list(graph.tasks())
    if rng is None:
        index = {t: k for k, t in enumerate(order)}
        order.sort(key=lambda t: (-ranks[t], index[t]))
        return order

    gen = as_rng(rng)
    # Shuffle first, then stable-sort by rank: equal ranks stay shuffled.
    gen.shuffle(order)
    order.sort(key=lambda t: -ranks[t])
    return order
