"""Build-and-load machinery for the compiled EST kernel backend.

The compiled backend (:class:`repro.scheduling.kernel.CompiledKernel`)
is a ~200-line C library (``_estkernel.c``, shipped next to this module)
compiled on first use with the *system* C toolchain and loaded through
:mod:`ctypes`.  No build-time extension, no numba/Cython dependency: the
optional surface is "a C compiler on $PATH", which CI images and dev
boxes almost always have — and when they don't, everything degrades
gracefully to the numpy backend, exactly the way numpy itself degrades
to scalar (:data:`repro._util.HAS_NUMPY`).

Build products are content-addressed: the shared library lands in a
cache directory as ``estkernel-<sha256 of source+compiler+flags>.so``,
so rebuilt only when the source or toolchain changes — a process start
with a warm cache pays one ``stat`` + ``dlopen``.  Compilation writes to
a temp name and ``os.replace``s it into place, so concurrent first
builds (e.g. a service worker pool) race benignly.

Environment knobs:

* ``MEMSCHED_CC`` — compiler executable to use; the special values
  ``none`` / ``0`` / empty string disable the compiled backend outright
  (the no-toolchain CI leg and the degradation tests use this).
* ``MEMSCHED_CC_CACHE`` — cache directory for the built libraries
  (default: ``$XDG_CACHE_HOME/memsched`` or ``~/.cache/memsched``,
  falling back to a per-user temp directory).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Optional

#: Compiler candidates probed in order when ``MEMSCHED_CC`` is unset.
_COMPILERS = ("cc", "gcc", "clang")

#: Flags that pin IEEE-754 double semantics to CPython's: no FMA
#: contraction, no fast-math reassociation.  ``-fexcess-precision=
#: standard`` (x87 safety) is appended when the compiler accepts it.
_BASE_FLAGS = ("-O2", "-fPIC", "-shared", "-fno-fast-math",
               "-ffp-contract=off")

_SOURCE = Path(__file__).with_name("_estkernel.c")

# Memoized load state: None = not attempted, (lib, None) = loaded,
# (None, reason) = unavailable.
_STATE: Optional[tuple] = None


class CompiledKernelUnavailable(ModuleNotFoundError):
    """The compiled backend cannot be built or loaded on this machine."""


def _compiler() -> Optional[str]:
    """Resolve the C compiler, honouring ``MEMSCHED_CC``; ``None`` when
    disabled or no toolchain is on $PATH."""
    override = os.environ.get("MEMSCHED_CC")
    if override is not None:
        if override.strip().lower() in ("", "none", "0"):
            return None
        return shutil.which(override)
    for cand in _COMPILERS:
        path = shutil.which(cand)
        if path:
            return path
    return None


def _cache_dir() -> Path:
    override = os.environ.get("MEMSCHED_CC_CACHE")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    try:
        base.expanduser()
    except RuntimeError:  # pragma: no cover - no resolvable home
        base = Path(tempfile.gettempdir())
    return base / "memsched"


def _build(cc: str, source: Path, out: Path, extra: tuple) -> None:
    """Compile ``source`` into ``out`` atomically (tmp + rename)."""
    out.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(out.parent), prefix=out.name + ".",
                               suffix=".tmp.so")
    os.close(fd)
    cmd = [cc, *_BASE_FLAGS, *extra, "-o", tmp, str(source)]
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              timeout=120)
        if proc.returncode != 0:
            raise CompiledKernelUnavailable(
                f"C compilation failed ({' '.join(cmd)}): "
                f"{proc.stderr.strip()[:500]}")
        os.replace(tmp, out)
    finally:
        try:
            os.unlink(tmp)
        except OSError:
            pass


def _declare(lib: ctypes.CDLL) -> ctypes.CDLL:
    """Attach argtypes so a signature drift fails loudly, not silently."""
    i64, f64, ptr = ctypes.c_int64, ctypes.c_double, ctypes.c_void_p
    lib.est_eval_class_batch.restype = None
    lib.est_eval_class_batch.argtypes = [
        i64, ptr, i64, i64,            # B, rows, cls, k
        ptr, ptr, ptr, ptr,            # parent_ptr/row/comm/size
        ptr, ptr,                      # out_size, times
        ptr, ptr,                      # finish, memidx
        i64, ptr, ptr, f64,            # nseg, xs, sm, cap
        i64, f64, f64,                 # uniform, class_resource, max_speed
        i64, ptr, ptr, ptr,            # n_procs, procs, avail, speeds
        ptr, ptr, ptr, ptr, ptr,       # resource, prec, task_mem, comm_mem, cmax
        ptr, ptr, ptr, ptr, ptr,       # est, eft, comm_fit, dur, proc
    ]
    lib.est_select_best.restype = None
    lib.est_select_best.argtypes = [i64, i64, ptr, ptr, ptr]
    return lib


def _load_uncached() -> ctypes.CDLL:
    cc = _compiler()
    if cc is None:
        raise CompiledKernelUnavailable(
            "no C compiler available (set MEMSCHED_CC, or install cc/gcc/"
            "clang); the numpy and scalar kernel backends work without one")
    try:
        source_bytes = _SOURCE.read_bytes()
    except OSError as exc:  # pragma: no cover - broken install
        raise CompiledKernelUnavailable(
            f"kernel C source missing: {exc}") from exc

    for extra in (("-fexcess-precision=standard",), ()):
        digest = hashlib.sha256(
            source_bytes + repr((cc, _BASE_FLAGS, extra,
                                 sys.platform)).encode()).hexdigest()[:16]
        out = _cache_dir() / f"estkernel-{digest}.so"
        try:
            if not out.exists():
                _build(cc, _SOURCE, out, extra)
            return _declare(ctypes.CDLL(str(out)))
        except CompiledKernelUnavailable:
            if not extra:  # both flag sets failed
                raise
        except OSError as exc:
            raise CompiledKernelUnavailable(
                f"could not load compiled kernel {out}: {exc}") from exc
    raise CompiledKernelUnavailable("unreachable")  # pragma: no cover


def load_library() -> ctypes.CDLL:
    """The compiled kernel library, built on first use and memoized —
    including memoized *failure*, so auto-detection probes the toolchain
    at most once per process.  Raises :class:`CompiledKernelUnavailable`
    with the original reason on every call when unavailable."""
    global _STATE
    if _STATE is None:
        try:
            _STATE = (_load_uncached(), None)
        except CompiledKernelUnavailable as exc:
            _STATE = (None, str(exc))
    lib, reason = _STATE
    if lib is None:
        raise CompiledKernelUnavailable(reason)
    return lib


def compiled_available() -> bool:
    """Whether the compiled backend can serve on this interpreter (the
    toolchain probe and build happen on the first call, then memoize)."""
    try:
        load_library()
        return True
    except CompiledKernelUnavailable:
        return False


def unavailable_reason() -> Optional[str]:
    """Why the compiled backend is unavailable (``None`` when it works)."""
    return _STATE[1] if _STATE is not None else None


def _reset_for_tests() -> None:
    """Drop the memoized load state (tests flip MEMSCHED_CC around)."""
    global _STATE
    _STATE = None
