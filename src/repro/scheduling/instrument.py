"""Observed driver loop shared by the lazy list-scheduling heuristics.

The three lazy drivers (MemHEFT / MemMinMin / MemSufferage) share one
select→commit→push shape; when :mod:`repro.obs` is active they run
through :func:`observed_lazy_run` instead, which times the select and
commit phases, folds the selector's :class:`~repro.scheduling.
candidates.SelectorStats` and the run counts into the metrics registry,
and emits per-phase child spans under the driver's algorithm span.
The un-observed drivers keep their original loops untouched — the
disabled path costs exactly one ``obs.active()`` check per run.
"""

from __future__ import annotations

import time
from typing import Callable

from .. import obs
from ..core.schedule import Schedule
from .kernel import flush_batch_stats
from .state import InfeasibleScheduleError, SchedulerState

#: Stride of the observed loop's phase-timing samples: one iteration in
#: this many is clocked, the rest pay two integer ops and a branch.
PHASE_SAMPLE = 32


def observed_lazy_run(state: SchedulerState, selector, algorithm: str,
                      st, infeasible_msg: Callable[[int], str],
                      n_tasks: int = None) -> Schedule:
    """The lazy select/commit loop with per-phase timing; commits the
    exact same sequence as the plain loop (instrumentation only reads).

    ``n_tasks`` drives the loop as a countdown (MemHEFT's rank selector
    only holds *ready* tasks); with ``None`` the loop runs while the
    selector is non-empty (the MinEFT/Sufferage live sets).
    ``infeasible_msg`` receives the number of unscheduled tasks.

    Phase timings are *sampled*: every :data:`PHASE_SAMPLE`-th
    iteration is clocked and the totals scaled by the commit count at
    record time — an unbiased estimate under the fixed stride, at an
    eighth of the per-commit clock cost.  Counts stay exact.
    """
    perf = time.perf_counter
    # Attribute any batch stats accumulated outside an observed run to
    # the registry now, so the post-run drain is this run's alone.
    flush_batch_stats(st)
    select_s = commit_s = 0.0
    n_commits = n_sampled = 0
    countdown = 0           # iterations until the next clocked one
    try:
        # Two specialisations of one loop, so each iteration pays for
        # its own driver's shape only (the countdown drivers never
        # branch on ``n_tasks is None``, the live-set drivers never
        # track ``remaining``).
        if n_tasks is not None:
            remaining = n_tasks
            while remaining:
                if countdown == 0:
                    t0 = perf()
                    best = selector.select()
                    t1 = perf()
                    select_s += t1 - t0
                else:
                    best = selector.select()
                if best is None:
                    raise InfeasibleScheduleError(infeasible_msg(remaining))
                state.commit(best)
                selector.remove(best.task)
                remaining -= 1
                for task in state.pop_newly_ready():
                    selector.push(task)
                if countdown == 0:
                    commit_s += perf() - t1
                    n_sampled += 1
                    countdown = PHASE_SAMPLE - 1
                else:
                    countdown -= 1
                n_commits += 1
        else:
            while len(selector):
                if countdown == 0:
                    t0 = perf()
                    best = selector.select()
                    t1 = perf()
                    select_s += t1 - t0
                else:
                    best = selector.select()
                if best is None:
                    raise InfeasibleScheduleError(
                        infeasible_msg(len(selector)))
                state.commit(best)
                selector.remove(best.task)
                for task in state.pop_newly_ready():
                    selector.push(task)
                if countdown == 0:
                    commit_s += perf() - t1
                    n_sampled += 1
                    countdown = PHASE_SAMPLE - 1
                else:
                    countdown -= 1
                n_commits += 1
    except BaseException:
        flush_batch_stats(st)   # keep totals current across infeasibles
        raise
    schedule = state.finalize(algorithm)
    if n_sampled and n_sampled < n_commits:
        scale = n_commits / n_sampled
        select_s *= scale
        commit_s *= scale
    est_s, est_batches = flush_batch_stats(st)
    _record_run(st, state, selector, algorithm, select_s, commit_s,
                n_commits, est_s, est_batches)
    return schedule


def _record_run(st, state: SchedulerState, selector, algorithm: str,
                select_s: float, commit_s: float, n_commits: int,
                est_s: float, est_batches: int) -> None:
    """Fold one run's phase timings and selector stats into the registry
    and, when tracing, emit aggregate per-phase child spans.  Metric
    handles cache on the :class:`~repro.obs.ObsState` so a sweep's
    thousands of runs skip the registry's label-key construction."""
    handles = st.handles.get(algorithm)
    if handles is None:
        registry = st.registry
        handles = st.handles[algorithm] = (
            registry.counter("memsched_schedule_runs_total",
                             algorithm=algorithm),
            registry.counter("memsched_commits_total",
                             algorithm=algorithm),
            registry.counter("memsched_phase_seconds_total",
                             algorithm=algorithm, phase="select"),
            registry.counter("memsched_phase_seconds_total",
                             algorithm=algorithm, phase="commit"),
            {},
        )
    runs_c, commits_c, select_c, commit_c, eval_counters = handles
    runs_c.inc()
    commits_c.inc(n_commits)
    select_c.inc(select_s)
    commit_c.inc(commit_s)
    stats = getattr(selector, "stats", None)
    stats_dict = stats.as_dict() if stats is not None else {}
    for key, count in stats_dict.items():
        counter = eval_counters.get(key)
        if counter is None:
            # n_full_evals -> kind="full_evals" etc.
            counter = eval_counters[key] = st.registry.counter(
                "memsched_selector_evals_total", algorithm=algorithm,
                kind=key.removeprefix("n_"))
        counter.inc(count)
    tracer = st.tracer
    if tracer is None:
        return
    parent = tracer.current()
    select_attrs: dict = {"n_commits": n_commits}
    select_attrs.update(stats_dict)
    tracer.emit("select", span_id=tracer.child_id(parent, "select"),
                parent_id=parent, dur=select_s, attrs=select_attrs)
    if est_batches:
        # No span when the kernel never ran a batch (scalar per-task
        # evaluation): the batch count is a pure function of the
        # workload and backend, so trace structure stays deterministic.
        tracer.emit("est", span_id=tracer.child_id(parent, "est"),
                    parent_id=parent, dur=est_s,
                    attrs={"backend": state.kernel.name,
                           "n_batches": est_batches})
    tracer.emit("commit", span_id=tracer.child_id(parent, "commit"),
                parent_id=parent, dur=commit_s,
                attrs={"n_commits": n_commits})
