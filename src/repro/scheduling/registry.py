"""Name-based scheduler lookup used by the CLI and the experiment harness.

Every registered heuristic runs on the unified k-memory engine: pass a
``TaskGraph``/``Platform`` pair with any matching number of memory classes
(the dual-memory paper setup is simply ``k = 2``).
"""

from __future__ import annotations

from typing import Callable, Protocol

from ..core.graph import TaskGraph
from ..core.platform import Platform
from ..core.schedule import Schedule
from .heft import heft
from .memheft import memheft
from .memminmin import memminmin
from .minmin import minmin
from .sufferage import memsufferage, sufferage


class Scheduler(Protocol):
    def __call__(self, graph: TaskGraph, platform: Platform) -> Schedule: ...


#: All scheduling heuristics by canonical name.
SCHEDULERS: dict[str, Callable[..., Schedule]] = {
    "heft": heft,
    "minmin": minmin,
    "sufferage": sufferage,
    "memheft": memheft,
    "memminmin": memminmin,
    "memsufferage": memsufferage,
}

#: The two memory-aware heuristics contributed by the paper (memsufferage
#: is this library's extension, see repro.scheduling.sufferage).
MEMORY_AWARE = ("memheft", "memminmin")
#: The memory-oblivious reference heuristics (the paper's comparison pair).
BASELINES = ("heft", "minmin")
#: Every memory-oblivious heuristic (unbounded-memory specialisations).
MEMORY_OBLIVIOUS = ("heft", "minmin", "sufferage")
#: Heuristics taking the engine options (``comm_policy=``, ``lazy=``) —
#: consumers (e.g. ``repro.service``) must key capability checks on these
#: tuples, not hand-maintained copies, so new registry entries are
#: advertised correctly.
ENGINE_OPTIONED = ("memheft", "memminmin", "memsufferage")


def get_scheduler(name: str) -> Callable[..., Schedule]:
    """Look up a scheduler by name (case-insensitive)."""
    try:
        return SCHEDULERS[name.lower()]
    except KeyError:
        known = ", ".join(sorted(SCHEDULERS))
        raise ValueError(f"unknown scheduler {name!r}; known: {known}") from None
