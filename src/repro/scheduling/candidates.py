"""Lazy-invalidation candidate selection for the list-scheduling loops.

The naive §5.2 selection loop rescans every available (task, class) pair
after each commit: MemMinMin and MemSufferage re-evaluate the full EST
breakdown of every ready task per step — O(n) evaluations per commit, O(n²)
per schedule — and MemHEFT re-walks its whole priority list.  PR 1's
incremental EST kernel made each re-evaluation cheap; this module removes
most re-evaluations altogether while committing **bit-identical** schedules
(pinned by the golden-schedule and lazy-equivalence property tests).

The difficulty is that EFTs are *not monotone* under commits: a commit
releases memory at future instants, which can lower another candidate's
``task_mem``/``comm_mem`` component, so a stale cached EFT is not a lower
bound of the current one and a classic stale-entry heap would silently pick
the wrong task.  :class:`MinEFTSelector` is built on two observations:

* ``lb(T) = min_c max(resource_c, precedence_c(T)) + Wmin^(c)_T`` — the
  memory-free part of the breakdown, with ``Wmin^(c) = W^(c)/max_speed(c)``
  keyed on the *fastest processor of each class* — is a lower bound of
  ``best_eft(T)`` that stays valid for the rest of the run (precedence is
  immutable once a task is ready, processor avail times only advance, no
  assignment runs faster than the class's fastest processor), so it is a
  sound *eternal* heap key: candidates whose key exceeds the best exact
  EFT found so far need not be touched at all;
* each per-class stamp — ``(touch serial, resource)`` on uniform-speed
  classes, ``(touch serial, per-processor avail tuple)`` on heterogeneous
  ones, where a per-processor finish argmin decides the breakdown — fully
  determines a candidate's per-class breakdown; the touch serial comes
  from the commit-side dirty tracking of :meth:`SchedulerState.commit`,
  which records exactly which classes each commit mutated.  An evaluation
  stamped with those values is reused verbatim until one of them moves,
  and a re-evaluation only touches the classes that actually changed.

Selection pops candidates in lower-bound order, re-evaluates each exactly
(through the incremental kernel, which serves untouched classes from its
version-keyed memo), and stops once the heap top's bound exceeds the best
exact EFT ``m`` by more than ``2*EPS``.  The naive scan's order-dependent
EPS-chain tie-break (``cand.eft < best.eft - EPS``) is reproduced exactly:
its winner provably has ``eft <= m + EPS``, and when no candidate's EFT
falls in ``(m + EPS, m + 2*EPS]`` the chain provably settles on the
lowest-index candidate of the ``<= m + EPS`` band — with the paper's
integer-valued task times the window case essentially never occurs, and
when it does the selector falls back to replaying the exact chain.

MemHEFT needs no EFT ordering at all — its selection is "first ready task
in rank order with a feasible assignment" — so :class:`RankSelector` is a
plain heap over rank positions of *ready* tasks, skipping the remaining
list's not-yet-ready prefix walks entirely.

MemSufferage's key (best minus second-best EFT) has no usable lower bound
— it can move in either direction after a commit — so
:class:`SufferageSelector` keeps version stamps only: candidates untouched
since their last evaluation are reused verbatim and the arg-max is a single
linear pass, replacing the naive loop's full re-evaluation plus
O(R log R) sort per step.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from typing import Hashable, Optional

from .._util import EPS
from .state import ESTBreakdown, SchedulerState, lower_bound_from_parts

Task = Hashable


class _Entry:
    """Cached evaluation of one ready task."""

    __slots__ = ("task", "tie", "alive", "stamps", "value", "key",
                 "breakdown", "lbparts", "bds", "cstamps")

    def __init__(self, task: Task, tie: int) -> None:
        self.task = task
        self.tie = tie
        self.alive = True
        #: (class touch serial, resource) per memory class at last evaluation.
        self.stamps: Optional[tuple] = None
        self.value: float = math.inf
        self.key: object = None  # SufferageSelector's ordering tuple
        self.breakdown: Optional[ESTBreakdown] = None
        #: Static ``(W^(c), precedence_c + W^(c))`` pair per class (``None``
        #: for classes without processors) — the memory-free lower bound of
        #: the EFT on class ``c`` is ``max(resource_c + W, prec + W)``.
        self.lbparts: Optional[tuple] = None
        #: Per-class breakdown cache (SufferageSelector).
        self.bds: Optional[list] = None
        self.cstamps: Optional[list] = None


def _state_stamp(state: SchedulerState, resources: list[float]) -> tuple:
    """Snapshot that fully determines every candidate's EST breakdown.

    Keyed per class on ``(touch serial, resource)``: the touch serial is
    bumped once per commit that actually mutated the class's profile (the
    commit-side dirty tracking of :meth:`SchedulerState.commit`), so a
    class whose component is unchanged has a bit-identical profile *and*
    an unchanged resource floor — every cached per-class breakdown stamped
    with it can be reused verbatim.

    A *uniform-speed* class is fully described by its ``min(avail)``
    resource floor; a heterogeneous class's breakdown depends on which
    individual processor wins the per-finish-time argmin, so its stamp
    component carries the whole per-processor avail tuple (the
    touched-proc view: any commit that advanced any of the class's
    processors — including direct ``avail`` mutations by branching
    searches — changes the stamp).
    """
    touch = state.class_touch_serial
    avail = state.avail
    uniform = state.platform.uniform_classes
    out = []
    for m in state.memories:
        ci = m.index
        if uniform[ci]:
            out.append((touch[ci], resources[ci]))
        else:
            procs = state.platform.procs(m)
            out.append((touch[ci],
                        tuple(avail[p] for p in procs)))
    return tuple(out)


class MinEFTSelector:
    """Lazy heap returning the MemMinMin winner: the available task whose
    best-class EFT survives the naive scan's EPS-chain, bit-identically.

    ``order`` maps each task to its stable tie-break index (the topological
    position the naive scan sorts by).
    """

    def __init__(self, state: SchedulerState, order: dict[Task, int]) -> None:
        self.state = state
        self.order = order
        self._heap: list[tuple[float, int, _Entry]] = []
        self._live: dict[Task, _Entry] = {}

    def __len__(self) -> int:
        return len(self._live)

    def push(self, task: Task) -> None:
        """Register a task that just became ready.  The initial key is the
        trivial lower bound 0.0: the entry gets evaluated — and re-keyed
        with its real bound — on the next :meth:`select`."""
        entry = _Entry(task, self.order[task])
        self._live[task] = entry
        heappush(self._heap, (0.0, entry.tie, entry))

    def remove(self, task: Task) -> None:
        """Drop a committed task (its heap entry dies lazily)."""
        entry = self._live.pop(task, None)
        if entry is not None:
            entry.alive = False

    def _lower_bound(self, entry: _Entry, resources: list[float]) -> float:
        """The entry's eternal heap key, from its cached static parts (see
        :meth:`SchedulerState.est_lower_bound` for why it is sound)."""
        parts = entry.lbparts
        if parts is None:
            parts = entry.lbparts = \
                self.state.est_lower_bound_parts(entry.task)
        return lower_bound_from_parts(parts, resources)

    def _best_cached(self, entry: _Entry, stamp: tuple) -> Optional[ESTBreakdown]:
        """:meth:`SchedulerState.best_est`, but re-evaluating only the
        classes whose stamp component moved since the entry's last
        evaluation (commit-side dirty tracking): clean classes reuse their
        cached :class:`ESTBreakdown` object outright.  Same iteration
        order and EPS comparison as ``best_est``, so the choice is
        bit-identical."""
        state = self.state
        memories = state.memories
        bds = entry.bds
        if bds is None:
            bds = entry.bds = [None] * len(memories)
            entry.cstamps = [None] * len(memories)
        cstamps = entry.cstamps
        best: Optional[ESTBreakdown] = None
        for ci, memory in enumerate(memories):
            if cstamps[ci] != stamp[ci]:
                bds[ci] = state.est(entry.task, memory)
                cstamps[ci] = stamp[ci]
            bd = bds[ci]
            if not bd.feasible:
                continue
            if best is None or bd.eft < best.eft - EPS:
                best = bd
        return best

    def _chain_fallback(self) -> Optional[ESTBreakdown]:
        """Replay the naive scan's exact EPS-chain over all ready tasks
        (only reached when an EFT lands in the ``(m+EPS, m+2*EPS]``
        window that makes the chain genuinely order-dependent)."""
        state = self.state
        best: Optional[ESTBreakdown] = None
        for task in sorted(self._live, key=self.order.__getitem__):
            cand = state.best_est(task)
            if cand is None:
                continue
            if best is None or cand.eft < best.eft - EPS:
                best = cand
        return best

    def select(self) -> Optional[ESTBreakdown]:
        """The candidate the naive scan would commit, or ``None`` when no
        available task fits within the memory bounds."""
        state = self.state
        heap = self._heap
        resources = state.class_resources()
        stamp = _state_stamp(state, resources)
        window = 2.0 * EPS
        m = math.inf
        popped: list[_Entry] = []
        while heap:
            key, _tie, entry = heap[0]
            if not entry.alive:
                heappop(heap)
                continue
            if key > m + window:
                break
            heappop(heap)
            if entry.stamps != stamp:
                bd = self._best_cached(entry, stamp)
                entry.breakdown = bd
                entry.value = bd.eft if bd is not None else math.inf
                entry.stamps = stamp
            popped.append(entry)
            if entry.value < m:
                m = entry.value

        if math.isinf(m):
            for entry in popped:
                heappush(heap, (self._lower_bound(entry, resources),
                                entry.tie, entry))
            return None

        lead: Optional[_Entry] = None  # lowest-index entry with eft <= m+EPS
        n_band = 0
        in_window = False
        for entry in popped:
            if entry.value <= m + EPS:
                n_band += 1
                if lead is None or entry.tie < lead.tie:
                    lead = entry
            elif entry.value <= m + window:
                in_window = True
        if n_band == 1 or not in_window:
            choice = lead.breakdown
        else:
            choice = self._chain_fallback()
        assert choice is not None  # m is finite, so some candidate fits
        for entry in popped:
            # Reinsert with a refreshed (tighter) eternal lower bound; the
            # winner is reinserted too and dies lazily on remove().
            heappush(heap, (self._lower_bound(entry, resources),
                            entry.tie, entry))
        return choice


class RankSelector:
    """MemHEFT's selection: the first *ready* task in rank order with a
    feasible assignment, served from a heap over rank positions instead of
    re-walking the remaining priority list each step.

    The winner is popped for good by :meth:`select` (every selected
    candidate is committed by the heuristic); infeasible tasks skipped on
    the way are pushed back and retried next step, exactly like the naive
    front-to-back rescan."""

    def __init__(self, state: SchedulerState, position: dict[Task, int]) -> None:
        self.state = state
        self.position = position
        self._heap: list[tuple[int, Task]] = []

    def push(self, task: Task) -> None:
        heappush(self._heap, (self.position[task], task))

    def remove(self, task: Task) -> None:
        """No-op: the winner already left the heap in :meth:`select`."""

    def select(self) -> Optional[ESTBreakdown]:
        state = self.state
        heap = self._heap
        skipped: list[tuple[int, Task]] = []
        choice: Optional[ESTBreakdown] = None
        while heap:
            item = heappop(heap)
            bd = state.best_est(item[1])
            if bd is not None:
                choice = bd
                break
            skipped.append(item)
        for item in skipped:
            heappush(heap, item)
        return choice


class SufferageSelector:
    """MemSufferage's selection with per-candidate dirty stamps.

    Candidates whose stamp — (class touch serial, class resource) for every
    memory class — is unchanged since their last evaluation are reused
    verbatim; the rest are re-evaluated with the exact naive logic.  The
    arg-max over ``(-sufferage, preferred_eft, index)`` keys is one linear
    pass (the key embeds the stable task index, so iteration order cannot
    leak into the result)."""

    def __init__(self, state: SchedulerState, order: dict[Task, int]) -> None:
        self.state = state
        self.order = order
        self._live: dict[Task, _Entry] = {}

    def __len__(self) -> int:
        return len(self._live)

    def push(self, task: Task) -> None:
        self._live[task] = _Entry(task, self.order[task])

    def remove(self, task: Task) -> None:
        self._live.pop(task, None)

    def _evaluate(self, entry: _Entry, stamp: tuple) -> None:
        """Refresh the entry's per-class breakdowns (only the classes whose
        stamp moved) and rebuild its key exactly as the naive scan does."""
        state = self.state
        memories = state.memories
        if entry.bds is None:
            entry.bds = [None] * len(memories)
            entry.cstamps = [None] * len(memories)
        bds, cstamps = entry.bds, entry.cstamps
        for ci, memory in enumerate(memories):
            if cstamps[ci] != stamp[ci]:
                bds[ci] = state.est(entry.task, memory)
                cstamps[ci] = stamp[ci]
        feasible = [bd for bd in bds if bd.feasible]
        if not feasible:
            entry.key = None
            entry.breakdown = None
            return
        feasible.sort(key=lambda bd: bd.eft)
        preferred = feasible[0]
        if len(feasible) >= 2:
            sufferage = feasible[1].eft - feasible[0].eft
        else:
            sufferage = math.inf  # only one memory can take it: urgent
        entry.key = (-sufferage, preferred.eft, entry.tie)
        entry.breakdown = preferred

    def select(self) -> Optional[ESTBreakdown]:
        state = self.state
        stamp = _state_stamp(state, state.class_resources())
        best_key = None
        best_bd: Optional[ESTBreakdown] = None
        for entry in self._live.values():
            if entry.stamps != stamp:
                self._evaluate(entry, stamp)
                entry.stamps = stamp
            key = entry.key
            if key is None:
                continue
            if best_key is None or key < best_key:
                best_key = key
                best_bd = entry.breakdown
        return best_bd
