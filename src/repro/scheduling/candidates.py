"""Lazy-invalidation candidate selection for the list-scheduling loops.

The naive §5.2 selection loop rescans every available (task, class) pair
after each commit: MemMinMin and MemSufferage re-evaluate the full EST
breakdown of every ready task per step — O(n) evaluations per commit, O(n²)
per schedule — and MemHEFT re-walks its whole priority list.  PR 1's
incremental EST kernel made each re-evaluation cheap; this module removes
most re-evaluations altogether while committing **bit-identical** schedules
(pinned by the golden-schedule and lazy-equivalence property tests).

The difficulty is that EFTs are *not monotone* under commits: a commit
releases memory at future instants, which can lower another candidate's
``task_mem``/``comm_mem`` component, so a stale cached EFT is not a lower
bound of the current one and a classic stale-entry heap would silently pick
the wrong task.  :class:`MinEFTSelector` is built on two observations:

* ``lb(T) = min_c max(resource_c, precedence_c(T)) + Wmin^(c)_T`` — the
  memory-free part of the breakdown, with ``Wmin^(c) = W^(c)/max_speed(c)``
  keyed on the *fastest processor of each class* — is a lower bound of
  ``best_eft(T)`` that stays valid for the rest of the run (precedence is
  immutable once a task is ready, processor avail times only advance, no
  assignment runs faster than the class's fastest processor), so it is a
  sound *eternal* heap key: candidates whose key exceeds the best exact
  EFT found so far need not be touched at all;
* each per-class stamp — ``(touch serial, resource)`` on uniform-speed
  classes, ``(touch serial, per-processor avail tuple)`` on heterogeneous
  ones, where a per-processor finish argmin decides the breakdown — fully
  determines a candidate's per-class breakdown; the touch serial comes
  from the commit-side dirty tracking of :meth:`SchedulerState.commit`,
  which records exactly which classes each commit mutated.

**Scoped invalidation.**  A moved stamp component does not necessarily
demand a full kernel re-evaluation.  Per (candidate, class) the selectors
distinguish three cases:

* *reuse* — the stamp component is unchanged: the cached
  :class:`ESTBreakdown` is returned outright;
* *refresh* — the class's touch serial is unchanged (only processor avail
  moved) **or** its capacity is infinite (the staircase queries of an
  unbounded profile are identically zero, so profile mutations cannot
  affect the breakdown): the memory components are reused verbatim and
  only the O(procs) resource half is recomputed — bit-identical to a full
  evaluation because the kernel itself computes
  ``est = max(resource, floor)`` from exactly these parts;
* *full* — the class's finite-capacity profile was mutated since the last
  evaluation: only then does the candidate go back through the EST kernel
  (and for a vectorized backend, all such candidates of a class go through
  it as **one batch**).

A commit therefore invalidates a candidate's class only when it touched
that class's *finite* memory profile — commits in unrelated regions of the
DAG (or any commit at all on unbounded classes) cost at most an O(1)
resource refresh, replacing the former coarse rule that re-evaluated every
candidate of every touched class.  ``dag_scoped=False`` keeps the coarse
rule for A/B benchmarks; :class:`SelectorStats` counts the three outcomes
either way.

Selection pops candidates in lower-bound order, re-evaluates each exactly
(through the incremental kernel, which serves untouched classes from its
version-keyed memo), and stops once the heap top's bound exceeds the best
exact EFT ``m`` by more than ``2*EPS``.  With a vectorized kernel the
stale entries popped on the way are accumulated and flushed through the
batch kernel in chunks of ``batch_cutoff``; the chunking may pop a few
entries beyond the scalar stopping frontier, which is harmless — heap keys
are popped in nondecreasing order, so any extra entry has
``value >= key > m + 2*EPS`` and can affect neither the minimum, the band,
nor the window test below.  The naive scan's order-dependent EPS-chain
tie-break (``cand.eft < best.eft - EPS``) is reproduced exactly: its
winner provably has ``eft <= m + EPS``, and when no candidate's EFT falls
in ``(m + EPS, m + 2*EPS]`` the chain provably settles on the lowest-index
candidate of the ``<= m + EPS`` band — with the paper's integer-valued
task times the window case essentially never occurs, and when it does the
selector falls back to replaying the exact chain.

MemHEFT needs no EFT ordering at all — its selection is "first ready task
in rank order with a feasible assignment" — so :class:`RankSelector` is a
plain heap over rank positions of *ready* tasks, skipping the remaining
list's not-yet-ready prefix walks entirely.

MemSufferage's key (best minus second-best EFT) has no usable lower bound
— it can move in either direction after a commit — so
:class:`SufferageSelector` keeps per-class stamps only: candidate classes
untouched since their last evaluation are reused (or refreshed) and the
arg-max is a single linear pass, replacing the naive loop's full
re-evaluation plus O(R log R) sort per step.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from typing import Hashable, Optional

from .._util import EPS
from .state import ESTBreakdown, SchedulerState, lower_bound_from_parts

Task = Hashable


class SelectorStats:
    """Per-(candidate, class) outcome counters of the scoped invalidation
    (diagnostics; the invalidation benchmark reads them)."""

    __slots__ = ("n_full_evals", "n_refreshes", "n_reused")

    def __init__(self) -> None:
        self.n_full_evals = 0
        self.n_refreshes = 0
        self.n_reused = 0

    def as_dict(self) -> dict[str, int]:
        return {"n_full_evals": self.n_full_evals,
                "n_refreshes": self.n_refreshes,
                "n_reused": self.n_reused}


class _Entry:
    """Cached evaluation of one ready task."""

    __slots__ = ("task", "tie", "alive", "stamps", "value", "key",
                 "breakdown", "lbparts", "bds", "cstamps")

    def __init__(self, task: Task, tie: int) -> None:
        self.task = task
        self.tie = tie
        self.alive = True
        #: Full stamp tuple at last evaluation (all classes clean marker).
        self.stamps: Optional[tuple] = None
        self.value: float = math.inf
        self.key: object = None  # SufferageSelector's ordering tuple
        self.breakdown: Optional[ESTBreakdown] = None
        #: Static ``(Wmin^(c), precedence_c + Wmin^(c))`` pair per class
        #: (``None`` for classes without processors) — the memory-free
        #: lower bound of the class-c EFT is ``max(resource_c + W, prec + W)``.
        self.lbparts: Optional[tuple] = None
        #: Per-class breakdown cache + the stamp component each was
        #: evaluated under.
        self.bds: Optional[list] = None
        self.cstamps: Optional[list] = None


def _state_stamp(state: SchedulerState, resources: list[float]) -> tuple:
    """Snapshot that fully determines every candidate's EST breakdown.

    Keyed per class on ``(touch serial, resource)``: the touch serial is
    bumped once per commit that actually mutated the class's profile (the
    commit-side dirty tracking of :meth:`SchedulerState.commit`), so a
    class whose component is unchanged has a bit-identical profile *and*
    an unchanged resource floor — every cached per-class breakdown stamped
    with it can be reused verbatim.

    A *uniform-speed* class is fully described by its ``min(avail)``
    resource floor; a heterogeneous class's breakdown depends on which
    individual processor wins the per-finish-time argmin, so its stamp
    component carries the whole per-processor avail tuple (the
    touched-proc view: any commit that advanced any of the class's
    processors — including direct ``avail`` mutations by branching
    searches — changes the stamp).
    """
    touch = state.class_touch_serial
    avail = state.avail
    uniform = state.platform.uniform_classes
    out = []
    for m in state.memories:
        ci = m.index
        if uniform[ci]:
            out.append((touch[ci], resources[ci]))
        else:
            procs = state.platform.procs(m)
            out.append((touch[ci],
                        tuple(avail[p] for p in procs)))
    return tuple(out)


def _refresh_breakdown(state: SchedulerState, bd: ESTBreakdown,
                       memory) -> ESTBreakdown:
    """Re-derive a cached breakdown after a resource-only change: the
    memory and precedence components are unchanged by assumption (profile
    serial unmoved, or infinite capacity), so only the resource/processor
    half re-runs — the exact arithmetic the kernel itself would perform
    with identical parts, hence bit-identical to a full evaluation."""
    w = state._flat.times[state._row[bd.task]][memory.index]
    resource, est, duration, proc = state._resource_choice(
        memory, bd.precedence, bd.task_mem, bd.comm_mem, w)
    eft = est + duration if math.isfinite(est) else math.inf
    return ESTBreakdown(bd.task, memory, resource, bd.precedence,
                        bd.task_mem, bd.comm_mem, bd.cmax, est, eft,
                        bd.comm_fit, duration, proc)


def _update_entries(state: SchedulerState, entries: list[_Entry],
                    stamp: tuple, stats: SelectorStats,
                    dag_scoped: bool, inf_cap: tuple) -> None:
    """Bring every entry's per-class breakdown cache up to ``stamp``,
    classifying each (entry, class) pair as reuse / refresh / full and
    routing the full evaluations of one class through the kernel's batch
    entry point (one vectorized pass on array backends)."""
    memories = state.memories
    kernel = state.kernel
    for e in entries:
        if e.bds is None:
            e.bds = [None] * len(memories)
            e.cstamps = [None] * len(memories)
    for ci, memory in enumerate(memories):
        comp = stamp[ci]
        serial = comp[0]
        full: list[_Entry] = []
        for e in entries:
            old = e.cstamps[ci]
            if old == comp:
                stats.n_reused += 1
                continue
            if (dag_scoped and old is not None
                    and (old[0] == serial or inf_cap[ci])):
                e.bds[ci] = _refresh_breakdown(state, e.bds[ci], memory)
                e.cstamps[ci] = comp
                stats.n_refreshes += 1
            else:
                full.append(e)
        if not full:
            continue
        stats.n_full_evals += len(full)
        if kernel.vectorized and len(full) >= kernel.batch_cutoff:
            bds = kernel.evaluate_class_batch(
                state, [e.task for e in full], memory)
            for e, bd in zip(full, bds):
                e.bds[ci] = bd
                e.cstamps[ci] = comp
        else:
            for e in full:
                e.bds[ci] = state.est(e.task, memory)
                e.cstamps[ci] = comp


def _best_of(entry: _Entry) -> Optional[ESTBreakdown]:
    """The §5.1 memory-selection EPS-chain of
    :meth:`SchedulerState.best_est`, replayed over the entry's per-class
    breakdown cache in class order — bit-identical choice."""
    best: Optional[ESTBreakdown] = None
    for bd in entry.bds:
        if not bd.feasible:
            continue
        if best is None or bd.eft < best.eft - EPS:
            best = bd
    return best


class MinEFTSelector:
    """Lazy heap returning the MemMinMin winner: the available task whose
    best-class EFT survives the naive scan's EPS-chain, bit-identically.

    ``order`` maps each task to its stable tie-break index (the topological
    position the naive scan sorts by).  ``dag_scoped=False`` reverts to the
    coarse invalidation rule (every touched class fully re-evaluated) for
    A/B comparisons.
    """

    def __init__(self, state: SchedulerState, order: dict[Task, int],
                 dag_scoped: bool = True) -> None:
        self.state = state
        self.order = order
        self.dag_scoped = dag_scoped
        self.stats = SelectorStats()
        self._inf_cap = tuple(math.isinf(c)
                              for c in state.platform.capacities)
        self._heap: list[tuple[float, int, _Entry]] = []
        self._live: dict[Task, _Entry] = {}

    def __len__(self) -> int:
        return len(self._live)

    def push(self, task: Task) -> None:
        """Register a task that just became ready.  The initial key is the
        trivial lower bound 0.0: the entry gets evaluated — and re-keyed
        with its real bound — on the next :meth:`select`."""
        entry = _Entry(task, self.order[task])
        self._live[task] = entry
        heappush(self._heap, (0.0, entry.tie, entry))

    def remove(self, task: Task) -> None:
        """Drop a committed task (its heap entry dies lazily)."""
        entry = self._live.pop(task, None)
        if entry is not None:
            entry.alive = False

    def _lower_bound(self, entry: _Entry, resources: list[float]) -> float:
        """The entry's eternal heap key, from its cached static parts (see
        :meth:`SchedulerState.est_lower_bound` for why it is sound)."""
        parts = entry.lbparts
        if parts is None:
            parts = entry.lbparts = \
                self.state.est_lower_bound_parts(entry.task)
        return lower_bound_from_parts(parts, resources)

    def _chain_fallback(self) -> Optional[ESTBreakdown]:
        """Replay the naive scan's exact EPS-chain over all ready tasks
        (only reached when an EFT lands in the ``(m+EPS, m+2*EPS]``
        window that makes the chain genuinely order-dependent)."""
        state = self.state
        best: Optional[ESTBreakdown] = None
        for task in sorted(self._live, key=self.order.__getitem__):
            cand = state.best_est(task)
            if cand is None:
                continue
            if best is None or cand.eft < best.eft - EPS:
                best = cand
        return best

    def select(self) -> Optional[ESTBreakdown]:
        """The candidate the naive scan would commit, or ``None`` when no
        available task fits within the memory bounds."""
        state = self.state
        heap = self._heap
        resources = state.class_resources()
        stamp = _state_stamp(state, resources)
        window = 2.0 * EPS
        kernel = state.kernel
        cutoff = kernel.batch_cutoff if kernel.vectorized else 1
        m = math.inf
        popped: list[_Entry] = []
        pending: list[_Entry] = []

        def flush() -> None:
            nonlocal m
            _update_entries(state, pending, stamp, self.stats,
                            self.dag_scoped, self._inf_cap)
            for entry in pending:
                bd = _best_of(entry)
                entry.breakdown = bd
                entry.value = bd.eft if bd is not None else math.inf
                entry.stamps = stamp
                popped.append(entry)
                if entry.value < m:
                    m = entry.value
            pending.clear()

        while heap:
            key, _tie, entry = heap[0]
            if not entry.alive:
                heappop(heap)
                continue
            if key > m + window:
                if pending:
                    # m may drop once the chunk lands; re-test afterwards.
                    flush()
                    continue
                break
            heappop(heap)
            if entry.stamps == stamp:
                popped.append(entry)
                if entry.value < m:
                    m = entry.value
            else:
                pending.append(entry)
                if len(pending) >= cutoff:
                    flush()
        if pending:
            flush()

        if math.isinf(m):
            for entry in popped:
                heappush(heap, (self._lower_bound(entry, resources),
                                entry.tie, entry))
            return None

        lead: Optional[_Entry] = None  # lowest-index entry with eft <= m+EPS
        n_band = 0
        in_window = False
        for entry in popped:
            if entry.value <= m + EPS:
                n_band += 1
                if lead is None or entry.tie < lead.tie:
                    lead = entry
            elif entry.value <= m + window:
                in_window = True
        if n_band == 1 or not in_window:
            choice = lead.breakdown
        else:
            choice = self._chain_fallback()
        assert choice is not None  # m is finite, so some candidate fits
        for entry in popped:
            # Reinsert with a refreshed (tighter) eternal lower bound; the
            # winner is reinserted too and dies lazily on remove().
            heappush(heap, (self._lower_bound(entry, resources),
                            entry.tie, entry))
        return choice


class RankSelector:
    """MemHEFT's selection: the first *ready* task in rank order with a
    feasible assignment, served from a heap over rank positions instead of
    re-walking the remaining priority list each step.

    The winner is popped for good by :meth:`select` (every selected
    candidate is committed by the heuristic); infeasible tasks skipped on
    the way are pushed back and retried next step, exactly like the naive
    front-to-back rescan."""

    def __init__(self, state: SchedulerState, position: dict[Task, int]) -> None:
        self.state = state
        self.position = position
        #: Rank selection has no breakdown cache, so every probed task is
        #: a full evaluation — counted for parity with the lazy selectors
        #: (the obs layer folds these into its selector metrics).
        self.stats = SelectorStats()
        self._heap: list[tuple[int, Task]] = []

    def push(self, task: Task) -> None:
        heappush(self._heap, (self.position[task], task))

    def remove(self, task: Task) -> None:
        """No-op: the winner already left the heap in :meth:`select`."""

    def select(self) -> Optional[ESTBreakdown]:
        state = self.state
        heap = self._heap
        skipped: list[tuple[int, Task]] = []
        choice: Optional[ESTBreakdown] = None
        while heap:
            item = heappop(heap)
            self.stats.n_full_evals += 1
            bd = state.best_est(item[1])
            if bd is not None:
                choice = bd
                break
            skipped.append(item)
        for item in skipped:
            heappush(heap, item)
        return choice


class SufferageSelector:
    """MemSufferage's selection with per-candidate scoped invalidation.

    Candidate classes whose stamp component — (class touch serial, class
    resource) — is unchanged since their last evaluation are reused
    verbatim, resource-only changes are refreshed in O(1), and only
    finite-capacity profile mutations trigger kernel re-evaluations
    (batched per class on vectorized backends).  The arg-max over
    ``(-sufferage, preferred_eft, index)`` keys is one linear pass (the
    key embeds the stable task index, so iteration order cannot leak into
    the result)."""

    def __init__(self, state: SchedulerState, order: dict[Task, int],
                 dag_scoped: bool = True) -> None:
        self.state = state
        self.order = order
        self.dag_scoped = dag_scoped
        self.stats = SelectorStats()
        self._inf_cap = tuple(math.isinf(c)
                              for c in state.platform.capacities)
        self._live: dict[Task, _Entry] = {}

    def __len__(self) -> int:
        return len(self._live)

    def push(self, task: Task) -> None:
        self._live[task] = _Entry(task, self.order[task])

    def remove(self, task: Task) -> None:
        self._live.pop(task, None)

    def _rebuild_key(self, entry: _Entry) -> None:
        """Rebuild the entry's ordering key from its (fresh) per-class
        breakdowns, exactly as the naive scan does."""
        feasible = [bd for bd in entry.bds if bd.feasible]
        if not feasible:
            entry.key = None
            entry.breakdown = None
            return
        feasible.sort(key=lambda bd: bd.eft)
        preferred = feasible[0]
        if len(feasible) >= 2:
            sufferage = feasible[1].eft - feasible[0].eft
        else:
            sufferage = math.inf  # only one memory can take it: urgent
        entry.key = (-sufferage, preferred.eft, entry.tie)
        entry.breakdown = preferred

    def select(self) -> Optional[ESTBreakdown]:
        state = self.state
        stamp = _state_stamp(state, state.class_resources())
        stale = [e for e in self._live.values() if e.stamps != stamp]
        if stale:
            _update_entries(state, stale, stamp, self.stats,
                            self.dag_scoped, self._inf_cap)
            for entry in stale:
                self._rebuild_key(entry)
                entry.stamps = stamp
        best_key = None
        best_bd: Optional[ESTBreakdown] = None
        for entry in self._live.values():
            key = entry.key
            if key is None:
                continue
            if best_key is None or key < best_key:
                best_key = key
                best_bd = entry.breakdown
        return best_bd
