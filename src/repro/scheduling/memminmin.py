"""MemMinMin — memory-aware MinMin (paper Algorithm 2).

No static priority: at each step the heuristic evaluates every *available*
task (all parents scheduled) on both memories and commits the pair
``(task, memory)`` with the minimum EFT.  Raises
:class:`InfeasibleScheduleError` when no available task fits (the ``Error``
branch of Algorithm 2).
"""

from __future__ import annotations

import math
from typing import Hashable

from .._util import EPS
from ..core.graph import TaskGraph
from ..core.platform import Platform
from ..core.schedule import Schedule
from .state import ESTBreakdown, InfeasibleScheduleError, SchedulerState

Task = Hashable


def memminmin(graph: TaskGraph, platform: Platform, *,
              comm_policy: str = "late") -> Schedule:
    """Schedule ``graph`` on ``platform`` with MemMinMin.

    ``comm_policy``: ``"late"`` (paper) or ``"eager"`` (ablation).
    """
    state = SchedulerState(graph, platform, comm_policy=comm_policy)
    # Stable task indices make the (unspecified) tie-break deterministic.
    index = {t: k for k, t in enumerate(graph.topological_order())}
    available: set[Task] = set(graph.roots())

    while available:
        best: ESTBreakdown | None = None
        for task in sorted(available, key=index.__getitem__):
            cand = state.best_est(task)
            if cand is None:
                continue
            if best is None or cand.eft < best.eft - EPS:
                best = cand
        if best is None:
            raise InfeasibleScheduleError(
                "MemMinMin: no available task fits within the memory bounds "
                f"({len(available)} available, "
                f"capacities={list(platform.capacities)})"
            )
        state.commit(best)
        available.discard(best.task)
        available.update(state.pop_newly_ready())

    if not state.done:  # pragma: no cover - readiness propagation guarantees this
        raise InfeasibleScheduleError("MemMinMin: tasks remain but none is available")
    return state.finalize("memminmin")
