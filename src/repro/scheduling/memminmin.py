"""MemMinMin — memory-aware MinMin (paper Algorithm 2).

No static priority: at each step the heuristic evaluates every *available*
task (all parents scheduled) on both memories and commits the pair
``(task, memory)`` with the minimum EFT.  Raises
:class:`InfeasibleScheduleError` when no available task fits (the ``Error``
branch of Algorithm 2).

By default the per-step argmin is served by the lazy candidate heap of
:mod:`repro.scheduling.candidates` instead of a full rescan of the
available set; ``lazy=False`` keeps the naive scan, and both paths take
decision-for-decision identical schedules
(``tests/scheduling/test_lazy_selection.py``).
"""

from __future__ import annotations

from typing import Hashable

from .. import obs
from .._util import EPS
from ..core.graph import TaskGraph
from ..core.platform import Platform
from ..core.schedule import Schedule
from .candidates import MinEFTSelector
from .kernel import KernelLike
from .state import ESTBreakdown, InfeasibleScheduleError, SchedulerState

Task = Hashable


def memminmin(graph: TaskGraph, platform: Platform, *,
              comm_policy: str = "late", lazy: bool = True,
              backend: KernelLike = None,
              dag_scoped: bool = True) -> Schedule:
    """Schedule ``graph`` on ``platform`` with MemMinMin.

    ``comm_policy``: ``"late"`` (paper) or ``"eager"`` (ablation).
    ``lazy``: serve the per-step argmin from the lazy candidate heap
    (default) or rescan every available task (the reference path).
    ``backend`` picks the EST kernel backend
    (:func:`repro.scheduling.kernel.resolve_backend`); ``dag_scoped=False``
    reverts the selector to coarse per-class invalidation (A/B benchmarks).
    """
    state = SchedulerState(graph, platform, comm_policy=comm_policy,
                           backend=backend)
    # Stable task indices make the (unspecified) tie-break deterministic.
    index = {t: k for k, t in enumerate(graph.topological_order())}

    if lazy:
        selector = MinEFTSelector(state, index, dag_scoped=dag_scoped)
        for task in graph.roots():
            selector.push(task)
        st = obs.active()
        if st is not None:
            from .instrument import observed_lazy_run
            with obs.span("memminmin", n_tasks=graph.n_tasks):
                return observed_lazy_run(
                    state, selector, "memminmin", st,
                    lambda n_left: (
                        "MemMinMin: no available task fits within the "
                        f"memory bounds ({n_left} available, "
                        f"capacities={list(platform.capacities)})"))
        while len(selector):
            best = selector.select()
            if best is None:
                raise InfeasibleScheduleError(
                    "MemMinMin: no available task fits within the memory "
                    f"bounds ({len(selector)} available, "
                    f"capacities={list(platform.capacities)})"
                )
            state.commit(best)
            selector.remove(best.task)
            for task in state.pop_newly_ready():
                selector.push(task)
        return state.finalize("memminmin")

    available: set[Task] = set(graph.roots())
    while available:
        best: ESTBreakdown | None = None
        for task in sorted(available, key=index.__getitem__):
            cand = state.best_est(task)
            if cand is None:
                continue
            if best is None or cand.eft < best.eft - EPS:
                best = cand
        if best is None:
            raise InfeasibleScheduleError(
                "MemMinMin: no available task fits within the memory bounds "
                f"({len(available)} available, "
                f"capacities={list(platform.capacities)})"
            )
        state.commit(best)
        available.discard(best.task)
        available.update(state.pop_newly_ready())

    if not state.done:  # pragma: no cover - readiness propagation guarantees this
        raise InfeasibleScheduleError("MemMinMin: tasks remain but none is available")
    return state.finalize("memminmin")
