/* Compiled EST kernel: the numeric core of the §5.1 machinery in C.
 *
 * Built on demand by repro/scheduling/_cc.py with the system C toolchain
 * (cc -O2 -shared) and loaded through ctypes; repro.scheduling.kernel's
 * CompiledKernel marshals flat numpy arrays in and out.  No CPython API:
 * the library is plain C over raw pointers, so it needs no Python headers
 * and builds in under a second anywhere a C compiler exists.
 *
 * Bit-identity contract (the same one the numpy backend honours — see the
 * module docstring of repro/scheduling/kernel.py):
 *
 * - every float operation replays the scalar kernel's arithmetic in the
 *   same order: the precedence gather is the order-dependent sequential
 *   sum over the CSR parent edges, `earliest_fit` uses the identical
 *   `> (capacity - need) + EPS` predicate, and the uniform/heterogeneous
 *   EST maxima and the per-processor finish-time tie chain are sequential
 *   comparisons, never reductions that could reassociate;
 * - compiled with -ffp-contract=off (no FMA contraction) and SSE2/NEON
 *   doubles (no x87 excess precision), so C doubles behave exactly like
 *   CPython floats;
 * - ties in max/argmin resolve to the same operand the Python code keeps
 *   (first operand on max ties, earlier processor index then later avail
 *   on finish ties).
 */

#include <math.h>
#include <stdint.h>

#define EPS 1e-9

/* earliest t such that free(t') >= need for all t' >= t, against the
 * staircase (xs, sm) where sm[j] = max(vals[j:]) is the non-increasing
 * suffix-max of the used-memory segment values.  Replays
 * MemoryProfile.earliest_fit (not_before = 0) exactly: the rightmost
 * segment with value > (cap - need) + EPS is the rightmost j with
 * sm[j] > bound, i.e. the end of the prefix {j : sm[j] > bound}. */
static double earliest_fit(double need, double cap, int64_t nseg,
                           const double *xs, const double *sm)
{
    if (need <= EPS)
        return 0.0;
    if (need > cap + EPS)
        return INFINITY;
    if (isinf(cap))
        return 0.0;
    double bound = (cap - need) + EPS;
    if (!(sm[0] > bound))
        return 0.0;
    int64_t lo = 0, hi = nseg - 1; /* invariant: sm[lo] > bound */
    while (lo < hi) {
        int64_t mid = lo + (hi - lo + 1) / 2;
        if (sm[mid] > bound)
            lo = mid;
        else
            hi = mid - 1;
    }
    if (lo == nseg - 1)
        return INFINITY; /* tail value itself exceeds the threshold */
    return xs[lo + 1];
}

/* One (candidate batch, memory class) evaluation: every ESTBreakdown
 * column for B ready tasks on class `cls`, written into the o_* arrays.
 *
 * rows        — flat-graph row index per candidate
 * parent_*    — the FlatGraph CSR parent arrays
 * out_size    — per-row total output size
 * times       — row-major (n_tasks x k) per-class execution times
 * finish      — per-row finish time of committed tasks
 * memidx      — per-row memory-class index of committed tasks (-1 = none)
 * nseg/xs/sm  — the class profile staircase (ignored when cap is inf)
 * uniform     — 1 when every processor of the class shares one speed
 * class_resource / max_speed — min(avail) and fastest speed (uniform path)
 * procs/n_procs/avail/speeds — the heterogeneous finish-choice inputs
 */
void est_eval_class_batch(
    int64_t B, const int64_t *rows, int64_t cls, int64_t k,
    const int64_t *parent_ptr, const int64_t *parent_row,
    const double *parent_comm, const double *parent_size,
    const double *out_size, const double *times,
    const double *finish, const int64_t *memidx,
    int64_t nseg, const double *xs, const double *sm, double cap,
    int64_t uniform, double class_resource, double max_speed,
    int64_t n_procs, const int64_t *procs, const double *avail,
    const double *speeds,
    double *o_resource, double *o_prec, double *o_task_mem,
    double *o_comm_mem, double *o_cmax, double *o_est, double *o_eft,
    double *o_comm_fit, double *o_dur, int64_t *o_proc)
{
    for (int64_t b = 0; b < B; b++) {
        int64_t row = rows[b];

        /* precedence gather: sequential max/sum over the parent edges in
         * CSR order — the order-dependent `cross += size` accumulation
         * that keeps all backends bit-identical. */
        double prec = 0.0, cmax = 0.0, cross = 0.0;
        for (int64_t e = parent_ptr[row]; e < parent_ptr[row + 1]; e++) {
            int64_t j = parent_row[e];
            double f = finish[j];
            double c = parent_comm[e];
            if (memidx[j] == cls) {
                if (f > prec)
                    prec = f;
            } else {
                double late = f + c;
                if (late > prec)
                    prec = late;
                if (c > cmax)
                    cmax = c;
                cross += parent_size[e];
            }
        }

        double need = cross + out_size[row];
        double task_mem = earliest_fit(need, cap, nseg, xs, sm);
        double comm_fit = 0.0, comm_mem = 0.0;
        if (cross > 0.0 || cmax > 0.0) {
            comm_fit = earliest_fit(cross, cap, nseg, xs, sm);
            comm_mem = comm_fit + cmax;
        }

        double w = times[row * k + cls];
        double resource, est, dur;
        int64_t proc = -1;
        if (uniform) {
            /* est = max(resource, precedence, task_mem, comm_mem) */
            resource = class_resource;
            est = resource;
            if (prec > est)
                est = prec;
            if (task_mem > est)
                est = task_mem;
            if (comm_mem > est)
                est = comm_mem;
            dur = w / max_speed;
        } else {
            /* the exact tie chain of SchedulerState._finish_choice,
             * replayed in processor-index order */
            double floor_ = prec;
            if (task_mem > floor_)
                floor_ = task_mem;
            if (comm_mem > floor_)
                floor_ = comm_mem;
            double best_finish = INFINITY, best_avail = -INFINITY;
            double best_dur = INFINITY;
            for (int64_t i = 0; i < n_procs; i++) {
                int64_t p = procs[i];
                double a = avail[p];
                double d = w / speeds[p];
                double fin = (a > floor_ ? a : floor_) + d;
                if (fin < best_finish
                        || (fin == best_finish && a > best_avail)) {
                    proc = p;
                    best_finish = fin;
                    best_avail = a;
                    best_dur = d;
                }
            }
            resource = best_avail;
            est = floor_;
            if (best_avail > est)
                est = best_avail;
            dur = best_dur;
        }

        o_resource[b] = resource;
        o_prec[b] = prec;
        o_task_mem[b] = task_mem;
        o_comm_mem[b] = comm_mem;
        o_cmax[b] = cmax;
        o_est[b] = est;
        o_eft[b] = isfinite(est) ? est + dur : INFINITY;
        o_comm_fit[b] = comm_fit;
        o_dur[b] = dur;
        o_proc[b] = proc;
    }
}

/* The §5.1 memory-selection EPS chain over a (k x B) row-major EFT
 * matrix, replayed per candidate in class-index order — identical to
 * ScalarKernel.best_est_batch.  `present[c]` is 0 for classes without
 * processors (skipped, exactly like their infeasible breakdowns).
 * Writes the winning class index per candidate (-1 = no feasible class). */
void est_select_best(int64_t B, int64_t k, const double *eft,
                     const int64_t *present, int64_t *best_cls)
{
    for (int64_t b = 0; b < B; b++) {
        int64_t bc = -1;
        double be = INFINITY;
        for (int64_t c = 0; c < k; c++) {
            if (!present[c])
                continue;
            double v = eft[c * B + b];
            if (!isfinite(v))
                continue;
            if (bc < 0 || v < be - EPS) {
                be = v;
                bc = c;
            }
        }
        best_cls[b] = bc;
    }
}
