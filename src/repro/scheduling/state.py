"""Shared scheduler state: the EST machinery of §5.1 plus commit bookkeeping,
generalised to k memory classes and structured for incremental re-evaluation.

For a ready task ``i`` and a candidate memory ``mu`` the paper defines four
earliest-start-time components:

* ``resource_EST``   — a processor of ``mu`` must be free;
* ``precedence_EST`` — every parent finished (+ its transfer time ``C_ji``
  when the parent sits on a different memory);
* ``task_mem_EST``   — earliest ``t`` such that, from ``t`` on, ``mu`` has
  room for the task's cross-memory inputs *and* all its outputs;
* ``comm_mem_EST``   — earliest ``t`` such that, from ``t`` on, ``mu`` has
  room for the cross-memory inputs alone (the transfers land before the
  task starts).

``EST = max(resource, precedence, task_mem, comm_mem + Cmax)`` with
``Cmax = max_{cross parents j} C_ji`` (all incoming transfers are scheduled
as late as possible, sharing the window ``[EST - Cmax, EST)``; see
Algorithms 1–2).  ``EFT = EST + W^(mu)``.

**Heterogeneous processors.**  When the platform carries per-processor
``speeds``, a task with class-time ``W^(mu)`` runs for
``W^(mu) / speeds[p]`` on processor ``p``, so the resource part can no
longer collapse a class to ``min(avail)``: the kernel evaluates, per
processor of the class, ``finish(p) = max(floor, avail[p]) + W/speed(p)``
(``floor`` being the precedence/memory components, which are per-class)
and picks the processor minimising the finish time — ties broken towards
the later-available processor (less idle, mirroring :meth:`choose_proc`)
then the lower index.  The chosen processor and its duration travel in the
:class:`ESTBreakdown` and are honoured verbatim by :meth:`commit`.  A
class whose processors all share one speed takes the historical
``min(avail)`` fast path — at speed 1.0 it is bit-for-bit the paper's
arithmetic, which keeps the golden schedules byte-stable.

**Incremental EST kernel.**  The list-scheduling loops re-evaluate every
ready candidate after each commit, which in the naive formulation re-walks
every candidate's parent list and re-queries the memory staircases — the
O(n²) candidate-rescan bottleneck of §5.2.  The kernel splits each
breakdown into parts with different lifetimes:

* the *precedence part* (``precedence``, ``Cmax``, cross-input total) only
  depends on the placements of the task's parents, all committed by the
  time the task is ready — computed once per (task, memory) and cached for
  the rest of the run;
* the *memory part* (``task_mem``, ``comm_mem``) is memoised against the
  target :class:`~repro.core.memory_profile.MemoryProfile`'s ``version``
  counter, so candidates whose memory class was untouched by the last
  commit are served from cache;
* the *resource part* is the head of a per-class sorted avail structure —
  O(1) per query and maintained through :class:`_AvailVector`, which also
  reflects direct ``avail`` mutations made by branching searches.

The arithmetic itself lives in :mod:`repro.scheduling.kernel` behind a
pluggable backend (``backend=`` kwarg / ``MEMSCHED_KERNEL`` env /
auto-detect): the ``scalar`` reference path, or the optional vectorized
``numpy`` path that evaluates whole candidate batches per class.  The
state holds the data layout both backends share — the
:class:`~repro.core.graph.FlatGraph` CSR adjacency, per-row finish/class
arrays, the ``(task, class)`` fit memo and the per-class scratch — and
every cached or vectorized component is bit-for-bit identical to a fresh
scalar evaluation (``incremental=False`` keeps the from-scratch path for
cross-checking and benchmarks), so the heuristics take
decision-for-decision identical schedules in every mode.

On commit the state performs the §3.2 memory bookkeeping:

* outputs allocated in ``mu`` from the task start, released later when each
  consumer is committed;
* same-memory inputs released at the task finish;
* cross-memory inputs allocated in ``mu`` for the transfer-until-finish
  window and released from the parent's memory when their transfer ends.

Each individual transfer is clipped to start no earlier than its producer's
finish (``max(EST - Cmax, AFT(j))``) — see DESIGN.md §4: without the clip the
paper's common window can violate its own flow constraint.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right, insort
from operator import itemgetter
from typing import Hashable, Optional

from .. import obs
from .._util import EPS
from ..core.graph import TaskGraph
from ..obs.metrics import SIZE_BUCKETS
from ..core.memory_profile import MemoryProfile
from ..core.platform import Memory, Platform
from ..core.schedule import CommEvent, Placement, Schedule
from .kernel import (  # noqa: F401  (ESTBreakdown re-exported)
    ESTBreakdown,
    KernelLike,
    infeasible_breakdown,
    resolve_backend,
)

Task = Hashable


class InfeasibleScheduleError(RuntimeError):
    """The graph cannot be scheduled within the given memory bounds
    (the ``Error`` branch of Algorithms 1 and 2)."""


def lower_bound_from_parts(
        parts: tuple, resources: "list[float]") -> float:
    """``min_c max(resource_c, precedence_c) + W^(c)`` from the static
    pairs of :meth:`SchedulerState.est_lower_bound_parts` — the single
    implementation of the lazy-heap key (used both by
    :meth:`SchedulerState.est_lower_bound` and the candidate selectors)."""
    best = math.inf
    for ci, part in enumerate(parts):
        if part is None:
            continue
        lb = resources[ci] + part[0]
        if part[1] > lb:
            lb = part[1]
        if lb < best:
            best = lb
    return best


class _AvailVector(list):
    """Processor avail times with per-class sorted ``(avail, proc)`` views.

    Behaves as the historical plain list (the branching searches and tests
    assign ``state.avail[p] = t`` directly), but every write keeps a
    per-class sorted structure and bumps a ``version`` counter, which:

    * serves ``min(avail of class)`` in O(1) (the resource part of every
      uniform-class EST evaluation);
    * lets :meth:`SchedulerState.choose_proc` bisect the free-at-``est``
      prefix instead of scanning every processor of the class;
    * keys the :meth:`SchedulerState.class_resources` cache, so direct
      mutations invalidate it without any extra bookkeeping protocol.

    Structural list mutations (append/pop/...) are forbidden — the vector
    is born with one slot per processor and keeps them for life.
    """

    __slots__ = ("proc_classes", "by_class", "version")

    def __init__(self, values, proc_classes: tuple, n_classes: int) -> None:
        super().__init__(values)
        self.proc_classes = proc_classes
        self.version = 0
        self.by_class: list[list[tuple[float, int]]] = \
            [[] for _ in range(n_classes)]
        for p, a in enumerate(values):
            self.by_class[proc_classes[p]].append((a, p))
        for entries in self.by_class:
            entries.sort()

    def __setitem__(self, proc, value) -> None:
        if not isinstance(proc, int):
            raise TypeError("avail only supports single-processor writes")
        old = list.__getitem__(self, proc)
        value = float(value)
        if value == old:
            return
        list.__setitem__(self, proc, value)
        entries = self.by_class[self.proc_classes[proc]]
        i = bisect_left(entries, (old, proc))
        del entries[i]
        insort(entries, (value, proc))
        self.version += 1

    def class_min(self, ci: int) -> float:
        """Min avail over the processors of class ``ci`` (inf when none)."""
        entries = self.by_class[ci]
        return entries[0][0] if entries else math.inf

    def _blocked(self, *a, **kw):  # pragma: no cover - defensive
        raise TypeError("avail vector has a fixed processor count")

    append = extend = insert = pop = remove = clear = sort = reverse = _blocked
    __delitem__ = __iadd__ = __imul__ = _blocked


class SchedulerState:
    """Mutable partial schedule shared by every list-scheduling heuristic.

    Works for any number of memory classes; the paper's dual-memory
    platform is simply ``k = 2``.  ``backend`` selects the EST kernel
    backend (:func:`repro.scheduling.kernel.resolve_backend`): a name
    (``"scalar"`` / ``"numpy"`` / ``"auto"``), a kernel instance, or
    ``None`` to consult ``MEMSCHED_KERNEL`` and auto-detect.
    """

    def __init__(self, graph: TaskGraph, platform: Platform,
                 comm_policy: str = "late", incremental: bool = True,
                 backend: KernelLike = None) -> None:
        if comm_policy not in ("late", "eager"):
            raise ValueError(f"comm_policy must be 'late' or 'eager', got {comm_policy!r}")
        if graph.n_classes != platform.n_classes:
            raise ValueError(
                f"graph has {graph.n_classes} memory classes, platform "
                f"{platform.n_classes}")
        self.graph = graph
        self.platform = platform
        self.comm_policy = comm_policy
        self.incremental = incremental
        self.kernel = resolve_backend(backend)
        self.memories = platform.memories()
        # Per class: True when all its processors share one speed (the
        # min(avail) fast path); heterogeneous classes take the
        # per-processor finish-time path.
        self._uniform = platform.uniform_classes
        self.schedule = Schedule(platform)
        self.avail: _AvailVector = _AvailVector(
            [0.0] * platform.n_procs, platform.proc_classes,
            platform.n_classes)
        self.mem: dict[Memory, MemoryProfile] = {
            m: MemoryProfile(platform.capacity(m)) for m in self.memories
        }
        # -- flat array-of-structs layout (shared by the kernel backends) -
        flat = graph.flatten()
        self._flat = flat
        self._row = flat.index
        #: Per-row finish time / memory-class index of committed tasks
        #: (-1 = not committed) — the placement view the hot path indexes
        #: instead of going through Schedule.placement dict lookups.
        self._finish: list[float] = [0.0] * flat.n_tasks
        self._memidx: list[int] = [-1] * flat.n_tasks
        self._pending_parents: dict[Task, int] = {
            t: flat.parent_ptr[i + 1] - flat.parent_ptr[i]
            for i, t in enumerate(flat.order)
        }
        self._newly_ready: list[Task] = []
        # -- incremental EST caches ------------------------------------
        # per task: (precedence, cmax, cross_in, need_task) per class —
        # immutable once the task is ready (parents all committed).
        self._static: dict[Task, list[tuple[float, float, float, float]]] = {}
        # Per class: ``[profile version, {task: (task_mem, comm_fit)}]``.
        # A version bump invalidates the whole class dict at once (the
        # kernels clear it lazily on first access), so the hot path never
        # filters stale entries; commit additionally evicts the committed
        # task, bounding the memo to ready-but-uncommitted candidates.
        self._fit: list[list] = [[-1, {}] for _ in range(platform.n_classes)]
        #: Backend scratch (e.g. the numpy suffix-max staircase arrays,
        #: the compiled backend's C-layout mirrors), managed by the
        #: kernel, reset on copy().
        self._kernel_scratch: dict = {}
        #: Rows committed since this state was created, in commit order —
        #: the compiled backend drains it to update its array mirrors of
        #: ``_finish``/``_memidx`` incrementally.  Reset together with the
        #: scratch on copy(), so clones rebuild mirrors from the lists.
        self._commit_log: list[int] = []
        # -- per-class dirty tracking ----------------------------------
        # Commits record which memory classes they actually mutated: one
        # serial per commit, and per class the serial of the last commit
        # that touched its profile.  The candidate selectors key their
        # reuse stamps on these (a class whose serial is unchanged has a
        # bit-identical profile), instead of chasing profile ``version``
        # counters that can bump several times within one commit.
        self.commit_serial: int = 0
        self.class_touch_serial: list[int] = [0] * platform.n_classes
        #: Class indices mutated by the most recent commit (diagnostics).
        self.last_touched_classes: tuple[int, ...] = ()
        # class_resources() cache, keyed on the avail vector's version.
        self._resources_cache: Optional[list[float]] = None
        self._resources_version: int = -1

    # ------------------------------------------------------------------
    # readiness
    # ------------------------------------------------------------------
    @property
    def n_scheduled(self) -> int:
        return len(self.schedule)

    @property
    def done(self) -> bool:
        return self.n_scheduled == self.graph.n_tasks

    def is_scheduled(self, task: Task) -> bool:
        return task in self.schedule

    def is_ready(self, task: Task) -> bool:
        """All parents scheduled, task itself not yet scheduled."""
        return task not in self.schedule and self._pending_parents[task] == 0

    def ready_roots(self) -> list[Task]:
        """All source tasks (ready at time zero)."""
        return self.graph.roots()

    def pop_newly_ready(self) -> list[Task]:
        """Tasks that became ready since the last call (after commits)."""
        out, self._newly_ready = self._newly_ready, []
        return out

    # ------------------------------------------------------------------
    # EST computation (§5.1) — arithmetic in repro.scheduling.kernel
    # ------------------------------------------------------------------
    def _infeasible(self, task: Task, memory: Memory) -> ESTBreakdown:
        return infeasible_breakdown(task, memory)

    def _finish_choice(self, memory: Memory, floor: float,
                       w: float) -> tuple[int, float, float]:
        """Per-processor finish-time minimisation for a *heterogeneous*
        class: returns ``(proc, avail[proc], duration)`` for the processor
        minimising ``max(floor, avail[p]) + w / speed(p)``.  Exact-equality
        ties prefer the later-available processor (least idle time, the
        same preference ``choose_proc`` applies on uniform classes), then
        the lower index (iteration order)."""
        avail = self.avail
        speeds = self.platform.speeds
        best_proc = -1
        best_finish = math.inf
        best_avail = -math.inf
        best_dur = math.inf
        for p in self.platform.procs(memory):
            a = avail[p]
            dur = w / speeds[p]
            finish = (a if a > floor else floor) + dur
            if finish < best_finish or (finish == best_finish
                                        and a > best_avail):
                best_proc, best_finish, best_avail, best_dur = (
                    p, finish, a, dur)
        return best_proc, best_avail, best_dur

    def _resource_choice(self, memory: Memory, precedence: float,
                         task_mem: float, comm_mem: float,
                         w: float) -> tuple[float, float, float, int]:
        """The resource/processor half of one EST evaluation, shared by
        the kernel backends: returns ``(resource, est, duration, proc)``.
        Uniform-speed classes take the class-wide ``min(avail)`` fast path
        (bit-identical to the homogeneous arithmetic at speed 1.0; the
        processor is chosen at commit time); heterogeneous ones minimise
        per-processor finish times via :meth:`_finish_choice`."""
        idx = memory.index
        if self._uniform[idx]:
            resource = self.avail.class_min(idx)
            est = max(resource, precedence, task_mem, comm_mem)
            return resource, est, w / self.platform.max_class_speeds[idx], -1
        floor = max(precedence, task_mem, comm_mem)
        proc, resource, duration = self._finish_choice(memory, floor, w)
        return resource, max(floor, resource), duration, proc

    def _precedence_parts(self, task: Task) -> list[tuple[float, float, float, float]]:
        """``(precedence, cmax, cross_in, need_task)`` per memory class.

        A single pass over the flat CSR parent arrays fills all k classes
        at once; the result is cached until the task itself commits — once
        a task is ready its parents are all placed, so these values never
        change.  The ``cross_in`` accumulation is an order-dependent
        sequential sum, which is why *both* kernel backends share this
        scalar code (see :mod:`repro.scheduling.kernel`).
        """
        parts = self._static.get(task)
        if parts is not None:
            return parts
        k = len(self.memories)
        prec = [0.0] * k
        cmax = [0.0] * k
        cross = [0.0] * k
        flat = self._flat
        row = self._row[task]
        finish_of = self._finish
        memidx_of = self._memidx
        parent_row = flat.parent_row
        parent_comm = flat.parent_comm
        parent_size = flat.parent_size
        for e in range(flat.parent_ptr[row], flat.parent_ptr[row + 1]):
            j = parent_row[e]
            finish = finish_of[j]
            p_idx = memidx_of[j]
            c = parent_comm[e]
            size = parent_size[e]
            late = finish + c
            for ci in range(k):
                if ci == p_idx:
                    if finish > prec[ci]:
                        prec[ci] = finish
                else:
                    if late > prec[ci]:
                        prec[ci] = late
                    if c > cmax[ci]:
                        cmax[ci] = c
                    cross[ci] += size
        out_total = flat.out_size[row]
        parts = [(prec[ci], cmax[ci], cross[ci], cross[ci] + out_total)
                 for ci in range(k)]
        self._static[task] = parts
        return parts

    def est(self, task: Task, memory: Memory) -> ESTBreakdown:
        """EST/EFT breakdown of ``task`` on ``memory`` given the partial
        schedule.  Infeasible candidates get ``est = eft = inf``."""
        if not self.incremental:
            return self.kernel.evaluate_fresh(self, task, memory)
        return self.kernel.evaluate(self, task, memory)

    def class_resources(self) -> list[float]:
        """Min processor avail per memory class (``inf`` for classes without
        processors).  Served from a cache keyed on the avail vector's
        version counter — commits and direct ``avail`` writes both bump it.
        Callers must treat the returned list as read-only."""
        avail = self.avail
        if self._resources_version != avail.version:
            self._resources_cache = [avail.class_min(ci)
                                     for ci in range(len(self.memories))]
            self._resources_version = avail.version
        return self._resources_cache

    def est_lower_bound_parts(
            self, task: Task) -> tuple[Optional[tuple[float, float]], ...]:
        """Static ``(Wmin^(c), precedence_c + Wmin^(c))`` pair per class
        for a *ready* task (``None`` for classes without processors) —
        immutable for the rest of the run, so callers may cache the tuple
        and combine it with live resources via
        :func:`lower_bound_from_parts`.

        ``Wmin^(c) = W^(c) / max_speed(c)`` is keyed on the *fastest*
        processor of the class: every real assignment runs at least that
        long, so the bound stays sound on heterogeneous classes (and
        reduces to ``W^(c)`` bit-for-bit on speed-1.0 platforms)."""
        parts = self._precedence_parts(task)
        times = self._flat.times[self._row[task]]
        counts = self.platform.proc_counts
        fastest = self.platform.max_class_speeds
        out = []
        for ci in range(len(times)):
            if not counts[ci]:
                out.append(None)
                continue
            wmin = times[ci] / fastest[ci]
            out.append((wmin, parts[ci][0] + wmin))
        return tuple(out)

    def est_lower_bound(self, task: Task,
                        resources: Optional[list[float]] = None) -> float:
        """Memory-free lower bound on ``best_est(task).eft`` for a *ready*
        task: ``min_c max(resource_c, precedence_c) + W^(c)``.

        Unlike a cached EFT — whose memory components can *drop* when a
        commit releases memory — this bound only ever grows (precedence is
        immutable once the task is ready, resources only advance), which is
        what makes it a sound lazy-heap key
        (:class:`repro.scheduling.candidates.MinEFTSelector`).
        """
        if resources is None:
            resources = self.class_resources()
        return lower_bound_from_parts(self.est_lower_bound_parts(task),
                                      resources)

    def best_est(self, task: Task) -> Optional[ESTBreakdown]:
        """The memory choice minimising EFT (§5.1 memory-selection phase);
        ties go to the lowest class index (blue in the dual case).
        ``None`` when no memory is feasible."""
        best: Optional[ESTBreakdown] = None
        for memory in self.memories:
            bd = self.est(task, memory)
            if not bd.feasible:
                continue
            if best is None or bd.eft < best.eft - EPS:
                best = bd
        return best

    # ------------------------------------------------------------------
    # processor selection (§5.1)
    # ------------------------------------------------------------------
    def choose_proc(self, memory: Memory, est: float) -> int:
        """Processor of ``memory`` minimising idle time ``est - avail[p]``
        among those already free at ``est`` (ties: lowest index).

        Served from the avail vector's per-class sorted view: the
        free-at-``est`` prefix comes from one bisect and only *its*
        processors replay the historical index-order EPS-chain, instead of
        scanning every processor of the class per commit.

        Only meaningful on *uniform-speed* classes, where every free
        processor finishes the task at the same time; heterogeneous
        breakdowns pre-select their processor in :meth:`est`
        (``breakdown.proc``) and bypass this method at commit time."""
        entries = self.avail.by_class[memory.index]
        # All (a, p) with a <= est + EPS: bisecting with a proc sentinel
        # above any real index keeps a == est + EPS entries inside.
        hi = bisect_right(entries, (est + EPS, self.platform.n_procs))
        best_proc = -1
        best_avail = -math.inf
        for a, p in sorted(entries[:hi], key=itemgetter(1)):
            if a > best_avail + EPS:
                best_avail = a
                best_proc = p
        if best_proc < 0:  # pragma: no cover - est >= resource_EST prevents this
            raise RuntimeError("no processor available at the chosen EST")
        return best_proc

    # ------------------------------------------------------------------
    # commit (memory bookkeeping of §3.2)
    # ------------------------------------------------------------------
    def commit(self, breakdown: ESTBreakdown) -> Placement:
        """Apply one scheduling decision; returns the new placement."""
        task, memory, est = breakdown.task, breakdown.memory, breakdown.est
        if not math.isfinite(est):
            raise ValueError(f"cannot commit infeasible candidate for {task!r}")
        finish = est + breakdown.duration
        proc = (breakdown.proc if breakdown.proc >= 0
                else self.choose_proc(memory, est))
        placement = Placement(task=task, proc=proc, memory=memory,
                              start=est, finish=finish)
        self.schedule.add(placement)
        self.avail[proc] = finish

        flat = self._flat
        row = self._row[task]
        self._finish[row] = finish
        self._memidx[row] = memory.index
        self._commit_log.append(row)

        midx = memory.index
        touched: set[int] = set()
        # Profile mutations are collected per class and applied as one
        # MemoryProfile.add_batch per touched profile below: same events
        # in the same per-profile order as the historical per-edge add()
        # calls (profiles are independent, so cross-profile interleaving
        # is irrelevant), hence bit-identical staircases — with one merge
        # pass and one version bump per profile per commit.
        dest_events: list = []
        src_events: dict[int, list] = {}
        # Outputs resident in mu from the task start until each consumer is
        # committed (release scheduled then).
        out_total = flat.out_size[row]
        if out_total > 0.0:
            dest_events.append((out_total, est, None))
            touched.add(midx)

        order = flat.order
        parent_row = flat.parent_row
        for e in range(flat.parent_ptr[row], flat.parent_ptr[row + 1]):
            j = parent_row[e]
            p_finish = self._finish[j]
            p_idx = self._memidx[j]
            size = flat.parent_size[e]
            if p_idx == midx:
                # Same-memory input: freed when this task finishes.
                if size > 0.0:
                    dest_events.append((-size, finish, None))
                    touched.add(midx)
            else:
                # Cross-memory input transfer.  "late" (the paper's policy):
                # share the window [EST - Cmax, EST), clipped to the
                # producer's finish.  "eager" (ablation): fire as soon as the
                # destination has room, again no earlier than the producer.
                if self.comm_policy == "late":
                    comm_start = max(est - breakdown.cmax, p_finish)
                    comm_end = est
                else:
                    comm_start = max(breakdown.comm_fit, p_finish)
                    comm_end = comm_start + flat.parent_comm[e]
                self.schedule.add_comm(
                    CommEvent(src=order[j], dst=task, start=comm_start,
                              finish=comm_end)
                )
                if size > 0.0:
                    # Destination copy lives for transfer + execution.
                    dest_events.append((size, comm_start, finish))
                    # Source copy freed when the transfer completes.
                    src = src_events.get(p_idx)
                    if src is None:
                        src = src_events[p_idx] = []
                    src.append((-size, comm_end, None))
                    touched.add(midx)
                    touched.add(p_idx)

        if dest_events:
            self.mem[memory].add_batch(dest_events)
        for p_idx, events in src_events.items():
            self.mem[self.memories[p_idx]].add_batch(events)

        # Record which classes this commit actually mutated.
        self.commit_serial += 1
        for ci in touched:
            self.class_touch_serial[ci] = self.commit_serial
        self.last_touched_classes = tuple(sorted(touched))

        # Drop the committed task's cached EST components (it will never be
        # a candidate again) — this bounds the _static/_fit memos to the
        # live candidate set; profile-version keys invalidate the rest.
        self._static.pop(task, None)
        for slot in self._fit:
            slot[1].pop(task, None)

        # readiness propagation over the flat child CSR
        pending = self._pending_parents
        child_row = flat.child_row
        for e in range(flat.child_ptr[row], flat.child_ptr[row + 1]):
            child = order[child_row[e]]
            pending[child] -= 1
            if pending[child] == 0:
                self._newly_ready.append(child)

        return placement

    def copy(self) -> "SchedulerState":
        """Deep-enough copy for branching searches (profiles duplicated)."""
        clone = SchedulerState.__new__(SchedulerState)
        clone.graph = self.graph
        clone.platform = self.platform
        clone.comm_policy = self.comm_policy
        clone.incremental = self.incremental
        clone.kernel = self.kernel
        clone.memories = self.memories
        clone._uniform = self._uniform
        clone.schedule = self.schedule.copy()
        clone.avail = _AvailVector(list(self.avail),
                                   self.platform.proc_classes,
                                   self.platform.n_classes)
        clone.mem = {m: p.copy() for m, p in self.mem.items()}
        clone._flat = self._flat
        clone._row = self._row
        clone._finish = list(self._finish)
        clone._memidx = list(self._memidx)
        clone._pending_parents = dict(self._pending_parents)
        clone._newly_ready = list(self._newly_ready)
        clone._static = dict(self._static)
        clone._fit = [[ver, dict(d)] for ver, d in self._fit]
        clone._kernel_scratch = {}
        clone._commit_log = []
        clone.commit_serial = self.commit_serial
        clone.class_touch_serial = list(self.class_touch_serial)
        clone.last_touched_classes = self.last_touched_classes
        clone._resources_cache = None
        clone._resources_version = -1
        return clone

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def peaks(self) -> dict[Memory, float]:
        """Memory peaks of the partial schedule (scheduler-side accounting)."""
        return {m: self.mem[m].peak() for m in self.memories}

    def check_invariants(self) -> None:
        for m in self.memories:
            self.mem[m].check_invariants()

    def finalize(self, algorithm: str) -> Schedule:
        """Stamp diagnostics onto the completed schedule and return it."""
        self.check_invariants()
        peaks = self.peaks()
        self.schedule.meta.update(
            algorithm=algorithm,
            peaks=[peaks[m] for m in self.memories],
        )
        if len(self.memories) == 2:
            self.schedule.meta.update(
                peak_blue=peaks[Memory.BLUE],
                peak_red=peaks[Memory.RED],
            )
        st = obs.active()
        if st is not None:
            st.registry.counter("memsched_schedules_finalized_total",
                                algorithm=algorithm).inc()
            st.registry.histogram(
                "memsched_schedule_tasks", buckets=SIZE_BUCKETS,
                algorithm=algorithm).observe(self.graph.n_tasks)
        return self.schedule
