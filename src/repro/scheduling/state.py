"""Shared scheduler state: the EST machinery of §5.1 plus commit bookkeeping,
generalised to k memory classes and structured for incremental re-evaluation.

For a ready task ``i`` and a candidate memory ``mu`` the paper defines four
earliest-start-time components:

* ``resource_EST``   — a processor of ``mu`` must be free;
* ``precedence_EST`` — every parent finished (+ its transfer time ``C_ji``
  when the parent sits on a different memory);
* ``task_mem_EST``   — earliest ``t`` such that, from ``t`` on, ``mu`` has
  room for the task's cross-memory inputs *and* all its outputs;
* ``comm_mem_EST``   — earliest ``t`` such that, from ``t`` on, ``mu`` has
  room for the cross-memory inputs alone (the transfers land before the
  task starts).

``EST = max(resource, precedence, task_mem, comm_mem + Cmax)`` with
``Cmax = max_{cross parents j} C_ji`` (all incoming transfers are scheduled
as late as possible, sharing the window ``[EST - Cmax, EST)``; see
Algorithms 1–2).  ``EFT = EST + W^(mu)``.

**Heterogeneous processors.**  When the platform carries per-processor
``speeds``, a task with class-time ``W^(mu)`` runs for
``W^(mu) / speeds[p]`` on processor ``p``, so the resource part can no
longer collapse a class to ``min(avail)``: the kernel evaluates, per
processor of the class, ``finish(p) = max(floor, avail[p]) + W/speed(p)``
(``floor`` being the precedence/memory components, which are per-class)
and picks the processor minimising the finish time — ties broken towards
the later-available processor (less idle, mirroring :meth:`choose_proc`)
then the lower index.  The chosen processor and its duration travel in the
:class:`ESTBreakdown` and are honoured verbatim by :meth:`commit`.  A
class whose processors all share one speed takes the historical
``min(avail)`` fast path — at speed 1.0 it is bit-for-bit the paper's
arithmetic, which keeps the golden schedules byte-stable.

**Incremental EST kernel.**  The list-scheduling loops re-evaluate every
ready candidate after each commit, which in the naive formulation re-walks
every candidate's parent list and re-queries the memory staircases — the
O(n²) candidate-rescan bottleneck of §5.2.  The kernel splits each
breakdown into parts with different lifetimes:

* the *precedence part* (``precedence``, ``Cmax``, cross-input total) only
  depends on the placements of the task's parents, all committed by the
  time the task is ready — computed once per (task, memory) and cached for
  the rest of the run;
* the *memory part* (``task_mem``, ``comm_mem``) is memoised against the
  target :class:`~repro.core.memory_profile.MemoryProfile`'s ``version``
  counter, so candidates whose memory class was untouched by the last
  commit are served from cache;
* the *resource part* is a min over the class's processor avail times —
  O(procs) and recomputed on the fly (it must also reflect direct ``avail``
  mutations made by branching searches).

Every cached component is bit-for-bit identical to a fresh evaluation
(`incremental=False` keeps the from-scratch path for cross-checking and
benchmarks), so the heuristics take decision-for-decision identical
schedules in both modes.

On commit the state performs the §3.2 memory bookkeeping:

* outputs allocated in ``mu`` from the task start, released later when each
  consumer is committed;
* same-memory inputs released at the task finish;
* cross-memory inputs allocated in ``mu`` for the transfer-until-finish
  window and released from the parent's memory when their transfer ends.

Each individual transfer is clipped to start no earlier than its producer's
finish (``max(EST - Cmax, AFT(j))``) — see DESIGN.md §4: without the clip the
paper's common window can violate its own flow constraint.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Optional

from .._util import EPS
from ..core.graph import TaskGraph
from ..core.memory_profile import MemoryProfile
from ..core.platform import Memory, Platform
from ..core.schedule import CommEvent, Placement, Schedule

Task = Hashable


class InfeasibleScheduleError(RuntimeError):
    """The graph cannot be scheduled within the given memory bounds
    (the ``Error`` branch of Algorithms 1 and 2)."""


def lower_bound_from_parts(
        parts: tuple, resources: "list[float]") -> float:
    """``min_c max(resource_c, precedence_c) + W^(c)`` from the static
    pairs of :meth:`SchedulerState.est_lower_bound_parts` — the single
    implementation of the lazy-heap key (used both by
    :meth:`SchedulerState.est_lower_bound` and the candidate selectors)."""
    best = math.inf
    for ci, part in enumerate(parts):
        if part is None:
            continue
        lb = resources[ci] + part[0]
        if part[1] > lb:
            lb = part[1]
        if lb < best:
            best = lb
    return best


@dataclass(frozen=True)
class ESTBreakdown:
    """All EST components for one (task, memory) candidate."""

    task: Task
    memory: Memory
    resource: float
    precedence: float
    task_mem: float
    comm_mem: float  # already includes the +Cmax term; 0.0 when no cross input
    cmax: float
    est: float
    eft: float
    #: Raw ``earliest_fit(cross inputs)`` value (no +Cmax); the eager
    #: transfer policy re-uses it at commit time.
    comm_fit: float = 0.0
    #: Execution time on the chosen resource (``W^(mu) / speed``); equals
    #: ``W^(mu)`` bit-for-bit on speed-1.0 processors.
    duration: float = math.inf
    #: Pre-chosen processor for heterogeneous classes (honoured by
    #: :meth:`SchedulerState.commit`); ``-1`` on uniform classes, where the
    #: processor is picked at commit time by ``choose_proc`` exactly as in
    #: the homogeneous engine.
    proc: int = -1

    @property
    def cls(self) -> int:
        """Memory-class index (generic alias for ``memory.index``)."""
        return self.memory.index

    @property
    def feasible(self) -> bool:
        return math.isfinite(self.eft)


class SchedulerState:
    """Mutable partial schedule shared by every list-scheduling heuristic.

    Works for any number of memory classes; the paper's dual-memory
    platform is simply ``k = 2``.
    """

    def __init__(self, graph: TaskGraph, platform: Platform,
                 comm_policy: str = "late", incremental: bool = True) -> None:
        if comm_policy not in ("late", "eager"):
            raise ValueError(f"comm_policy must be 'late' or 'eager', got {comm_policy!r}")
        if graph.n_classes != platform.n_classes:
            raise ValueError(
                f"graph has {graph.n_classes} memory classes, platform "
                f"{platform.n_classes}")
        self.graph = graph
        self.platform = platform
        self.comm_policy = comm_policy
        self.incremental = incremental
        self.memories = platform.memories()
        # Per class: True when all its processors share one speed (the
        # min(avail) fast path); heterogeneous classes take the
        # per-processor finish-time path.
        self._uniform = platform.uniform_classes
        self.schedule = Schedule(platform)
        self.avail: list[float] = [0.0] * platform.n_procs
        self.mem: dict[Memory, MemoryProfile] = {
            m: MemoryProfile(platform.capacity(m)) for m in self.memories
        }
        self._pending_parents: dict[Task, int] = {
            t: graph.in_degree(t) for t in graph.tasks()
        }
        self._newly_ready: list[Task] = []
        # -- incremental EST caches ------------------------------------
        # per task: (precedence, cmax, cross_in, need_task) per class —
        # immutable once the task is ready (parents all committed).
        self._static: dict[Task, list[tuple[float, float, float, float]]] = {}
        # per (task, class index): (profile version, task_mem, comm_fit).
        self._fit: dict[tuple[Task, int], tuple[int, float, float]] = {}
        # -- per-class dirty tracking ----------------------------------
        # Commits record which memory classes they actually mutated: one
        # serial per commit, and per class the serial of the last commit
        # that touched its profile.  The candidate selectors key their
        # reuse stamps on these (a class whose serial is unchanged has a
        # bit-identical profile), instead of chasing profile ``version``
        # counters that can bump several times within one commit.
        self.commit_serial: int = 0
        self.class_touch_serial: list[int] = [0] * platform.n_classes
        #: Class indices mutated by the most recent commit (diagnostics).
        self.last_touched_classes: tuple[int, ...] = ()

    # ------------------------------------------------------------------
    # readiness
    # ------------------------------------------------------------------
    @property
    def n_scheduled(self) -> int:
        return len(self.schedule)

    @property
    def done(self) -> bool:
        return self.n_scheduled == self.graph.n_tasks

    def is_scheduled(self, task: Task) -> bool:
        return task in self.schedule

    def is_ready(self, task: Task) -> bool:
        """All parents scheduled, task itself not yet scheduled."""
        return task not in self.schedule and self._pending_parents[task] == 0

    def ready_roots(self) -> list[Task]:
        """All source tasks (ready at time zero)."""
        return self.graph.roots()

    def pop_newly_ready(self) -> list[Task]:
        """Tasks that became ready since the last call (after commits)."""
        out, self._newly_ready = self._newly_ready, []
        return out

    # ------------------------------------------------------------------
    # EST computation (§5.1)
    # ------------------------------------------------------------------
    def _infeasible(self, task: Task, memory: Memory) -> ESTBreakdown:
        inf = math.inf
        return ESTBreakdown(task, memory, inf, inf, inf, inf, 0.0, inf, inf)

    def _finish_choice(self, memory: Memory, floor: float,
                       w: float) -> tuple[int, float, float]:
        """Per-processor finish-time minimisation for a *heterogeneous*
        class: returns ``(proc, avail[proc], duration)`` for the processor
        minimising ``max(floor, avail[p]) + w / speed(p)``.  Exact-equality
        ties prefer the later-available processor (least idle time, the
        same preference ``choose_proc`` applies on uniform classes), then
        the lower index (iteration order)."""
        avail = self.avail
        speeds = self.platform.speeds
        best_proc = -1
        best_finish = math.inf
        best_avail = -math.inf
        best_dur = math.inf
        for p in self.platform.procs(memory):
            a = avail[p]
            dur = w / speeds[p]
            finish = (a if a > floor else floor) + dur
            if finish < best_finish or (finish == best_finish
                                        and a > best_avail):
                best_proc, best_finish, best_avail, best_dur = (
                    p, finish, a, dur)
        return best_proc, best_avail, best_dur

    def _resource_choice(self, memory: Memory, precedence: float,
                         task_mem: float, comm_mem: float,
                         w: float) -> tuple[float, float, float, int]:
        """The resource/processor half of one EST evaluation, shared by
        the incremental and from-scratch kernels: returns
        ``(resource, est, duration, proc)``.  Uniform-speed classes take
        the class-wide ``min(avail)`` fast path (bit-identical to the
        homogeneous arithmetic at speed 1.0; the processor is chosen at
        commit time); heterogeneous ones minimise per-processor finish
        times via :meth:`_finish_choice`."""
        idx = memory.index
        if self._uniform[idx]:
            resource = min(self.avail[p] for p in self.platform.procs(memory))
            est = max(resource, precedence, task_mem, comm_mem)
            return resource, est, w / self.platform.max_class_speeds[idx], -1
        floor = max(precedence, task_mem, comm_mem)
        proc, resource, duration = self._finish_choice(memory, floor, w)
        return resource, max(floor, resource), duration, proc

    def _precedence_parts(self, task: Task) -> list[tuple[float, float, float, float]]:
        """``(precedence, cmax, cross_in, need_task)`` per memory class.

        A single pass over the parents fills all k classes at once; the
        result is cached until the task itself commits — once a task is
        ready its parents are all placed, so these values never change.
        """
        parts = self._static.get(task)
        if parts is not None:
            return parts
        k = len(self.memories)
        prec = [0.0] * k
        cmax = [0.0] * k
        cross = [0.0] * k
        graph = self.graph
        placement = self.schedule.placement
        for parent in graph.parents(task):
            pp = placement(parent)
            finish = pp.finish
            p_idx = pp.memory.index
            c = graph.comm(parent, task)
            size = graph.size(parent, task)
            late = finish + c
            for ci in range(k):
                if ci == p_idx:
                    if finish > prec[ci]:
                        prec[ci] = finish
                else:
                    if late > prec[ci]:
                        prec[ci] = late
                    if c > cmax[ci]:
                        cmax[ci] = c
                    cross[ci] += size
        out_total = graph.out_size(task)
        parts = [(prec[ci], cmax[ci], cross[ci], cross[ci] + out_total)
                 for ci in range(k)]
        self._static[task] = parts
        return parts

    def est(self, task: Task, memory: Memory) -> ESTBreakdown:
        """EST/EFT breakdown of ``task`` on ``memory`` given the partial
        schedule.  Infeasible candidates get ``est = eft = inf``."""
        if not self.incremental:
            return self._est_fresh(task, memory)
        if not self.is_ready(task) or self.platform.n_procs_of(memory) == 0:
            return self._infeasible(task, memory)

        idx = memory.index
        precedence, cmax, cross_in, need_task = self._precedence_parts(task)[idx]

        profile = self.mem[memory]
        key = (task, idx)
        cached = self._fit.get(key)
        if cached is not None and cached[0] == profile.version:
            task_mem, comm_fit = cached[1], cached[2]
        else:
            task_mem = profile.earliest_fit(need_task)
            comm_fit = (profile.earliest_fit(cross_in)
                        if cross_in > 0.0 or cmax > 0.0 else 0.0)
            self._fit[key] = (profile.version, task_mem, comm_fit)
        comm_mem = comm_fit + cmax if cross_in > 0.0 or cmax > 0.0 else 0.0

        resource, est, duration, proc = self._resource_choice(
            memory, precedence, task_mem, comm_mem, self.graph.w(task, memory))
        eft = est + duration if math.isfinite(est) else math.inf
        return ESTBreakdown(task, memory, resource, precedence, task_mem,
                            comm_mem, cmax, est, eft, comm_fit,
                            duration, proc)

    def _est_fresh(self, task: Task, memory: Memory) -> ESTBreakdown:
        """From-scratch EST evaluation (the pre-incremental reference path,
        kept for cross-checks and the kernel benchmark)."""
        if not self.is_ready(task) or self.platform.n_procs_of(memory) == 0:
            return self._infeasible(task, memory)

        precedence = 0.0
        cmax = 0.0
        cross_in = 0.0
        for parent in self.graph.parents(task):
            pp = self.schedule.placement(parent)
            if pp.memory is memory:
                precedence = max(precedence, pp.finish)
            else:
                c = self.graph.comm(parent, task)
                precedence = max(precedence, pp.finish + c)
                cmax = max(cmax, c)
                cross_in += self.graph.size(parent, task)

        need_task = cross_in + self.graph.out_size(task)
        task_mem = self.mem[memory].earliest_fit(need_task)

        comm_fit = 0.0
        if cross_in > 0.0 or cmax > 0.0:
            comm_fit = self.mem[memory].earliest_fit(cross_in)
            comm_mem = comm_fit + cmax
        else:
            comm_mem = 0.0

        resource, est, duration, proc = self._resource_choice(
            memory, precedence, task_mem, comm_mem, self.graph.w(task, memory))
        eft = est + duration if math.isfinite(est) else math.inf
        return ESTBreakdown(task, memory, resource, precedence, task_mem,
                            comm_mem, cmax, est, eft, comm_fit,
                            duration, proc)

    def class_resources(self) -> list[float]:
        """Min processor avail per memory class (``inf`` for classes without
        processors).  Non-decreasing over the run: commits only push avail
        times forward."""
        avail = self.avail
        out = []
        for memory in self.memories:
            procs = self.platform.procs(memory)
            out.append(min(avail[p] for p in procs) if len(procs) else math.inf)
        return out

    def est_lower_bound_parts(
            self, task: Task) -> tuple[Optional[tuple[float, float]], ...]:
        """Static ``(Wmin^(c), precedence_c + Wmin^(c))`` pair per class
        for a *ready* task (``None`` for classes without processors) —
        immutable for the rest of the run, so callers may cache the tuple
        and combine it with live resources via
        :func:`lower_bound_from_parts`.

        ``Wmin^(c) = W^(c) / max_speed(c)`` is keyed on the *fastest*
        processor of the class: every real assignment runs at least that
        long, so the bound stays sound on heterogeneous classes (and
        reduces to ``W^(c)`` bit-for-bit on speed-1.0 platforms)."""
        parts = self._precedence_parts(task)
        times = self.graph.times(task)
        counts = self.platform.proc_counts
        fastest = self.platform.max_class_speeds
        out = []
        for ci in range(len(times)):
            if not counts[ci]:
                out.append(None)
                continue
            wmin = times[ci] / fastest[ci]
            out.append((wmin, parts[ci][0] + wmin))
        return tuple(out)

    def est_lower_bound(self, task: Task,
                        resources: Optional[list[float]] = None) -> float:
        """Memory-free lower bound on ``best_est(task).eft`` for a *ready*
        task: ``min_c max(resource_c, precedence_c) + W^(c)``.

        Unlike a cached EFT — whose memory components can *drop* when a
        commit releases memory — this bound only ever grows (precedence is
        immutable once the task is ready, resources only advance), which is
        what makes it a sound lazy-heap key
        (:class:`repro.scheduling.candidates.MinEFTSelector`).
        """
        if resources is None:
            resources = self.class_resources()
        return lower_bound_from_parts(self.est_lower_bound_parts(task),
                                      resources)

    def best_est(self, task: Task) -> Optional[ESTBreakdown]:
        """The memory choice minimising EFT (§5.1 memory-selection phase);
        ties go to the lowest class index (blue in the dual case).
        ``None`` when no memory is feasible."""
        best: Optional[ESTBreakdown] = None
        for memory in self.memories:
            bd = self.est(task, memory)
            if not bd.feasible:
                continue
            if best is None or bd.eft < best.eft - EPS:
                best = bd
        return best

    # ------------------------------------------------------------------
    # processor selection (§5.1)
    # ------------------------------------------------------------------
    def choose_proc(self, memory: Memory, est: float) -> int:
        """Processor of ``memory`` minimising idle time ``est - avail[p]``
        among those already free at ``est`` (ties: lowest index).

        Only meaningful on *uniform-speed* classes, where every free
        processor finishes the task at the same time; heterogeneous
        breakdowns pre-select their processor in :meth:`est`
        (``breakdown.proc``) and bypass this method at commit time."""
        best_proc = -1
        best_avail = -math.inf
        for p in self.platform.procs(memory):
            a = self.avail[p]
            if a <= est + EPS and a > best_avail + EPS:
                best_avail = a
                best_proc = p
        if best_proc < 0:  # pragma: no cover - est >= resource_EST prevents this
            raise RuntimeError("no processor available at the chosen EST")
        return best_proc

    # ------------------------------------------------------------------
    # commit (memory bookkeeping of §3.2)
    # ------------------------------------------------------------------
    def commit(self, breakdown: ESTBreakdown) -> Placement:
        """Apply one scheduling decision; returns the new placement."""
        task, memory, est = breakdown.task, breakdown.memory, breakdown.est
        if not math.isfinite(est):
            raise ValueError(f"cannot commit infeasible candidate for {task!r}")
        finish = est + breakdown.duration
        proc = (breakdown.proc if breakdown.proc >= 0
                else self.choose_proc(memory, est))
        placement = Placement(task=task, proc=proc, memory=memory,
                              start=est, finish=finish)
        self.schedule.add(placement)
        self.avail[proc] = finish

        profile = self.mem[memory]
        touched: set[int] = set()
        # Outputs resident in mu from the task start until each consumer is
        # committed (release scheduled then).
        out_total = self.graph.out_size(task)
        if out_total > 0.0:
            profile.add(out_total, est, None)
            touched.add(memory.index)

        for parent in self.graph.parents(task):
            pp = self.schedule.placement(parent)
            size = self.graph.size(parent, task)
            if pp.memory is memory:
                # Same-memory input: freed when this task finishes.
                if size > 0.0:
                    profile.add(-size, finish, None)
                    touched.add(memory.index)
            else:
                # Cross-memory input transfer.  "late" (the paper's policy):
                # share the window [EST - Cmax, EST), clipped to the
                # producer's finish.  "eager" (ablation): fire as soon as the
                # destination has room, again no earlier than the producer.
                if self.comm_policy == "late":
                    comm_start = max(est - breakdown.cmax, pp.finish)
                    comm_end = est
                else:
                    comm_start = max(breakdown.comm_fit, pp.finish)
                    comm_end = comm_start + self.graph.comm(parent, task)
                self.schedule.add_comm(
                    CommEvent(src=parent, dst=task, start=comm_start, finish=comm_end)
                )
                if size > 0.0:
                    # Destination copy lives for transfer + execution.
                    profile.add(size, comm_start, finish)
                    # Source copy freed when the transfer completes.
                    self.mem[pp.memory].add(-size, comm_end, None)
                    touched.add(memory.index)
                    touched.add(pp.memory.index)

        # Record which classes this commit actually mutated.
        self.commit_serial += 1
        for ci in touched:
            self.class_touch_serial[ci] = self.commit_serial
        self.last_touched_classes = tuple(sorted(touched))

        # Drop the committed task's cached EST components (it will never be
        # a candidate again); profile-version keys invalidate the rest.
        self._static.pop(task, None)
        for m in self.memories:
            self._fit.pop((task, m.index), None)

        # readiness propagation
        for child in self.graph.children(task):
            self._pending_parents[child] -= 1
            if self._pending_parents[child] == 0:
                self._newly_ready.append(child)

        return placement

    def copy(self) -> "SchedulerState":
        """Deep-enough copy for branching searches (profiles duplicated)."""
        clone = SchedulerState.__new__(SchedulerState)
        clone.graph = self.graph
        clone.platform = self.platform
        clone.comm_policy = self.comm_policy
        clone.incremental = self.incremental
        clone.memories = self.memories
        clone._uniform = self._uniform
        clone.schedule = self.schedule.copy()
        clone.avail = list(self.avail)
        clone.mem = {m: p.copy() for m, p in self.mem.items()}
        clone._pending_parents = dict(self._pending_parents)
        clone._newly_ready = list(self._newly_ready)
        clone._static = dict(self._static)
        clone._fit = dict(self._fit)
        clone.commit_serial = self.commit_serial
        clone.class_touch_serial = list(self.class_touch_serial)
        clone.last_touched_classes = self.last_touched_classes
        return clone

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def peaks(self) -> dict[Memory, float]:
        """Memory peaks of the partial schedule (scheduler-side accounting)."""
        return {m: self.mem[m].peak() for m in self.memories}

    def check_invariants(self) -> None:
        for m in self.memories:
            self.mem[m].check_invariants()

    def finalize(self, algorithm: str) -> Schedule:
        """Stamp diagnostics onto the completed schedule and return it."""
        self.check_invariants()
        peaks = self.peaks()
        self.schedule.meta.update(
            algorithm=algorithm,
            peaks=[peaks[m] for m in self.memories],
        )
        if len(self.memories) == 2:
            self.schedule.meta.update(
                peak_blue=peaks[Memory.BLUE],
                peak_red=peaks[Memory.RED],
            )
        return self.schedule
