"""MemSufferage — a memory-aware Sufferage heuristic (library extension).

Sufferage is the third classic heuristic of the family the paper takes
MinMin from (Braun et al. 2001, the paper's [4]): instead of committing the
task with the globally smallest EFT, commit the task that would *suffer*
most from not getting its preferred resource — the one with the largest
gap between its best and second-best completion times.

The "resources" are the platform's memory classes (two on the paper's
dual-memory platform, any k in general), so the sufferage value of an
available task is ``EFT(second-best memory) - EFT(best memory)``.  A task
that fits in only one memory is maximally urgent (infinite sufferage):
delaying it risks the remaining memory filling up.

This is *not* part of the paper — it is the natural third member of the
family and shares all of the §5.1 machinery, which makes it a one-page
extension; the benchmark suite compares it against MemHEFT/MemMinMin.
"""

from __future__ import annotations

import math
from typing import Hashable

from .. import obs
from ..core.graph import TaskGraph
from ..core.platform import Platform
from ..core.schedule import Schedule
from .candidates import SufferageSelector
from .kernel import KernelLike
from .state import ESTBreakdown, InfeasibleScheduleError, SchedulerState

Task = Hashable


def memsufferage(graph: TaskGraph, platform: Platform, *,
                 comm_policy: str = "late", lazy: bool = True,
                 backend: KernelLike = None,
                 dag_scoped: bool = True) -> Schedule:
    """Schedule ``graph`` with the memory-aware Sufferage heuristic.

    ``lazy`` (default) serves the per-step arg-max-sufferage from the
    version-stamped candidate cache of
    :class:`repro.scheduling.candidates.SufferageSelector` — candidates
    untouched by the last commit are reused verbatim — while ``lazy=False``
    rescans every available task.  Both paths commit identical schedules.

    ``backend`` picks the EST kernel backend; ``dag_scoped=False`` reverts
    the selector to coarse per-class invalidation (A/B benchmarks).

    Raises :class:`InfeasibleScheduleError` when no available task fits
    within the memory bounds (same contract as Algorithms 1-2).
    """
    state = SchedulerState(graph, platform, comm_policy=comm_policy,
                           backend=backend)
    index = {t: k for k, t in enumerate(graph.topological_order())}

    if lazy:
        selector = SufferageSelector(state, index, dag_scoped=dag_scoped)
        for task in graph.roots():
            selector.push(task)
        st = obs.active()
        if st is not None:
            from .instrument import observed_lazy_run
            with obs.span("memsufferage", n_tasks=graph.n_tasks):
                return observed_lazy_run(
                    state, selector, "memsufferage", st,
                    lambda n_left: (
                        "MemSufferage: no available task fits within the "
                        f"memory bounds ({n_left} available, "
                        f"capacities={list(platform.capacities)})"))
        while len(selector):
            best_choice = selector.select()
            if best_choice is None:
                raise InfeasibleScheduleError(
                    "MemSufferage: no available task fits within the memory "
                    f"bounds ({len(selector)} available, "
                    f"capacities={list(platform.capacities)})"
                )
            state.commit(best_choice)
            selector.remove(best_choice.task)
            for task in state.pop_newly_ready():
                selector.push(task)
        return state.finalize("memsufferage")

    available: set[Task] = set(graph.roots())
    while available:
        best_choice: ESTBreakdown | None = None
        best_key: tuple[float, float, int] | None = None
        for task in sorted(available, key=index.__getitem__):
            breakdowns = [state.est(task, m) for m in state.memories]
            feasible = [bd for bd in breakdowns if bd.feasible]
            if not feasible:
                continue
            feasible.sort(key=lambda bd: bd.eft)
            preferred = feasible[0]
            if len(feasible) >= 2:
                sufferage = feasible[1].eft - feasible[0].eft
            else:
                sufferage = math.inf  # only one memory can take it: urgent
            # Maximise sufferage; break ties towards the smaller EFT, then
            # the stable task index.
            key = (-sufferage, preferred.eft, index[task])
            if best_key is None or key < best_key:
                best_key = key
                best_choice = preferred
        if best_choice is None:
            raise InfeasibleScheduleError(
                "MemSufferage: no available task fits within the memory "
                f"bounds ({len(available)} available, "
                f"capacities={list(platform.capacities)})"
            )
        state.commit(best_choice)
        available.discard(best_choice.task)
        available.update(state.pop_newly_ready())

    return state.finalize("memsufferage")


def sufferage(graph: TaskGraph, platform: Platform, *,
              backend: KernelLike = None) -> Schedule:
    """Classical (memory-oblivious) Sufferage: the unbounded special case."""
    schedule = memsufferage(graph, platform.unbounded(), backend=backend)
    schedule.meta["algorithm"] = "sufferage"
    return schedule
