"""Command-line interface (installed as ``memsched``; also
``python -m repro``).

Subcommands::

    memsched generate  --kind daggen --size 30 --seed 1 -o graph.json
    memsched schedule  graph.json --algo memheft --blue 1 --red 1 \
                       --mem-blue 40 --mem-red 40 --gantt
    memsched validate  graph.json schedule.json
    memsched bounds    graph.json --blue 2 --red 1
    memsched ilp       graph.json --blue 1 --red 1 --mem-blue 5 --mem-red 5
    memsched experiment fig10 --scale ci
    memsched experiment fig12 --hosts 10.0.0.1:8123,10.0.0.2:8123
    memsched serve     --port 8123 --workers 4
    memsched submit    graph.json --algo memheft --port 8123 -o sched.json
"""

from __future__ import annotations

import argparse
import math
import sys
from contextlib import nullcontext
from typing import Optional, Sequence

from . import obs
from .core.bounds import (
    critical_path_lower_bound,
    lower_bound,
    split_work_lower_bound,
    work_lower_bound,
)
from .core.platform import Platform
from .core.trace import format_trace, memory_timeline, trace_schedule
from .core.validation import ScheduleError, validate_schedule
from .dags.daggen import random_dag
from .dags.linalg import cholesky_dag, lu_dag
from .dags.toy import dex
from .experiments.config import SCALES, get_scale
from .experiments.figures import EXPERIMENTS
from .ilp import solve_ilp
from .io.dot import to_dot
from .io.gantt import ascii_gantt, memory_sparkline, schedule_summary
from .io.json_io import load_graph, load_schedule, save_graph, save_schedule
from .scheduling.kernel import available_backends, resolve_backend
from .scheduling.registry import ENGINE_OPTIONED, SCHEDULERS, get_scheduler
from .scheduling.state import InfeasibleScheduleError


def _maybe_trace(args: argparse.Namespace, *ident: object):
    """Scope a span tracer to the command when ``--trace FILE`` was given
    (deterministic trace id derived from the invocation); a no-op
    otherwise, so untraced runs stay on the zero-overhead path."""
    path = getattr(args, "trace", None)
    if not path:
        return nullcontext()
    return obs.observing(path, trace_ident=ident)


def _platform_from_args(args: argparse.Namespace) -> Platform:
    if getattr(args, "mems", None) and not getattr(args, "procs", None):
        raise SystemExit("error: --mems requires --procs "
                         "(use --mem-blue/--mem-red on dual platforms)")
    speeds = None
    if getattr(args, "speeds", None):
        try:
            speeds = [float(s) for s in args.speeds.split(",")]
        except ValueError as exc:
            raise SystemExit(f"error: invalid --speeds: {exc}") from None
    try:
        if getattr(args, "procs", None):
            counts = [int(n) for n in args.procs.split(",")]
            if args.mems:
                caps = [math.inf if m in ("inf", "") else float(m)
                        for m in args.mems.split(",")]
            else:
                caps = [math.inf] * len(counts)
            return Platform(counts, caps, speeds=speeds)
        return Platform(
            n_blue=args.blue,
            n_red=args.red,
            mem_blue=math.inf if args.mem_blue is None else args.mem_blue,
            mem_red=math.inf if args.mem_red is None else args.mem_red,
            speeds=speeds,
        )
    except ValueError as exc:
        raise SystemExit(
            f"error: invalid --procs/--mems/--speeds: {exc}") from None


def _add_platform_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--blue", type=int, default=1, help="blue (CPU) processors")
    parser.add_argument("--red", type=int, default=1, help="red (GPU) processors")
    parser.add_argument("--mem-blue", type=float, default=None,
                        help="blue memory capacity (default: unbounded)")
    parser.add_argument("--mem-red", type=float, default=None,
                        help="red memory capacity (default: unbounded)")
    parser.add_argument("--procs", default=None, metavar="N0,N1,...",
                        help="k-memory platform: processors per memory class "
                             "(overrides --blue/--red)")
    parser.add_argument("--mems", default=None, metavar="M0,M1,...",
                        help="k-memory capacities per class ('inf' allowed; "
                             "requires --procs)")
    parser.add_argument("--speeds", default=None, metavar="S0,S1,...",
                        help="per-processor relative speeds in global "
                             "processor order (one entry per processor; "
                             "default: all 1.0 — the paper's homogeneous "
                             "model)")


def cmd_generate(args: argparse.Namespace) -> int:
    if args.kind == "daggen":
        graph = random_dag(size=args.size, width=args.width, density=args.density,
                           jumps=args.jumps, rng=args.seed)
    elif args.kind == "lu":
        graph = lu_dag(args.tiles)
    elif args.kind == "cholesky":
        graph = cholesky_dag(args.tiles)
    elif args.kind == "dex":
        graph = dex()
    else:  # pragma: no cover - argparse choices prevent this
        raise ValueError(args.kind)
    if args.output:
        save_graph(graph, args.output)
        print(f"wrote {graph.n_tasks} tasks / {graph.n_edges} edges to {args.output}")
    if args.dot:
        print(to_dot(graph))
    if not args.output and not args.dot:
        print(f"{graph.name}: {graph.n_tasks} tasks, {graph.n_edges} edges "
              "(use -o/--dot to export)")
    return 0


def _check_classes(graph, platform, *, dual_only: bool = False) -> bool:
    """Validate graph/platform arity; prints the error and returns False."""
    if graph.n_classes != platform.n_classes:
        print(f"error: graph has {graph.n_classes} memory classes but the "
              f"platform has {platform.n_classes}", file=sys.stderr)
        return False
    if dual_only and platform.n_classes != 2:
        print("error: this subcommand only supports dual-memory (k=2) "
              "platforms", file=sys.stderr)
        return False
    return True


def cmd_schedule(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph)
    platform = _platform_from_args(args)
    scheduler = get_scheduler(args.algo)
    if not _check_classes(graph, platform):
        return 2
    try:
        with _maybe_trace(args, "schedule", args.graph, args.algo):
            schedule = scheduler(graph, platform, backend=args.kernel)
    except InfeasibleScheduleError as exc:
        print(f"INFEASIBLE: {exc}", file=sys.stderr)
        return 2
    if args.trace:
        print(f"wrote trace to {args.trace}", file=sys.stderr)
    peaks = validate_schedule(graph, platform, schedule)
    print(f"algorithm : {args.algo}")
    if args.verbose:
        print(f"kernel    : {resolve_backend(args.kernel).name} "
              f"(available: {', '.join(available_backends())})")
    print(f"makespan  : {schedule.makespan:g}")
    print("peaks     : " + " ".join(f"{m.value}={v:g}" for m, v in peaks.items()))
    if args.gantt:
        print(ascii_gantt(schedule))
        for memory in platform.memories():
            timeline = memory_timeline(graph, platform, schedule, memory)
            spark = memory_sparkline(timeline, platform.capacity(memory),
                                     span=schedule.makespan)
            print(f"{memory.value:>5} mem {spark}")
    if args.summary:
        print(schedule_summary(schedule))
    if args.events:
        print(format_trace(trace_schedule(graph, platform, schedule)))
    if args.output:
        save_schedule(schedule, args.output)
        print(f"wrote schedule to {args.output}")
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph)
    schedule = load_schedule(args.schedule)
    try:
        peaks = validate_schedule(graph, schedule.platform, schedule)
    except ScheduleError as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        return 2
    print(f"valid schedule; makespan={schedule.makespan:g}; "
          f"peaks={{{', '.join(f'{m.value}: {v:g}' for m, v in peaks.items())}}}")
    return 0


def cmd_bounds(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph)
    platform = _platform_from_args(args)
    if not _check_classes(graph, platform):
        return 2
    print(f"critical path : {critical_path_lower_bound(graph, platform):g}")
    print(f"work          : {work_lower_bound(graph, platform):g}")
    print(f"split work    : {split_work_lower_bound(graph, platform):g}")
    print(f"lower bound   : {lower_bound(graph, platform):g}")
    return 0


def cmd_ilp(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph)
    platform = _platform_from_args(args)
    if not _check_classes(graph, platform, dual_only=True):
        return 2
    if platform.is_heterogeneous:
        print("error: the exact ILP only models homogeneous (all speed "
              "1.0) platforms", file=sys.stderr)
        return 2
    sol = solve_ilp(graph, platform, node_limit=args.node_limit,
                    time_limit=args.time_limit)
    print(f"status      : {sol.status}")
    print(f"makespan    : {sol.makespan}")
    print(f"lower bound : {sol.lower_bound:g}")
    print(f"nodes       : {sol.nodes} ({sol.runtime:.2f}s)")
    if sol.schedule is not None and args.gantt:
        print(ascii_gantt(sol.schedule))
    return 0 if sol.status in ("optimal", "feasible") else 2


def cmd_experiment(args: argparse.Namespace) -> int:
    scale = get_scale(args.scale)
    if args.resume and not args.checkpoint:
        raise SystemExit("error: --resume requires --checkpoint")
    executor = None

    def run():
        if args.checkpoint:
            from .experiments.checkpoint import CheckpointError, checkpointing
            try:
                with checkpointing(args.checkpoint, resume=args.resume) \
                        as ckpt:
                    result = EXPERIMENTS[args.figure](scale, jobs=args.jobs)
                stats = ckpt.stats()
                print(f"checkpoint {stats['path']}: {stats['replayed']} "
                      f"cells replayed, {stats['recorded']} recorded",
                      file=sys.stderr)
                return result
            except CheckpointError as exc:
                raise SystemExit(f"error: {exc}") from None
        return EXPERIMENTS[args.figure](scale, jobs=args.jobs)

    with _maybe_trace(args, "experiment", args.figure, args.scale or ""):
        with obs.span("experiment", figure=args.figure):
            if args.hosts:
                from .experiments.remote import RemoteExecutor, remote_hosts
                hosts = [h for h in args.hosts.split(",") if h.strip()]
                try:
                    executor = RemoteExecutor(hosts)
                except ValueError as exc:
                    raise SystemExit(
                        f"error: invalid --hosts: {exc}") from None
                with remote_hosts(executor):
                    result = run()
            else:
                result = run()
    if args.trace:
        print(f"wrote trace to {args.trace}", file=sys.stderr)
    print(result)
    if executor is not None:
        # Dispatch accounting to stderr: stdout stays byte-identical to
        # the serial run (the CI distributed smoke relies on that).
        from .experiments.remote import format_host_stats
        for line in format_host_stats(executor.stats()):
            print(line, file=sys.stderr)
    if args.csv:
        from ._util import atomic_write_text
        from .experiments.report import (
            absolute_to_csv,
            heterogeneity_to_csv,
            sweep_to_csv,
        )
        from .experiments.sweep import (
            AbsoluteSweepResult,
            HeterogeneitySweepResult,
            SweepResult,
        )
        data = result.data
        if isinstance(data, dict):  # fig10 carries two sweeps
            data = data.get("heuristics", data)
        if isinstance(data, SweepResult):
            atomic_write_text(args.csv, sweep_to_csv(data))
        elif isinstance(data, AbsoluteSweepResult):
            atomic_write_text(args.csv, absolute_to_csv(data))
        elif isinstance(data, HeterogeneitySweepResult):
            atomic_write_text(args.csv, heterogeneity_to_csv(data))
        else:
            print(f"--csv not supported for {args.figure}", file=sys.stderr)
            return 2
        print(f"wrote CSV to {args.csv}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from .service.server import serve
    return serve(args.host, args.port, workers=args.workers,
                 cache_size=args.cache_size, cache_dir=args.cache_dir,
                 max_connections=args.max_connections,
                 idle_timeout=args.idle_timeout)


def _print_response(resp, graph_path: str) -> None:
    cache = {True: "hit", False: "miss", None: "?"}[resp.cached]
    print(f"graph     : {graph_path}")
    print(f"algorithm : {resp.algorithm}")
    print(f"makespan  : {resp.makespan:g}")
    print(f"peaks     : {' '.join(f'{v:g}' for v in resp.peaks)}")
    print(f"cache     : {cache}  (digest {resp.digest[:16]}...)")


def cmd_submit(args: argparse.Namespace) -> int:
    from .service.client import ServiceClient

    if args.output and len(args.graphs) > 1:
        print("error: -o/--output only applies to a single graph",
              file=sys.stderr)
        return 2
    platform = _platform_from_args(args)
    graphs = [load_graph(p) for p in args.graphs]
    options = {}
    if args.comm_policy != "late":
        options["comm_policy"] = args.comm_policy
    client = ServiceClient(args.host, args.port, timeout=args.timeout,
                           deadline=args.timeout)
    try:
        with _maybe_trace(args, "submit", tuple(args.graphs), args.algo), \
                obs.span("submit", algorithm=args.algo,
                         n_graphs=len(graphs)):
            return _run_submit(args, client, graphs, platform, options)
    finally:
        client.close()


def _run_submit(args, client, graphs, platform, options) -> int:
    from .service.client import ServiceClientError
    try:
        client.wait_until_ready(args.wait)
        if len(graphs) == 1:
            resp = client.schedule(graphs[0], platform, args.algo,
                                   options or None)
            responses = [resp]
            _print_response(resp, args.graphs[0])
        else:
            results = client.batch(
                [(g, platform, args.algo, options or None) for g in graphs])
            responses = []
            for path, res in zip(args.graphs, results):
                if isinstance(res, ServiceClientError):
                    print(f"{path}: ERROR [{res.err_type}] {res.message}",
                          file=sys.stderr)
                else:
                    responses.append(res)
                    print(f"{path}: makespan={res.makespan:g} "
                          f"cache={'hit' if res.cached else 'miss'}")
            if len(responses) != len(graphs):
                return 2
    except ServiceClientError as exc:
        if exc.err_type == "infeasible":
            print(f"INFEASIBLE: {exc.message}", file=sys.stderr)
        else:
            print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.output:
        from ._util import atomic_write_json
        atomic_write_json(args.output, responses[0].schedule)
        print(f"wrote schedule to {args.output}")
    return 0


def cmd_online_trace(args: argparse.Namespace) -> int:
    from .online import poisson_trace, write_trace, zero_release

    try:
        trace = poisson_trace(args.n, seed=args.seed, rate=args.rate,
                              ident=args.ident, size=args.size,
                              width=args.width, density=args.density,
                              jumps=args.jumps, tick=args.tick)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.zero_release:
        trace = zero_release(trace)
    write_trace(trace, args.output)
    releases = [row["release"] for row in trace]
    print(f"wrote {len(trace)} arrivals to {args.output} "
          f"(releases {min(releases):g}..{max(releases):g}, "
          f"{len(set(releases))} distinct)")
    return 0


def cmd_online_run(args: argparse.Namespace) -> int:
    from .online import read_trace, simulate

    try:
        trace = read_trace(args.arrivals)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read trace {args.arrivals!r}: {exc}",
              file=sys.stderr)
        return 2
    platform = _platform_from_args(args)
    backend = resolve_backend(args.kernel) if args.kernel else None
    try:
        with _maybe_trace(args, "online-run", args.algo, args.policy,
                          len(trace)):
            result = simulate(trace, platform, algorithm=args.algo,
                              policy=args.policy,
                              comm_policy=args.comm_policy,
                              backend=backend)
    except (InfeasibleScheduleError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    stats = result.latency_stats()
    clairvoyant = result.clairvoyant_makespan()
    regret = result.regret(clairvoyant)
    print(f"{args.algo} policy={result.session.policy.name}: "
          f"{len(trace)} jobs in {stats['n_rounds']} rounds")
    print(f"makespan    {result.makespan:g}  "
          f"(clairvoyant {clairvoyant:g}, regret {regret * 100.0:+.1f}%)")
    print(f"decision ms p50={stats['p50_ms']:g} p99={stats['p99_ms']:g} "
          f"max={stats['max_ms']:g}")
    if args.journal:
        from ._util import atomic_write_text
        atomic_write_text(args.journal, result.journal())
        print(f"wrote decision journal to {args.journal}")
    return 0


def cmd_online_replay(args: argparse.Namespace) -> int:
    """Replay an arrival trace against a running service session —
    byte-identical journals across replays of one trace are the CI
    determinism gate."""
    from .online import read_trace
    from .service.client import ServiceClient, ServiceClientError

    try:
        trace = read_trace(args.arrivals)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read trace {args.arrivals!r}: {exc}",
              file=sys.stderr)
        return 2
    platform = _platform_from_args(args)
    try:
        with ServiceClient(host=args.host, port=args.port,
                           timeout=args.timeout) as client:
            client.wait_until_ready(timeout=args.wait)
            for k, row in enumerate(trace):
                client.submit_job(
                    row["graph"], session=args.session,
                    release=float(row.get("release", 0.0)),
                    job_id=row.get("job"),
                    platform=platform if k == 0 else None,
                    algorithm=args.algo if k == 0 else None,
                    policy=args.policy if k == 0 else None,
                    flush=(k == len(trace) - 1))
            info = client.session_info(args.session)
    except ServiceClientError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    summary = info["summary"]
    print(f"session {args.session!r}: {summary['n_planned']} of "
          f"{summary['n_jobs']} jobs planned in {summary['n_rounds']} "
          f"rounds, makespan {summary['makespan']:g}")
    if args.journal:
        from ._util import atomic_write_text
        atomic_write_text(args.journal, info["journal"])
        print(f"wrote decision journal to {args.journal}")
    return 0


def cmd_obs_report(args: argparse.Namespace) -> int:
    from .obs import report

    try:
        events = report.load_trace(args.trace)
    except OSError as exc:
        print(f"error: cannot read trace {args.trace!r}: {exc}",
              file=sys.stderr)
        return 2
    summary = report.summarize(events)
    print(report.format_report(summary))
    rc = 0
    if summary["orphans"]:
        print(f"error: {len(summary['orphans'])} orphan span(s) — the "
              f"trace is incomplete", file=sys.stderr)
        rc = 1
    if args.expect_cells is not None:
        seen = set(report.cell_indices(events))
        missing = sorted(set(range(args.expect_cells)) - seen)
        if missing:
            shown = ", ".join(str(i) for i in missing[:10])
            print(f"error: {len(missing)} of {args.expect_cells} cells "
                  f"missing from the trace (first: {shown})",
                  file=sys.stderr)
            rc = 1
        else:
            print(f"all {args.expect_cells} cells present in the trace")
    if args.expect_arrivals is not None:
        seen = set(report.arrival_indices(events))
        missing = sorted(set(range(args.expect_arrivals)) - seen)
        if missing:
            shown = ", ".join(str(i) for i in missing[:10])
            print(f"error: {len(missing)} of {args.expect_arrivals} "
                  f"arrivals have no decision span (first: {shown})",
                  file=sys.stderr)
            rc = 1
        else:
            print(f"all {args.expect_arrivals} arrival decisions present "
                  f"in the trace")
    return rc


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="memsched",
        description="Memory-aware list scheduling for hybrid platforms "
                    "(Herrmann, Marchal & Robert, 2014).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="generate a task graph")
    p.add_argument("--kind", choices=("daggen", "lu", "cholesky", "dex"),
                   default="daggen")
    p.add_argument("--size", type=int, default=30, help="tasks (daggen)")
    p.add_argument("--width", type=float, default=0.3)
    p.add_argument("--density", type=float, default=0.5)
    p.add_argument("--jumps", type=int, default=5)
    p.add_argument("--tiles", type=int, default=4, help="tiles (lu/cholesky)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("-o", "--output", help="write graph JSON here")
    p.add_argument("--dot", action="store_true", help="print DOT to stdout")
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("schedule", help="schedule a graph with a heuristic")
    p.add_argument("graph", help="graph JSON file")
    p.add_argument("--algo", choices=sorted(SCHEDULERS), default="memheft")
    p.add_argument("--kernel",
                   choices=("auto", "scalar", "numpy", "compiled"),
                   default=None,
                   help="EST kernel backend (default: MEMSCHED_KERNEL env "
                        "or auto-detect; results are bit-identical)")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="also print the resolved kernel backend and the "
                        "backends available on this interpreter")
    _add_platform_args(p)
    p.add_argument("--gantt", action="store_true",
                   help="ASCII Gantt chart + memory sparklines")
    p.add_argument("--summary", action="store_true")
    p.add_argument("--events", action="store_true",
                   help="time-ordered event log with memory occupancy")
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="write a deterministic span trace (JSONL) of the "
                        "scheduler run here (see 'memsched obs report')")
    p.add_argument("-o", "--output", help="write schedule JSON here")
    p.set_defaults(func=cmd_schedule)

    p = sub.add_parser("validate", help="validate a schedule against a graph")
    p.add_argument("graph")
    p.add_argument("schedule")
    p.set_defaults(func=cmd_validate)

    p = sub.add_parser("bounds", help="print makespan lower bounds")
    p.add_argument("graph")
    _add_platform_args(p)
    p.set_defaults(func=cmd_bounds)

    p = sub.add_parser("ilp", help="solve the exact ILP (small graphs)")
    p.add_argument("graph")
    _add_platform_args(p)
    p.add_argument("--node-limit", type=int, default=20000)
    p.add_argument("--time-limit", type=float, default=60.0)
    p.add_argument("--gantt", action="store_true")
    p.set_defaults(func=cmd_ilp)

    p = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p.add_argument("figure", choices=sorted(EXPERIMENTS))
    p.add_argument("--scale", choices=sorted(SCALES), default=None)
    p.add_argument("--csv", help="also write the series as CSV here")
    p.add_argument("-j", "--jobs", type=int, default=1,
                   help="shard the sweep grid over N worker processes "
                        "(0 = one per CPU; identical results for any N)")
    p.add_argument("--hosts", default=None, metavar="H1:P1,H2:P2",
                   help="shard the sweep grid over running 'memsched "
                        "serve' hosts instead of local processes "
                        "(weighted by each host's --workers; identical "
                        "results, asserted by tests/CI)")
    p.add_argument("--checkpoint", default=None, metavar="CK.jsonl",
                   help="journal each completed cell here (content-"
                        "addressed, CRC-per-line) so a crashed campaign "
                        "can be resumed")
    p.add_argument("--resume", action="store_true",
                   help="continue from an existing --checkpoint journal: "
                        "replay completed cells, re-execute only the "
                        "unfinished ones (byte-identical output)")
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="write a deterministic span trace (JSONL) of the "
                        "sweep here — one span per cell, per host request, "
                        "per map_cells call (see 'memsched obs report')")
    p.set_defaults(func=cmd_experiment)

    p = sub.add_parser("serve", help="run the async scheduling service")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8123)
    p.add_argument("-w", "--workers", type=int, default=1,
                   help="process-pool size for /batch fan-out "
                        "(1 = schedule in-process)")
    p.add_argument("--cache-size", type=int, default=1024,
                   help="content-addressed schedule cache capacity (entries)")
    p.add_argument("--cache-dir", default=None,
                   help="persist the schedule cache here and reload it on "
                        "restart (eviction order preserved; default: "
                        "in-memory only)")
    p.add_argument("--max-connections", type=int, default=None,
                   help="concurrent-connection cap; extra connections get "
                        "a 503 (default: unlimited)")
    p.add_argument("--idle-timeout", type=float, default=None,
                   help="close keep-alive connections idle for this many "
                        "seconds (default: never)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("submit",
                       help="submit graphs to a running scheduling service")
    p.add_argument("graphs", nargs="+", metavar="graph",
                   help="graph JSON file(s); several go as one /batch")
    p.add_argument("--algo", choices=sorted(SCHEDULERS), default="memheft")
    _add_platform_args(p)
    p.add_argument("--comm-policy", choices=("late", "eager"), default="late")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8123)
    p.add_argument("--timeout", type=float, default=60.0,
                   help="per-request timeout (seconds)")
    p.add_argument("--wait", type=float, default=10.0,
                   help="max seconds to wait for the service to come up")
    p.add_argument("-o", "--output",
                   help="write the returned schedule JSON here (single graph)")
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="write a deterministic span trace (JSONL) here; "
                        "the trace id also travels to the service as "
                        "X-Trace-Id")
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser("online",
                       help="online arrivals: traces, simulation, replay")
    online_sub = p.add_subparsers(dest="online_command", required=True)

    po = online_sub.add_parser(
        "trace", help="generate a seeded Poisson arrival trace (JSONL)")
    po.add_argument("-n", type=int, default=50, help="number of jobs")
    po.add_argument("--seed", type=int, default=0)
    po.add_argument("--rate", type=float, default=1.0,
                    help="arrival intensity (jobs per unit time)")
    po.add_argument("--tick", type=float, default=0.0,
                    help="quantize releases down to multiples of this "
                         "(0 = exact arrival times)")
    po.add_argument("--ident", default="poisson",
                    help="seed namespace (distinct idents draw distinct "
                         "streams for the same --seed)")
    po.add_argument("--size", type=int, default=12, help="tasks per job")
    po.add_argument("--width", type=float, default=0.4)
    po.add_argument("--density", type=float, default=0.5)
    po.add_argument("--jumps", type=int, default=3)
    po.add_argument("--zero-release", action="store_true",
                    help="force every release to 0 (the offline-identity "
                         "workload)")
    po.add_argument("-o", "--output", required=True,
                    help="write the trace JSONL here")
    po.set_defaults(func=cmd_online_trace)

    po = online_sub.add_parser(
        "run", help="simulate an arrival trace on one session timeline")
    po.add_argument("arrivals", metavar="TRACE",
                    help="arrival trace JSONL (see 'memsched online trace')")
    po.add_argument("--algo", choices=sorted(ENGINE_OPTIONED),
                    default="memheft")
    po.add_argument("--policy", default="immediate", metavar="POLICY",
                    help="arrival policy: immediate | batched:Q | replan:W")
    po.add_argument("--comm-policy", choices=("late", "eager"),
                    default="late")
    po.add_argument("--kernel",
                    choices=("auto", "scalar", "numpy", "compiled"),
                    default=None,
                    help="EST kernel backend (results are bit-identical)")
    _add_platform_args(po)
    po.add_argument("--journal", default=None, metavar="FILE",
                    help="write the deterministic decision journal here")
    po.add_argument("--trace", default=None, metavar="FILE",
                    help="write a span trace (arrival/plan/decision spans; "
                         "see 'memsched obs report --expect-arrivals')")
    po.set_defaults(func=cmd_online_run)

    po = online_sub.add_parser(
        "replay",
        help="replay an arrival trace into a running service session")
    po.add_argument("arrivals", metavar="TRACE")
    po.add_argument("--session", default="default",
                    help="service session name (a fresh name replays onto "
                         "a fresh timeline)")
    po.add_argument("--algo", choices=sorted(ENGINE_OPTIONED),
                    default="memheft")
    po.add_argument("--policy", default="immediate", metavar="POLICY")
    _add_platform_args(po)
    po.add_argument("--host", default="127.0.0.1")
    po.add_argument("--port", type=int, default=8123)
    po.add_argument("--timeout", type=float, default=60.0)
    po.add_argument("--wait", type=float, default=10.0,
                    help="max seconds to wait for the service to come up")
    po.add_argument("--journal", default=None, metavar="FILE",
                    help="write the session's decision journal here "
                         "(byte-identical across replays of one trace)")
    po.set_defaults(func=cmd_online_replay)

    p = sub.add_parser("obs", help="observability utilities")
    obs_sub = p.add_subparsers(dest="obs_command", required=True)
    pr = obs_sub.add_parser(
        "report", help="summarize a --trace span file (durations per span "
                       "name, roots, orphans)")
    pr.add_argument("trace", help="trace JSONL written by --trace FILE")
    pr.add_argument("--expect-cells", type=int, default=None, metavar="N",
                    help="fail (exit 1) unless the trace contains a cell "
                         "span for every grid index 0..N-1")
    pr.add_argument("--expect-arrivals", type=int, default=None,
                    metavar="N",
                    help="fail (exit 1) unless the trace contains a "
                         "decision span for every arrival index 0..N-1")
    pr.set_defaults(func=cmd_obs_report)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
