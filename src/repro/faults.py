"""Deterministic fault injection for chaos tests and CI.

Distributed campaigns must survive hosts dying mid-stream, dropped
connections, saturated services and corrupted journals — and the only way
to *test* that is to make those failures happen on demand, reproducibly.
This module provides seeded **fault plans**: a frozen description of what
to inject (rates, bounded occurrence limits, host blackout windows) whose
every decision is a pure function of ``(seed, site, counter)``.  Two runs
with the same plan draw the same event sequence — same plan digest ⇒ same
injected faults — so a chaos failure found in CI replays locally from
nothing but the plan string.

Injection sites are hooks compiled into the service transport
(:mod:`repro.service.server`), the client (:mod:`repro.service.client`),
the app's cell streamer (:mod:`repro.service.app`), the distributed
executor (:mod:`repro.experiments.remote`) and the checkpoint journal
(:mod:`repro.experiments.checkpoint`).  Every hook is gated on
``active()`` returning a live :class:`FaultInjector` — when no plan is
installed the hooks cost one global read and a ``None`` check.

Activation, in precedence order:

* programmatically — ``install(plan)`` / the :func:`fault_plan` context
  manager (tests);
* by environment — ``MEMSCHED_FAULT_PLAN="seed=7,drop=0.1,kill=1.0,
  kill_limit=1"`` (or a JSON object), read once per process on first use
  (CI chaos legs export it per command).

The plan format is a compact ``key=value`` list (see
:meth:`FaultPlan.parse`); rates are probabilities in ``[0, 1]``, limits
bound total occurrences (``-1`` = unbounded), ``blackout`` is ``+``-joined
``hostidx:from:len`` attempt windows, and ``crash_after=N`` makes the
*coordinator* exit hard (``os._exit(137)``) after recording N checkpoint
cells — the deterministic stand-in for ``kill -9`` mid-sweep.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Optional, Union

#: Environment variable carrying the plan spec (compact or JSON form).
ENV_VAR = "MEMSCHED_FAULT_PLAN"

#: Fault-plan schema revision, hashed into the digest: a plan string only
#: keeps its digest while its field semantics are unchanged.
PLAN_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class FaultPlan:
    """One reproducible fault schedule; every field has a do-nothing
    default, so a plan only states the faults it wants.

    Rates (``drop``/``delay``/``truncate``/``kill``/``corrupt``) are
    per-opportunity probabilities; the matching ``*_limit`` caps how many
    times the fault may fire in the process (``-1`` = no cap).  ``rate=1.0,
    limit=1`` is the deterministic "exactly the first opportunity" form
    the CI chaos smoke uses.
    """

    seed: int = 0
    #: Server drops an accepted connection without answering.
    drop: float = 0.0
    drop_limit: int = -1
    #: Server stalls ``delay_ms`` before handling a request.
    delay: float = 0.0
    delay_ms: float = 25.0
    delay_limit: int = -1
    #: The /cells NDJSON stream is cut mid-line (no sentinel).
    truncate: float = 0.0
    truncate_limit: int = -1
    #: A worker processing a /cells unit dies hard (``os._exit``); on a
    #: workers<=1 host this kills the whole serve process — a host kill.
    kill: float = 0.0
    kill_limit: int = -1
    #: A journal append writes a torn (half) line.
    corrupt: float = 0.0
    corrupt_limit: int = -1
    #: Client-side: drop the connection before sending a request.
    client_drop: float = 0.0
    client_drop_limit: int = -1
    #: Coordinator hard-exits after this many checkpoint cell records
    #: (0 = disabled).
    crash_after: int = 0
    #: Coordinator-side host blackout windows: ``(host_index,
    #: first_attempt, n_attempts)`` triples — requests to that host fail
    #: while its attempt counter is inside the window.
    blackout: tuple = ()

    # ------------------------------------------------------------------
    # parsing / rendering
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec: Union[str, dict, "FaultPlan", None]
              ) -> Optional["FaultPlan"]:
        """Parse a plan spec: compact ``k=v,k=v`` string, JSON object
        string, dict, an existing plan, or ``None``/empty → ``None``."""
        if spec is None or isinstance(spec, FaultPlan):
            return spec
        if isinstance(spec, dict):
            return cls._from_dict(spec)
        spec = spec.strip()
        if not spec:
            return None
        if spec.startswith("{"):
            try:
                data = json.loads(spec)
            except json.JSONDecodeError as exc:
                raise ValueError(f"invalid JSON fault plan: {exc}") from exc
            if not isinstance(data, dict):
                raise ValueError("JSON fault plan must be an object")
            return cls._from_dict(data)
        data = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            if not sep:
                raise ValueError(
                    f"fault plan item {part!r} is not 'key=value'")
            data[key.strip()] = value.strip()
        return cls._from_dict(data)

    @classmethod
    def _from_dict(cls, data: dict) -> "FaultPlan":
        fields = {f.name: f for f in dataclasses.fields(cls)}
        unknown = set(data) - set(fields)
        if unknown:
            raise ValueError(f"unknown fault plan fields: "
                             f"{sorted(unknown)} (known: {sorted(fields)})")
        kwargs: dict = {}
        for key, value in data.items():
            if key == "blackout":
                kwargs[key] = cls._parse_blackout(value)
            elif fields[key].type == "int" or isinstance(
                    fields[key].default, int):
                kwargs[key] = int(value)
            else:
                kwargs[key] = float(value)
        plan = cls(**kwargs)
        plan.validate()
        return plan

    @staticmethod
    def _parse_blackout(value) -> tuple:
        """``"0:2:4+1:0:2"`` / ``[[0, 2, 4], ...]`` → window triples."""
        if isinstance(value, str):
            entries = [w for w in value.split("+") if w.strip()]
            windows = []
            for entry in entries:
                parts = entry.split(":")
                if len(parts) != 3:
                    raise ValueError(
                        f"blackout window {entry!r} is not "
                        f"'hostidx:from:len'")
                windows.append(tuple(int(p) for p in parts))
            return tuple(windows)
        return tuple(tuple(int(p) for p in w) for w in value)

    def validate(self) -> None:
        for name in ("drop", "delay", "truncate", "kill", "corrupt",
                     "client_drop"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"fault rate {name}={rate} outside [0, 1]")
        if self.delay_ms < 0 or self.crash_after < 0:
            raise ValueError("delay_ms and crash_after must be >= 0")
        for window in self.blackout:
            idx, start, length = window
            if idx < 0 or start < 0 or length < 1:
                raise ValueError(f"bad blackout window {window}")

    def to_dict(self) -> dict:
        out = dataclasses.asdict(self)
        out["blackout"] = [list(w) for w in self.blackout]
        return out

    def digest(self) -> str:
        """Content address of the plan (and its schema revision): equal
        digests guarantee equal injected event sequences."""
        payload = json.dumps(
            {"schema": PLAN_SCHEMA_VERSION, "plan": self.to_dict()},
            sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    @property
    def enabled(self) -> bool:
        return self != FaultPlan(seed=self.seed)


class FaultInjector:
    """Executes one :class:`FaultPlan`: every decision is drawn from
    ``sha256(seed:site:counter)`` with a per-site monotonic counter, so
    the event sequence is a pure function of the plan — independent of
    timing, thread interleaving of *different* sites, and host speed.
    Counters are lock-protected: concurrent draws at one site serialize.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        self._counters: dict = {}
        self._fired: dict = {}
        #: Chronological (site, draw_index, fired) log for reproducibility
        #: checks and the fault bench.
        self.events: list = []

    # ------------------------------------------------------------------
    # deterministic draws
    # ------------------------------------------------------------------
    def _draw(self, site: str, k: int) -> float:
        digest = hashlib.sha256(
            f"{self.plan.seed}:{site}:{k}".encode()).digest()
        return int.from_bytes(digest[:8], "big") / 2.0 ** 64

    def fire(self, site: str, rate: float, limit: int = -1) -> bool:
        """One injection opportunity at ``site``; True = inject.

        The draw is consumed even when the limit is already exhausted, so
        the per-site random sequence — and therefore every *other*
        decision — is unchanged by how many events a limit let through.
        """
        if rate <= 0.0:
            return False
        with self._lock:
            k = self._counters.get(site, 0)
            self._counters[site] = k + 1
            fired = self._draw(site, k) < rate
            if fired and limit >= 0 and self._fired.get(site, 0) >= limit:
                fired = False
            if fired:
                self._fired[site] = self._fired.get(site, 0) + 1
            self.events.append((site, k, fired))
            return fired

    def pick(self, site: str, n: int) -> int:
        """Deterministic choice in ``range(n)`` (e.g. which row to cut a
        stream at), advancing the site's counter like :meth:`fire`."""
        with self._lock:
            k = self._counters.get(site, 0)
            self._counters[site] = k + 1
            return int(self._draw(site, k) * n) % max(1, n)

    def in_blackout(self, host_index: int, attempt: int) -> bool:
        """Whether ``attempt`` (0-based per-host request counter) falls in
        one of the plan's blackout windows for ``host_index``."""
        for idx, start, length in self.plan.blackout:
            if idx == host_index and start <= attempt < start + length:
                return True
        return False

    def crash_due(self, n_recorded: int) -> bool:
        """Whether the coordinator must hard-exit after ``n_recorded``
        checkpoint records (the deterministic ``kill -9`` stand-in)."""
        return 0 < self.plan.crash_after <= n_recorded

    def summary(self) -> dict:
        """Per-site opportunity/fired counts plus the plan digest —
        surfaced in ``/healthz`` and ``BENCH_faults.json``."""
        with self._lock:
            sites = sorted(self._counters)
            return {
                "plan_digest": self.plan.digest(),
                "sites": {s: {"draws": self._counters[s],
                              "fired": self._fired.get(s, 0)}
                          for s in sites},
            }


# ----------------------------------------------------------------------
# process-wide activation
# ----------------------------------------------------------------------
_ACTIVE: Optional[FaultInjector] = None
_ENV_LOADED = False
_ENV_LOCK = threading.Lock()


def install(plan: Union[FaultPlan, FaultInjector, str, dict, None]
            ) -> Optional[FaultInjector]:
    """Install a process-wide injector (replacing any); ``None`` clears.
    Returns the installed injector."""
    global _ACTIVE, _ENV_LOADED
    with _ENV_LOCK:
        _ENV_LOADED = True   # explicit install wins over the environment
        if plan is None:
            _ACTIVE = None
        elif isinstance(plan, FaultInjector):
            _ACTIVE = plan
        else:
            parsed = FaultPlan.parse(plan)
            _ACTIVE = FaultInjector(parsed) if parsed is not None else None
        return _ACTIVE


def deactivate() -> None:
    install(None)


def plan_from_env() -> Optional[FaultPlan]:
    """The plan described by :data:`ENV_VAR`, or ``None``."""
    return FaultPlan.parse(os.environ.get(ENV_VAR))


def active() -> Optional[FaultInjector]:
    """The live injector, lazily loading :data:`ENV_VAR` on first call
    (once per process); ``None`` when fault injection is off — the hot
    hooks check exactly this."""
    global _ACTIVE, _ENV_LOADED
    if not _ENV_LOADED:
        with _ENV_LOCK:
            if not _ENV_LOADED:
                plan = plan_from_env()
                if plan is not None:
                    _ACTIVE = FaultInjector(plan)
                _ENV_LOADED = True
    return _ACTIVE


@contextmanager
def fault_plan(plan: Union[FaultPlan, FaultInjector, str, dict]):
    """Scope an injector to a block (tests); restores the previous one."""
    global _ACTIVE
    with _ENV_LOCK:
        previous = _ACTIVE
    injector = install(plan)
    try:
        yield injector
    finally:
        with _ENV_LOCK:
            _ACTIVE = previous
