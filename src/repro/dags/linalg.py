"""Tiled dense linear-algebra task graphs (paper §6.1.2).

Builds the LU and Cholesky factorisation DAGs of a ``t x t`` tiled matrix,
with the broadcast of a kernel's output to its multiple consumers modelled —
exactly as in the paper — by a *linear pipeline of fictitious null-time
tasks* so that every node forwards its file to at most two successors.

Kernel processing times come from Table 1 (192x192 double-precision tiles on
the *mirage* platform, in ms).  The report gives a single number per kernel;
we ship those as the CPU (blue) times and derive GPU (red) times with
per-kernel acceleration factors (``DEFAULT_GPU_SPEEDUP``, overridable), since
compute-bound kernels (GEMM/SYRK) accelerate far better on a GPU than
panel factorisations (GETRF/POTRF).  This substitution is recorded in
DESIGN.md §5.  CPU->GPU transfer of one tile costs 50 ms, and every file is
one tile (``F = 1``), so memory is measured in tiles (§6.1.2).
"""

from __future__ import annotations

from typing import Hashable, Mapping, Optional, Sequence

from ..core.graph import TaskGraph

Task = Hashable

#: Table 1 — average kernel running time on a 192x192 tile (milliseconds).
KERNEL_TIMES_MS: dict[str, float] = {
    "getrf": 450.0,
    "gemm": 1450.0,
    "trsm_l": 990.0,
    "trsm_u": 830.0,
    "potrf": 450.0,
    "syrk": 990.0,
}

#: Per-kernel GPU acceleration over the CPU time (our Table-1 split; see
#: module docstring).  Panel factorisations barely accelerate, BLAS3 updates
#: accelerate strongly.
DEFAULT_GPU_SPEEDUP: dict[str, float] = {
    "getrf": 2.0,
    "potrf": 2.0,
    "gemm": 10.0,
    "trsm_l": 5.0,
    "trsm_u": 5.0,
    "syrk": 8.0,
}

#: Average observed CPU<->GPU transfer time for one tile (ms, §6.1.2).
TILE_COMM_MS: float = 50.0
#: Every file is one tile; memory bounds are expressed in tiles.
TILE_SIZE: float = 1.0


def _kernel_times(kernel: str,
                  times: Mapping[str, float],
                  speedup: Mapping[str, float]) -> tuple[float, float]:
    cpu = times[kernel]
    return cpu, cpu / speedup[kernel]


def _add_kernel(g: TaskGraph, task: Task, kernel: str,
                times: Mapping[str, float], speedup: Mapping[str, float]) -> Task:
    w_blue, w_red = _kernel_times(kernel, times, speedup)
    return g.add_task(task, w_blue=w_blue, w_red=w_red)


def _broadcast(g: TaskGraph, producer: Task, consumers: Sequence[Task],
               *, size: float, comm: float) -> int:
    """Connect ``producer`` to every consumer through a linear pipeline of
    fictitious null-time tasks; returns the number of fictitious tasks.

    With ``q`` consumers the pipeline has ``q - 1`` stages: the producer and
    every stage forward the (one-tile) file to one consumer and to the next
    stage, so no node has to keep more than two output files alive.
    """
    q = len(consumers)
    if q == 0:
        return 0
    if q == 1:
        g.add_dependency(producer, consumers[0], size=size, comm=comm)
        return 1 - 1
    current = producer
    added = 0
    for idx, consumer in enumerate(consumers):
        if idx < q - 1:
            stage: Task = ("bc", producer, idx)
            g.add_task(stage, 0.0, 0.0)
            g.add_dependency(current, stage, size=size, comm=comm)
            g.add_dependency(stage, consumer, size=size, comm=comm)
            current = stage
            added += 1
        else:
            g.add_dependency(current, consumer, size=size, comm=comm)
    return added


# ----------------------------------------------------------------------
# LU factorisation
# ----------------------------------------------------------------------
def lu_dag(
    tiles: int,
    *,
    times: Optional[Mapping[str, float]] = None,
    speedup: Optional[Mapping[str, float]] = None,
    comm_ms: float = TILE_COMM_MS,
    tile_size: float = TILE_SIZE,
) -> TaskGraph:
    """Task graph of the right-looking tiled LU factorisation (no pivoting).

    Step ``k`` factors the diagonal tile with GETRF, eliminates row ``k``
    (TRSM_L) and column ``k`` (TRSM_U), then updates the trailing matrix with
    GEMM; GETRF and TRSM outputs are broadcast through fictitious pipelines.
    Real-kernel count is ``t(t+1)(2t+1)/6`` (~``t^3/3``); with pipelines the
    DAG grows to ~``t^3`` nodes, cubic as in the paper.
    """
    if tiles < 1:
        raise ValueError("tiles must be >= 1")
    times = dict(KERNEL_TIMES_MS) if times is None else dict(times)
    speedup = dict(DEFAULT_GPU_SPEEDUP) if speedup is None else dict(speedup)
    g = TaskGraph(name=f"lu{tiles}x{tiles}")
    t = tiles

    for k in range(t):
        _add_kernel(g, ("getrf", k), "getrf", times, speedup)
        for j in range(k + 1, t):
            _add_kernel(g, ("trsm_l", k, j), "trsm_l", times, speedup)  # row k
            _add_kernel(g, ("trsm_u", j, k), "trsm_u", times, speedup)  # column k
        for i in range(k + 1, t):
            for j in range(k + 1, t):
                _add_kernel(g, ("gemm", k, i, j), "gemm", times, speedup)

    def next_on_tile(k: int, i: int, j: int) -> Task:
        """Task consuming tile ``(i, j)`` at step ``k + 1``."""
        if i == k + 1 and j == k + 1:
            return ("getrf", k + 1)
        if i == k + 1:
            return ("trsm_l", k + 1, j)
        if j == k + 1:
            return ("trsm_u", i, k + 1)
        return ("gemm", k + 1, i, j)

    for k in range(t):
        # GETRF -> all TRSMs of step k (broadcast).
        trsms = [("trsm_l", k, j) for j in range(k + 1, t)]
        trsms += [("trsm_u", i, k) for i in range(k + 1, t)]
        _broadcast(g, ("getrf", k), trsms, size=tile_size, comm=comm_ms)
        # TRSM -> GEMMs (broadcasts along the row / the column).
        for j in range(k + 1, t):
            consumers = [("gemm", k, i, j) for i in range(k + 1, t)]
            _broadcast(g, ("trsm_l", k, j), consumers, size=tile_size, comm=comm_ms)
        for i in range(k + 1, t):
            consumers = [("gemm", k, i, j) for j in range(k + 1, t)]
            _broadcast(g, ("trsm_u", i, k), consumers, size=tile_size, comm=comm_ms)
        # GEMM -> the step-(k+1) task on the same tile (single consumer).
        for i in range(k + 1, t):
            for j in range(k + 1, t):
                g.add_dependency(("gemm", k, i, j), next_on_tile(k, i, j),
                                 size=tile_size, comm=comm_ms)
    return g


def lu_task_counts(tiles: int) -> dict[str, int]:
    """Closed-form node counts of :func:`lu_dag` (kernels + fictitious)."""
    t = tiles
    counts = {
        "getrf": t,
        "trsm_l": t * (t - 1) // 2,
        "trsm_u": t * (t - 1) // 2,
        "gemm": sum((t - k - 1) ** 2 for k in range(t)),
    }
    fict = 0
    for k in range(t):
        j = t - k - 1
        if 2 * j >= 2:
            fict += 2 * j - 1  # getrf broadcast
        if j >= 2:
            fict += 2 * j * (j - 1)  # the 2j TRSM broadcasts, j-1 stages each
    counts["fictitious"] = fict
    counts["total"] = sum(counts.values())
    return counts


# ----------------------------------------------------------------------
# Cholesky factorisation
# ----------------------------------------------------------------------
def cholesky_dag(
    tiles: int,
    *,
    times: Optional[Mapping[str, float]] = None,
    speedup: Optional[Mapping[str, float]] = None,
    comm_ms: float = TILE_COMM_MS,
    tile_size: float = TILE_SIZE,
) -> TaskGraph:
    """Task graph of the tiled Cholesky factorisation (lower-triangular).

    Step ``k``: POTRF on the diagonal tile, TRSM down column ``k``
    (broadcast from POTRF), SYRK updates of the remaining diagonal and GEMM
    updates of the strictly-lower trailing tiles (operands broadcast from
    the TRSMs).  Works on the lower half of the matrix only — hence roughly
    half the tiles of LU, as the paper notes for Figure 15.
    """
    if tiles < 1:
        raise ValueError("tiles must be >= 1")
    times = dict(KERNEL_TIMES_MS) if times is None else dict(times)
    speedup = dict(DEFAULT_GPU_SPEEDUP) if speedup is None else dict(speedup)
    g = TaskGraph(name=f"cholesky{tiles}x{tiles}")
    t = tiles

    for k in range(t):
        _add_kernel(g, ("potrf", k), "potrf", times, speedup)
        for i in range(k + 1, t):
            _add_kernel(g, ("trsm", i, k), "trsm_l", times, speedup)
            _add_kernel(g, ("syrk", k, i), "syrk", times, speedup)
            for j in range(k + 1, i):
                _add_kernel(g, ("gemm", k, i, j), "gemm", times, speedup)

    for k in range(t):
        # POTRF -> column TRSMs.
        consumers = [("trsm", i, k) for i in range(k + 1, t)]
        _broadcast(g, ("potrf", k), consumers, size=tile_size, comm=comm_ms)
        for i in range(k + 1, t):
            # TRSM(i,k) feeds its SYRK, the GEMMs of row i and of column i.
            fan = [("syrk", k, i)]
            fan += [("gemm", k, i, j) for j in range(k + 1, i)]
            fan += [("gemm", k, r, i) for r in range(i + 1, t)]
            _broadcast(g, ("trsm", i, k), fan, size=tile_size, comm=comm_ms)
            # SYRK chain on the diagonal tile (i, i) -> next step or POTRF.
            nxt: Task = ("syrk", k + 1, i) if k + 1 < i else ("potrf", i)
            g.add_dependency(("syrk", k, i), nxt, size=tile_size, comm=comm_ms)
            # GEMM -> next task on the same tile (i, j).
            for j in range(k + 1, i):
                nxt = ("gemm", k + 1, i, j) if k + 1 < j else ("trsm", i, k + 1)
                g.add_dependency(("gemm", k, i, j), nxt, size=tile_size, comm=comm_ms)
    return g


def cholesky_task_counts(tiles: int) -> dict[str, int]:
    """Closed-form node counts of :func:`cholesky_dag`."""
    t = tiles
    counts = {
        "potrf": t,
        "trsm": t * (t - 1) // 2,
        "syrk": t * (t - 1) // 2,
        "gemm": sum((t - k - 1) * (t - k - 2) // 2 for k in range(t)),
    }
    # POTRF broadcasts to j = t-k-1 TRSMs (j-1 stages when j >= 2); each of
    # the j TRSMs broadcasts to exactly j consumers (its SYRK + j-1 GEMMs),
    # adding another j-1 stages apiece.
    fict = 0
    for k in range(t):
        j = t - k - 1
        if j >= 2:
            fict += (j - 1) + j * (j - 1)
    counts["fictitious"] = fict
    counts["total"] = sum(counts.values())
    return counts
