"""Task-graph generators: random DAGGEN-style DAGs, tiled linear algebra,
hand-built toys, and the paper's benchmark datasets."""

from .daggen import assign_uniform_weights, daggen, daggen_layers, random_dag
from .datasets import (
    cholesky_set,
    huge_rand_set,
    large_rand_set,
    lu_set,
    small_rand_set,
    tiny_rand_set,
)
from .linalg import (
    DEFAULT_GPU_SPEEDUP,
    KERNEL_TIMES_MS,
    TILE_COMM_MS,
    TILE_SIZE,
    cholesky_dag,
    cholesky_task_counts,
    lu_dag,
    lu_task_counts,
)
from .toy import chain, dex, diamond, fork_join, random_weights_graph

__all__ = [
    "daggen",
    "daggen_layers",
    "assign_uniform_weights",
    "random_dag",
    "small_rand_set",
    "tiny_rand_set",
    "large_rand_set",
    "huge_rand_set",
    "lu_set",
    "cholesky_set",
    "lu_dag",
    "lu_task_counts",
    "cholesky_dag",
    "cholesky_task_counts",
    "KERNEL_TIMES_MS",
    "DEFAULT_GPU_SPEEDUP",
    "TILE_COMM_MS",
    "TILE_SIZE",
    "dex",
    "chain",
    "diamond",
    "fork_join",
    "random_weights_graph",
]
