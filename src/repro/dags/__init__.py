"""Task-graph generators: random DAGGEN-style DAGs, tiled linear algebra,
hand-built toys, and the paper's benchmark datasets.

The dataset builders (:mod:`repro.dags.datasets`) use numpy seed sequences,
and numpy is an *optional* dependency of the library — they are re-exported
lazily (PEP 562) so the package imports on a numpy-less interpreter (the
generator *functions* still require numpy when called, via
:func:`repro._util.as_rng`)."""

from .daggen import assign_uniform_weights, daggen, daggen_layers, random_dag
from .linalg import (
    DEFAULT_GPU_SPEEDUP,
    KERNEL_TIMES_MS,
    TILE_COMM_MS,
    TILE_SIZE,
    cholesky_dag,
    cholesky_task_counts,
    lu_dag,
    lu_task_counts,
)
from .toy import chain, dex, diamond, fork_join, random_weights_graph

#: Symbols served lazily from :mod:`repro.dags.datasets` (numpy).
_DATASET_EXPORTS = (
    "cholesky_set",
    "huge_rand_set",
    "large_rand_set",
    "lu_set",
    "small_rand_set",
    "tiny_rand_set",
)


def __getattr__(name: str):
    if name in _DATASET_EXPORTS:
        from . import datasets
        return getattr(datasets, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(__all__) | set(globals()))


__all__ = [
    "daggen",
    "daggen_layers",
    "assign_uniform_weights",
    "random_dag",
    "small_rand_set",
    "tiny_rand_set",
    "large_rand_set",
    "huge_rand_set",
    "lu_set",
    "cholesky_set",
    "lu_dag",
    "lu_task_counts",
    "cholesky_dag",
    "cholesky_task_counts",
    "KERNEL_TIMES_MS",
    "DEFAULT_GPU_SPEEDUP",
    "TILE_COMM_MS",
    "TILE_SIZE",
    "dex",
    "chain",
    "diamond",
    "fork_join",
    "random_weights_graph",
]
