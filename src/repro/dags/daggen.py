"""DAGGEN-style random layered DAG generator (paper §6.1.1).

Reimplementation of the four-parameter generator the paper uses
(https://github.com/frs69wq/daggen):

* ``size``    — number of tasks, organised in levels;
* ``width``   — maximum parallelism knob in ``(0, 1]``: small values yield
  chain-like graphs, large values fork-join-like graphs.  Level sizes are
  drawn uniformly in ``[1, 2 * width * sqrt(size)]``;
* ``density`` — how many parents (among the previous level) each task gets;
* ``jumps``   — extra edges may skip up to ``jumps`` levels forward.

Weights are assigned separately by :func:`assign_uniform_weights` with the
paper's ranges (``W in [1, 20]``, ``C, F in [1, 10]`` for SmallRandSet;
all in ``[1, 100]`` for LargeRandSet).
"""

from __future__ import annotations

import math
from typing import Optional

from .._util import RngLike, as_rng
from ..core.graph import TaskGraph


def daggen_layers(size: int, width: float, rng: RngLike = None) -> list[int]:
    """Draw the level sizes: uniform in ``[1, max(1, round(2*width*sqrt(size)))]``
    until ``size`` tasks are allocated (last level truncated)."""
    if size < 1:
        raise ValueError("size must be >= 1")
    if not 0 < width <= 1:
        raise ValueError("width must be in (0, 1]")
    gen = as_rng(rng)
    cap = max(1, round(2.0 * width * math.sqrt(size)))
    layers: list[int] = []
    remaining = size
    while remaining > 0:
        w = int(gen.integers(1, cap + 1))
        w = min(w, remaining)
        layers.append(w)
        remaining -= w
    return layers


def daggen(
    size: int = 30,
    width: float = 0.3,
    density: float = 0.5,
    jumps: int = 5,
    rng: RngLike = None,
    name: Optional[str] = None,
) -> TaskGraph:
    """Generate a random layered DAG; tasks are ``0..size-1`` in level order.

    Weights are *not* assigned (all zero); combine with
    :func:`assign_uniform_weights`.
    """
    if density < 0:
        raise ValueError("density must be >= 0")
    if jumps < 1:
        raise ValueError("jumps must be >= 1")
    gen = as_rng(rng)
    layers = daggen_layers(size, width, gen)

    g = TaskGraph(name=name or f"daggen(n={size},w={width},d={density},j={jumps})")
    level_tasks: list[list[int]] = []
    tid = 0
    for layer in layers:
        tasks = list(range(tid, tid + layer))
        level_tasks.append(tasks)
        for t in tasks:
            g.add_task(t, 0.0, 0.0)
        tid += layer

    # Consecutive-level edges: each non-root task draws between 1 and
    # 1 + round(density * (|prev| - 1)) distinct parents from the previous
    # level, so the density knob spans "tree-ish" to "bipartite-complete-ish".
    for lvl in range(1, len(level_tasks)):
        prev = level_tasks[lvl - 1]
        for t in level_tasks[lvl]:
            max_parents = 1 + round(density * (len(prev) - 1))
            k = int(gen.integers(1, max_parents + 1))
            parents = gen.choice(len(prev), size=min(k, len(prev)), replace=False)
            for p in sorted(int(i) for i in parents):
                g.add_dependency(prev[p], t)

    # Jump edges: from level l to levels l+2 .. l+jumps, each added with
    # probability density / 2 per (task, distance) pair, one random source.
    for lvl in range(len(level_tasks)):
        for dist in range(2, jumps + 1):
            target_lvl = lvl + dist
            if target_lvl >= len(level_tasks):
                break
            for t in level_tasks[target_lvl]:
                if gen.random() < density / 2.0:
                    src = level_tasks[lvl][int(gen.integers(0, len(level_tasks[lvl])))]
                    try:
                        g.add_dependency(src, t)
                    except ValueError:
                        pass  # duplicate edge — keep the existing one
    return g


def assign_uniform_weights(
    graph: TaskGraph,
    rng: RngLike = None,
    *,
    w_range: tuple[int, int] = (1, 20),
    c_range: tuple[int, int] = (1, 10),
    f_range: tuple[int, int] = (1, 10),
) -> TaskGraph:
    """Overwrite weights with integers drawn uniformly from closed ranges
    (the paper's SmallRandSet uses ``W in [1,20]``, ``C, F in [1,10]``).

    Returns a new :class:`TaskGraph`; the input is not modified.
    """
    gen = as_rng(rng)
    g = TaskGraph(name=graph.name)
    for t in graph.topological_order():
        g.add_task(t,
                   w_blue=float(gen.integers(w_range[0], w_range[1] + 1)),
                   w_red=float(gen.integers(w_range[0], w_range[1] + 1)))
    for u, v in graph.edges():
        g.add_dependency(u, v,
                         size=float(gen.integers(f_range[0], f_range[1] + 1)),
                         comm=float(gen.integers(c_range[0], c_range[1] + 1)))
    return g


def random_dag(
    size: int = 30,
    width: float = 0.3,
    density: float = 0.5,
    jumps: int = 5,
    rng: RngLike = None,
    *,
    w_range: tuple[int, int] = (1, 20),
    c_range: tuple[int, int] = (1, 10),
    f_range: tuple[int, int] = (1, 10),
) -> TaskGraph:
    """One-call generator: :func:`daggen` structure + uniform weights."""
    gen = as_rng(rng)
    skeleton = daggen(size, width, density, jumps, rng=gen)
    return assign_uniform_weights(skeleton, rng=gen,
                                  w_range=w_range, c_range=c_range, f_range=f_range)
