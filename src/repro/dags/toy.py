"""Small hand-built task graphs: the paper's worked example and classic shapes."""

from __future__ import annotations

from .._util import RngLike, as_rng
from ..core.graph import TaskGraph


def dex() -> TaskGraph:
    """The 4-task example ``Dex`` of Figure 2.

    ``T1 -> {T2, T3} -> T4`` with

    * ``W(1) = (3, 2, 6, 1)`` on blue, ``W(2) = (1, 2, 3, 1)`` on red,
    * file sizes ``F(1,2)=1, F(1,3)=2, F(2,4)=1, F(3,4)=2``,
    * all communication times ``C = 1``.

    Used by the paper to illustrate the memory/makespan trade-off:
    with one processor per memory the optimal makespan is 6 under bounds
    ``M = 5`` (schedule ``s1``, red peak 5) and 7 under ``M = 4``
    (schedule ``s2``).
    """
    g = TaskGraph(name="dex")
    g.add_task("T1", w_blue=3, w_red=1)
    g.add_task("T2", w_blue=2, w_red=2)
    g.add_task("T3", w_blue=6, w_red=3)
    g.add_task("T4", w_blue=1, w_red=1)
    g.add_dependency("T1", "T2", size=1, comm=1)
    g.add_dependency("T1", "T3", size=2, comm=1)
    g.add_dependency("T2", "T4", size=1, comm=1)
    g.add_dependency("T3", "T4", size=2, comm=1)
    return g


def chain(n: int, *, w_blue: float = 2.0, w_red: float = 1.0,
          size: float = 1.0, comm: float = 1.0) -> TaskGraph:
    """A linear chain of ``n`` tasks (no parallelism, width 1)."""
    if n < 1:
        raise ValueError("chain needs at least one task")
    g = TaskGraph(name=f"chain{n}")
    for k in range(n):
        g.add_task(k, w_blue, w_red)
    for k in range(n - 1):
        g.add_dependency(k, k + 1, size=size, comm=comm)
    return g


def fork_join(width: int, *, w_blue: float = 2.0, w_red: float = 1.0,
              size: float = 1.0, comm: float = 1.0) -> TaskGraph:
    """Source -> ``width`` parallel tasks -> sink (maximum parallelism)."""
    if width < 1:
        raise ValueError("fork_join needs width >= 1")
    g = TaskGraph(name=f"forkjoin{width}")
    g.add_task("src", w_blue, w_red)
    g.add_task("sink", w_blue, w_red)
    for k in range(width):
        g.add_task(k, w_blue, w_red)
        g.add_dependency("src", k, size=size, comm=comm)
        g.add_dependency(k, "sink", size=size, comm=comm)
    return g


def diamond(*, w_blue: float = 2.0, w_red: float = 1.0,
            size: float = 1.0, comm: float = 1.0) -> TaskGraph:
    """The 4-task diamond (fork_join of width 2)."""
    g = fork_join(2, w_blue=w_blue, w_red=w_red, size=size, comm=comm)
    g.name = "diamond"
    return g


def random_weights_graph(n: int, rng: RngLike = None) -> TaskGraph:
    """A tiny random DAG with unit-range weights — convenience for tests.

    Each pair ``(i, j)`` with ``i < j`` gets an edge with probability 0.4,
    so the graph is always acyclic.
    """
    gen = as_rng(rng)
    g = TaskGraph(name=f"rand{n}")
    for k in range(n):
        g.add_task(k, w_blue=float(gen.integers(1, 10)), w_red=float(gen.integers(1, 10)))
    for i in range(n):
        for j in range(i + 1, n):
            if gen.random() < 0.4:
                g.add_dependency(i, j, size=float(gen.integers(1, 5)),
                                 comm=float(gen.integers(1, 5)))
    return g
