"""The four benchmark DAG families of §6.1, plus the tiny set used for the
optimal (ILP) comparison.

Every builder is deterministic given its ``seed``; per-graph seeds are spawned
from the set seed so individual graphs are reproducible in isolation.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.graph import TaskGraph
from .daggen import random_dag
from .linalg import cholesky_dag, lu_dag

#: Structure parameters shared by both random sets (paper §6.1.1).
RAND_WIDTH = 0.3
RAND_DENSITY = 0.5
RAND_JUMPS = 5


def _seeds(seed: int, count: int) -> list[np.random.Generator]:
    return [np.random.default_rng(s) for s in np.random.SeedSequence(seed).spawn(count)]


def small_rand_set(n_graphs: int = 50, size: int = 30, seed: int = 2014
                   ) -> list[TaskGraph]:
    """SmallRandSet: 50 DAGs, 30 tasks, ``W in [1,20]``, ``C, F in [1,10]``."""
    graphs = []
    for idx, rng in enumerate(_seeds(seed, n_graphs)):
        g = random_dag(size=size, width=RAND_WIDTH, density=RAND_DENSITY,
                       jumps=RAND_JUMPS, rng=rng,
                       w_range=(1, 20), c_range=(1, 10), f_range=(1, 10))
        g.name = f"small_rand[{idx}]"
        graphs.append(g)
    return graphs


def tiny_rand_set(n_graphs: int = 10, size: int = 7, seed: int = 7
                  ) -> list[TaskGraph]:
    """Same family as SmallRandSet but small enough for our branch-and-bound
    ILP solver to prove optimality (CPLEX substitution, DESIGN.md §5)."""
    graphs = []
    for idx, rng in enumerate(_seeds(seed, n_graphs)):
        g = random_dag(size=size, width=0.5, density=RAND_DENSITY,
                       jumps=min(RAND_JUMPS, 3), rng=rng,
                       w_range=(1, 20), c_range=(1, 10), f_range=(1, 10))
        g.name = f"tiny_rand[{idx}]"
        graphs.append(g)
    return graphs


def large_rand_set(n_graphs: int = 15, size: int = 150, seed: int = 1000
                   ) -> list[TaskGraph]:
    """LargeRandSet: the paper uses 100 DAGs of 1000 tasks with all weights
    in ``[1, 100]``; defaults here are scaled down for a pure-Python run
    (pass ``n_graphs=100, size=1000`` for paper scale)."""
    graphs = []
    for idx, rng in enumerate(_seeds(seed, n_graphs)):
        g = random_dag(size=size, width=RAND_WIDTH, density=RAND_DENSITY,
                       jumps=RAND_JUMPS, rng=rng,
                       w_range=(1, 100), c_range=(1, 100), f_range=(1, 100))
        g.name = f"large_rand[{idx}]"
        graphs.append(g)
    return graphs


def huge_rand_set(n_graphs: int = 5, size: int = 500, seed: int = 5000
                  ) -> list[TaskGraph]:
    """HugeRandSet: a larger daggen scale than LargeRandSet (defaults: 5
    DAGs of 500 tasks, all weights in ``[1, 100]``) for the scheduling
    service's load generator and the scaling benchmarks.  The paper-scale
    LargeRandSet is ``n_graphs=100, size=1000``; this set keeps the same
    structure parameters at an intermediate, pure-Python-tractable size —
    tests using it are ``slow``-marked.
    """
    graphs = []
    for idx, rng in enumerate(_seeds(seed, n_graphs)):
        g = random_dag(size=size, width=RAND_WIDTH, density=RAND_DENSITY,
                       jumps=RAND_JUMPS, rng=rng,
                       w_range=(1, 100), c_range=(1, 100), f_range=(1, 100))
        g.name = f"huge_rand[{idx}]"
        graphs.append(g)
    return graphs


def lu_set(tile_counts: Sequence[int] = (4, 8, 13)) -> list[TaskGraph]:
    """LUSet: LU factorisation DAGs for several tiled-matrix sizes."""
    return [lu_dag(t) for t in tile_counts]


def cholesky_set(tile_counts: Sequence[int] = (4, 8, 13)) -> list[TaskGraph]:
    """CholeskySet: Cholesky factorisation DAGs."""
    return [cholesky_dag(t) for t in tile_counts]
