"""Turn an ILP solution vector into a :class:`~repro.core.schedule.Schedule`.

The ILP encodes processor indices only through continuous ``p`` variables
and pairwise separation indicators, so the extraction re-derives a concrete
processor assignment per memory with a greedy interval scheduling pass —
constraint (25) guarantees that at most ``P_mu`` tasks of one memory overlap
at any instant, hence the greedy pass always succeeds (Helly property of
intervals).
"""

from __future__ import annotations

from typing import Hashable

import numpy as np

from ..core.platform import Memory
from ..core.schedule import CommEvent, Placement, Schedule
from .model import ILPModel

Task = Hashable

#: Snap solver round-off below this threshold.
_SNAP = 1e-7


def _clean(value: float) -> float:
    if abs(value) < _SNAP:
        return 0.0
    r = round(value)
    if abs(value - r) < _SNAP:
        return float(r)
    return float(value)


def extract_schedule(model: ILPModel, x: np.ndarray) -> Schedule:
    """Build the schedule described by solution vector ``x``."""
    v = model.vars
    graph, platform = model.graph, model.platform
    schedule = Schedule(platform)

    memory: dict[Task, Memory] = {}
    start: dict[Task, float] = {}
    for t in model.tasks:
        b = x[v[("b", t)]]
        memory[t] = Memory.BLUE if b > 0.5 else Memory.RED
        start[t] = _clean(x[v[("t", t)]])

    # Greedy per-memory processor assignment (earliest-start order; reuse the
    # processor that frees up last among those free by the task's start).
    for mem in (Memory.BLUE, Memory.RED):
        procs = list(platform.procs(mem))
        free_at = {p: 0.0 for p in procs}
        rows = sorted((t for t in model.tasks if memory[t] is mem),
                      key=lambda t: (start[t], start[t] + graph.w(t, mem)))
        for t in rows:
            s = start[t]
            w = graph.w(t, mem)
            candidates = [p for p in procs if free_at[p] <= s + 1e-6]
            if not candidates:
                raise ValueError(
                    f"ILP solution needs more than {len(procs)} {mem} processors "
                    f"at time {s} — constraint (25) violated by the solver output"
                )
            proc = max(candidates, key=free_at.__getitem__)
            free_at[proc] = s + w
            schedule.add(Placement(task=t, proc=proc, memory=mem,
                                   start=s, finish=s + w))

    for e in model.edges:
        i, j = e
        if memory[i] is memory[j]:
            continue
        tau = _clean(x[v[("tau", e)]])
        schedule.add_comm(CommEvent(src=i, dst=j, start=tau,
                                    finish=tau + graph.comm(i, j)))

    schedule.meta.update(
        algorithm="ilp",
        objective=_clean(float(x[v[("M",)]])),
    )
    return schedule
