"""Exact resolution: the ILP of §4 plus search-based cross-checks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.graph import TaskGraph
from ..core.platform import Platform
from ..core.schedule import Schedule
from ..scheduling.memheft import memheft
from ..scheduling.memminmin import memminmin
from ..scheduling.state import InfeasibleScheduleError
from .bruteforce import EagerSearchResult, optimal_eager
from .extract import extract_schedule
from .model import ILPModel, build_model
from .solver import BBResult, solve_branch_and_bound


@dataclass
class ILPSolution:
    """High-level outcome of :func:`solve_ilp`."""

    status: str  # "optimal" | "feasible" | "infeasible" | "limit"
    makespan: Optional[float]
    schedule: Optional[Schedule]
    lower_bound: float
    nodes: int
    runtime: float

    @property
    def proved_optimal(self) -> bool:
        return self.status == "optimal"


def solve_ilp(
    graph: TaskGraph,
    platform: Platform,
    *,
    node_limit: int = 20000,
    time_limit: float = 60.0,
    seed_with_heuristics: bool = True,
    log: bool = False,
) -> ILPSolution:
    """Solve the scheduling ILP for ``graph`` on ``platform``.

    Heuristic schedules (when feasible) seed the incumbent: the branch and
    bound then only needs to close the gap downwards, and if it exhausts the
    tree without improving, the heuristic value is *proven* optimal and the
    heuristic schedule is returned as an optimal witness.

    The ILP encodes the paper's homogeneous model (one duration per memory
    class); heterogeneous platforms are rejected rather than silently
    solved with wrong durations.
    """
    if platform.is_heterogeneous:
        raise ValueError("solve_ilp only models homogeneous (all speed 1.0) "
                         "platforms; this one carries per-processor speeds")
    incumbent_value: Optional[float] = None
    incumbent_schedule: Optional[Schedule] = None
    if seed_with_heuristics:
        for algo in (memminmin, memheft):
            try:
                s = algo(graph, platform)
            except InfeasibleScheduleError:
                continue
            if incumbent_value is None or s.makespan < incumbent_value:
                incumbent_value = s.makespan
                incumbent_schedule = s

    model = build_model(graph, platform, makespan_ub=incumbent_value)
    result = solve_branch_and_bound(
        model,
        incumbent=incumbent_value,
        node_limit=node_limit,
        time_limit=time_limit,
        log=log,
    )

    schedule: Optional[Schedule] = None
    if result.x is not None:
        schedule = extract_schedule(model, result.x)
    elif result.objective is not None:
        schedule = incumbent_schedule  # heuristic proven optimal (or best known)
    if schedule is not None and result.objective is not None:
        schedule.meta["ilp_status"] = result.status

    return ILPSolution(
        status=result.status,
        makespan=result.objective,
        schedule=schedule,
        lower_bound=result.lower_bound,
        nodes=result.nodes,
        runtime=result.runtime,
    )


__all__ = [
    "ILPModel",
    "build_model",
    "BBResult",
    "solve_branch_and_bound",
    "extract_schedule",
    "ILPSolution",
    "solve_ilp",
    "EagerSearchResult",
    "optimal_eager",
]
