"""Branch-and-bound MILP solver over scipy/HiGHS LP relaxations.

This is the CPLEX substitution (DESIGN.md §5): the paper solved the ILP of
§4 with IBM CPLEX 12.5; offline we solve the *same model* with our own
depth-first branch and bound:

* LP relaxations solved by ``scipy.optimize.linprog(method="highs")``;
* branching on the most fractional binary (nearest-integer child first);
* incumbents seeded from the heuristics (their makespans are valid upper
  bounds, so the search only has to close the gap downwards);
* node and wall-clock limits with honest ``status`` reporting — a ``limit``
  result still carries the best incumbent and the proven lower bound.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.optimize import linprog

from .model import ILPModel

#: Integrality tolerance for binaries in LP solutions.
INT_TOL = 1e-6
#: Objective comparisons (pruning / optimality gap).
GAP_TOL = 1e-6


@dataclass
class BBResult:
    """Outcome of one branch-and-bound run."""

    status: str  # "optimal" | "feasible" | "infeasible" | "limit"
    objective: Optional[float]
    x: Optional[np.ndarray]
    lower_bound: float
    nodes: int
    runtime: float
    incumbent_from_heuristic: bool = False

    @property
    def gap(self) -> float:
        """Relative optimality gap (0 when proven optimal)."""
        if self.objective is None or self.objective == 0:
            return math.inf
        return max(0.0, (self.objective - self.lower_bound) / abs(self.objective))


def solve_branch_and_bound(
    model: ILPModel,
    *,
    incumbent: Optional[float] = None,
    node_limit: int = 20000,
    time_limit: float = 60.0,
    log: bool = False,
) -> BBResult:
    """Minimise the model's objective; see module docstring for the scheme.

    ``incumbent`` is an externally-known upper bound (heuristic makespan):
    the search prunes against it and, if it never finds anything strictly
    better while exhausting the tree, the incumbent value is proven optimal.
    """
    t0 = time.perf_counter()
    base_lb = np.array(model.vars.lb, dtype=float)
    base_ub = np.array(model.vars.ub, dtype=float)
    int_cols = np.array(
        [k for k in model.vars.integer_columns() if base_lb[k] != base_ub[k]],
        dtype=int,
    )
    # Branching priority: resource-assignment variables shape the whole
    # schedule (they pick w_i and the memory constraints), so resolve their
    # fractionality before the ordering indicators.
    def _prio(col: int) -> float:
        kind = model.vars.names[col][0]
        return {"b": 4.0, "delta": 3.0, "sigma": 2.0, "eps": 2.0}.get(kind, 1.0)

    int_prio = np.array([_prio(int(c)) for c in int_cols])

    best_obj = math.inf if incumbent is None else float(incumbent)
    best_x: Optional[np.ndarray] = None
    nodes = 0
    exhausted = True

    # Stack entries: (lb overrides, ub overrides, parent LP bound).
    stack: list[tuple[dict[int, float], dict[int, float], float]] = [({}, {}, -math.inf)]

    while stack:
        if nodes >= node_limit or time.perf_counter() - t0 > time_limit:
            exhausted = False
            break
        lo_over, up_over, parent_bound = stack.pop()
        if parent_bound >= best_obj - GAP_TOL:
            continue
        lb = base_lb.copy()
        ub = base_ub.copy()
        for col, val in lo_over.items():
            lb[col] = val
        for col, val in up_over.items():
            ub[col] = val
        nodes += 1
        res = linprog(model.c, A_ub=model.a_ub, b_ub=model.b_ub,
                      bounds=np.column_stack([lb, ub]), method="highs")
        if res.status != 0:  # infeasible (or numerically hopeless) node
            continue
        obj = float(res.fun)
        if obj >= best_obj - GAP_TOL:
            continue
        x = res.x
        frac = np.abs(x[int_cols] - np.round(x[int_cols]))
        if len(frac) == 0 or frac.max() <= INT_TOL:
            best_obj = obj
            best_x = x
            if log:  # pragma: no cover - debug aid
                print(f"[bb] node {nodes}: incumbent {best_obj:.6g}")
            continue
        # Most fractional within the highest-priority class that is
        # fractional at all.
        fractional = frac > INT_TOL
        best_score = (int_prio * fractional) + np.minimum(frac, 1 - frac)
        worst = int(np.argmax(best_score))
        col = int(int_cols[worst])
        val = x[col]
        down = (dict(lo_over), {**up_over, col: math.floor(val)}, obj)
        up = ({**lo_over, col: math.ceil(val)}, dict(up_over), obj)
        # LIFO stack: push the less-likely child first, explore nearest first.
        if val - math.floor(val) <= 0.5:
            stack.extend([up, down])
        else:
            stack.extend([down, up])

    runtime = time.perf_counter() - t0
    open_bounds = [entry[2] for entry in stack]
    if exhausted:
        lower = best_obj if math.isfinite(best_obj) else math.inf
    else:
        candidates = [b for b in open_bounds if math.isfinite(b)]
        lower = min(candidates) if candidates else -math.inf

    if math.isinf(best_obj):
        status = "infeasible" if exhausted else "limit"
        return BBResult(status, None, None,
                        lower if not exhausted else math.inf,
                        nodes, runtime)
    if exhausted:
        status = "optimal"
    else:
        status = "feasible"
    return BBResult(status, best_obj, best_x, lower, nodes, runtime,
                    incumbent_from_heuristic=(best_x is None))
