"""Exhaustive search over *eager committed* schedules (tiny instances).

Explores every sequence of (ready task, memory) commitments using exactly
the commitment machinery of the heuristics (transfers as late as possible,
earliest feasible start).  Each heuristic run is one path of this tree, so
the search optimum is:

* an upper bound on the true (ILP) optimum — eager schedules never insert
  idle time beyond what the EST rules force;
* a lower bound on every list-scheduling heuristic built on
  :class:`~repro.scheduling.state.SchedulerState`.

Tests use the sandwich ``LB <= ILP <= eager <= heuristic`` (DESIGN.md §7.4).
Branch and bound prunes with per-task min-time bottom levels.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Optional

from ..core.graph import TaskGraph
from ..core.platform import Platform
from ..core.schedule import Schedule
from ..scheduling.state import SchedulerState

Task = Hashable


@dataclass
class EagerSearchResult:
    """Best eager schedule found (``schedule is None`` => infeasible)."""

    makespan: float
    schedule: Optional[Schedule]
    nodes: int
    exhausted: bool

    @property
    def feasible(self) -> bool:
        return self.schedule is not None


def _bottom_levels(graph: TaskGraph) -> dict[Task, float]:
    levels: dict[Task, float] = {}
    for t in reversed(graph.topological_order()):
        levels[t] = graph.w_min(t) + max(
            (levels[c] for c in graph.children(t)), default=0.0
        )
    return levels


def optimal_eager(
    graph: TaskGraph,
    platform: Platform,
    *,
    upper_bound: Optional[float] = None,
    node_limit: int = 500_000,
) -> EagerSearchResult:
    """Best makespan over all eager committed schedules (exact for tiny DAGs).

    ``upper_bound`` (a heuristic makespan) prunes from the start.  When the
    node limit is hit, ``exhausted`` is False and the result is only an
    incumbent.
    """
    bottom = _bottom_levels(graph)
    order = {t: k for k, t in enumerate(graph.topological_order())}

    best_makespan = math.inf if upper_bound is None else float(upper_bound)
    best_schedule: Optional[Schedule] = None
    nodes = 0
    exhausted = True

    root = SchedulerState(graph, platform)
    stack: list[tuple[SchedulerState, set[Task]]] = [(root, set(graph.roots()))]

    while stack:
        if nodes >= node_limit:
            exhausted = False
            break
        state, ready = stack.pop()
        nodes += 1
        if state.done:
            span = state.schedule.makespan
            if span < best_makespan - 1e-9:
                best_makespan = span
                best_schedule = state.schedule
                best_schedule.meta["algorithm"] = "optimal-eager"
            continue

        candidates = []
        for task in sorted(ready, key=order.__getitem__):
            for memory in state.memories:
                bd = state.est(task, memory)
                if not bd.feasible:
                    continue
                # Even with everything else free, this branch cannot beat
                # est + remaining critical path of the task.
                if bd.est + bottom[task] >= best_makespan - 1e-9:
                    continue
                candidates.append(bd)
        # Explore the most promising (smallest EFT) candidate last => first
        # off the LIFO stack, so good incumbents appear early.
        candidates.sort(key=lambda bd: -bd.eft)
        for bd in candidates:
            child = state.copy()
            child.commit(child.est(bd.task, bd.memory))
            child_ready = set(ready)
            child_ready.discard(bd.task)
            child_ready.update(child.pop_newly_ready())
            stack.append((child, child_ready))

    return EagerSearchResult(
        makespan=best_makespan if best_schedule is not None or upper_bound is not None
        else math.inf,
        schedule=best_schedule,
        nodes=nodes,
        exhausted=exhausted,
    )
