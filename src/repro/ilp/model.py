"""ILP formulation of the scheduling problem (paper §4, Figures 5–7).

Variables (names follow Figure 5; tuples key the
:class:`~repro.ilp.varman.VariableManager`):

==================  =========================================================
``("M",)``          makespan (continuous, minimised)
``("t", i)``        start time of task ``i``
``("tau", e)``      start time of communication ``e = (i, j)``
``("w", i)``        actual processing time of task ``i``
``("p", i)``        processor index of task ``i`` (continuous, 0-based; the
                    ``eps`` separation constraints make integrality
                    unnecessary — see DESIGN.md)
``("b", i)``        1 iff task ``i`` runs on the blue memory (binary).  The
                    report's Fig 5/6 is internally inconsistent about the
                    orientation of ``b``; we use the consistent convention
                    ``b=1 <=> blue`` throughout (DESIGN.md §4)
``("eps", i, j)``   1 if ``p_i < p_j`` (binary)
``("delta", i, j)`` 1 iff tasks ``i`` and ``j`` share a memory (binary,
                    stored once per unordered pair)
``("m", i, j)``     1 if ``i`` starts before ``j`` starts
``("sigma", i, j)`` 1 if ``i`` finishes before ``j`` starts
``("mp", k, e)``    1 if task ``k`` starts before comm ``e`` starts
``("sp", k, e)``    1 if task ``k`` finishes before comm ``e`` starts
``("c", e, k)``     1 if comm ``e`` starts before task ``k`` starts
``("d", e, k)``     1 if comm ``e`` finishes before task ``k`` starts
``("cp", e, f)``    1 if comm ``e`` starts before comm ``f`` starts
``("dp", e, f)``    1 if comm ``e`` finishes before comm ``f`` starts
``("alpha", f, i)`` linearisation of ``delta_ik * (m_ki - d_fi)`` (Fig 7)
``("beta",  f, i)`` linearisation of ``delta_ip * (c_fi - sigma_pi)``
``("alphap", f, e)`` / ``("betap", f, e)``  idem for constraint (27)
==================  =========================================================

The conventions ``m_ii = 1``, ``sigma_ii = 0`` and ``delta_ii = 1`` (pinned
by constraints (14)/(15) in the report) are inlined as constants.

Presolve: orderings implied by DAG reachability are fixed before solving
(ancestor starts/finishes first, transfers of an edge precede every
descendant of its consumer, ...), which removes the bulk of the binary
search space on structured graphs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Hashable, Optional

import numpy as np
from scipy import sparse

from ..core.bounds import lower_bound
from ..core.graph import TaskGraph
from ..core.platform import Platform
from .varman import RowBuilder, VariableManager

Task = Hashable
Edge = tuple[Task, Task]


@dataclass
class ILPModel:
    """A built instance: ``min c @ x  s.t.  A_ub @ x <= b_ub, bounds``."""

    graph: TaskGraph
    platform: Platform
    vars: VariableManager
    a_ub: sparse.csr_matrix
    b_ub: np.ndarray
    c: np.ndarray
    tasks: list[Task]
    edges: list[Edge]
    mmax: float
    labels: list[str] = field(default_factory=list)

    @property
    def n_vars(self) -> int:
        return len(self.vars)

    @property
    def n_constraints(self) -> int:
        return self.a_ub.shape[0]

    @property
    def n_binaries(self) -> int:
        return sum(
            1 for kk in self.vars.integer_columns()
            if self.vars.lb[kk] != self.vars.ub[kk]
        )


def _earliest_starts(graph: TaskGraph) -> dict[Task, float]:
    """Longest min-time path from the sources (valid ``t_i`` lower bounds)."""
    es: dict[Task, float] = {}
    for t in graph.topological_order():
        es[t] = max((es[p] + graph.w_min(p) for p in graph.parents(t)), default=0.0)
    return es


def _tails(graph: TaskGraph) -> dict[Task, float]:
    """Min-time bottom level including self (valid ``M - t_i`` lower bounds)."""
    tail: dict[Task, float] = {}
    for t in reversed(graph.topological_order()):
        tail[t] = graph.w_min(t) + max((tail[ch] for ch in graph.children(t)), default=0.0)
    return tail


def build_model(
    graph: TaskGraph,
    platform: Platform,
    *,
    makespan_ub: Optional[float] = None,
    strengthen: bool = True,
    presolve: bool = True,
) -> ILPModel:
    """Construct the full ILP of Figures 5–7 for ``graph`` on ``platform``.

    ``makespan_ub`` (e.g. a heuristic makespan) tightens the ``M`` bound;
    ``strengthen`` adds valid inequalities (path-based time windows);
    ``presolve`` fixes every ordering binary implied by DAG reachability.
    """
    graph.validate()
    tasks = list(graph.topological_order())
    edges = [tuple(e) for e in graph.edges()]
    n_p = platform.n_procs
    p1 = platform.n_blue
    ti = {t: k for k, t in enumerate(tasks)}

    mmax = (sum(graph.w_blue(t) for t in tasks)
            + sum(graph.w_red(t) for t in tasks)
            + graph.total_comm())
    if makespan_ub is not None:
        # A known schedule bounds every event time by its makespan, so the
        # big-M constant can shrink to UB + max transfer time — dramatically
        # tighter LP relaxations than the sum-of-everything default.
        max_c = max((graph.comm(u, v) for u, v in edges), default=0.0)
        mmax = min(mmax, makespan_ub + max_c + 1.0)
    mmax = max(mmax, 1.0)

    t_ub = mmax if makespan_ub is None else makespan_ub + 1e-6
    v = VariableManager()
    v.add(("M",), 0.0, t_ub)
    for t in tasks:
        v.add(("t", t), 0.0, t_ub)
        v.add(("w", t), min(graph.w_blue(t), graph.w_red(t)),
              max(graph.w_blue(t), graph.w_red(t)))
        v.add(("p", t), 0.0, max(n_p - 1, 0))
        v.binary(("b", t))
    for e in edges:
        v.add(("tau", e), 0.0, t_ub)

    def delta_name(i: Task, j: Task) -> tuple:
        a, b = (i, j) if ti[i] < ti[j] else (j, i)
        return ("delta", a, b)

    for a in tasks:
        for b in tasks:
            if ti[a] < ti[b]:
                v.binary(delta_name(a, b))
            if a != b:
                v.binary(("eps", a, b))
                v.binary(("m", a, b))
                v.binary(("sigma", a, b))
    for k in tasks:
        for e in edges:
            v.binary(("mp", k, e))
            v.binary(("sp", k, e))
            v.binary(("c", e, k))
            v.binary(("d", e, k))
    for e in edges:
        for f in edges:
            if e != f:
                v.binary(("cp", e, f))
                v.binary(("dp", e, f))

    rows = RowBuilder(v)
    inf = math.inf

    # ------------------------------------------------------------------
    # (1)-(3): makespan and flow
    # ------------------------------------------------------------------
    for t in tasks:
        rows.le({("t", t): 1, ("w", t): 1, ("M",): -1}, 0.0, "c1")
    for e in edges:
        i, j = e
        rows.le({("t", i): 1, ("w", i): 1, ("tau", e): -1}, 0.0, "c2")
        cij = graph.comm(i, j)
        rows.le({("tau", e): 1, delta_name(i, j): -cij, ("t", j): -1}, -cij, "c3")

    # ------------------------------------------------------------------
    # (4)-(11): ordering indicator definitions (big-M pairs)
    # ------------------------------------------------------------------
    for a in tasks:
        for b in tasks:
            if a == b:
                continue
            # (4) m_ab: a starts before b.
            rows.le({("t", b): 1, ("t", a): -1, ("m", a, b): -mmax}, 0.0, "c4a")
            rows.le({("t", a): 1, ("t", b): -1, ("m", a, b): mmax}, mmax, "c4b")
            # (6) sigma_ab: a finishes before b starts.
            rows.le({("t", b): 1, ("t", a): -1, ("w", a): -1,
                     ("sigma", a, b): -mmax}, 0.0, "c6a")
            rows.le({("t", a): 1, ("w", a): 1, ("t", b): -1,
                     ("sigma", a, b): mmax}, mmax, "c6b")
    for k in tasks:
        for e in edges:
            # (5) mp_ke: k starts before comm e.
            rows.le({("tau", e): 1, ("t", k): -1, ("mp", k, e): -mmax}, 0.0, "c5a")
            rows.le({("t", k): 1, ("tau", e): -1, ("mp", k, e): mmax}, mmax, "c5b")
            # (7) sp_ke: k finishes before comm e.
            rows.le({("tau", e): 1, ("t", k): -1, ("w", k): -1,
                     ("sp", k, e): -mmax}, 0.0, "c7a")
            rows.le({("t", k): 1, ("w", k): 1, ("tau", e): -1,
                     ("sp", k, e): mmax}, mmax, "c7b")
            # (8) c_ek: comm e starts before k.
            rows.le({("t", k): 1, ("tau", e): -1, ("c", e, k): -mmax}, 0.0, "c8a")
            rows.le({("tau", e): 1, ("t", k): -1, ("c", e, k): mmax}, mmax, "c8b")
            # (10) d_ek: comm e finishes before k starts.
            i, j = e
            cij = graph.comm(i, j)
            rows.le({("t", k): 1, ("tau", e): -1, delta_name(i, j): cij,
                     ("d", e, k): -mmax}, cij, "c10a")
            rows.le({("tau", e): 1, delta_name(i, j): -cij, ("t", k): -1,
                     ("d", e, k): mmax}, mmax - cij, "c10b")
    for e in edges:
        for f in edges:
            if e == f:
                continue
            # (9) cp_ef: e starts before f.
            rows.le({("tau", f): 1, ("tau", e): -1, ("cp", e, f): -mmax}, 0.0, "c9a")
            rows.le({("tau", e): 1, ("tau", f): -1, ("cp", e, f): mmax}, mmax, "c9b")
            # (11) dp_ef: e finishes before f starts.
            i, j = e
            cij = graph.comm(i, j)
            rows.le({("tau", f): 1, ("tau", e): -1, delta_name(i, j): cij,
                     ("dp", e, f): -mmax}, cij, "c11a")
            rows.le({("tau", e): 1, delta_name(i, j): -cij, ("tau", f): -1,
                     ("dp", e, f): mmax}, mmax - cij, "c11b")

    # ------------------------------------------------------------------
    # (12)-(13): processor indices vs eps / b
    # ------------------------------------------------------------------
    for a in tasks:
        for b in tasks:
            if a == b:
                continue
            rows.le({("p", b): 1, ("p", a): -1, ("eps", a, b): -n_p}, 0.0, "c12a")
            rows.le({("p", a): 1, ("p", b): -1, ("eps", a, b): n_p}, n_p - 1, "c12b")
    for t in tasks:
        # b=1 <=> p <= P1-1 (blue processors come first, 0-based).
        rows.le({("p", t): 1, ("b", t): n_p}, p1 - 1 + n_p, "c13a")
        rows.ge({("p", t): 1, ("b", t): n_p}, p1, "c13b")

    # ------------------------------------------------------------------
    # (14)-(22): indicator consistency
    # ------------------------------------------------------------------
    for a in tasks:
        for b in tasks:
            if ti[a] >= ti[b]:
                continue
            rows.ge({("m", a, b): 1, ("m", b, a): 1}, 1.0, "c14")
            rows.le({("sigma", a, b): 1, ("sigma", b, a): 1}, 1.0, "c15")
    for e in edges:
        for k in tasks:
            rows.ge({("mp", k, e): 1, ("c", e, k): 1}, 1.0, "c16")
    seen: set[frozenset] = set()
    for e in edges:
        for f in edges:
            if e == f:
                continue
            key = frozenset((e, f))
            if key in seen:
                continue
            seen.add(key)
            rows.ge({("cp", e, f): 1, ("cp", f, e): 1}, 1.0, "c17")
            rows.le({("dp", e, f): 1, ("dp", f, e): 1}, 1.0, "c18")
    for a in tasks:
        for b in tasks:
            if a != b:
                rows.le({("sigma", a, b): 1, ("m", a, b): -1}, 0.0, "c19")
    for e in edges:
        i, j = e
        for k in tasks:
            # (20) sigma_ik >= c_ek; sigma_ii == 0 pins c_(i,j),i to 0.
            if k == i:
                rows.le({("c", e, k): 1}, 0.0, "c20")
            elif k != i:
                rows.le({("c", e, k): 1, ("sigma", i, k): -1}, 0.0, "c20")
            # (21) c >= d.
            rows.le({("d", e, k): 1, ("c", e, k): -1}, 0.0, "c21")
            # (22) d_ek >= m_jk; m_jj == 1 pins d_(i,j),j to 1.
            if k == j:
                rows.ge({("d", e, k): 1}, 1.0, "c22")
            else:
                rows.ge({("d", e, k): 1, ("m", j, k): -1}, 0.0, "c22")

    # ------------------------------------------------------------------
    # (23)-(24): delta and w definitions
    # ------------------------------------------------------------------
    for a in tasks:
        for b in tasks:
            if ti[a] >= ti[b]:
                continue
            dn = delta_name(a, b)
            rows.le({dn: 1, ("b", a): -1, ("b", b): 1}, 1.0, "c23")
            rows.le({dn: 1, ("b", b): -1, ("b", a): 1}, 1.0, "c23")
            rows.ge({dn: 1, ("b", a): -1, ("b", b): -1}, -1.0, "c23")
            rows.ge({dn: 1, ("b", a): 1, ("b", b): 1}, 1.0, "c23")
    for t in tasks:
        w1, w2 = graph.w_blue(t), graph.w_red(t)
        # w = b*W1 + (1-b)*W2  (b=1 <=> blue).
        rows.eq({("w", t): 1, ("b", t): w2 - w1}, w2, "c24")

    # ------------------------------------------------------------------
    # (25): resource constraint
    # ------------------------------------------------------------------
    for a in tasks:
        for b in tasks:
            if ti[a] >= ti[b]:
                continue
            rows.ge({("sigma", a, b): 1, ("sigma", b, a): 1,
                     ("eps", a, b): 1, ("eps", b, a): 1}, 1.0, "c25")

    # ------------------------------------------------------------------
    # (26)-(27): memory constraints (linearised per Fig 7)
    # ------------------------------------------------------------------
    if platform.is_memory_bounded:
        total_files = graph.total_file_size()
        cap_blue = min(platform.mem_blue, total_files)
        cap_red = min(platform.mem_red, total_files)

        def add_product(name: tuple, delta_ref: tuple, pos: tuple, neg: tuple) -> tuple:
            """aux = delta * (pos - neg): the four Fig-7 inequalities."""
            v.add(name, 0.0, 1.0)
            rows.ge({name: 1, delta_ref: -1, pos: -1, neg: 1}, -1.0, "lin_lb")
            rows.le({name: 2, delta_ref: -1, pos: -1, neg: 1}, 0.0, "lin_ub")
            return name

        # (26): memory at each task start.
        for i in tasks:
            lhs: dict[tuple, float] = {}
            const = 0.0
            for f in edges:
                k, p = f
                fkp = graph.size(k, p)
                if fkp == 0.0:
                    continue
                # alpha: source copy — k's memory holds the file from k's
                # start until the transfer ends.
                if k == i:
                    const += fkp  # delta_ii=1, m_ii=1, d_(i,p),i pinned to 0
                else:
                    a = add_product(("alpha", f, i), delta_name(i, k),
                                    ("m", k, i), ("d", f, i))
                    lhs[a] = lhs.get(a, 0.0) + fkp
                # beta: destination copy — p's memory holds the file from the
                # transfer start until p finishes.
                if p == i:
                    lhs[("c", f, i)] = lhs.get(("c", f, i), 0.0) + fkp
                else:
                    bta = add_product(("beta", f, i), delta_name(i, p),
                                      ("c", f, i), ("sigma", p, i))
                    lhs[bta] = lhs.get(bta, 0.0) + fkp
            # RHS: b_i*cap_blue + (1-b_i)*cap_red.
            lhs[("b", i)] = lhs.get(("b", i), 0.0) - (cap_blue - cap_red)
            rows.le(lhs, cap_red - const, "c26")

        # (27): memory at each communication start (destination memory of j).
        for e in edges:
            i, j = e
            fij = graph.size(i, j)
            lhs = {}
            const = fij  # the arriving copy itself
            for f in edges:
                if f == e:
                    continue
                k, p = f
                fkp = graph.size(k, p)
                if fkp == 0.0:
                    continue
                if k == j:
                    # delta_jj = 1: alpha' = mp_ke - dp_fe, emitted linearly.
                    lhs[("mp", k, e)] = lhs.get(("mp", k, e), 0.0) + fkp
                    lhs[("dp", f, e)] = lhs.get(("dp", f, e), 0.0) - fkp
                else:
                    a = add_product(("alphap", f, e), delta_name(j, k),
                                    ("mp", k, e), ("dp", f, e))
                    lhs[a] = lhs.get(a, 0.0) + fkp
                if p == j:
                    lhs[("cp", f, e)] = lhs.get(("cp", f, e), 0.0) + fkp
                    lhs[("sp", p, e)] = lhs.get(("sp", p, e), 0.0) - fkp
                else:
                    bta = add_product(("betap", f, e), delta_name(j, p),
                                      ("cp", f, e), ("sp", p, e))
                    lhs[bta] = lhs.get(bta, 0.0) + fkp
            lhs[("b", j)] = lhs.get(("b", j), 0.0) - (cap_blue - cap_red)
            lhs[delta_name(i, j)] = lhs.get(delta_name(i, j), 0.0) - mmax
            rows.le(lhs, cap_red - const, "c27")

    # ------------------------------------------------------------------
    # strengthening (valid inequalities + tightened bounds)
    # ------------------------------------------------------------------
    if strengthen:
        es = _earliest_starts(graph)
        tails = _tails(graph)
        col_m = v[("M",)]
        v.lb[col_m] = max(v.lb[col_m], lower_bound(graph, platform))
        for t in tasks:
            col = v[("t", t)]
            v.lb[col] = max(v.lb[col], es[t])
            rows.le({("t", t): 1, ("M",): -1}, -tails[t], "tail")
    if makespan_ub is not None:
        col_m = v[("M",)]
        v.ub[col_m] = min(v.ub[col_m], makespan_ub + 1e-6)

    # ------------------------------------------------------------------
    # presolve: reachability-implied fixings
    # ------------------------------------------------------------------
    if presolve:
        desc = {t: graph.descendants(t) for t in tasks}

        def wp(a: Task, b: Task) -> bool:
            """a weakly precedes b (a == b or a is an ancestor of b)."""
            return a == b or b in desc[a]

        for a in tasks:
            for b in desc[a]:
                v.fix(("m", a, b), 1.0)
                v.fix(("m", b, a), 0.0)
                v.fix(("sigma", a, b), 1.0)
                v.fix(("sigma", b, a), 0.0)
        for k in tasks:
            for e in edges:
                i, j = e
                if wp(k, i):
                    v.fix(("sp", k, e), 1.0)
                    v.fix(("mp", k, e), 1.0)
                elif wp(j, k):
                    v.fix(("c", e, k), 1.0)
                    v.fix(("d", e, k), 1.0)
                    v.fix(("mp", k, e), 0.0)
                    v.fix(("sp", k, e), 0.0)
        for e in edges:
            for f in edges:
                if e == f:
                    continue
                if wp(e[1], f[0]):  # e's consumer precedes f's producer
                    v.fix(("cp", e, f), 1.0)
                    v.fix(("dp", e, f), 1.0)
                    v.fix(("cp", f, e), 0.0)
                    v.fix(("dp", f, e), 0.0)
        if platform.n_blue == 0:
            for t in tasks:
                v.fix(("b", t), 0.0)
        if platform.n_red == 0:
            for t in tasks:
                v.fix(("b", t), 1.0)

    a_ub, b_ub = rows.matrix()
    c = np.zeros(len(v))
    c[v[("M",)]] = 1.0
    return ILPModel(graph=graph, platform=platform, vars=v, a_ub=a_ub,
                    b_ub=b_ub, c=c, tasks=tasks, edges=edges, mmax=mmax,
                    labels=rows.labels())
