"""Variable manager and row builder for the ILP (§4).

Thin bookkeeping layer between the model construction (:mod:`repro.ilp.model`)
and ``scipy.optimize.linprog``: named variables with bounds and integrality,
and ``<=`` constraint rows collected as sparse triplets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Hashable, Mapping

import numpy as np
from scipy import sparse

Name = Hashable


@dataclass
class VariableManager:
    """Named LP/MILP variables with bounds and integrality flags."""

    names: list[Name] = field(default_factory=list)
    index: dict[Name, int] = field(default_factory=dict)
    lb: list[float] = field(default_factory=list)
    ub: list[float] = field(default_factory=list)
    integer: list[bool] = field(default_factory=list)

    def add(self, name: Name, lb: float = 0.0, ub: float = math.inf,
            integer: bool = False) -> int:
        """Register a variable; returns its column index."""
        if name in self.index:
            raise ValueError(f"duplicate variable {name!r}")
        col = len(self.names)
        self.index[name] = col
        self.names.append(name)
        self.lb.append(lb)
        self.ub.append(ub)
        self.integer.append(integer)
        return col

    def binary(self, name: Name) -> int:
        return self.add(name, 0.0, 1.0, integer=True)

    def __getitem__(self, name: Name) -> int:
        return self.index[name]

    def __contains__(self, name: Name) -> bool:
        return name in self.index

    def __len__(self) -> int:
        return len(self.names)

    def fix(self, name: Name, value: float) -> None:
        """Pin a variable to a constant (presolve fixing)."""
        col = self.index[name]
        self.lb[col] = value
        self.ub[col] = value

    def is_fixed(self, name: Name) -> bool:
        col = self.index[name]
        return self.lb[col] == self.ub[col]

    def fixed_value(self, name: Name) -> float:
        col = self.index[name]
        if self.lb[col] != self.ub[col]:
            raise ValueError(f"variable {name!r} is not fixed")
        return self.lb[col]

    def bounds_array(self) -> np.ndarray:
        """``(n, 2)`` bounds array for ``linprog``."""
        return np.column_stack([np.array(self.lb), np.array(self.ub)])

    def integer_columns(self) -> list[int]:
        return [k for k, flag in enumerate(self.integer) if flag]


class RowBuilder:
    """Collect ``sum(coef * var) <= rhs`` rows as sparse triplets."""

    def __init__(self, variables: VariableManager) -> None:
        self.vars = variables
        self._rows: list[int] = []
        self._cols: list[int] = []
        self._data: list[float] = []
        self._rhs: list[float] = []
        self._labels: list[str] = []

    @property
    def n_rows(self) -> int:
        return len(self._rhs)

    def le(self, coeffs: Mapping[Name, float], rhs: float, label: str = "") -> None:
        """Add one ``<=`` row; zero coefficients are dropped."""
        row = len(self._rhs)
        for name, coef in coeffs.items():
            if coef == 0.0:
                continue
            self._rows.append(row)
            self._cols.append(self.vars[name])
            self._data.append(float(coef))
        self._rhs.append(float(rhs))
        self._labels.append(label)

    def ge(self, coeffs: Mapping[Name, float], rhs: float, label: str = "") -> None:
        """Add ``sum(coef * var) >= rhs`` (stored negated)."""
        self.le({k: -v for k, v in coeffs.items()}, -rhs, label)

    def eq(self, coeffs: Mapping[Name, float], rhs: float, label: str = "") -> None:
        """Add an equality as two inequalities."""
        self.le(coeffs, rhs, label + "<=")
        self.ge(coeffs, rhs, label + ">=")

    def matrix(self) -> tuple[sparse.csr_matrix, np.ndarray]:
        a = sparse.coo_matrix(
            (self._data, (self._rows, self._cols)),
            shape=(len(self._rhs), len(self.vars)),
        ).tocsr()
        return a, np.array(self._rhs)

    def labels(self) -> list[str]:
        return list(self._labels)
