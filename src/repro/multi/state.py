"""k-memory scheduler state (facade over the unified engine).

The §5.1 EST machinery over k memories *is* the core
:class:`repro.scheduling.state.SchedulerState` — the dual-memory rules were
generalised in place (see that module's docstring for the incremental EST
kernel).  This module keeps the historical names and call shapes:
``MultiSchedulerState`` accepts a :class:`MultiPlatform`, its ``est``/
``choose_proc`` take either a class index or a :class:`Memory`, ``mem``
supports class-index lookup next to ``Memory`` keys, and ``peaks()``
returns the historical list shape.
"""

from __future__ import annotations

from typing import Hashable, Union

from ..core.memory_profile import MemoryProfile
from ..core.platform import Memory
from ..scheduling.state import (
    ESTBreakdown,
    InfeasibleScheduleError,
    SchedulerState,
)
from .graph import MultiTaskGraph
from .platform import as_core_platform

Task = Hashable

#: k-memory infeasibility is the same error the dual engine raises.
MultiInfeasibleError = InfeasibleScheduleError

#: Breakdowns carry a ``cls`` property (= ``memory.index``) for k-ary use.
MultiESTBreakdown = ESTBreakdown


class _ClassIndexedMem(dict):
    """Memory-keyed profile dict that also resolves bare class indices."""

    def __missing__(self, key):
        if isinstance(key, int):
            return self[Memory(key)]
        raise KeyError(key)


class MultiSchedulerState(SchedulerState):
    """Mutable partial schedule over a k-memory platform (facade)."""

    def __init__(self, graph: MultiTaskGraph, platform) -> None:
        super().__init__(graph, as_core_platform(platform))
        self.mem: dict = _ClassIndexedMem(self.mem)

    def _as_memory(self, memory: Union[Memory, int]) -> Memory:
        return self.memories[memory] if isinstance(memory, int) else memory

    def est(self, task: Task, memory: Union[Memory, int]) -> ESTBreakdown:
        return super().est(task, self._as_memory(memory))

    def choose_proc(self, memory: Union[Memory, int], est: float) -> int:
        return super().choose_proc(self._as_memory(memory), est)

    def mem_of(self, cls: int) -> MemoryProfile:
        """Memory profile of class ``cls``."""
        return self.mem[self.memories[cls]]

    def peaks(self) -> list[float]:  # type: ignore[override]
        """Per-class peaks in the historical list shape."""
        return [self.mem[m].peak() for m in self.memories]

    def finalize(self, algorithm: str):
        self.check_invariants()
        peaks = self.peaks()
        self.schedule.meta.update(algorithm=algorithm, peaks=peaks)
        if len(self.memories) == 2:
            self.schedule.meta.update(peak_blue=peaks[0], peak_red=peaks[1])
        return self.schedule


__all__ = [
    "MultiESTBreakdown",
    "MultiInfeasibleError",
    "MultiSchedulerState",
]
