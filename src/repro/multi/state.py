"""Generalised scheduler state: §5.1's EST machinery over k memories.

The dual-memory rules generalise directly:

* ``resource_EST``   — earliest free processor of the candidate class;
* ``precedence_EST`` — parents' finish (+ ``C`` for parents in any *other*
  class);
* ``task_mem_EST``   — room for other-class inputs + all outputs;
* ``comm_mem_EST``   — room for the other-class inputs, ``Cmax`` earlier;

and the commit bookkeeping is identical: transfers as late as possible
(clipped to producers), destination copies live transfer-through-finish,
source copies are released when their transfer ends, same-class inputs at
the consumer's finish, outputs from the task start until each consumer
takes them over.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Optional

from .._util import EPS
from ..core.memory_profile import MemoryProfile
from .graph import MultiTaskGraph
from .platform import MultiPlatform
from .schedule import MultiCommEvent, MultiPlacement, MultiSchedule

Task = Hashable


class MultiInfeasibleError(RuntimeError):
    """No remaining task fits within the memory capacities."""


@dataclass(frozen=True)
class MultiESTBreakdown:
    """EST components for one (task, memory class) candidate."""

    task: Task
    cls: int
    resource: float
    precedence: float
    task_mem: float
    comm_mem: float
    cmax: float
    est: float
    eft: float
    comm_fit: float = 0.0

    @property
    def feasible(self) -> bool:
        return math.isfinite(self.eft)


class MultiSchedulerState:
    """Mutable partial schedule over a k-memory platform."""

    def __init__(self, graph: MultiTaskGraph, platform: MultiPlatform) -> None:
        if graph.n_classes != platform.n_classes:
            raise ValueError(
                f"graph has {graph.n_classes} classes, platform "
                f"{platform.n_classes}")
        self.graph = graph
        self.platform = platform
        self.schedule = MultiSchedule(platform)
        self.avail = [0.0] * platform.total_procs
        self.mem = [MemoryProfile(platform.capacity(c))
                    for c in platform.classes()]
        self._pending = {t: graph.in_degree(t) for t in graph.tasks()}
        self._newly_ready: list[Task] = []

    # ------------------------------------------------------------------
    @property
    def n_scheduled(self) -> int:
        return len(self.schedule)

    @property
    def done(self) -> bool:
        return self.n_scheduled == self.graph.n_tasks

    def is_ready(self, task: Task) -> bool:
        return task not in self.schedule and self._pending[task] == 0

    def pop_newly_ready(self) -> list[Task]:
        out, self._newly_ready = self._newly_ready, []
        return out

    # ------------------------------------------------------------------
    def est(self, task: Task, cls: int) -> MultiESTBreakdown:
        inf = math.inf
        if not self.is_ready(task) or self.platform.n_procs[cls] == 0:
            return MultiESTBreakdown(task, cls, inf, inf, inf, inf, 0.0,
                                     inf, inf)
        resource = min(self.avail[p] for p in self.platform.procs(cls))

        precedence = 0.0
        cmax = 0.0
        cross_in = 0.0
        for parent in self.graph.parents(task):
            pp = self.schedule.placement(parent)
            if pp.cls == cls:
                precedence = max(precedence, pp.finish)
            else:
                c = self.graph.comm(parent, task)
                precedence = max(precedence, pp.finish + c)
                cmax = max(cmax, c)
                cross_in += self.graph.size(parent, task)

        need_task = cross_in + self.graph.out_size(task)
        task_mem = self.mem[cls].earliest_fit(need_task)

        comm_fit = 0.0
        comm_mem = 0.0
        if cross_in > 0.0 or cmax > 0.0:
            comm_fit = self.mem[cls].earliest_fit(cross_in)
            comm_mem = comm_fit + cmax

        est = max(resource, precedence, task_mem, comm_mem)
        eft = est + self.graph.w(task, cls) if math.isfinite(est) else inf
        return MultiESTBreakdown(task, cls, resource, precedence, task_mem,
                                 comm_mem, cmax, est, eft, comm_fit)

    def best_est(self, task: Task) -> Optional[MultiESTBreakdown]:
        """Memory class minimising EFT; ties go to the lowest class index
        (class 0 = blue in the dual special case)."""
        best: Optional[MultiESTBreakdown] = None
        for cls in self.platform.classes():
            bd = self.est(task, cls)
            if not bd.feasible:
                continue
            if best is None or bd.eft < best.eft - EPS:
                best = bd
        return best

    def choose_proc(self, cls: int, est: float) -> int:
        best_proc, best_avail = -1, -math.inf
        for p in self.platform.procs(cls):
            a = self.avail[p]
            if a <= est + EPS and a > best_avail + EPS:
                best_avail, best_proc = a, p
        if best_proc < 0:  # pragma: no cover - est >= resource_EST
            raise RuntimeError("no processor available at the chosen EST")
        return best_proc

    # ------------------------------------------------------------------
    def commit(self, bd: MultiESTBreakdown) -> MultiPlacement:
        task, cls, est = bd.task, bd.cls, bd.est
        if not math.isfinite(est):
            raise ValueError(f"cannot commit infeasible candidate {task!r}")
        finish = est + self.graph.w(task, cls)
        proc = self.choose_proc(cls, est)
        placement = MultiPlacement(task=task, proc=proc, cls=cls,
                                   start=est, finish=finish)
        self.schedule.add(placement)
        self.avail[proc] = finish

        profile = self.mem[cls]
        out_total = self.graph.out_size(task)
        if out_total > 0.0:
            profile.add(out_total, est, None)

        for parent in self.graph.parents(task):
            pp = self.schedule.placement(parent)
            size = self.graph.size(parent, task)
            if pp.cls == cls:
                if size > 0.0:
                    profile.add(-size, finish, None)
            else:
                comm_start = max(est - bd.cmax, pp.finish)
                self.schedule.add_comm(MultiCommEvent(
                    src=parent, dst=task, start=comm_start, finish=est,
                    src_cls=pp.cls, dst_cls=cls))
                if size > 0.0:
                    profile.add(size, comm_start, finish)
                    self.mem[pp.cls].add(-size, est, None)

        for child in self.graph.children(task):
            self._pending[child] -= 1
            if self._pending[child] == 0:
                self._newly_ready.append(child)
        return placement

    # ------------------------------------------------------------------
    def peaks(self) -> list[float]:
        return [p.peak() for p in self.mem]

    def check_invariants(self) -> None:
        for p in self.mem:
            p.check_invariants()

    def finalize(self, algorithm: str) -> MultiSchedule:
        self.check_invariants()
        self.schedule.meta.update(algorithm=algorithm, peaks=self.peaks())
        return self.schedule
