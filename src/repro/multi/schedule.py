"""Schedule containers for k-memory platforms."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Iterator, Optional

from .platform import MultiPlatform

Task = Hashable


@dataclass(frozen=True)
class MultiPlacement:
    task: Task
    proc: int
    cls: int
    start: float
    finish: float

    @property
    def duration(self) -> float:
        return self.finish - self.start


@dataclass(frozen=True)
class MultiCommEvent:
    src: Task
    dst: Task
    start: float
    finish: float
    src_cls: int
    dst_cls: int

    @property
    def duration(self) -> float:
        return self.finish - self.start


class MultiSchedule:
    """Placements + inter-class transfers on a :class:`MultiPlatform`."""

    def __init__(self, platform: MultiPlatform) -> None:
        self.platform = platform
        self._placements: dict[Task, MultiPlacement] = {}
        self._comms: dict[tuple[Task, Task], MultiCommEvent] = {}
        self.meta: dict[str, Any] = {}

    def add(self, placement: MultiPlacement) -> None:
        if placement.task in self._placements:
            raise ValueError(f"task {placement.task!r} already placed")
        if self.platform.class_of(placement.proc) != placement.cls:
            raise ValueError(
                f"processor {placement.proc} is not in class {placement.cls}")
        if placement.start < 0 or placement.finish < placement.start:
            raise ValueError(f"invalid window for {placement.task!r}")
        self._placements[placement.task] = placement

    def add_comm(self, event: MultiCommEvent) -> None:
        key = (event.src, event.dst)
        if key in self._comms:
            raise ValueError(f"communication {key!r} already scheduled")
        self._comms[key] = event

    def __contains__(self, task: Task) -> bool:
        return task in self._placements

    def __len__(self) -> int:
        return len(self._placements)

    def placement(self, task: Task) -> MultiPlacement:
        return self._placements[task]

    def placements(self) -> Iterator[MultiPlacement]:
        return iter(self._placements.values())

    def comm(self, src: Task, dst: Task) -> Optional[MultiCommEvent]:
        return self._comms.get((src, dst))

    def comms(self) -> Iterator[MultiCommEvent]:
        return iter(self._comms.values())

    @property
    def n_comms(self) -> int:
        return len(self._comms)

    @property
    def makespan(self) -> float:
        return max((p.finish for p in self._placements.values()), default=0.0)

    def tasks_on_proc(self, proc: int) -> list[MultiPlacement]:
        rows = [p for p in self._placements.values() if p.proc == proc]
        rows.sort(key=lambda p: (p.start, p.finish))
        return rows

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"MultiSchedule(n_tasks={len(self._placements)}, "
                f"makespan={self.makespan:g})")
