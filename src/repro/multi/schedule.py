"""Schedule containers for k-memory platforms (re-exports).

The unified engine schedules any number of memory classes with the core
containers; ``MultiSchedule``/``MultiPlacement``/``MultiCommEvent`` are now
plain aliases.  ``Placement.cls`` exposes the memory-class index the
historical ``MultiPlacement.cls`` field carried.
"""

from __future__ import annotations

from ..core.schedule import CommEvent, Placement, Schedule

MultiPlacement = Placement
MultiCommEvent = CommEvent
MultiSchedule = Schedule

__all__ = ["MultiPlacement", "MultiCommEvent", "MultiSchedule"]
