"""MultiMemHEFT and MultiMemMinMin — thin adapters over the unified engine.

Algorithms 1–2 are implemented once, over k memory classes, in
:mod:`repro.scheduling`; these wrappers only coerce the :class:`MultiPlatform`
facade to the core platform type and restamp the algorithm name.  The upward
rank's mean communication weight (``C * (k - 1) / k``, reducing to the
paper's ``C / 2`` at ``k = 2``) likewise lives in
:func:`repro.scheduling.ranks.upward_ranks` now.
"""

from __future__ import annotations

from typing import Hashable

from .._util import RngLike
from ..scheduling.memheft import memheft
from ..scheduling.memminmin import memminmin
from ..scheduling.ranks import rank_order, upward_ranks
from .graph import MultiTaskGraph
from .platform import as_core_platform
from .schedule import MultiSchedule

Task = Hashable

#: The k-ary rank formulas are the unified ones.
multi_upward_ranks = upward_ranks
multi_rank_order = rank_order


def multi_memheft(graph: MultiTaskGraph, platform, *,
                  rng: RngLike = None) -> MultiSchedule:
    """Algorithm 1 over ``k`` memory classes (unified engine)."""
    schedule = memheft(graph, as_core_platform(platform), rng=rng)
    schedule.meta["algorithm"] = "multi_memheft"
    return schedule


def multi_memminmin(graph: MultiTaskGraph, platform) -> MultiSchedule:
    """Algorithm 2 over ``k`` memory classes (unified engine)."""
    schedule = memminmin(graph, as_core_platform(platform))
    schedule.meta["algorithm"] = "multi_memminmin"
    return schedule
