"""MultiMemHEFT and MultiMemMinMin — Algorithms 1-2 over k memories.

The upward rank generalises the mean cost to ``k`` classes: the expected
communication weight of an edge becomes ``C * (k - 1) / k`` (the chance
that two uniformly chosen classes differ), which reduces to the paper's
``C / 2`` at ``k = 2``.
"""

from __future__ import annotations

from typing import Hashable

from .._util import EPS, RngLike, as_rng
from .graph import MultiTaskGraph
from .platform import MultiPlatform
from .schedule import MultiSchedule
from .state import MultiESTBreakdown, MultiInfeasibleError, MultiSchedulerState

Task = Hashable


def multi_upward_ranks(graph: MultiTaskGraph) -> dict[Task, float]:
    """Mean-cost upward rank over ``k`` memory classes."""
    k = graph.n_classes
    comm_weight = (k - 1) / k
    ranks: dict[Task, float] = {}
    for task in reversed(graph.topological_order()):
        best = 0.0
        for child in graph.children(task):
            cand = ranks[child] + graph.comm(task, child) * comm_weight
            if cand > best:
                best = cand
        ranks[task] = graph.w_mean(task) + best
    return ranks


def multi_rank_order(graph: MultiTaskGraph, rng: RngLike = None) -> list[Task]:
    """Non-increasing rank order (deterministic or random tie-break)."""
    ranks = multi_upward_ranks(graph)
    order = list(graph.tasks())
    if rng is None:
        index = {t: i for i, t in enumerate(order)}
        order.sort(key=lambda t: (-ranks[t], index[t]))
        return order
    gen = as_rng(rng)
    gen.shuffle(order)
    order.sort(key=lambda t: -ranks[t])
    return order


def multi_memheft(graph: MultiTaskGraph, platform: MultiPlatform, *,
                  rng: RngLike = None) -> MultiSchedule:
    """Algorithm 1 generalised to ``k`` memory classes."""
    state = MultiSchedulerState(graph, platform)
    remaining = multi_rank_order(graph, rng=rng)
    while remaining:
        committed = False
        for index, task in enumerate(remaining):
            if not state.is_ready(task):
                continue
            best = state.best_est(task)
            if best is None:
                continue
            state.commit(best)
            remaining.pop(index)
            committed = True
            break
        if not committed:
            raise MultiInfeasibleError(
                f"MultiMemHEFT: no remaining task fits "
                f"({len(remaining)} left, capacities={platform.capacities})")
    return state.finalize("multi_memheft")


def multi_memminmin(graph: MultiTaskGraph,
                    platform: MultiPlatform) -> MultiSchedule:
    """Algorithm 2 generalised to ``k`` memory classes."""
    state = MultiSchedulerState(graph, platform)
    index = {t: i for i, t in enumerate(graph.topological_order())}
    available: set[Task] = set(graph.roots())
    while available:
        best: MultiESTBreakdown | None = None
        for task in sorted(available, key=index.__getitem__):
            cand = state.best_est(task)
            if cand is None:
                continue
            if best is None or cand.eft < best.eft - EPS:
                best = cand
        if best is None:
            raise MultiInfeasibleError(
                f"MultiMemMinMin: no available task fits "
                f"({len(available)} available, "
                f"capacities={platform.capacities})")
        state.commit(best)
        available.discard(best.task)
        available.update(state.pop_newly_ready())
    return state.finalize("multi_memminmin")
