"""k-memory generalisation of the dual-memory model (paper §7 future work).

The paper's conclusion proposes adapting the heuristics to "more complex
platforms, such as hybrid platforms with several types of accelerators,
and/or including more than two memories".  This subpackage does exactly
that: :class:`MultiPlatform` holds any number of memory classes, each with
its own processor pool and capacity; :func:`multi_memheft` and
:func:`multi_memminmin` generalise Algorithms 1-2; and the ``k = 2`` case
reproduces the dual-memory implementation decision-for-decision
(``tests/multi/test_equivalence.py``).
"""

from .graph import MultiTaskGraph
from .heuristics import (
    multi_memheft,
    multi_memminmin,
    multi_rank_order,
    multi_upward_ranks,
)
from .platform import MultiPlatform
from .schedule import MultiCommEvent, MultiPlacement, MultiSchedule
from .state import MultiESTBreakdown, MultiInfeasibleError, MultiSchedulerState
from .validation import multi_memory_usage, validate_multi_schedule

__all__ = [
    "MultiPlatform",
    "MultiTaskGraph",
    "MultiSchedule",
    "MultiPlacement",
    "MultiCommEvent",
    "MultiSchedulerState",
    "MultiESTBreakdown",
    "MultiInfeasibleError",
    "multi_upward_ranks",
    "multi_rank_order",
    "multi_memheft",
    "multi_memminmin",
    "multi_memory_usage",
    "validate_multi_schedule",
]
