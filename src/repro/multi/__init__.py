"""k-memory facade over the unified scheduling engine (paper §7).

The paper's conclusion proposes adapting the heuristics to "more complex
platforms, such as hybrid platforms with several types of accelerators,
and/or including more than two memories".  The core engine now does exactly
that natively: :class:`repro.core.platform.Platform`,
:class:`repro.core.graph.TaskGraph` and
:class:`repro.scheduling.state.SchedulerState` are parametric over the
number of memory classes, and the dual-memory platform is the ``k = 2``
special case.

This subpackage therefore contains **no independent scheduler or state
implementation** — only re-exports and thin adapters preserving the
historical §7 API (`MultiPlatform` with its per-class ``n_procs`` tuple,
``MultiTaskGraph(n_classes)``, ``multi_memheft`` / ``multi_memminmin``,
list-shaped validator results).  The ``k = 2`` case reproduces the
dual-memory entry points decision-for-decision by construction
(``tests/multi/test_equivalence.py`` keeps checking it end to end).
"""

from .graph import MultiTaskGraph
from .heuristics import (
    multi_memheft,
    multi_memminmin,
    multi_rank_order,
    multi_upward_ranks,
)
from .platform import MultiPlatform, as_core_platform
from .schedule import MultiCommEvent, MultiPlacement, MultiSchedule
from .state import MultiESTBreakdown, MultiInfeasibleError, MultiSchedulerState
from .validation import multi_memory_usage, validate_multi_schedule

__all__ = [
    "MultiPlatform",
    "MultiTaskGraph",
    "MultiSchedule",
    "MultiPlacement",
    "MultiCommEvent",
    "MultiSchedulerState",
    "MultiESTBreakdown",
    "MultiInfeasibleError",
    "as_core_platform",
    "multi_upward_ranks",
    "multi_rank_order",
    "multi_memheft",
    "multi_memminmin",
    "multi_memory_usage",
    "validate_multi_schedule",
]
