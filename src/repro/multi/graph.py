"""k-memory task-graph adapter (historical ``MultiTaskGraph`` API).

The unified :class:`repro.core.graph.TaskGraph` already stores one
processing time per memory class; this subclass only keeps the historical
constructor signature (``MultiTaskGraph(n_classes)`` and
``add_task(task, times)``) and the :meth:`from_dual` lift.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from ..core.graph import TaskGraph

Task = Hashable


class MultiTaskGraph(TaskGraph):
    """DAG whose tasks run in ``w[c]`` time on memory class ``c``."""

    def __init__(self, n_classes: int, name: str = "multigraph") -> None:
        super().__init__(name=name, n_classes=n_classes)

    def add_task(self, task: Task, times: Sequence[float]) -> Task:  # type: ignore[override]
        return super().add_task(task, times=times)

    def _empty_like(self) -> "MultiTaskGraph":
        return MultiTaskGraph(self.n_classes, name=self.name)

    @classmethod
    def from_dual(cls, graph: TaskGraph) -> "MultiTaskGraph":
        """Lift a dual-memory graph: class 0 = blue, class 1 = red."""
        g = cls(2, name=graph.name)
        for t in graph.topological_order():
            g.add_task(t, graph.times(t))
        for u, v in graph.edges():
            g.add_dependency(u, v, size=graph.size(u, v),
                             comm=graph.comm(u, v))
        return g

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"MultiTaskGraph({self.name!r}, classes={self.n_classes}, "
                f"n_tasks={self.n_tasks})")
