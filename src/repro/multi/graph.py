"""Task graphs with one processing time per memory class.

Same file/transfer model as the dual-memory :class:`~repro.core.graph.
TaskGraph` — each edge carries a file of size ``F`` and a transfer time
``C`` paid whenever producer and consumer sit in *different* classes
(regardless of which pair of classes).
"""

from __future__ import annotations

import math
from typing import Hashable, Iterator, Optional, Sequence

import networkx as nx

from ..core.graph import TaskGraph

Task = Hashable


class MultiTaskGraph:
    """DAG whose tasks run in ``w[c]`` time on memory class ``c``."""

    def __init__(self, n_classes: int, name: str = "multigraph") -> None:
        if n_classes < 1:
            raise ValueError("need at least one memory class")
        self.n_classes = n_classes
        self.name = name
        self._g = nx.DiGraph()
        self._topo: Optional[tuple[Task, ...]] = None

    # ------------------------------------------------------------------
    def add_task(self, task: Task, times: Sequence[float]) -> Task:
        if task in self._g:
            raise ValueError(f"duplicate task {task!r}")
        times = tuple(float(w) for w in times)
        if len(times) != self.n_classes:
            raise ValueError(
                f"{task!r}: expected {self.n_classes} times, got {len(times)}")
        if any(w < 0 or not math.isfinite(w) for w in times):
            raise ValueError(f"{task!r}: times must be finite and >= 0")
        self._g.add_node(task, times=times)
        self._topo = None
        return task

    def add_dependency(self, u: Task, v: Task, size: float = 0.0,
                       comm: float = 0.0) -> None:
        if u not in self._g or v not in self._g:
            raise ValueError("both endpoints must exist")
        if u == v or self._g.has_edge(u, v):
            raise ValueError(f"invalid or duplicate edge ({u!r}, {v!r})")
        if size < 0 or comm < 0:
            raise ValueError("size/comm must be >= 0")
        self._g.add_edge(u, v, size=float(size), comm=float(comm))
        self._topo = None

    # ------------------------------------------------------------------
    @property
    def n_tasks(self) -> int:
        return self._g.number_of_nodes()

    @property
    def n_edges(self) -> int:
        return self._g.number_of_edges()

    def tasks(self) -> Iterator[Task]:
        return iter(self._g.nodes)

    def edges(self) -> Iterator[tuple[Task, Task]]:
        return iter(self._g.edges)

    def parents(self, task: Task) -> list[Task]:
        return list(self._g.predecessors(task))

    def children(self, task: Task) -> list[Task]:
        return list(self._g.successors(task))

    def in_degree(self, task: Task) -> int:
        return self._g.in_degree(task)

    def roots(self) -> list[Task]:
        return [t for t in self._g.nodes if self._g.in_degree(t) == 0]

    def w(self, task: Task, cls: int) -> float:
        return self._g.nodes[task]["times"][cls]

    def w_min(self, task: Task) -> float:
        return min(self._g.nodes[task]["times"])

    def w_mean(self, task: Task) -> float:
        times = self._g.nodes[task]["times"]
        return sum(times) / len(times)

    def size(self, u: Task, v: Task) -> float:
        return self._g.edges[u, v]["size"]

    def comm(self, u: Task, v: Task) -> float:
        return self._g.edges[u, v]["comm"]

    def in_size(self, task: Task) -> float:
        return sum(self._g.edges[p, task]["size"]
                   for p in self._g.predecessors(task))

    def out_size(self, task: Task) -> float:
        return sum(self._g.edges[task, c]["size"]
                   for c in self._g.successors(task))

    def mem_req(self, task: Task) -> float:
        return self.in_size(task) + self.out_size(task)

    def topological_order(self) -> tuple[Task, ...]:
        if self._topo is None:
            try:
                self._topo = tuple(nx.topological_sort(self._g))
            except nx.NetworkXUnfeasible as exc:
                raise ValueError("task graph contains a cycle") from exc
        return self._topo

    def validate(self) -> None:
        self.topological_order()

    # ------------------------------------------------------------------
    @classmethod
    def from_dual(cls, graph: TaskGraph) -> "MultiTaskGraph":
        """Lift a dual-memory graph: class 0 = blue, class 1 = red."""
        g = cls(2, name=graph.name)
        for t in graph.topological_order():
            g.add_task(t, (graph.w_blue(t), graph.w_red(t)))
        for u, v in graph.edges():
            g.add_dependency(u, v, size=graph.size(u, v),
                             comm=graph.comm(u, v))
        return g

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"MultiTaskGraph({self.name!r}, classes={self.n_classes}, "
                f"n_tasks={self.n_tasks})")
