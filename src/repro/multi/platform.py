"""k-memory platform model (the paper's §7 future-work generalisation).

A :class:`MultiPlatform` has ``k`` memory classes; class ``c`` owns
``n_procs[c]`` identical processors sharing a memory of capacity
``capacities[c]``.  The dual-memory platform of the paper is the ``k = 2``
special case (class 0 = blue, class 1 = red), and the generalised
heuristics reproduce the two-memory ones decision-for-decision there
(tested in ``tests/multi/test_equivalence.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class MultiPlatform:
    """Processor counts and memory capacities per memory class."""

    n_procs: tuple[int, ...]
    capacities: tuple[float, ...]

    def __init__(self, n_procs: Sequence[int],
                 capacities: Sequence[float] | None = None) -> None:
        n_procs = tuple(int(n) for n in n_procs)
        if capacities is None:
            capacities = tuple(math.inf for _ in n_procs)
        else:
            capacities = tuple(float(c) for c in capacities)
        if len(n_procs) != len(capacities):
            raise ValueError("n_procs and capacities must have equal length")
        if not n_procs:
            raise ValueError("at least one memory class is required")
        if any(n < 0 for n in n_procs) or sum(n_procs) == 0:
            raise ValueError("need non-negative counts and >= 1 processor")
        if any(c < 0 for c in capacities):
            raise ValueError("capacities must be >= 0")
        object.__setattr__(self, "n_procs", n_procs)
        object.__setattr__(self, "capacities", capacities)

    # ------------------------------------------------------------------
    @property
    def n_classes(self) -> int:
        return len(self.n_procs)

    @property
    def total_procs(self) -> int:
        return sum(self.n_procs)

    def classes(self) -> range:
        return range(self.n_classes)

    def procs(self, cls: int) -> range:
        """Global processor indices of memory class ``cls``."""
        start = sum(self.n_procs[:cls])
        return range(start, start + self.n_procs[cls])

    def class_of(self, proc: int) -> int:
        """Memory class of a global processor index."""
        if not 0 <= proc < self.total_procs:
            raise ValueError(f"processor {proc} out of range")
        acc = 0
        for cls, n in enumerate(self.n_procs):
            acc += n
            if proc < acc:
                return cls
        raise AssertionError("unreachable")

    def capacity(self, cls: int) -> float:
        return self.capacities[cls]

    @property
    def is_memory_bounded(self) -> bool:
        return any(math.isfinite(c) for c in self.capacities)

    def with_capacities(self, capacities: Sequence[float]) -> "MultiPlatform":
        return MultiPlatform(self.n_procs, capacities)

    def with_uniform_capacity(self, bound: float) -> "MultiPlatform":
        return MultiPlatform(self.n_procs, [bound] * self.n_classes)

    def unbounded(self) -> "MultiPlatform":
        return MultiPlatform(self.n_procs, None)
