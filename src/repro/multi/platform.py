"""k-memory platform adapter (historical ``MultiPlatform`` API).

The generic engine lives in :class:`repro.core.platform.Platform`, which
accepts any number of memory classes directly.  :class:`MultiPlatform` is a
thin facade kept for the historical §7 API, whose ``n_procs`` attribute is a
*tuple* (per class) where the core ``Platform.n_procs`` is the total count.
Use :meth:`to_core` (or the ``core`` attribute) to reach the engine type.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..core.platform import Platform


class MultiPlatform:
    """Processor counts and memory capacities per memory class (facade)."""

    __slots__ = ("core",)

    def __init__(self, n_procs: Sequence[int],
                 capacities: Sequence[float] | None = None) -> None:
        counts = tuple(int(n) for n in n_procs)
        if capacities is None:
            caps = tuple(math.inf for _ in counts)
        else:
            caps = tuple(float(c) for c in capacities)
        if counts and len(counts) != len(caps):
            raise ValueError("n_procs and capacities must have equal length")
        object.__setattr__(self, "core", Platform(list(counts), list(caps)))

    @classmethod
    def _wrap(cls, core: Platform) -> "MultiPlatform":
        self = object.__new__(cls)
        object.__setattr__(self, "core", core)
        return self

    def to_core(self) -> Platform:
        """The generic :class:`~repro.core.platform.Platform` underneath."""
        return self.core

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("MultiPlatform is immutable")

    def __eq__(self, other: object) -> bool:
        if isinstance(other, MultiPlatform):
            return self.core == other.core
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.core)

    # ------------------------------------------------------------------
    @property
    def n_procs(self) -> tuple[int, ...]:
        return self.core.proc_counts

    @property
    def capacities(self) -> tuple[float, ...]:
        return self.core.capacities

    @property
    def n_classes(self) -> int:
        return self.core.n_classes

    @property
    def total_procs(self) -> int:
        return self.core.n_procs

    def classes(self) -> range:
        return self.core.classes()

    def procs(self, cls: int) -> range:
        """Global processor indices of memory class ``cls``."""
        return self.core.procs(cls)

    def class_of(self, proc: int) -> int:
        """Memory class of a global processor index."""
        return self.core.class_of(proc)

    def capacity(self, cls: int) -> float:
        return self.core.capacity(cls)

    @property
    def is_memory_bounded(self) -> bool:
        return self.core.is_memory_bounded

    def with_capacities(self, capacities: Sequence[float]) -> "MultiPlatform":
        return MultiPlatform._wrap(self.core.with_capacities(capacities))

    def with_uniform_capacity(self, bound: float) -> "MultiPlatform":
        return MultiPlatform._wrap(self.core.with_uniform_bound(bound))

    def unbounded(self) -> "MultiPlatform":
        return MultiPlatform._wrap(self.core.unbounded())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MultiPlatform(n_procs={list(self.n_procs)})"


def as_core_platform(platform) -> Platform:
    """Coerce a :class:`MultiPlatform` or core platform to the engine type."""
    if isinstance(platform, MultiPlatform):
        return platform.core
    return platform
