"""Independent validator for k-memory schedules (adapter).

The unified :mod:`repro.core.validation` replays schedules over any number
of memory classes; these wrappers keep the historical list-based return
shape (one entry per class index) and accept the :class:`MultiPlatform`
facade.
"""

from __future__ import annotations

from typing import Hashable

from ..core.graph import TaskGraph
from ..core.memory_profile import MemoryProfile
from ..core.validation import memory_usage, validate_schedule
from ..core.schedule import Schedule
from .platform import as_core_platform

Task = Hashable


def multi_memory_usage(graph: TaskGraph, platform,
                       schedule: Schedule) -> list[MemoryProfile]:
    """Rebuild per-class used-memory staircases from file residencies."""
    core = as_core_platform(platform)
    usage = memory_usage(graph, core, schedule)
    return [usage[m] for m in core.memories()]


def validate_multi_schedule(graph: TaskGraph, platform,
                            schedule: Schedule, *,
                            eps: float = 1e-6) -> list[float]:
    """All model constraints over k memories; returns per-class peaks."""
    core = as_core_platform(platform)
    peaks = validate_schedule(graph, core, schedule, eps=eps)
    return [peaks[m] for m in core.memories()]
