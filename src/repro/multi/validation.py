"""Independent validator for k-memory schedules (mirrors
:mod:`repro.core.validation`)."""

from __future__ import annotations

from typing import Hashable

from ..core.memory_profile import MemoryProfile
from ..core.validation import ScheduleError
from .graph import MultiTaskGraph
from .platform import MultiPlatform
from .schedule import MultiSchedule

Task = Hashable


def multi_memory_usage(graph: MultiTaskGraph, platform: MultiPlatform,
                       schedule: MultiSchedule) -> list[MemoryProfile]:
    """Rebuild per-class used-memory staircases from file residencies."""
    profiles = [MemoryProfile(platform.capacity(c))
                for c in platform.classes()]
    for u, v in graph.edges():
        size = graph.size(u, v)
        if size == 0.0:
            continue
        pu, pv = schedule.placement(u), schedule.placement(v)
        if pu.cls == pv.cls:
            profiles[pu.cls].add(size, pu.start, pv.finish)
        else:
            ev = schedule.comm(u, v)
            if ev is None:
                raise ScheduleError(
                    f"cross-class edge ({u!r}, {v!r}) has no communication")
            profiles[pu.cls].add(size, pu.start, ev.finish)
            profiles[pv.cls].add(size, ev.start, pv.finish)
    return profiles


def validate_multi_schedule(graph: MultiTaskGraph, platform: MultiPlatform,
                            schedule: MultiSchedule, *,
                            eps: float = 1e-6) -> list[float]:
    """All model constraints over k memories; returns per-class peaks."""
    for task in graph.tasks():
        if task not in schedule:
            raise ScheduleError(f"task {task!r} is not scheduled")
        p = schedule.placement(task)
        expect = graph.w(task, p.cls)
        if abs(p.duration - expect) > eps:
            raise ScheduleError(
                f"task {task!r} runs for {p.duration}, expected {expect}")

    for u, v in graph.edges():
        pu, pv = schedule.placement(u), schedule.placement(v)
        if pu.cls == pv.cls:
            if schedule.comm(u, v) is not None:
                raise ScheduleError(
                    f"same-class edge ({u!r}, {v!r}) has a communication")
            if pu.finish > pv.start + eps:
                raise ScheduleError(f"precedence violated on ({u!r}, {v!r})")
        else:
            ev = schedule.comm(u, v)
            if ev is None:
                raise ScheduleError(
                    f"cross-class edge ({u!r}, {v!r}) has no communication")
            if (ev.start < pu.finish - eps or ev.finish > pv.start + eps
                    or ev.duration < graph.comm(u, v) - eps):
                raise ScheduleError(
                    f"communication window invalid on ({u!r}, {v!r})")

    for proc in range(platform.total_procs):
        rows = schedule.tasks_on_proc(proc)
        for a, b in zip(rows, rows[1:]):
            if b.start < a.finish - eps:
                raise ScheduleError(
                    f"tasks {a.task!r} and {b.task!r} overlap on {proc}")

    profiles = multi_memory_usage(graph, platform, schedule)
    peaks = [p.peak() for p in profiles]
    for cls, peak in enumerate(peaks):
        if peak > platform.capacity(cls) + eps:
            raise ScheduleError(
                f"class-{cls} memory peak {peak} exceeds capacity "
                f"{platform.capacity(cls)}")
    return peaks
