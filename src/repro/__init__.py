"""repro — Memory-aware list scheduling for hybrid (dual-memory) platforms.

Reproduction of Herrmann, Marchal & Robert, INRIA RR-8461 (2014):
scheduling task graphs on a platform with two processor/memory classes
(e.g. CPUs + GPUs) so as to minimise the makespan without exceeding either
memory capacity.

Quickstart::

    from repro import Platform, memheft, validate_schedule
    from repro.dags import dex

    graph = dex()                                   # the paper's toy DAG
    platform = Platform(n_blue=1, n_red=1, mem_blue=5, mem_red=5)
    schedule = memheft(graph, platform)
    peaks = validate_schedule(graph, platform, schedule)
    print(schedule.makespan, peaks)
"""

from .core import (
    MEMORIES,
    CommEvent,
    Memory,
    MemoryProfile,
    Placement,
    Platform,
    Schedule,
    ScheduleError,
    TaskGraph,
    critical_path_lower_bound,
    is_valid,
    lower_bound,
    memory_peaks,
    memory_usage,
    validate_schedule,
)
from .scheduling import (
    BASELINES,
    MEMORY_AWARE,
    SCHEDULERS,
    InfeasibleScheduleError,
    get_scheduler,
    heft,
    memheft,
    memminmin,
    memsufferage,
    minmin,
    rank_order,
    sufferage,
    upward_ranks,
)

__version__ = "1.0.0"

__all__ = [
    "TaskGraph",
    "Platform",
    "Memory",
    "MEMORIES",
    "Schedule",
    "Placement",
    "CommEvent",
    "MemoryProfile",
    "ScheduleError",
    "InfeasibleScheduleError",
    "validate_schedule",
    "is_valid",
    "memory_usage",
    "memory_peaks",
    "lower_bound",
    "critical_path_lower_bound",
    "heft",
    "minmin",
    "sufferage",
    "memheft",
    "memminmin",
    "memsufferage",
    "upward_ranks",
    "rank_order",
    "SCHEDULERS",
    "MEMORY_AWARE",
    "BASELINES",
    "get_scheduler",
    "__version__",
]
