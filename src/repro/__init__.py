"""repro — Memory-aware list scheduling for hybrid platforms.

Reproduction of Herrmann, Marchal & Robert, INRIA RR-8461 (2014):
scheduling task graphs on a platform with several processor/memory classes
(e.g. CPUs + GPUs) so as to minimise the makespan without exceeding any
memory capacity.

The engine is a **single k-memory core**: :class:`~repro.core.platform.
Platform`, :class:`~repro.core.graph.TaskGraph`, :class:`~repro.core.
schedule.Schedule` and :class:`~repro.scheduling.state.SchedulerState` are
parametric over the number of memory classes.  The paper's dual-memory
platform is the ``k = 2`` special case, with ``Memory.BLUE``/``Memory.RED``
and the ``n_blue``/``mem_blue``-style accessors preserved as a thin
compatibility facade (``repro.multi`` keeps the historical §7 k-ary entry
points as re-exports/adapters).  The EST kernel of §5.1 is *incremental*:
per-(task, memory) breakdown components are cached across the list-scan
iterations and only candidates affected by the last commit are re-evaluated
(see :mod:`repro.scheduling.state`), with block-decomposed
``earliest_fit`` queries and amortized staircase compaction in
:mod:`repro.core.memory_profile`.

Quickstart::

    from repro import Platform, memheft, validate_schedule
    from repro.dags import dex

    graph = dex()                                   # the paper's toy DAG
    platform = Platform(n_blue=1, n_red=1, mem_blue=5, mem_red=5)
    schedule = memheft(graph, platform)
    peaks = validate_schedule(graph, platform, schedule)
    print(schedule.makespan, peaks)

k-memory platforms use the same entry points, and processors inside a
class may carry relative speeds (heterogeneous SKUs; task ``i`` on
processor ``p`` of class ``c`` runs ``W^(c)_i / speeds[p]``, all-1.0 being
the paper's homogeneous model)::

    platform = Platform([12, 3, 1], [64, 16, 8])    # CPU + 2 accelerator pools
    graph = TaskGraph("tri", n_classes=3)           # times= per class
    mixed = Platform(2, 1, 40, 40, speeds=[1.0, 0.5, 2.0])

For long-lived use, :mod:`repro.service` wraps the engine in an asyncio
JSON-over-HTTP scheduling service with a content-addressed schedule cache
(``memsched serve`` / ``memsched submit``); see the top-level README for
the protocol.
"""

from .core import (
    MEMORIES,
    CommEvent,
    Memory,
    MemoryProfile,
    Placement,
    Platform,
    Schedule,
    ScheduleError,
    TaskGraph,
    is_valid,
    memory_peaks,
    memory_usage,
    validate_schedule,
)
from .scheduling import (
    BASELINES,
    MEMORY_AWARE,
    SCHEDULERS,
    InfeasibleScheduleError,
    get_scheduler,
    heft,
    memheft,
    memminmin,
    memsufferage,
    minmin,
    rank_order,
    sufferage,
    upward_ranks,
)

__version__ = "1.0.0"

#: Lower bounds are re-exported lazily: they pull in numpy/scipy, which are
#: optional dependencies (the scheduling engine itself runs on the pure-
#: Python scalar kernel; see repro.scheduling.kernel).
_LAZY_CORE_EXPORTS = ("critical_path_lower_bound", "lower_bound")


def __getattr__(name: str):
    if name in _LAZY_CORE_EXPORTS:
        from . import core
        return getattr(core, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(__all__) | set(globals()))


__all__ = [
    "TaskGraph",
    "Platform",
    "Memory",
    "MEMORIES",
    "Schedule",
    "Placement",
    "CommEvent",
    "MemoryProfile",
    "ScheduleError",
    "InfeasibleScheduleError",
    "validate_schedule",
    "is_valid",
    "memory_usage",
    "memory_peaks",
    "lower_bound",
    "critical_path_lower_bound",
    "heft",
    "minmin",
    "sufferage",
    "memheft",
    "memminmin",
    "memsufferage",
    "upward_ranks",
    "rank_order",
    "SCHEDULERS",
    "MEMORY_AWARE",
    "BASELINES",
    "get_scheduler",
    "__version__",
]
