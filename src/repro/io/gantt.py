"""ASCII Gantt rendering of schedules (one row per processor + transfers)."""

from __future__ import annotations

from .._util import fmt_num
from ..core.schedule import Schedule


def ascii_gantt(schedule: Schedule, *, width: int = 72) -> str:
    """Text Gantt chart: ``#`` task execution, ``~`` cross-memory transfer.

    Each processor row shows the tasks placed on it (labels inlined when the
    bar is wide enough); a final ``comms`` row shows transfer windows.
    """
    span = schedule.makespan
    if span <= 0:
        return "(empty schedule)"
    unit = span / width

    def col(t: float) -> int:
        return min(width, max(0, round(t / unit)))

    lines: list[str] = [f"makespan = {fmt_num(span)}   ('#' task, '~' transfer)"]
    platform = schedule.platform
    for proc in range(platform.n_procs):
        mem = platform.memory_of(proc)
        row = [" "] * width
        for p in schedule.tasks_on_proc(proc):
            a, b = col(p.start), max(col(p.start) + 1, col(p.finish))
            for k in range(a, min(b, width)):
                row[k] = "#"
            label = str(p.task)
            if b - a > len(label) + 1:
                for k, ch in enumerate(label):
                    row[a + 1 + k] = ch
        colour = f"{mem.value:<4.4s}"
        lines.append(f"P{proc:<2} ({colour}) |{''.join(row)}|")

    comm_rows = sorted(schedule.comms(), key=lambda ev: ev.start)
    if comm_rows:
        row = [" "] * width
        for ev in comm_rows:
            a, b = col(ev.start), max(col(ev.start) + 1, col(ev.finish))
            for k in range(a, min(b, width)):
                row[k] = "~"
        lines.append(f"transfers   |{''.join(row)}|")
    return "\n".join(lines)


def memory_sparkline(used: list[tuple[float, float]], capacity: float,
                     *, width: int = 72, span: float | None = None) -> str:
    """One-line occupancy sparkline from ``(time, used)`` breakpoints.

    Eight fill levels (`` ▁▂▃▄▅▆▇█``) sampled on a uniform time grid;
    ``capacity`` may be ``inf`` (scales to the observed peak instead).
    """
    if not used:
        return "|" + " " * width + "|"
    horizon = span if span is not None else used[-1][0]
    if horizon <= 0:
        return "|" + " " * width + "|"
    peak = max(v for _, v in used)
    denom = capacity if capacity not in (0, float("inf")) else (peak or 1.0)
    blocks = " ▁▂▃▄▅▆▇█"
    cells = []
    times = [t for t, _ in used]
    from bisect import bisect_right
    for k in range(width):
        t = horizon * (k + 0.5) / width
        idx = max(0, bisect_right(times, t) - 1)
        frac = min(1.0, used[idx][1] / denom) if denom else 0.0
        cells.append(blocks[round(frac * (len(blocks) - 1))])
    return "|" + "".join(cells) + "|"


def schedule_summary(schedule: Schedule) -> str:
    """One line per task: window, processor, memory; then transfers."""
    rows = sorted(schedule.placements(), key=lambda p: (p.start, p.proc))
    lines = [
        f"{str(p.task):>16s}  [{fmt_num(p.start):>8s}, {fmt_num(p.finish):>8s})"
        f"  proc={p.proc} mem={p.memory.value}"
        for p in rows
    ]
    for ev in sorted(schedule.comms(), key=lambda e: e.start):
        lines.append(
            f"{str(ev.src) + '->' + str(ev.dst):>16s}  "
            f"[{fmt_num(ev.start):>8s}, {fmt_num(ev.finish):>8s})  transfer"
        )
    return "\n".join(lines)
