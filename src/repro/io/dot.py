"""Graphviz DOT export of task graphs (inspection / debugging aid)."""

from __future__ import annotations

from .._util import fmt_num
from ..core.graph import TaskGraph


def _quote(s: object) -> str:
    text = str(s).replace('"', r"\"")
    return f'"{text}"'


def to_dot(graph: TaskGraph, *, show_weights: bool = True) -> str:
    """Render the DAG as a DOT digraph; node labels show the per-class
    times (``W_blue/W_red`` on dual graphs), edge labels ``F (C)``."""
    lines = [f"digraph {_quote(graph.name)} {{", "  rankdir=TB;"]
    for t in graph.topological_order():
        if show_weights:
            times = "/".join(fmt_num(w) for w in graph.times(t))
            label = f"{t}\\n{times}"
            lines.append(f"  {_quote(t)} [label={_quote(label)}];")
        else:
            lines.append(f"  {_quote(t)};")
    for u, v in graph.edges():
        if show_weights:
            label = f"{fmt_num(graph.size(u, v))} ({fmt_num(graph.comm(u, v))})"
            lines.append(f"  {_quote(u)} -> {_quote(v)} [label={_quote(label)}];")
        else:
            lines.append(f"  {_quote(u)} -> {_quote(v)};")
    lines.append("}")
    return "\n".join(lines)
