"""Serialisation and rendering: JSON, DOT, ASCII Gantt."""

from .dot import to_dot
from .gantt import ascii_gantt, memory_sparkline, schedule_summary
from .json_io import (
    DIGEST_SCHEMA_VERSION,
    canonical_digest,
    canonical_json,
    graph_from_dict,
    graph_to_dict,
    load_graph,
    load_schedule,
    platform_from_dict,
    platform_to_dict,
    save_graph,
    save_schedule,
    schedule_from_dict,
    schedule_to_dict,
)

__all__ = [
    "to_dot",
    "DIGEST_SCHEMA_VERSION",
    "canonical_json",
    "canonical_digest",
    "ascii_gantt",
    "memory_sparkline",
    "schedule_summary",
    "graph_to_dict",
    "graph_from_dict",
    "save_graph",
    "load_graph",
    "platform_to_dict",
    "platform_from_dict",
    "schedule_to_dict",
    "schedule_from_dict",
    "save_schedule",
    "load_schedule",
]
