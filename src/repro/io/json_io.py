"""JSON (de)serialisation for graphs, platforms and schedules.

Task identifiers are arbitrary hashables in memory; JSON round-tripping
stringifies non-(str/int) tasks, so linear-algebra tuple ids survive as
their ``repr`` strings (documented, stable).

Dual-memory (k = 2) objects keep the historical layout (``w_blue``/
``w_red``, ``n_blue``/``n_red``/``mem_blue``/``mem_red``) so serialized
graphs, platforms and schedules from earlier versions load unchanged;
k-memory objects use the generic ``times`` / ``proc_counts`` /
``capacities`` fields.  Memories serialize as their canonical names
(``"blue"``, ``"red"``, ``"mem2"``, ...).
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Union

from ..core.graph import TaskGraph
from ..core.platform import Memory, Platform
from ..core.schedule import CommEvent, Placement, Schedule

PathLike = Union[str, Path]


def _task_key(task: Any) -> Union[str, int]:
    if isinstance(task, (str, int)):
        return task
    return repr(task)


def _cap_out(x: float) -> Union[float, None]:
    return None if math.isinf(x) else x


def _cap_in(x: Union[float, None]) -> float:
    return math.inf if x is None else float(x)


# ----------------------------------------------------------------------
# graphs
# ----------------------------------------------------------------------
def graph_to_dict(graph: TaskGraph) -> dict:
    if graph.n_classes == 2:
        tasks = [
            {"id": _task_key(t), "w_blue": graph.w_blue(t), "w_red": graph.w_red(t)}
            for t in graph.topological_order()
        ]
    else:
        tasks = [
            {"id": _task_key(t), "times": list(graph.times(t))}
            for t in graph.topological_order()
        ]
    return {
        "name": graph.name,
        "n_classes": graph.n_classes,
        "tasks": tasks,
        "edges": [
            {"src": _task_key(u), "dst": _task_key(v),
             "size": graph.size(u, v), "comm": graph.comm(u, v)}
            for u, v in graph.edges()
        ],
    }


def graph_from_dict(data: dict) -> TaskGraph:
    n_classes = data.get("n_classes", 2)
    g = TaskGraph(name=data.get("name", "taskgraph"), n_classes=n_classes)
    for row in data["tasks"]:
        if "times" in row:
            g.add_task(row["id"], times=row["times"])
        else:
            g.add_task(row["id"], times=(row["w_blue"], row["w_red"]))
    for row in data["edges"]:
        g.add_dependency(row["src"], row["dst"],
                         size=row.get("size", 0.0), comm=row.get("comm", 0.0))
    return g


def save_graph(graph: TaskGraph, path: PathLike) -> None:
    Path(path).write_text(json.dumps(graph_to_dict(graph), indent=2))


def load_graph(path: PathLike) -> TaskGraph:
    return graph_from_dict(json.loads(Path(path).read_text()))


# ----------------------------------------------------------------------
# platforms
# ----------------------------------------------------------------------
def platform_to_dict(platform: Platform) -> dict:
    if platform.n_classes == 2:
        return {
            "n_blue": platform.n_blue,
            "n_red": platform.n_red,
            "mem_blue": _cap_out(platform.mem_blue),
            "mem_red": _cap_out(platform.mem_red),
        }
    return {
        "proc_counts": list(platform.proc_counts),
        "capacities": [_cap_out(c) for c in platform.capacities],
    }


def platform_from_dict(data: dict) -> Platform:
    if "proc_counts" in data:
        return Platform(
            [int(n) for n in data["proc_counts"]],
            [_cap_in(c) for c in data.get("capacities",
                                          [None] * len(data["proc_counts"]))],
        )
    return Platform(
        n_blue=data["n_blue"],
        n_red=data["n_red"],
        mem_blue=_cap_in(data.get("mem_blue")),
        mem_red=_cap_in(data.get("mem_red")),
    )


# ----------------------------------------------------------------------
# schedules
# ----------------------------------------------------------------------
def _jsonable_meta(v: Any) -> bool:
    """Scalar meta entries plus flat scalar lists (e.g. per-class ``peaks``)."""
    if isinstance(v, (str, int, float, bool)):
        return True
    return (isinstance(v, (list, tuple))
            and all(isinstance(x, (str, int, float, bool)) for x in v))


def schedule_to_dict(schedule: Schedule) -> dict:
    return {
        "platform": platform_to_dict(schedule.platform),
        "placements": [
            {"task": _task_key(p.task), "proc": p.proc,
             "memory": p.memory.value, "start": p.start, "finish": p.finish}
            for p in schedule.placements()
        ],
        "comms": [
            {"src": _task_key(ev.src), "dst": _task_key(ev.dst),
             "start": ev.start, "finish": ev.finish}
            for ev in schedule.comms()
        ],
        "meta": {k: v for k, v in schedule.meta.items()
                 if _jsonable_meta(v)},
    }


def schedule_from_dict(data: dict) -> Schedule:
    schedule = Schedule(platform_from_dict(data["platform"]))
    for row in data["placements"]:
        schedule.add(Placement(
            task=row["task"], proc=row["proc"], memory=Memory(row["memory"]),
            start=row["start"], finish=row["finish"],
        ))
    for row in data["comms"]:
        schedule.add_comm(CommEvent(
            src=row["src"], dst=row["dst"],
            start=row["start"], finish=row["finish"],
        ))
    schedule.meta.update(data.get("meta", {}))
    return schedule


def save_schedule(schedule: Schedule, path: PathLike) -> None:
    Path(path).write_text(json.dumps(schedule_to_dict(schedule), indent=2))


def load_schedule(path: PathLike) -> Schedule:
    return schedule_from_dict(json.loads(Path(path).read_text()))
