"""JSON (de)serialisation for graphs, platforms and schedules.

Task identifiers are arbitrary hashables in memory; JSON round-tripping
stringifies non-(str/int) tasks, so linear-algebra tuple ids survive as
their ``repr`` strings (documented, stable).

Dual-memory (k = 2) objects keep the historical layout (``w_blue``/
``w_red``, ``n_blue``/``n_red``/``mem_blue``/``mem_red``) so serialized
graphs, platforms and schedules from earlier versions load unchanged;
k-memory objects use the generic ``times`` / ``proc_counts`` /
``capacities`` fields.  Memories serialize as their canonical names
(``"blue"``, ``"red"``, ``"mem2"``, ...).

**Schema v2 — heterogeneous processors.**  A platform with per-processor
``speeds`` serializes them as a ``"speeds"`` array (global processor
order) next to either layout; the key is *omitted entirely* when every
speed is 1.0.  Omission is deliberate: :func:`canonical_digest` hashes
these dicts, so every pre-v2 (homogeneous) payload keeps its exact digest
— content-addressed cache keys never churn across the version bump —
while heterogeneous payloads hash their speed vector.  Readers accept
both layouts with or without ``speeds``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import zlib
from pathlib import Path
from typing import Any, Union

from .._util import atomic_write_text
from ..core.graph import TaskGraph
from ..core.platform import Memory, Platform
from ..core.schedule import CommEvent, Placement, Schedule

PathLike = Union[str, Path]


def _task_key(task: Any) -> Union[str, int]:
    if isinstance(task, (str, int)):
        return task
    return repr(task)


def _cap_out(x: float) -> Union[float, None]:
    return None if math.isinf(x) else x


def _cap_in(x: Union[float, None]) -> float:
    return math.inf if x is None else float(x)


# ----------------------------------------------------------------------
# graphs
# ----------------------------------------------------------------------
def graph_to_dict(graph: TaskGraph) -> dict:
    if graph.n_classes == 2:
        tasks = [
            {"id": _task_key(t), "w_blue": graph.w_blue(t), "w_red": graph.w_red(t)}
            for t in graph.topological_order()
        ]
    else:
        tasks = [
            {"id": _task_key(t), "times": list(graph.times(t))}
            for t in graph.topological_order()
        ]
    return {
        "name": graph.name,
        "n_classes": graph.n_classes,
        "tasks": tasks,
        "edges": [
            {"src": _task_key(u), "dst": _task_key(v),
             "size": graph.size(u, v), "comm": graph.comm(u, v)}
            for u, v in graph.edges()
        ],
    }


def graph_from_dict(data: dict) -> TaskGraph:
    n_classes = data.get("n_classes", 2)
    g = TaskGraph(name=data.get("name", "taskgraph"), n_classes=n_classes)
    for row in data["tasks"]:
        if "times" in row:
            g.add_task(row["id"], times=row["times"])
        else:
            g.add_task(row["id"], times=(row["w_blue"], row["w_red"]))
    for row in data["edges"]:
        g.add_dependency(row["src"], row["dst"],
                         size=row.get("size", 0.0), comm=row.get("comm", 0.0))
    return g


def save_graph(graph: TaskGraph, path: PathLike) -> None:
    atomic_write_text(path, json.dumps(graph_to_dict(graph), indent=2))


def load_graph(path: PathLike) -> TaskGraph:
    return graph_from_dict(json.loads(Path(path).read_text()))


# ----------------------------------------------------------------------
# platforms
# ----------------------------------------------------------------------
def platform_to_dict(platform: Platform) -> dict:
    if platform.n_classes == 2:
        out = {
            "n_blue": platform.n_blue,
            "n_red": platform.n_red,
            "mem_blue": _cap_out(platform.mem_blue),
            "mem_red": _cap_out(platform.mem_red),
        }
    else:
        out = {
            "proc_counts": list(platform.proc_counts),
            "capacities": [_cap_out(c) for c in platform.capacities],
        }
    # Omitted when homogeneous: pre-v2 payloads — and their canonical
    # digests — stay byte-identical.
    if platform.is_heterogeneous:
        out["speeds"] = list(platform.speeds)
    return out


def platform_from_dict(data: dict) -> Platform:
    speeds = data.get("speeds")
    if speeds is not None:
        speeds = [float(s) for s in speeds]
    if "proc_counts" in data:
        return Platform(
            [int(n) for n in data["proc_counts"]],
            [_cap_in(c) for c in data.get("capacities",
                                          [None] * len(data["proc_counts"]))],
            speeds=speeds,
        )
    return Platform(
        n_blue=data["n_blue"],
        n_red=data["n_red"],
        mem_blue=_cap_in(data.get("mem_blue")),
        mem_red=_cap_in(data.get("mem_red")),
        speeds=speeds,
    )


# ----------------------------------------------------------------------
# schedules
# ----------------------------------------------------------------------
def _jsonable_meta(v: Any) -> bool:
    """Scalar meta entries plus flat scalar lists (e.g. per-class ``peaks``)."""
    if isinstance(v, (str, int, float, bool)):
        return True
    return (isinstance(v, (list, tuple))
            and all(isinstance(x, (str, int, float, bool)) for x in v))


def schedule_to_dict(schedule: Schedule) -> dict:
    return {
        "platform": platform_to_dict(schedule.platform),
        "placements": [
            {"task": _task_key(p.task), "proc": p.proc,
             "memory": p.memory.value, "start": p.start, "finish": p.finish}
            for p in schedule.placements()
        ],
        "comms": [
            {"src": _task_key(ev.src), "dst": _task_key(ev.dst),
             "start": ev.start, "finish": ev.finish}
            for ev in schedule.comms()
        ],
        "meta": {k: v for k, v in schedule.meta.items()
                 if _jsonable_meta(v)},
    }


def schedule_from_dict(data: dict) -> Schedule:
    schedule = Schedule(platform_from_dict(data["platform"]))
    for row in data["placements"]:
        schedule.add(Placement(
            task=row["task"], proc=row["proc"], memory=Memory(row["memory"]),
            start=row["start"], finish=row["finish"],
        ))
    for row in data["comms"]:
        schedule.add_comm(CommEvent(
            src=row["src"], dst=row["dst"],
            start=row["start"], finish=row["finish"],
        ))
    schedule.meta.update(data.get("meta", {}))
    return schedule


def save_schedule(schedule: Schedule, path: PathLike) -> None:
    atomic_write_text(path, json.dumps(schedule_to_dict(schedule), indent=2))


def load_schedule(path: PathLike) -> Schedule:
    return schedule_from_dict(json.loads(Path(path).read_text()))


# ----------------------------------------------------------------------
# canonical serialization / content addressing
# ----------------------------------------------------------------------
#: Digest schema revision.  v2 added the optional per-processor
#: ``speeds`` vector to platform payloads.  The version is *not* hashed:
#: homogeneous payloads serialize identically across v1/v2 (``speeds``
#: omitted when all 1.0), so every pre-existing digest — and every
#: content-addressed cache entry keyed on one — remains valid
#: (``tests/io/test_digest_stability.py`` pins this).
DIGEST_SCHEMA_VERSION = 2


# ----------------------------------------------------------------------
# cell wire format (distributed experiment sharding)
# ----------------------------------------------------------------------
#: Revision of the tagged cell encoding below (``POST /cells`` payloads).
CELL_WIRE_VERSION = 1

#: Dataclasses allowed on the cell wire, by class name.  Populated by the
#: :func:`register_wire_dataclass` decorator at import time of the module
#: defining the class — decoding is restricted to this registry, so a
#: service host never materialises types it does not already know about.
_WIRE_DATACLASSES: dict[str, type] = {}

_WIRE_TAG = "__wire__"


def register_wire_dataclass(cls: type) -> type:
    """Class decorator admitting a dataclass to the cell wire format.

    The class is keyed by its bare name; both ends must import the module
    that defines (and thereby registers) it before decoding.
    """
    _WIRE_DATACLASSES[cls.__name__] = cls
    return cls


def to_cell_wire(value: Any) -> Any:
    """Encode a cell payload/descriptor/result as pure JSON.

    The experiment engine's cells are built from a closed set of types —
    scalars, lists, tuples, string-keyed dicts, :class:`TaskGraph`,
    :class:`Platform` and registered result dataclasses — and this tagged
    encoding round-trips all of them **exactly**: tuples stay tuples,
    floats survive bit-for-bit (JSON float serialisation uses the shortest
    round-tripping repr), non-finite floats are spelled out.  That is what
    makes ``serial == distributed`` an equality of Python objects, not
    merely of renderings.

    Lists encode as plain JSON arrays; every dict on the wire is a tagged
    envelope (``{"__wire__": kind, ...}``), so plain dicts are wrapped and
    the decoder never has to guess.  Unsupported types raise ``TypeError``.
    """
    if value is None or isinstance(value, (bool, str, int)):
        return value
    if isinstance(value, float):
        if math.isfinite(value):
            return value
        return {_WIRE_TAG: "float", "v": repr(value)}
    if isinstance(value, list):
        return [to_cell_wire(v) for v in value]
    if isinstance(value, tuple):
        return {_WIRE_TAG: "tuple", "v": [to_cell_wire(v) for v in value]}
    if isinstance(value, dict):
        for key in value:
            if not isinstance(key, str):
                raise TypeError(
                    f"cell wire dicts need string keys, got {key!r}")
        return {_WIRE_TAG: "dict",
                "v": {k: to_cell_wire(v) for k, v in value.items()}}
    if isinstance(value, TaskGraph):
        return {_WIRE_TAG: "graph", "v": graph_to_dict(value)}
    if isinstance(value, Platform):
        return {_WIRE_TAG: "platform", "v": platform_to_dict(value)}
    cls_name = type(value).__name__
    if cls_name in _WIRE_DATACLASSES and isinstance(
            value, _WIRE_DATACLASSES[cls_name]):
        fields = {f.name: to_cell_wire(getattr(value, f.name))
                  for f in dataclasses.fields(value)}
        return {_WIRE_TAG: "dataclass", "t": cls_name, "v": fields}
    raise TypeError(
        f"type {type(value).__name__!r} is not cell-wire serializable "
        f"(supported: scalars, list/tuple/dict, TaskGraph, Platform, "
        f"registered dataclasses)")


def from_cell_wire(data: Any) -> Any:
    """Decode :func:`to_cell_wire` output; raises ``ValueError`` on
    malformed or unknown tags (a host must reject, not guess)."""
    if data is None or isinstance(data, (bool, str, int, float)):
        return data
    if isinstance(data, list):
        return [from_cell_wire(v) for v in data]
    if isinstance(data, dict):
        tag = data.get(_WIRE_TAG)
        if tag == "float":
            return float(data["v"])
        if tag == "tuple":
            return tuple(from_cell_wire(v) for v in data["v"])
        if tag == "dict":
            return {k: from_cell_wire(v) for k, v in data["v"].items()}
        if tag == "graph":
            return graph_from_dict(data["v"])
        if tag == "platform":
            return platform_from_dict(data["v"])
        if tag == "dataclass":
            cls = _WIRE_DATACLASSES.get(data.get("t"))
            if cls is None:
                raise ValueError(
                    f"unknown wire dataclass {data.get('t')!r} (known: "
                    f"{sorted(_WIRE_DATACLASSES)})")
            return cls(**{k: from_cell_wire(v)
                          for k, v in data["v"].items()})
        raise ValueError(f"malformed cell wire value: bad tag {tag!r}")
    raise ValueError(f"malformed cell wire value of type "
                     f"{type(data).__name__!r}")


def canonical_json(obj: Any) -> str:
    """Deterministic JSON rendering: sorted keys, minimal separators, no
    NaN/Infinity literals (use the ``None``-for-unbounded convention of
    :func:`platform_to_dict` before calling).

    Two structurally equal payloads always render to the same string, across
    processes and Python versions, which makes the output safe to hash.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def canonical_digest(graph: Union[TaskGraph, dict],
                     platform: Union[Platform, dict],
                     algorithm: str,
                     options: Union[dict, None] = None) -> str:
    """Content address of one scheduling problem instance.

    A sha256 hex digest of the canonical JSON form of ``(graph, platform,
    algorithm, options)`` — the key of the :mod:`repro.service` schedule
    cache.  Model objects are converted through :func:`graph_to_dict` /
    :func:`platform_to_dict`, so a :class:`TaskGraph` and its serialized
    dict address the same content; algorithm names are case-folded and
    ``options=None`` equals ``options={}``.

    Schema v2 (:data:`DIGEST_SCHEMA_VERSION`): heterogeneous platforms
    contribute their ``speeds`` vector to the digest; homogeneous payloads
    serialize — and therefore hash — exactly as under v1.
    """
    graph_d = graph_to_dict(graph) if isinstance(graph, TaskGraph) else graph
    platform_d = (platform_to_dict(platform)
                  if isinstance(platform, Platform) else platform)
    payload = canonical_json(
        [graph_d, platform_d, str(algorithm).lower(), options or {}])
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def cell_wire_digest(wire: Any) -> str:
    """Content address of one wire-encoded cell value (sha256 of its
    canonical JSON) — the key of the sweep checkpoint journal
    (:mod:`repro.experiments.checkpoint`).  Cell wire round-trips exactly
    (:func:`to_cell_wire`), so equal cells always address equally,
    whatever process encodes them."""
    return hashlib.sha256(canonical_json(wire).encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# checksummed journal lines (cache + checkpoint JSONL journals)
# ----------------------------------------------------------------------
def journal_encode(row: dict) -> str:
    """One checksummed journal line (no trailing newline): the row is
    wrapped as ``{"crc": crc32(canonical(row)), "row": row}``.

    The CRC is computed over the row's canonical JSON — which JSON floats
    round-trip exactly — so :func:`journal_decode` can re-render the
    parsed row and verify without storing the original text.  A torn
    write (crash mid-append, injected corruption) fails either the JSON
    parse or the CRC and is skipped by replay instead of poisoning the
    entries before it.
    """
    body = canonical_json(row)
    crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    # Compose by hand from the already-canonical body (keys stay sorted:
    # "crc" < "row") — serializing the row a second time would double the
    # cost of every checkpointed cell.
    return '{"crc":%d,"row":%s}' % (crc, body)


def journal_decode(line: str) -> Union[dict, None]:
    """Parse one journal line; ``None`` for anything unusable (torn
    write, CRC mismatch, non-object).  Legacy checksum-less lines — a
    bare op object with no ``crc``/``row`` wrapper — are accepted
    unchecked, so pre-existing journals keep replaying."""
    try:
        outer = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(outer, dict):
        return None
    if "row" in outer:
        row = outer.get("row")
        if not isinstance(row, dict):
            return None
        try:
            body = canonical_json(row)
        except (TypeError, ValueError):
            return None
        if outer.get("crc") != zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF:
            return None
        return row
    return outer if "op" in outer else None
