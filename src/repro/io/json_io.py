"""JSON (de)serialisation for graphs, platforms and schedules.

Task identifiers are arbitrary hashables in memory; JSON round-tripping
stringifies non-(str/int) tasks, so linear-algebra tuple ids survive as
their ``repr`` strings (documented, stable).
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Union

from ..core.graph import TaskGraph
from ..core.platform import Memory, Platform
from ..core.schedule import CommEvent, Placement, Schedule

PathLike = Union[str, Path]


def _task_key(task: Any) -> Union[str, int]:
    if isinstance(task, (str, int)):
        return task
    return repr(task)


# ----------------------------------------------------------------------
# graphs
# ----------------------------------------------------------------------
def graph_to_dict(graph: TaskGraph) -> dict:
    return {
        "name": graph.name,
        "tasks": [
            {"id": _task_key(t), "w_blue": graph.w_blue(t), "w_red": graph.w_red(t)}
            for t in graph.topological_order()
        ],
        "edges": [
            {"src": _task_key(u), "dst": _task_key(v),
             "size": graph.size(u, v), "comm": graph.comm(u, v)}
            for u, v in graph.edges()
        ],
    }


def graph_from_dict(data: dict) -> TaskGraph:
    g = TaskGraph(name=data.get("name", "taskgraph"))
    for row in data["tasks"]:
        g.add_task(row["id"], row["w_blue"], row["w_red"])
    for row in data["edges"]:
        g.add_dependency(row["src"], row["dst"],
                         size=row.get("size", 0.0), comm=row.get("comm", 0.0))
    return g


def save_graph(graph: TaskGraph, path: PathLike) -> None:
    Path(path).write_text(json.dumps(graph_to_dict(graph), indent=2))


def load_graph(path: PathLike) -> TaskGraph:
    return graph_from_dict(json.loads(Path(path).read_text()))


# ----------------------------------------------------------------------
# platforms
# ----------------------------------------------------------------------
def platform_to_dict(platform: Platform) -> dict:
    def cap(x: float) -> Union[float, None]:
        return None if math.isinf(x) else x

    return {
        "n_blue": platform.n_blue,
        "n_red": platform.n_red,
        "mem_blue": cap(platform.mem_blue),
        "mem_red": cap(platform.mem_red),
    }


def platform_from_dict(data: dict) -> Platform:
    def cap(x: Union[float, None]) -> float:
        return math.inf if x is None else float(x)

    return Platform(
        n_blue=data["n_blue"],
        n_red=data["n_red"],
        mem_blue=cap(data.get("mem_blue")),
        mem_red=cap(data.get("mem_red")),
    )


# ----------------------------------------------------------------------
# schedules
# ----------------------------------------------------------------------
def schedule_to_dict(schedule: Schedule) -> dict:
    return {
        "platform": platform_to_dict(schedule.platform),
        "placements": [
            {"task": _task_key(p.task), "proc": p.proc,
             "memory": p.memory.value, "start": p.start, "finish": p.finish}
            for p in schedule.placements()
        ],
        "comms": [
            {"src": _task_key(ev.src), "dst": _task_key(ev.dst),
             "start": ev.start, "finish": ev.finish}
            for ev in schedule.comms()
        ],
        "meta": {k: v for k, v in schedule.meta.items()
                 if isinstance(v, (str, int, float, bool))},
    }


def schedule_from_dict(data: dict) -> Schedule:
    schedule = Schedule(platform_from_dict(data["platform"]))
    for row in data["placements"]:
        schedule.add(Placement(
            task=row["task"], proc=row["proc"], memory=Memory(row["memory"]),
            start=row["start"], finish=row["finish"],
        ))
    for row in data["comms"]:
        schedule.add_comm(CommEvent(
            src=row["src"], dst=row["dst"],
            start=row["start"], finish=row["finish"],
        ))
    schedule.meta.update(data.get("meta", {}))
    return schedule


def save_schedule(schedule: Schedule, path: PathLike) -> None:
    Path(path).write_text(json.dumps(schedule_to_dict(schedule), indent=2))


def load_schedule(path: PathLike) -> Schedule:
    return schedule_from_dict(json.loads(Path(path).read_text()))
