"""``repro.service`` — the always-on scheduling layer.

Every other entry point in this repository is a one-shot batch run; this
package turns the unified k-memory engine into a **long-lived scheduling
service**: a JSON-over-HTTP server (:mod:`repro.service.server`, started
via ``memsched serve``) that accepts graph/platform instances, schedules
them, and returns placements — the instance-config-and-schedule loop of
production schedulers.

Layers, transport-independent first:

* :mod:`repro.service.app` — request handling.  :class:`ServiceApp` routes
  ``POST /schedule``, ``POST /batch``, ``GET /algorithms`` and
  ``GET /healthz``; every scheduling request is deduplicated through a
  **content-addressed cache** (:class:`ScheduleCache`): the canonical
  sha256 digest of ``(graph, platform, algorithm, options)`` — see
  :func:`repro.io.json_io.canonical_digest` — keys an LRU of serialized
  response bodies, so a repeated instance is served from memory,
  byte-identical to the cold run.  Batches fan their cache misses out over
  a :class:`concurrent.futures.ProcessPoolExecutor` through
  :func:`repro.experiments.engine.map_cells`.
* :mod:`repro.service.server` — the asyncio HTTP/1.1 transport
  (:class:`ServiceServer`), plus :class:`ThreadedServer` for embedding a
  live server in tests and benchmarks.
* :mod:`repro.service.client` — :class:`ServiceClient`, the blocking
  keep-alive client used by ``memsched submit`` and the load generator
  ``benchmarks/bench_service.py``.

Cached and cold responses are bit-identical to direct library calls
(enforced by ``tests/service/``).
"""

from .app import (
    ScheduleCache,
    ServiceApp,
    ServiceError,
    execute_request,
    normalize_options,
)
from .client import ServiceClient, ServiceClientError
from .server import ServiceServer, ThreadedServer, serve

__all__ = [
    "ServiceApp",
    "ServiceError",
    "ScheduleCache",
    "execute_request",
    "normalize_options",
    "ServiceServer",
    "ThreadedServer",
    "serve",
    "ServiceClient",
    "ServiceClientError",
]
